// Schedule a random workflow on a two-rack heterogeneous cluster (fast
// links inside a rack, slow links across racks) and emit Gantt charts:
// ASCII to stdout, SVG to files.
//
//   $ ./examples/cluster_gantt --seed=7 --layers=10 --out=cluster
//
// Demonstrates non-uniform link matrices: the one-port machinery is
// per-port, so heterogeneous links need no special handling.
#include <fstream>
#include <iostream>

#include "analysis/gantt.hpp"
#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"
#include "util/args.hpp"

using namespace oneport;

namespace {

/// Two racks of three machines; rack 0 is fast (t=1), rack 1 slower
/// (t=2); links cost 0.5 inside a rack and 4 across.
Platform make_two_rack_cluster() {
  const int p = 6;
  Matrix<double> link(p, p, 0.0);
  for (int q = 0; q < p; ++q) {
    for (int r = 0; r < p; ++r) {
      if (q == r) continue;
      const bool same_rack = (q < 3) == (r < 3);
      link(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) =
          same_rack ? 0.5 : 4.0;
    }
  }
  return Platform({1.0, 1.0, 1.0, 2.0, 2.0, 2.0}, std::move(link));
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  testbeds::RandomDagOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  options.layers = args.get_int("layers", 10);
  options.max_width = args.get_int("width", 5);
  options.comm_ratio = args.get_double("c", 2.0);
  const std::string out_prefix = args.get("out", "cluster");

  const TaskGraph graph = testbeds::make_random_layered(options);
  const Platform platform = make_two_rack_cluster();
  std::cout << "random workflow: " << graph.num_tasks() << " tasks, "
            << graph.num_edges() << " edges; two-rack cluster of "
            << platform.num_processors() << " machines\n\n";

  const Schedule hs = heft(graph, platform,
                           {.model = EftEngine::Model::kOnePort});
  const Schedule is = ilha(graph, platform,
                           {.model = EftEngine::Model::kOnePort,
                            .chunk_size = 8});
  for (const auto& [name, schedule] :
       {std::pair<const char*, const Schedule&>{"heft", hs},
        {"ilha", is}}) {
    const ValidationResult check = validate_one_port(schedule, graph,
                                                     platform);
    std::cout << "== " << name << " ==  makespan "
              << schedule.makespan() << ", speedup "
              << analysis::speedup(graph, platform, schedule) << ", "
              << schedule.num_comms() << " messages, valid: "
              << (check.ok() ? "yes" : check.message()) << "\n";
    analysis::write_gantt_ascii(std::cout, schedule, platform,
                                {.width = 80, .show_ports = false});
    const std::string file = out_prefix + "_" + name + ".svg";
    std::ofstream svg(file);
    analysis::write_gantt_svg(svg, schedule, platform);
    std::cout << "SVG written to " << file << "\n\n";
  }
  return 0;
}
