// Compare every built-in scheduler on one of the paper's testbeds.
//
//   $ ./examples/compare_heuristics --testbed=LU --n=100 --c=10 --b=4
//
// Macro-dataflow schedulers are validated against the macro rules and the
// one-port schedulers against the one-port rules; the table makes the gap
// between the two models concrete (macro makespans assume unlimited
// ports, so they are optimistic).
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/registry.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"

using namespace oneport;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string testbed_name = args.get("testbed", "LU");
  const int n = args.get_int("n", 100);
  const double c = args.get_double("c", 10.0);
  const int b = args.get_int("b", 0);

  const testbeds::TestbedEntry testbed = testbeds::find_testbed(testbed_name);
  const int chunk = b > 0 ? b : testbed.paper_best_b;
  const TaskGraph graph = testbed.make(n, c);
  const Platform platform = make_paper_platform();

  std::cout << "testbed " << testbed_name << ", n=" << n << " ("
            << graph.num_tasks() << " tasks, " << graph.num_edges()
            << " edges), c=" << c << ", B=" << chunk << "\n\n";

  csv::Table table(
      {"scheduler", "model", "makespan", "ratio", "messages", "valid"});
  for (const SchedulerEntry& entry : builtin_schedulers(chunk)) {
    const Schedule schedule = entry.run(graph, platform);
    const bool one_port = entry.name.find("oneport") != std::string::npos;
    const ValidationResult check =
        one_port ? validate_one_port(schedule, graph, platform)
                 : validate_macro_dataflow(schedule, graph, platform);
    table.add_row({entry.name, one_port ? "one-port" : "macro",
                   csv::format_number(schedule.makespan(), 0),
                   csv::format_number(
                       analysis::speedup(graph, platform, schedule)),
                   std::to_string(schedule.num_comms()),
                   check.ok() ? "yes" : "NO"});
  }
  table.write_pretty(std::cout);
  return 0;
}
