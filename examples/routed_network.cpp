// The §4.3 routing extension in action: schedule one of the paper's
// kernels on a fully connected network, a ring, a star, a 2x3 mesh, a
// torus, a fat tree, a heterogeneous-cost mesh (seeded link jitter,
// cost-aware swp routes), and an alternating-XY torus with identical
// processors, and watch the sparse interconnects pay for their
// multi-hop store-and-forward messages.
//
//   $ ./examples/routed_network --testbed=LAPLACE --n=24
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/routing.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

using namespace oneport;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string testbed_name = args.get("testbed", "LAPLACE");
  const int n = args.get_int("n", 24);
  const double c = args.get_double("c", 4.0);

  const testbeds::TestbedEntry testbed = testbeds::find_testbed(testbed_name);
  const TaskGraph graph = testbed.make(n, c);
  const std::vector<double> cycles{1, 1, 2, 2, 3, 3};

  std::cout << "one-port scheduling of " << testbed_name << "(" << n
            << "), c=" << c << ", same processor speeds under eight "
            << "network topologies (the fat tree recycles them over 7 "
            << "nodes)\n\n";

  csv::Table table({"topology", "scheduler", "makespan", "ratio",
                    "messages(hops)"});
  auto run = [&](const std::string& topo, const Platform& platform,
                 const RoutingTable* routing) {
    const Schedule hs = heft(graph, platform,
                             {.model = EftEngine::Model::kOnePort,
                              .routing = routing});
    const Schedule is = ilha(graph, platform,
                             {.model = EftEngine::Model::kOnePort,
                              .chunk_size = 12,
                              .routing = routing});
    for (const auto& [name, s] :
         {std::pair<const char*, const Schedule&>{"heft", hs},
          {"ilha", is}}) {
      ensure(validate_one_port(s, graph, platform).ok(),
             "invalid schedule on " + topo);
      table.add_row({topo, name, csv::format_number(s.makespan(), 0),
                     csv::format_number(
                         analysis::speedup(graph, platform, s)),
                     std::to_string(s.num_comms())});
    }
  };

  const Platform full(cycles, 1.0);
  run("full", full, nullptr);
  const RoutedPlatform ring = make_ring_platform(cycles, 1.0);
  run("ring", ring.platform, &ring.routing);
  const RoutedPlatform star = make_star_platform(cycles, 1.0);
  run("star", star.platform, &star.routing);
  // The structured networks of ISSUE-4: the same six processors as a 2x3
  // mesh and torus (XY dimension-ordered routes), and their speeds
  // recycled over a 2-level arity-2 fat tree (up-down routes, links
  // tapering fatter toward the root).  The ':'-suffixed names (ISSUE-5)
  // make link heterogeneity and routing policy part of the axis: seeded
  // +/-50% link jitter routed cost-aware (swp), and the alternating-XY
  // load-spreading policy on the uniform torus.
  for (const char* name : {"mesh2x3", "torus2x3", "fattree2x2",
                           "mesh2x3:het0.5:swp", "torus2x3:alt"}) {
    const RoutedPlatform routed = make_topology_platform(name, cycles, 1.0);
    run(name, routed.platform, &routed.routing);
  }

  table.write_pretty(std::cout);
  std::cout << "\nOn the ring/star, messages between non-adjacent "
               "processors hop through intermediates, each hop occupying "
               "its own send/receive port pair.  Sparser networks "
               "usually (not always -- the heuristics are not monotone "
               "in the topology) cost makespan, the star's hub being the "
               "worst bottleneck.\n";
  return 0;
}
