// A walkthrough of the paper's two NP-completeness results, executed.
//
// Theorem 1 (FORK-SCHED): scheduling a fork graph on unlimited same-speed
// processors under the one-port model encodes 2-PARTITION.  Theorem 2
// (COMM-SCHED): even with the allocation fixed, *ordering the messages*
// encodes it again -- which is why ILHA's optional third step has to be a
// greedy heuristic.
//
//   $ ./examples/np_hardness_demo --values=3,1,1,2,2,1
#include <iostream>
#include <sstream>

#include "exact/reductions.hpp"
#include "exact/two_partition.hpp"
#include "sched/validate.hpp"
#include "util/args.hpp"
#include "util/error.hpp"

using namespace oneport;

namespace {

std::vector<std::int64_t> parse_values(const std::string& csv) {
  std::vector<std::int64_t> values;
  std::istringstream iss(csv);
  std::string item;
  while (std::getline(iss, item, ',')) {
    values.push_back(std::stoll(item));
  }
  require(!values.empty(), "need at least one value");
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::vector<std::int64_t> values =
      parse_values(args.get("values", "3,1,1,2,2,1"));

  std::cout << "2-PARTITION instance A = {";
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::cout << (i ? ", " : "") << values[i];
  }
  std::cout << "}\n";
  const auto half = exact::two_partition(values);
  std::cout << "solvable: " << (half ? "yes" : "no") << "\n\n";

  // ---- Theorem 1 -------------------------------------------------------
  const exact::ForkSchedInstance t1 = exact::make_fork_sched_instance(values);
  std::cout << "Theorem 1 (FORK-SCHED): fork of "
            << t1.fork.child_weights.size()
            << " children, time bound T = " << t1.time_bound << "\n";
  const exact::ForkOptimum opt = exact::solve_fork_one_port_optimal(t1.fork);
  std::cout << "  exhaustive one-port optimum = " << opt.makespan
            << (opt.makespan <= t1.time_bound + 1e-9 ? "  (meets T)"
                                                     : "  (exceeds T)")
            << "\n";
  if (half) {
    exact::RealizedFork realized =
        exact::realize_theorem1_schedule(values, *half);
    const ValidationResult check = validate_one_port(
        realized.schedule, realized.graph, realized.platform);
    std::cout << "  proof-following schedule from the certificate: makespan "
              << realized.schedule.makespan() << ", valid: "
              << (check.ok() ? "yes" : check.message()) << "\n";
  }

  // ---- Theorem 2 -------------------------------------------------------
  const exact::CommSchedInstance t2 = exact::make_comm_sched_instance(values);
  std::cout << "\nTheorem 2 (COMM-SCHED): " << t2.graph.num_tasks()
            << " zero-weight tasks on " << t2.platform.num_processors()
            << " processors, allocation fixed, bound T = " << t2.time_bound
            << "\n";
  if (values.size() <= 9) {
    const double opt2 = exact::solve_comm_sched_optimal(t2, values);
    std::cout << "  exhaustive optimum over P0's send orders = " << opt2
              << (opt2 <= t2.time_bound + 1e-9 ? "  (meets T)"
                                               : "  (exceeds T)")
              << "\n";
  }
  if (half) {
    const Schedule s = exact::realize_theorem2_schedule(t2, values, *half);
    const ValidationResult check =
        validate_one_port(s, t2.graph, t2.platform);
    std::cout << "  proof-following schedule: makespan " << s.makespan()
              << ", valid: " << (check.ok() ? "yes" : check.message())
              << "\n";
  }
  std::cout << "\nBoth bounds are met exactly when the partition exists -- "
               "the reductions at work.\n";
  return 0;
}
