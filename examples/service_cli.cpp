// Scheduler-service replay driver (ISSUE-9 tentpole): stand up a
// service::SchedulerService over the paper platform, replay a seeded
// stream of mixed-size DAG scheduling requests through it, and report
// sustained schedules/sec with p50/p99 enqueue-to-completion latency.
//
// Usage:
//   service_cli [--requests=200 | --seconds=2]
//               [--shards=0] [--queue-depth=0] [--batch=0]
//               [--backpressure=block|reject]
//               [--testbeds=LU,FORK-JOIN,STENCIL] [--sizes=20,40,80]
//               [--schedulers=heft-oneport,ilha-oneport]
//               [--seed=1] [--no-validate] [--json=out.json] [--quiet]
//
// The stream is seeded (--seed) and drawn uniformly over the testbeds x
// sizes x schedulers axes, so a replay is reproducible: the same seed
// submits the same requests in the same order.  --requests replays a
// fixed count; --seconds instead submits closed-loop until the deadline
// (the CI smoke mode).  Zero-argument knobs fall through to the
// ONEPORT_SERVICE_* environment defaults (docs/KNOBS.md).  Under
// --backpressure=reject, rejected submissions honor the ticket's
// retry-after hint and resubmit, so every generated request eventually
// completes and the reported throughput is the service's, not the
// reject path's.
//
// The exit status is the smoke test: service_cli exits non-zero when
// zero requests completed (a wedged queue or dead worker cannot report
// a plausible-looking 0.0 schedules/sec and still pass CI).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "platform/platform.hpp"
#include "service/scheduler_service.hpp"
#include "util/args.hpp"
#include "util/error.hpp"

namespace {

using namespace oneport;

std::vector<std::string> split_list(const std::string& csv_list) {
  std::vector<std::string> out;
  std::stringstream ss(csv_list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<int> split_ints(const std::string& csv_list) {
  std::vector<int> out;
  for (const std::string& item : split_list(csv_list)) {
    const int value = std::atoi(item.c_str());
    ensure(value > 0, "sizes must be positive integers, got '" + item + "'");
    out.push_back(value);
  }
  return out;
}

/// The seeded request stream: request i is a uniform draw over the
/// testbed/size/scheduler axes from an engine seeded once, so the same
/// --seed replays the same mixed-size stream.
class RequestStream {
 public:
  RequestStream(std::vector<std::string> testbeds, std::vector<int> sizes,
                std::vector<std::string> schedulers, std::uint64_t seed)
      : testbeds_(std::move(testbeds)),
        sizes_(std::move(sizes)),
        schedulers_(std::move(schedulers)),
        rng_(seed) {}

  analysis::SweepPoint next() {
    analysis::SweepPoint point;
    point.testbed = pick(testbeds_);
    point.size = pick(sizes_);
    point.scheduler = pick(schedulers_);
    return point;
  }

 private:
  template <typename T>
  const T& pick(const std::vector<T>& axis) {
    std::uniform_int_distribution<std::size_t> dist(0, axis.size() - 1);
    return axis[dist(rng_)];
  }

  std::vector<std::string> testbeds_;
  std::vector<int> sizes_;
  std::vector<std::string> schedulers_;
  std::mt19937_64 rng_;
};

/// Submits one request, honoring reject backpressure by sleeping the
/// ticket's retry-after hint and resubmitting.
service::Ticket submit_with_retry(service::SchedulerService& svc,
                                  const analysis::SweepPoint& point) {
  while (true) {
    service::Ticket ticket = svc.submit(point);
    if (ticket.accepted) return ticket;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(ticket.retry_after_ms));
  }
}

void write_json(std::ostream& os, const service::SchedulerService& svc,
                const service::ServiceStats& stats, double wall_seconds,
                double throughput) {
  os << "{\n  \"context\": {\n"
     << "    \"executable\": \"service_cli\",\n"
     << "    \"shards\": " << svc.shards() << ",\n"
     << "    \"queue_depth\": " << svc.queue_depth() << ",\n"
     << "    \"batch_size\": " << svc.batch_size() << ",\n"
     << "    \"backpressure\": \""
     << service::backpressure_name(svc.backpressure()) << "\"\n"
     << "  },\n  \"benchmarks\": [\n"
     << "    {\n"
     << "      \"name\": \"service/replay\",\n"
     << "      \"run_type\": \"service\",\n"
     << "      \"completed\": " << stats.completed << ",\n"
     << "      \"rejected\": " << stats.rejected << ",\n"
     << "      \"batches\": " << stats.batches << ",\n"
     << "      \"peak_queue_depth\": " << stats.peak_queue_depth << ",\n"
     << "      \"wall_seconds\": " << wall_seconds << ",\n"
     << "      \"schedules_per_second\": " << throughput << ",\n"
     << "      \"latency_p50_ms\": " << stats.latency_p50_ms << ",\n"
     << "      \"latency_p99_ms\": " << stats.latency_p99_ms << "\n"
     << "    }\n  ]\n}\n";
}

int run(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: service_cli [--requests=200 | --seconds=S]\n"
           "                   [--shards=0] [--queue-depth=0] [--batch=0]\n"
           "                   [--backpressure=block|reject]\n"
           "                   [--testbeds=LU,FORK-JOIN,STENCIL]\n"
           "                   [--sizes=20,40,80]\n"
           "                   [--schedulers=heft-oneport,ilha-oneport]\n"
           "                   [--seed=1] [--no-validate]\n"
           "                   [--json=out.json] [--quiet]\n"
           "\n"
           "Replays a seeded stream of mixed-size DAG scheduling\n"
           "requests through the scheduler service and reports\n"
           "schedules/sec with p50/p99 latency.  --requests submits a\n"
           "fixed count; --seconds submits closed-loop until the\n"
           "deadline.  Knobs left at 0 (or backpressure unset) resolve\n"
           "from the ONEPORT_SERVICE_* environment (docs/KNOBS.md).\n"
           "Exits non-zero if no request completes.\n";
    return 0;
  }

  const std::vector<std::string> testbeds =
      split_list(args.get("testbeds", "LU,FORK-JOIN,STENCIL"));
  const std::vector<int> sizes = split_ints(args.get("sizes", "20,40,80"));
  const std::vector<std::string> schedulers =
      split_list(args.get("schedulers", "heft-oneport,ilha-oneport"));
  ensure(!testbeds.empty() && !sizes.empty() && !schedulers.empty(),
         "every stream axis needs at least one entry");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int requests = args.get_int("requests", 200);
  const double seconds = args.get_double("seconds", 0.0);
  ensure(requests > 0 || seconds > 0.0,
         "--requests must be positive (or give --seconds)");

  service::ServiceOptions options;
  options.shards = static_cast<unsigned>(args.get_int("shards", 0));
  options.queue_depth =
      static_cast<std::size_t>(args.get_int("queue-depth", 0));
  options.batch_size = static_cast<std::size_t>(args.get_int("batch", 0));
  if (args.has("backpressure")) {
    options.backpressure =
        service::parse_backpressure(args.get("backpressure", "block"));
  }
  options.validate = !args.has("no-validate");

  const Platform platform = make_paper_platform();
  service::SchedulerService svc(platform, options);
  RequestStream stream(testbeds, sizes, schedulers, seed);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  std::uint64_t submitted = 0;
  if (seconds > 0.0) {
    const Clock::time_point deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
    while (Clock::now() < deadline) {
      (void)submit_with_retry(svc, stream.next());
      ++submitted;
    }
  } else {
    for (int i = 0; i < requests; ++i) {
      (void)submit_with_retry(svc, stream.next());
      ++submitted;
    }
  }
  svc.drain();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  svc.stop();

  const service::ServiceStats stats = svc.stats();
  const double throughput =
      wall_seconds > 0.0 ? static_cast<double>(stats.completed) / wall_seconds
                         : 0.0;

  if (!args.has("quiet")) {
    std::cout << "service: " << svc.shards() << " shards, queue depth "
              << svc.queue_depth() << ", batch " << svc.batch_size()
              << ", backpressure "
              << service::backpressure_name(svc.backpressure()) << "\n"
              << "replay:  " << submitted << " submitted, " << stats.completed
              << " completed, " << stats.rejected << " rejected, "
              << stats.batches << " batches, peak depth "
              << stats.peak_queue_depth << "\n"
              << "rate:    " << throughput << " schedules/sec over "
              << wall_seconds << " s\n"
              << "latency: p50 " << stats.latency_p50_ms << " ms, p99 "
              << stats.latency_p99_ms << " ms\n";
  }
  if (args.has("json")) {
    std::ofstream os(args.get("json", ""));
    ensure(os.good(), "cannot open --json path for writing");
    write_json(os, svc, stats, wall_seconds, throughput);
    if (!args.has("quiet")) {
      std::cout << "JSON artifact: " << args.get("json", "") << "\n";
    }
  }

  if (stats.completed == 0) {
    std::cerr << "service_cli: no request completed\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "service_cli: " << e.what() << "\n";
    return 1;
  }
}
