// Command-line sweep driver (ROADMAP item): run the general
// (topology, testbed, n, scheduler) grid of analysis::run_sweep across
// the thread pool and write the results as terminal table, CSV, and/or
// google-benchmark-shaped JSON artifacts (the format bench/run_all.sh
// collects under bench/out/).
//
// Usage:
//   sweep_cli [--testbeds=LU,STENCIL] [--sizes=100,200,300]
//             [--schedulers=heft-oneport,ilha-oneport]
//             [--topologies=full,ring,star,line,random,mesh3x3,torus3x3,fattree2x2]
//             [--events=none,slowdown,dropout,mixed,arrival]
//             [--rebalance=off,on]
//             [--comm-ratio=10] [--chunk=38] [--workers=0]
//             [--topology-seed=1] [--no-validate]
//             [--csv=out.csv] [--json=out.json] [--quiet]
//
// Topology "full" schedules on the paper's fully-connected 10-processor
// platform; the sparse names rebuild that platform's processors over a
// ring/star/line/random-connected/mesh/torus/fat-tree network and
// schedule store-and-forward chains along its routed paths (structured
// names fix the processor count and recycle the paper platform's cycle
// times).  The --events axis replays each point through the online
// rescheduler (src/dynamic) under a named platform-fault trace --
// processor slowdowns, drop-outs, late task arrivals -- derived from the
// static schedule's makespan; "none" keeps the point static.  The
// --rebalance axis toggles the per-epoch load_balance skew-reduction
// pass on those dynamic points; the worst per-epoch suffix imbalance
// before/after the pass lands in the imb_before/imb_after columns.
// Structured names take ':' suffixes making link heterogeneity
// and routing policy sweep axes -- e.g. mesh4x4:het0.5:swp = seeded
// +/-50% link jitter routed by cost-aware shortest-weighted-path; see
// docs/TOPOLOGIES.md for the full grammar.  Topology names are
// validated against the registry before the sweep starts: a typo is a
// hard error listing the known names, not a point failure deep inside
// the grid.  Every grid point is validated under the model implied by
// the scheduler name unless --no-validate is given.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "dynamic/events.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/profiler.hpp"

namespace {

using namespace oneport;

std::vector<std::string> split_list(const std::string& csv_list) {
  std::vector<std::string> out;
  std::stringstream ss(csv_list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<int> split_ints(const std::string& csv_list) {
  std::vector<int> out;
  for (const std::string& item : split_list(csv_list)) {
    const int value = std::atoi(item.c_str());
    ensure(value > 0, "sizes must be positive integers, got '" + item + "'");
    out.push_back(value);
  }
  return out;
}

/// JSON string escaping for the few metadata fields we emit.
std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// google-benchmark-shaped JSON: a context header plus one "benchmark"
/// entry per grid point with the sweep metrics as counters, so tooling
/// that consumes bench/out/*.json can ingest sweep artifacts unchanged.
void write_json(std::ostream& os,
                const std::vector<analysis::SweepResult>& results,
                int workers) {
  os << "{\n  \"context\": {\n"
     << "    \"executable\": \"sweep_cli\",\n"
     << "    \"workers\": " << workers;
  // Per-thread scalability profile (ONEPORT_PROFILE=1): the aggregate
  // counter vector over every worker slab, at quiescence (the pool has
  // drained by the time artifacts are written).  Absent entirely when
  // the profiler is disabled, so its presence is itself the smoke
  // signal CI greps for.
  if (prof::enabled()) {
    const prof::Counts totals = prof::aggregate();
    os << ",\n    \"profile\": {\n"
       << "      \"threads\": " << prof::slab_count();
    for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
      os << ",\n      \"prof_"
         << prof::counter_name(static_cast<prof::Counter>(i))
         << "\": " << totals[i];
    }
    os << "\n    }";
  }
  os << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const analysis::SweepResult& r = results[i];
    std::string name = r.point.topology + "/" + r.point.testbed +
                       "/n=" + std::to_string(r.point.size) + "/" +
                       r.point.scheduler;
    if (r.point.events != "none") name += "/events=" + r.point.events;
    if (r.point.rebalance) name += "/rebalance=on";
    os << "    {\n"
       << "      \"name\": \"" << json_escape(name) << "\",\n"
       << "      \"run_type\": \"sweep\",\n"
       << "      \"tasks\": " << r.num_tasks << ",\n"
       << "      \"makespan\": " << r.makespan << ",\n"
       << "      \"ratio\": " << r.speedup << ",\n"
       << "      \"msgs\": " << r.num_comms << ",\n"
       << "      \"imb_before\": " << r.imbalance_before << ",\n"
       << "      \"imb_after\": " << r.imbalance_after;
    if (r.audited) {
      os << ",\n      \"lb\": " << r.lower_bound
         << ",\n      \"optimality_gap\": " << r.optimality_gap
         << ",\n      \"lb_proven\": " << (r.lb_proven ? "true" : "false");
    }
    os << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int run(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: sweep_cli [--testbeds=LU,...] [--sizes=100,...]\n"
           "                 [--schedulers=heft-oneport,...]\n"
           "                 [--topologies=full,ring,star,line,random,\n"
           "                               mesh<R>x<C>,torus<R>x<C>,"
           "fattree<L>x<A>]\n"
           "                 [--events=none,slowdown,dropout,mixed,"
           "arrival]\n"
           "                 [--rebalance=off,on]\n"
           "                 [--audit=none,gap] [--audit-budget=200000]\n"
           "                 [--audit-max-tasks=64]\n"
           "                 [--comm-ratio=10] [--chunk=38] [--workers=0]\n"
           "                 [--topology-seed=1] [--no-validate]\n"
           "                 [--csv=out.csv] [--json=out.json] [--quiet]\n"
           "\n"
           "--testbeds takes the paper kernels (LU, LAPLACE, STENCIL,\n"
           "FORK-JOIN, DOOLITTLE, LDMt), the generated workload families\n"
           "mltrain-shaped MLTRAIN (data-parallel training step: layered\n"
           "fwd/bwd chains with per-layer allreduce fan-in/fan-out) and\n"
           "microsvc-shaped MICROSVC (microservice request fanout:\n"
           "shallow wide tree with heavy-tailed service times), and\n"
           "trace:<path> entries importing a DOT/JSON DAG file verbatim\n"
           "(see docs/WORKLOADS.md; trace points ignore --sizes).\n"
           "\n"
           "--audit=gap runs the anytime branch-and-bound lower bound\n"
           "(src/exact/branch_bound) on every static grid point with at\n"
           "most --audit-max-tasks tasks and reports lb, optimality_gap\n"
           "(makespan/lb - 1) and lb_proven per point; --audit-budget\n"
           "caps the deterministic node budget.  gap == 0 with\n"
           "lb_proven means the heuristic is provably optimal there.\n"
           "\n"
           "--events replays each grid point through the online\n"
           "rescheduler (src/dynamic) under the named platform-fault\n"
           "trace: processor slowdowns, drop-outs, and late task\n"
           "arrivals derived from the static schedule's makespan\n"
           "('none' keeps the point static).\n"
           "\n"
           "--rebalance makes the per-epoch load_balance rebalancing\n"
           "pass a grid axis for those dynamic points ('off', 'on', or\n"
           "both); the worst per-epoch suffix imbalance before/after\n"
           "the pass is reported as imb_before/imb_after.\n"
           "\n"
           "Structured topology names take ':' suffixes for per-link\n"
           "heterogeneity and the routing policy axis (defaults: xy on\n"
           "mesh/torus, updown on fattree), e.g. mesh4x4:het0.5:swp:\n"
           "  :het<A>    seeded link jitter, cost *= U[1-A, 1+A), 0<A<1\n"
           "  :hot<P>    seeded hotspot links (prob. P, cost x8), 0<P<=1\n"
           "  :aniso<F>  column links cost F x row links (mesh/torus)\n"
           "  :xy|:alt   routing policy: dimension-ordered XY /\n"
           "             alternating XY-YX load spreading (mesh/torus)\n"
           "  :updown    up-down through the LCA (fattree)\n"
           "  :swp       cost-aware shortest-weighted-path (any)\n";
    return 0;
  }

  const std::vector<std::string> testbeds =
      split_list(args.get("testbeds", "LU,FORK-JOIN"));
  const std::vector<int> sizes = split_ints(args.get("sizes", "100,200"));
  const std::vector<std::string> schedulers =
      split_list(args.get("schedulers", "heft-oneport,ilha-oneport"));
  const std::vector<std::string> topologies =
      split_list(args.get("topologies", "full"));
  const std::vector<std::string> events =
      split_list(args.get("events", "none"));
  const std::vector<std::string> rebalance_names =
      split_list(args.get("rebalance", "off"));
  std::vector<bool> rebalance;
  for (const std::string& mode : rebalance_names) {
    ensure(mode == "on" || mode == "off",
           "unknown --rebalance mode '" + mode + "' (expected on/off)");
    rebalance.push_back(mode == "on");
  }
  const std::string audit = args.get("audit", "none");
  ensure(audit == "none" || audit == "gap",
         "unknown --audit mode '" + audit + "' (expected none/gap)");
  const int audit_budget = args.get_int("audit-budget", 200'000);
  ensure(audit_budget > 0, "--audit-budget must be positive");
  const int audit_max_tasks = args.get_int("audit-max-tasks", 64);
  ensure(audit_max_tasks > 0, "--audit-max-tasks must be positive");
  const double comm_ratio = args.get_double("comm-ratio", 10.0);
  const int chunk = args.get_int("chunk", 38);
  const int workers = args.get_int("workers", 0);
  const auto topology_seed =
      static_cast<std::uint64_t>(args.get_int("topology-seed", 1));
  ensure(!testbeds.empty() && !sizes.empty() && !schedulers.empty() &&
             !topologies.empty() && !events.empty() && !rebalance.empty(),
         "every grid axis needs at least one entry");
  // Same fail-fast rule for event-trace names as for topologies.
  for (const std::string& trace : events) {
    const std::vector<std::string>& known = dyn::known_event_trace_names();
    ensure(std::find(known.begin(), known.end(), trace) != known.end(),
           "unknown event trace '" + trace +
               "' (try none, slowdown, dropout, mixed, arrival)");
  }
  // Reject unknown topology names before any scheduling happens: a typo
  // must be a hard error listing the registry, not a late point failure
  // (or, worse, a silently skipped axis).  "full" is the no-routing
  // baseline, not a routed topology, so it is checked separately.
  for (const std::string& topology : topologies) {
    if (topology != "full") validate_topology_name(topology);
  }

  std::vector<analysis::SweepPoint> grid = analysis::make_sweep_grid(
      testbeds, sizes, schedulers, comm_ratio, chunk, topologies, events,
      rebalance);
  for (analysis::SweepPoint& point : grid) point.topology_seed = topology_seed;

  const Platform platform = make_paper_platform();
  const std::vector<analysis::SweepResult> results = analysis::run_sweep(
      grid, platform,
      {.workers = workers,
       .validate = !args.has("no-validate"),
       .audit_gap = audit == "gap",
       .audit_node_budget = static_cast<std::uint64_t>(audit_budget),
       .audit_max_tasks = audit_max_tasks});
  const csv::Table table = analysis::sweep_table(results);

  if (!args.has("quiet")) {
    std::cout << "sweep: " << grid.size() << " points, p="
              << platform.num_processors() << ", c=" << comm_ratio
              << ", B=" << chunk << "\n";
    table.write_pretty(std::cout);
  }
  if (args.has("csv")) {
    std::ofstream os(args.get("csv", ""));
    ensure(os.good(), "cannot open --csv path for writing");
    table.write_csv(os);
    if (!args.has("quiet")) {
      std::cout << "CSV artifact: " << args.get("csv", "") << "\n";
    }
  }
  if (args.has("json")) {
    std::ofstream os(args.get("json", ""));
    ensure(os.good(), "cannot open --json path for writing");
    write_json(os, results, workers);
    if (!args.has("quiet")) {
      std::cout << "JSON artifact: " << args.get("json", "") << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "sweep_cli: " << e.what() << "\n";
    return 1;
  }
}
