// Sweep ILHA's chunk-size parameter B on one testbed (§5.3: the paper
// found B=4 best for LU, 20 for DOOLITTLE/LDMt, 38 -- the perfect-balance
// chunk -- for the others, with no systematic way to predict the winner).
//
//   $ ./examples/tune_b --testbed=LU --n=150
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/ilha.hpp"
#include "platform/load_balance.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"

using namespace oneport;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string testbed_name = args.get("testbed", "LU");
  const int n = args.get_int("n", 150);
  const double c = args.get_double("c", 10.0);

  const testbeds::TestbedEntry testbed = testbeds::find_testbed(testbed_name);
  const TaskGraph graph = testbed.make(n, c);
  const Platform platform = make_paper_platform();
  const auto perfect = static_cast<int>(perfect_balance_chunk(platform));

  std::cout << "ILHA B sweep on " << testbed_name << "(" << n << "), c=" << c
            << "; perfect-balance chunk M=" << perfect
            << ", paper's pick B=" << testbed.paper_best_b << "\n\n";

  csv::Table table({"B", "makespan", "ratio", "messages"});
  int best_b = 0;
  double best_ratio = 0.0;
  for (const int b : {platform.num_processors(), 15, 20, perfect,
                      2 * perfect}) {
    const Schedule schedule =
        ilha(graph, platform,
             {.model = EftEngine::Model::kOnePort, .chunk_size = b});
    ensure(validate_one_port(schedule, graph, platform).ok(),
           "invalid ILHA schedule");
    const double ratio = analysis::speedup(graph, platform, schedule);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_b = b;
    }
    table.add_row({std::to_string(b),
                   csv::format_number(schedule.makespan(), 0),
                   csv::format_number(ratio),
                   std::to_string(schedule.num_comms())});
  }
  table.write_pretty(std::cout);
  std::cout << "\nbest B here: " << best_b << " (ratio "
            << csv::format_number(best_ratio) << ")\n";
  return 0;
}
