// Quickstart: build a small task graph by hand, describe a heterogeneous
// platform, schedule under the bi-directional one-port model with both
// HEFT and ILHA, validate, and draw ASCII Gantt charts.
//
//   $ ./examples/quickstart
#include <iostream>

#include "analysis/gantt.hpp"
#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/validate.hpp"

using namespace oneport;

int main() {
  // A little diamond pipeline: source -> {prep_a, prep_b} -> solve -> sink,
  // with an extra independent branch to keep the slow machine busy.
  TaskGraph g;
  const TaskId source = g.add_task(2.0, "source");
  const TaskId prep_a = g.add_task(4.0, "prep_a");
  const TaskId prep_b = g.add_task(4.0, "prep_b");
  const TaskId extra = g.add_task(6.0, "extra");
  const TaskId solve = g.add_task(5.0, "solve");
  const TaskId sink = g.add_task(1.0, "sink");
  g.add_edge(source, prep_a, 3.0);
  g.add_edge(source, prep_b, 3.0);
  g.add_edge(source, extra, 1.0);
  g.add_edge(prep_a, solve, 2.0);
  g.add_edge(prep_b, solve, 2.0);
  g.add_edge(solve, sink, 1.0);
  g.add_edge(extra, sink, 1.0);
  g.finalize();

  // Three processors: one fast, two slower; uniform links of cost 1.
  const Platform platform({1.0, 2.0, 2.0}, 1.0);

  for (const bool use_ilha : {false, true}) {
    const Schedule schedule =
        use_ilha ? ilha(g, platform, {.model = EftEngine::Model::kOnePort,
                                      .chunk_size = 4})
                 : heft(g, platform, {.model = EftEngine::Model::kOnePort});
    const ValidationResult check = validate_one_port(schedule, g, platform);
    const analysis::ScheduleStats stats =
        analysis::compute_stats(g, platform, schedule);

    std::cout << "== " << (use_ilha ? "ILHA (B=4)" : "HEFT")
              << " under the one-port model ==\n";
    std::cout << "valid: " << (check.ok() ? "yes" : check.message()) << "\n";
    std::cout << "makespan " << stats.makespan << ", speedup "
              << stats.speedup << ", " << stats.num_comms << " messages\n";
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      const TaskPlacement& t = schedule.task(v);
      std::cout << "  " << g.name(v) << " -> P" << t.proc << " ["
                << t.start << ", " << t.finish << ")\n";
    }
    analysis::write_gantt_ascii(std::cout, schedule, platform, {.width = 72});
    std::cout << "\n";
  }
  return 0;
}
