// Extension of the paper's evaluation: the baseline set of its
// predecessor study [3] (which compared ILHA against PCT/BIL/CPOP/GDL/
// HEFT under the macro-dataflow model), re-run under the one-port model.
// min-min stands in for the PCT-style dynamic matchers.
//
// The paper's conclusion there was "the best results are obtained for
// HEFT and ILHA" -- this table checks whether that survives the move to
// the one-port model.
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/registry.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

using namespace oneport;

int main() {
  const Platform platform = make_paper_platform();
  // min-min/GDL re-evaluate every ready task each step (O(width^2 * p)),
  // so this table uses a smaller n than the figure sweeps.
  const int n = 60;
  const std::vector<std::string> names = {
      "heft-oneport", "ilha-oneport", "cpop-oneport",
      "minmin-oneport", "maxmin-oneport", "gdl-oneport"};

  std::cout << "One-port ratios across the extended baseline set, n=" << n
            << ", c=10\n\n";
  std::vector<std::string> header{"testbed"};
  header.insert(header.end(), names.begin(), names.end());
  csv::Table table(std::move(header));

  for (const testbeds::TestbedEntry& entry : testbeds::paper_testbeds()) {
    const TaskGraph graph = entry.make(n, testbeds::kPaperCommRatio);
    std::vector<std::string> row{entry.name};
    for (const std::string& name : names) {
      const SchedulerEntry scheduler =
          find_scheduler(name, entry.paper_best_b);
      const Schedule s = scheduler.run(graph, platform);
      ensure(validate_one_port(s, graph, platform).ok(),
             name + " invalid on " + entry.name);
      row.push_back(
          csv::format_number(analysis::speedup(graph, platform, s)));
    }
    table.add_row(std::move(row));
  }
  table.write_pretty(std::cout);
  std::cout << "\n(CPOP collapses to ratio 1 on kernels where every node "
               "lies on a critical path -- a known failure mode, and part "
               "of why the paper built on HEFT instead.)\n";
  return 0;
}
