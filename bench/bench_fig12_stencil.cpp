// Figure 12: HEFT vs ILHA on STENCIL, 10 processors, c = 10, B = 38.
//
// The paper's distinctive observation for this kernel: the speedup
// *decreases* as the problem grows -- every row needs all processors, and
// the serialized one-port messages become the bottleneck.  ILHA ends at
// 2.7, HEFT at 2.4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  oneport::analysis::FigureConfig config;
  config.testbed = "STENCIL";
  config.chunk_size = 38;
  return opbench::figure_main(
      argc, argv, "Figure 12 -- STENCIL, ratio vs problem size", config,
      "ratio DECREASES with n; ILHA -> 2.7, HEFT -> 2.4");
}
