// §2.3 worked example (Figure 1): a fork with six unit children on five
// same-speed processors, unit weights and unit data.
//
// The paper derives:
//   * macro-dataflow model: makespan 3 (parent + children v1,v2 on P0;
//     the four remaining messages travel in parallel);
//   * one-port model, same allocation: >= 6 (the four messages serialize
//     on P0's send port);
//   * one-port optimum: 5 (keep three children local, ship three).
// This binary regenerates all three numbers, plus what the heuristics do.
#include <iostream>

#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "exact/fork_optimal.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

using namespace oneport;

int main() {
  const TaskGraph graph = testbeds::make_fork(
      1.0, std::vector<double>(6, 1.0), std::vector<double>(6, 1.0));
  const Platform platform = make_homogeneous_platform(5, 1.0, 1.0);

  csv::Table table({"schedule", "model", "makespan", "messages", "valid"});
  auto add = [&table](const std::string& name, const std::string& model,
                      const Schedule& s, const ValidationResult& check) {
    table.add_row({name, model, csv::format_number(s.makespan()),
                   std::to_string(s.num_comms()),
                   check.ok() ? "yes" : "NO"});
  };

  // Macro-dataflow HEFT: the contention-free makespan (paper: 3).
  const Schedule macro =
      heft(graph, platform, {.model = EftEngine::Model::kMacroDataflow});
  add("heft", "macro-dataflow", macro,
      validate_macro_dataflow(macro, graph, platform));

  // The same decisions replayed under one-port rules (paper: >= 6 for the
  // macro-optimal allocation).
  const Schedule replayed =
      asap_replay(macro, graph, platform, CommModel::kOnePort);
  add("heft(macro) replayed", "one-port", replayed,
      validate_one_port(replayed, graph, platform));

  // Native one-port heuristics.
  const Schedule hop =
      heft(graph, platform, {.model = EftEngine::Model::kOnePort});
  add("heft", "one-port", hop, validate_one_port(hop, graph, platform));
  const Schedule iop = ilha(
      graph, platform, {.model = EftEngine::Model::kOnePort, .chunk_size = 8});
  add("ilha(B=8)", "one-port", iop, validate_one_port(iop, graph, platform));

  // Exact one-port optimum (paper: 5).
  exact::ForkInstance instance{1.0, std::vector<double>(6, 1.0),
                               std::vector<double>(6, 1.0), 1.0, 1.0};
  const exact::ForkOptimum opt = exact::solve_fork_one_port_optimal(instance);
  exact::RealizedFork realized = exact::realize_fork_schedule(instance, opt);
  add("exact optimum", "one-port", realized.schedule,
      validate_one_port(realized.schedule, realized.graph,
                        realized.platform));

  std::cout << "Section 2.3 example -- 6-child fork, 5 same-speed "
               "processors, unit costs\n";
  table.write_pretty(std::cout);
  std::cout << "\npaper reference: macro 3; one-port with macro's "
               "allocation >= 6; one-port optimum 5\n";
  std::cout << "exact optimum keeps " << opt.local_children.size()
            << " children on P0\n";
  return 0;
}
