// Scale benchmarks for the scheduling hot path (the ISSUE-2 tentpole):
//
//   * HEFT and ILHA on 1k/5k/10k-task random layered DAGs under both
//     communication models, once per timeline implementation (reference
//     sorted-vector vs gap-indexed), so the indexed timelines' win -- and
//     any future regression -- shows up directly in the timings;
//   * the same schedulers over sparse routed topologies (ring / star /
//     random connected, plus the structured 2D mesh / torus / fat tree
//     of ISSUE-4), so the store-and-forward evaluation path and the
//     routed finish_lower_bound pruning in evaluate_best are measured
//     too (ISSUE-3);
//   * the figure-grid sweep driver run serially vs with the thread pool
//     -- including a routed grid -- so the parallel experiment runner is
//     tracked end to end.
//
// Schedule makespans are exported as counters: the two timeline
// implementations must agree bit-identically (the property sweep enforces
// it; the counters make a violation visible from bench output too).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "sched/timeline.hpp"
#include "testbeds/testbeds.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace oneport;

/// Random layered DAG with roughly `n` tasks (max_width 15 averages 8
/// tasks per layer); deterministic in `n`.
TaskGraph make_scale_graph(int n) {
  testbeds::RandomDagOptions opt;
  opt.layers = n / 8;
  opt.max_width = 15;
  opt.max_in_degree = 3;
  opt.back_reach = 2;
  opt.comm_ratio = 5.0;
  opt.seed = static_cast<std::uint64_t>(20260729 + n);
  return testbeds::make_random_layered(opt);
}

const TaskGraph& scale_graph(int n) {
  static std::map<int, TaskGraph>* cache = new std::map<int, TaskGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) it = cache->emplace(n, make_scale_graph(n)).first;
  return it->second;
}

const Platform& paper_platform() {
  static const Platform* platform = new Platform(make_paper_platform());
  return *platform;
}

void register_scheduler_benchmarks() {
  struct SchedulerCase {
    std::string name;
    EftEngine::Model model;
    bool ilha;
  };
  const std::vector<SchedulerCase> cases = {
      {"heft-oneport", EftEngine::Model::kOnePort, false},
      {"ilha-oneport", EftEngine::Model::kOnePort, true},
      {"heft-macro", EftEngine::Model::kMacroDataflow, false},
      {"ilha-macro", EftEngine::Model::kMacroDataflow, true},
  };
  for (const int n : {1000, 5000, 10000}) {
    for (const SchedulerCase& c : cases) {
      for (const TimelineImpl impl :
           {TimelineImpl::kGapIndexed, TimelineImpl::kReference}) {
        const std::string name = "scale/n=" + std::to_string(n) + "/" +
                                 c.name + "/" + timeline_impl_name(impl);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [n, c, impl](benchmark::State& state) {
              const TaskGraph& graph = scale_graph(n);
              const Platform& platform = paper_platform();
              ScopedTimelineImpl guard(impl);
              double makespan = 0.0;
              for (auto _ : state) {
                const Schedule s =
                    c.ilha ? ilha(graph, platform,
                                  {.model = c.model, .chunk_size = 38})
                           : heft(graph, platform, {.model = c.model});
                makespan = s.makespan();
                benchmark::DoNotOptimize(makespan);
              }
              state.counters["makespan"] = makespan;
              state.counters["tasks"] =
                  static_cast<double>(graph.num_tasks());
              state.counters["tasks_per_s"] = benchmark::Counter(
                  static_cast<double>(graph.num_tasks()),
                  benchmark::Counter::kIsIterationInvariantRate);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void register_routed_benchmarks() {
  // The paper platform's processors over sparse interconnects.  Transfers
  // between non-adjacent processors become store-and-forward chains, so
  // these timings cover the routed evaluation path end to end -- and the
  // per-impl registration keeps the routed finish_lower_bound pruning
  // honest across timeline implementations (makespans must match).
  //
  // The structured networks (mesh/torus over the 10 paper processors as
  // 2x5 grids, a 2-level arity-3 fat tree recycling their speeds over 13
  // nodes) ride the same registration; their display name drops the
  // dimensions so trajectories stay comparable if the shapes grow.  The
  // ISSUE-5 axes ride along the same way: "het" is the mesh with seeded
  // +/-50% link jitter plus hotspots routed cost-aware (swp walks the
  // heterogeneous Floyd-Warshall table), "policy" the uniform torus under
  // the alternating-XY load-spreading policy -- so both the heterogeneous
  // distance table and the non-default next-hop construction stay on the
  // perf trajectory.
  struct TopologyCase {
    const char* display;   ///< bench name component, e.g. "mesh"
    const char* topology;  ///< make_topology_platform registry name
    std::uint64_t seed;
  };
  const std::vector<TopologyCase> topologies = {
      {"ring", "ring", 1},          {"star", "star", 1},
      {"random", "random", 20260729}, {"mesh", "mesh2x5", 1},
      {"torus", "torus2x5", 1},     {"fattree", "fattree2x3", 1},
      {"het", "mesh2x5:het0.5:hot0.2:swp", 20260729},
      {"policy", "torus2x5:alt", 1}};
  for (const int n : {1000, 5000}) {
    for (const TopologyCase& t : topologies) {
      for (const bool run_ilha : {false, true}) {
        for (const TimelineImpl impl :
             {TimelineImpl::kGapIndexed, TimelineImpl::kReference}) {
          const std::string name =
              std::string("routed/") + t.display + "/n=" + std::to_string(n) +
              "/" + (run_ilha ? "ilha-oneport" : "heft-oneport") + "/" +
              timeline_impl_name(impl);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [n, t, run_ilha, impl](benchmark::State& state) {
                const TaskGraph& graph = scale_graph(n);
                // The process-wide cache shares one platform + table per
                // (topology, seed) across all registered benches.
                const std::shared_ptr<const RoutedPlatform> shared =
                    analysis::shared_topology_platform(
                        t.topology, paper_platform().cycle_times(),
                        /*link=*/1.0, t.seed);
                const RoutedPlatform& routed = *shared;
                ScopedTimelineImpl guard(impl);
                double makespan = 0.0;
                for (auto _ : state) {
                  const Schedule s =
                      run_ilha
                          ? ilha(graph, routed.platform,
                                 {.model = EftEngine::Model::kOnePort,
                                  .chunk_size = 38,
                                  .routing = &routed.routing})
                          : heft(graph, routed.platform,
                                 {.model = EftEngine::Model::kOnePort,
                                  .routing = &routed.routing});
                  makespan = s.makespan();
                  benchmark::DoNotOptimize(makespan);
                }
                state.counters["makespan"] = makespan;
                state.counters["tasks_per_s"] = benchmark::Counter(
                    static_cast<double>(graph.num_tasks()),
                    benchmark::Counter::kIsIterationInvariantRate);
              })
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

void register_sweep_benchmarks() {
  // A modest figure grid: 2 testbeds x 3 sizes x 2 schedulers = 12
  // points, the shape the figure benches sweep.
  const std::vector<analysis::SweepPoint> grid = analysis::make_sweep_grid(
      {"LU", "FORK-JOIN"}, {100, 200, 300}, {"heft-oneport", "ilha-oneport"});
  // The same grid over sparse topologies: routed points farm across the
  // same pool and share cached RoutingTables, so the driver timing shows
  // the chain-scheduling cost rather than repeated table builds.
  const std::vector<analysis::SweepPoint> routed_grid =
      analysis::make_sweep_grid({"LU", "FORK-JOIN"}, {100, 200, 300},
                                {"heft-oneport", "ilha-oneport"}, 10.0, 38,
                                {"ring", "star", "mesh2x5"});
  struct DriverCase {
    const char* name;
    int workers;
    const std::vector<analysis::SweepPoint>* grid;
  };
  const DriverCase drivers[] = {
      {"figure-grid/serial", 1, &grid},
      {"figure-grid/parallel", 0, &grid},  // 0 = hardware concurrency
      {"figure-grid/routed/parallel", 0, &routed_grid},
  };
  for (const DriverCase& d : drivers) {
    benchmark::RegisterBenchmark(
        d.name,
        // `grid` by value: the benchmark outlives this registration scope.
        [grid = *d.grid, d](benchmark::State& state) {
          double total_makespan = 0.0;
          for (auto _ : state) {
            const std::vector<analysis::SweepResult> results =
                analysis::run_sweep(grid, paper_platform(),
                                    {.workers = d.workers});
            total_makespan = 0.0;
            for (const analysis::SweepResult& r : results) {
              total_makespan += r.makespan;
            }
            benchmark::DoNotOptimize(total_makespan);
          }
          state.counters["points"] = static_cast<double>(grid.size());
          state.counters["workers"] = static_cast<double>(
              d.workers == 0 ? ThreadPool::default_workers()
                             : static_cast<unsigned>(d.workers));
          state.counters["total_makespan"] = total_makespan;
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_scheduler_benchmarks();
  register_routed_benchmarks();
  register_sweep_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
