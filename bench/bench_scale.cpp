// Scale benchmarks for the scheduling hot path (the ISSUE-2 tentpole):
//
//   * HEFT and ILHA on 1k/5k/10k-task random layered DAGs under both
//     communication models, once per timeline implementation (reference
//     sorted-vector vs gap-indexed vs calendar queue), so the indexed
//     timelines' win -- and any future regression -- shows up directly
//     in the timings; a 100k-task one-port tier (gap + calendar only)
//     tracks the hot path at the scale the SoA/arena work targets;
//   * the same schedulers over sparse routed topologies (ring / star /
//     random connected, plus the structured 2D mesh / torus / fat tree
//     of ISSUE-4), so the store-and-forward evaluation path and the
//     routed finish_lower_bound pruning in evaluate_best are measured
//     too (ISSUE-3);
//   * the figure-grid sweep driver run serially vs with the thread pool
//     -- including a routed grid -- so the parallel experiment runner is
//     tracked end to end;
//   * the online rescheduler (src/dynamic) replaying named fault traces
//     over the scale graphs, per timeline implementation, so the
//     prefix-freeze + suffix-rebuild loop has its own trajectory;
//   * the timelines under an adversarial middle-insert workload, with the
//     gap timeline's deferred-compaction cost pinned by OP_ASSERT to its
//     documented O(n * sqrt(n)) total -- a regression to quadratic
//     middle-inserts aborts the bench instead of just slowing it; the
//     calendar queue runs the same workload under its own
//     timeline/calendar-* names with a linear shifted-segment pin.
//
// Every bench forwards the per-thread scalability profiler: run with
// ONEPORT_PROFILE=1 and the hot-path counter aggregate appears as
// "prof_<counter>" entries in the benchmark JSON; run without it and an
// OP_ASSERT proves no counter slab was ever allocated (the profiler's
// zero-overhead-when-disabled contract).  See docs/PROFILING.md.
//
// Schedule makespans are exported as counters: the two timeline
// implementations must agree bit-identically (the property sweep enforces
// it; the counters make a violation visible from bench output too).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "exact/branch_bound.hpp"
#include "graph/dot_export.hpp"
#include "graph/dot_import.hpp"
#include "service/scheduler_service.hpp"
#include "core/ilha.hpp"
#include "core/registry.hpp"
#include "dynamic/events.hpp"
#include "dynamic/reschedule.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "sched/calendar_timeline.hpp"
#include "sched/timeline.hpp"
#include "testbeds/testbeds.hpp"
#include "util/error.hpp"
#include "util/profiler.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace oneport;

/// Random layered DAG with roughly `n` tasks (max_width 15 averages 8
/// tasks per layer); deterministic in `n`.
TaskGraph make_scale_graph(int n) {
  testbeds::RandomDagOptions opt;
  opt.layers = n / 8;
  opt.max_width = 15;
  opt.max_in_degree = 3;
  opt.back_reach = 2;
  opt.comm_ratio = 5.0;
  opt.seed = static_cast<std::uint64_t>(20260729 + n);
  return testbeds::make_random_layered(opt);
}

const TaskGraph& scale_graph(int n) {
  static std::map<int, TaskGraph>* cache = new std::map<int, TaskGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) it = cache->emplace(n, make_scale_graph(n)).first;
  return it->second;
}

const Platform& paper_platform() {
  static const Platform* platform = new Platform(make_paper_platform());
  return *platform;
}

/// Profiler bridge for every bench in this binary.  With ONEPORT_PROFILE
/// set, the hot-path counter aggregate (summed over per-thread slabs)
/// lands in the benchmark JSON as "prof_<counter>" entries -- call
/// prof::reset() right before the timing loop so the numbers cover this
/// benchmark's iterations only.  With the profiler disabled this *pins*
/// the zero-overhead contract instead: a disabled run must never have
/// allocated a counter slab (bump() is a relaxed load + untaken branch),
/// so slab_count() == 0 is a property the bench can prove, unlike a
/// wall-clock delta.  OP_ASSERT aborts the whole bench run on violation.
void attach_profile_counters(benchmark::State& state) {
  if (prof::enabled()) {
    const prof::Counts totals = prof::aggregate();
    for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
      const auto c = static_cast<prof::Counter>(i);
      state.counters[std::string("prof_") + prof::counter_name(c)] =
          benchmark::Counter(static_cast<double>(totals[i]));
    }
    state.counters["prof_threads"] =
        static_cast<double>(prof::slab_count());
  } else {
    OP_ASSERT(prof::slab_count() == 0,
              "profiler is disabled but " << prof::slab_count()
                  << " counter slab(s) exist -- the disabled path "
                     "allocated, breaking the zero-overhead contract");
  }
}

void register_scheduler_benchmarks() {
  struct SchedulerCase {
    std::string name;
    EftEngine::Model model;
    bool ilha;
  };
  const std::vector<SchedulerCase> all_cases = {
      {"heft-oneport", EftEngine::Model::kOnePort, false},
      {"ilha-oneport", EftEngine::Model::kOnePort, true},
      {"heft-macro", EftEngine::Model::kMacroDataflow, false},
      {"ilha-macro", EftEngine::Model::kMacroDataflow, true},
  };
  // The 100k tier tracks the end-to-end hot path at the scale the SoA /
  // calendar work targets.  Only the one-port cases and the indexed
  // timelines run there: the reference timeline's linear probe scans are
  // quadratic-ish at this size and would dominate the bench budget
  // without adding signal (the 30k differential tests already pin its
  // bit-identical agreement).
  const std::vector<SchedulerCase> oneport_cases = {all_cases[0],
                                                    all_cases[1]};
  for (const int n : {1000, 5000, 10000, 100000}) {
    const bool big = n >= 100000;
    const std::vector<SchedulerCase>& cases = big ? oneport_cases : all_cases;
    const std::vector<TimelineImpl> impls =
        big ? std::vector<TimelineImpl>{TimelineImpl::kGapIndexed,
                                        TimelineImpl::kCalendar}
            : std::vector<TimelineImpl>{TimelineImpl::kGapIndexed,
                                        TimelineImpl::kCalendar,
                                        TimelineImpl::kReference};
    for (const SchedulerCase& c : cases) {
      for (const TimelineImpl impl : impls) {
        const std::string name = "scale/n=" + std::to_string(n) + "/" +
                                 c.name + "/" + timeline_impl_name(impl);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [n, c, impl](benchmark::State& state) {
              const TaskGraph& graph = scale_graph(n);
              const Platform& platform = paper_platform();
              ScopedTimelineImpl guard(impl);
              double makespan = 0.0;
              prof::reset();
              for (auto _ : state) {
                const Schedule s =
                    c.ilha ? ilha(graph, platform,
                                  {.model = c.model, .chunk_size = 38})
                           : heft(graph, platform, {.model = c.model});
                makespan = s.makespan();
                benchmark::DoNotOptimize(makespan);
              }
              state.counters["makespan"] = makespan;
              state.counters["tasks"] =
                  static_cast<double>(graph.num_tasks());
              state.counters["tasks_per_s"] = benchmark::Counter(
                  static_cast<double>(graph.num_tasks()),
                  benchmark::Counter::kIsIterationInvariantRate);
              attach_profile_counters(state);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void register_routed_benchmarks() {
  // The paper platform's processors over sparse interconnects.  Transfers
  // between non-adjacent processors become store-and-forward chains, so
  // these timings cover the routed evaluation path end to end -- and the
  // per-impl registration keeps the routed finish_lower_bound pruning
  // honest across timeline implementations (makespans must match).
  //
  // The structured networks (mesh/torus over the 10 paper processors as
  // 2x5 grids, a 2-level arity-3 fat tree recycling their speeds over 13
  // nodes) ride the same registration; their display name drops the
  // dimensions so trajectories stay comparable if the shapes grow.  The
  // ISSUE-5 axes ride along the same way: "het" is the mesh with seeded
  // +/-50% link jitter plus hotspots routed cost-aware (swp walks the
  // heterogeneous Floyd-Warshall table), "policy" the uniform torus under
  // the alternating-XY load-spreading policy -- so both the heterogeneous
  // distance table and the non-default next-hop construction stay on the
  // perf trajectory.
  struct TopologyCase {
    const char* display;   ///< bench name component, e.g. "mesh"
    const char* topology;  ///< make_topology_platform registry name
    std::uint64_t seed;
  };
  const std::vector<TopologyCase> topologies = {
      {"ring", "ring", 1},          {"star", "star", 1},
      {"random", "random", 20260729}, {"mesh", "mesh2x5", 1},
      {"torus", "torus2x5", 1},     {"fattree", "fattree2x3", 1},
      {"het", "mesh2x5:het0.5:hot0.2:swp", 20260729},
      {"policy", "torus2x5:alt", 1}};
  for (const int n : {1000, 5000}) {
    for (const TopologyCase& t : topologies) {
      for (const bool run_ilha : {false, true}) {
        for (const TimelineImpl impl :
             {TimelineImpl::kGapIndexed, TimelineImpl::kReference}) {
          const std::string name =
              std::string("routed/") + t.display + "/n=" + std::to_string(n) +
              "/" + (run_ilha ? "ilha-oneport" : "heft-oneport") + "/" +
              timeline_impl_name(impl);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [n, t, run_ilha, impl](benchmark::State& state) {
                const TaskGraph& graph = scale_graph(n);
                // The process-wide cache shares one platform + table per
                // (topology, seed) across all registered benches.
                const std::shared_ptr<const RoutedPlatform> shared =
                    analysis::shared_topology_platform(
                        t.topology, paper_platform().cycle_times(),
                        /*link=*/1.0, t.seed);
                const RoutedPlatform& routed = *shared;
                ScopedTimelineImpl guard(impl);
                double makespan = 0.0;
                prof::reset();
                for (auto _ : state) {
                  const Schedule s =
                      run_ilha
                          ? ilha(graph, routed.platform,
                                 {.model = EftEngine::Model::kOnePort,
                                  .chunk_size = 38,
                                  .routing = &routed.routing})
                          : heft(graph, routed.platform,
                                 {.model = EftEngine::Model::kOnePort,
                                  .routing = &routed.routing});
                  makespan = s.makespan();
                  benchmark::DoNotOptimize(makespan);
                }
                state.counters["makespan"] = makespan;
                state.counters["tasks_per_s"] = benchmark::Counter(
                    static_cast<double>(graph.num_tasks()),
                    benchmark::Counter::kIsIterationInvariantRate);
                attach_profile_counters(state);
              })
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

void register_reschedule_benchmarks() {
  // Online rescheduling (the dynamic-events tentpole): replay a named
  // platform-fault trace over the scale graphs through dyn::run_dynamic.
  // Each event freezes the committed prefix and rebuilds the suffix, so
  // the timing covers trace derivation's consumers end to end: prefix
  // seeding into pre-reserved timelines, the heuristic re-run against the
  // mutated platform, and epoch composition.  Registered per timeline
  // implementation because the rebuild path leans on next_fit/reserve far
  // harder than a static run (every epoch re-seeds the whole frozen
  // prefix) -- exactly the workload the deferred-compaction buffer
  // exists for.
  for (const int n : {1000, 5000}) {
    for (const char* trace_name : {"mixed", "dropout"}) {
      for (const TimelineImpl impl :
           {TimelineImpl::kGapIndexed, TimelineImpl::kReference}) {
        const std::string name = "reschedule/n=" + std::to_string(n) +
                                 "/heft-oneport/" + trace_name + "/" +
                                 timeline_impl_name(impl);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [n, trace_name, impl](benchmark::State& state) {
              const TaskGraph& graph = scale_graph(n);
              const Platform& platform = paper_platform();
              ScopedTimelineImpl guard(impl);
              const SchedulerConfig config;
              const SchedulerEntry entry =
                  find_scheduler("heft-oneport", config);
              // The trace derives from the static schedule's makespan;
              // both impls produce bit-identical schedules (property
              // sweep), so the trace is impl-independent.
              const Schedule initial = entry.run(graph, platform);
              const dyn::EventTrace trace = dyn::make_named_trace(
                  trace_name, graph, platform, initial,
                  /*seed=*/20260729u + static_cast<std::uint64_t>(n));
              dyn::DynamicOptions options;
              options.model = CommModel::kOnePort;
              double makespan = 0.0;
              double epochs = 0.0;
              prof::reset();
              for (auto _ : state) {
                const dyn::DynamicResult result = dyn::run_dynamic(
                    graph, platform, "heft-oneport", config, trace, options);
                makespan = result.schedule.makespan();
                epochs = static_cast<double>(result.epochs.size());
                benchmark::DoNotOptimize(makespan);
              }
              state.counters["makespan"] = makespan;
              state.counters["epochs"] = epochs;
              state.counters["tasks_per_s"] = benchmark::Counter(
                  static_cast<double>(graph.num_tasks()),
                  benchmark::Counter::kIsIterationInvariantRate);
              attach_profile_counters(state);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void register_timeline_benchmarks() {
  // Adversarial middle-insert workload (the deferred-compaction bugfix):
  // lay down n well-separated blocks, then reserve a sliver inside every
  // interior gap in a deterministic scattered order.  Appends never hit
  // the buffer, so this is pure middle-insert traffic.  The OP_ASSERT
  // pins the gap timeline's total shifted/merged elements at the
  // documented 8 * n * sqrt(n) -- if compaction regresses to an O(n)
  // vector insert per reservation the total goes quadratic (~n^2/2
  // already at n=4096) and the bench aborts rather than just reading
  // slower.  The reference timeline runs the same workload for the
  // speedup trajectory.
  for (const int n : {4096, 16384}) {
    for (const TimelineImpl impl :
         {TimelineImpl::kGapIndexed, TimelineImpl::kReference}) {
      const std::string name = "timeline/middle-insert/n=" +
                               std::to_string(n) + "/" +
                               timeline_impl_name(impl);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [n, impl](benchmark::State& state) {
            const auto blocks = static_cast<std::size_t>(n);
            std::size_t moved = 0;
            for (auto _ : state) {
              if (impl == TimelineImpl::kGapIndexed) {
                GapTimeline t;
                for (std::size_t i = 0; i < blocks; ++i) {
                  const double base = 4.0 * static_cast<double>(i);
                  t.reserve(base, base + 1.0);
                }
                // Scattered order via a coprime stride so consecutive
                // inserts land in distant gaps and the cursor never saves
                // the day.
                for (std::size_t k = 0; k < blocks - 1; ++k) {
                  const std::size_t i = (k * 2654435761u) % (blocks - 1);
                  const double base = 4.0 * static_cast<double>(i);
                  t.reserve(base + 2.0, base + 2.5);
                }
                moved = t.stats().moved_elements;
                benchmark::DoNotOptimize(moved);
              } else {
                Timeline t;
                for (std::size_t i = 0; i < blocks; ++i) {
                  const double base = 4.0 * static_cast<double>(i);
                  t.reserve(base, base + 1.0);
                }
                for (std::size_t k = 0; k < blocks - 1; ++k) {
                  const std::size_t i = (k * 2654435761u) % (blocks - 1);
                  const double base = 4.0 * static_cast<double>(i);
                  t.reserve(base + 2.0, base + 2.5);
                }
                benchmark::DoNotOptimize(t.busy_time());
              }
            }
            if (impl == TimelineImpl::kGapIndexed) {
              const double bound =
                  8.0 * static_cast<double>(blocks) *
                  std::sqrt(static_cast<double>(blocks));
              OP_ASSERT(static_cast<double>(moved) <= bound,
                        "gap timeline middle-insert compaction went "
                        "quadratic: moved " +
                            std::to_string(moved) + " elements, bound " +
                            std::to_string(bound));
              state.counters["moved_elements"] = static_cast<double>(moved);
            }
            state.counters["reservations"] =
                static_cast<double>(2 * blocks - 1);
            attach_profile_counters(state);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }

  // The calendar queue under the same adversarial scattered middle-insert
  // workload (its own name group so the trajectory gate tracks it as
  // timeline/calendar-*).  Bucketed inserts touch one bucket each and the
  // bucket array rebuilds only on occupancy/range growth, so the total
  // shifted-segment count is linear in the reservations with a small
  // constant; the OP_ASSERT pins that at 32n -- a regression to per-insert
  // shifting (~n^2/2 at n=4096) aborts the bench.
  for (const int n : {4096, 16384}) {
    const std::string name = "timeline/calendar-insert/n=" + std::to_string(n);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [n](benchmark::State& state) {
          const auto blocks = static_cast<std::size_t>(n);
          std::size_t shifted = 0;
          prof::reset();
          for (auto _ : state) {
            CalendarTimeline t;
            for (std::size_t i = 0; i < blocks; ++i) {
              const double base = 4.0 * static_cast<double>(i);
              t.reserve(base, base + 1.0);
            }
            for (std::size_t k = 0; k < blocks - 1; ++k) {
              const std::size_t i = (k * 2654435761u) % (blocks - 1);
              const double base = 4.0 * static_cast<double>(i);
              t.reserve(base + 2.0, base + 2.5);
            }
            shifted = t.stats().shifted_segments;
            benchmark::DoNotOptimize(shifted);
          }
          const double bound = 32.0 * static_cast<double>(blocks);
          OP_ASSERT(static_cast<double>(shifted) <= bound,
                    "calendar timeline middle-inserts stopped amortizing: "
                    "shifted "
                        << shifted << " segments, bound " << bound);
          state.counters["shifted_segments"] =
              static_cast<double>(shifted);
          state.counters["reservations"] =
              static_cast<double>(2 * blocks - 1);
          attach_profile_counters(state);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

void register_sweep_benchmarks() {
  // A modest figure grid: 2 testbeds x 3 sizes x 2 schedulers = 12
  // points, the shape the figure benches sweep.
  const std::vector<analysis::SweepPoint> grid = analysis::make_sweep_grid(
      {"LU", "FORK-JOIN"}, {100, 200, 300}, {"heft-oneport", "ilha-oneport"});
  // The same grid over sparse topologies: routed points farm across the
  // same pool and share cached RoutingTables, so the driver timing shows
  // the chain-scheduling cost rather than repeated table builds.
  const std::vector<analysis::SweepPoint> routed_grid =
      analysis::make_sweep_grid({"LU", "FORK-JOIN"}, {100, 200, 300},
                                {"heft-oneport", "ilha-oneport"}, 10.0, 38,
                                {"ring", "star", "mesh2x5"});
  struct DriverCase {
    const char* name;
    int workers;
    const std::vector<analysis::SweepPoint>* grid;
  };
  const DriverCase drivers[] = {
      {"figure-grid/serial", 1, &grid},
      {"figure-grid/parallel", 0, &grid},  // 0 = hardware concurrency
      {"figure-grid/routed/parallel", 0, &routed_grid},
  };
  for (const DriverCase& d : drivers) {
    benchmark::RegisterBenchmark(
        d.name,
        // `grid` by value: the benchmark outlives this registration scope.
        [grid = *d.grid, d](benchmark::State& state) {
          double total_makespan = 0.0;
          prof::reset();
          for (auto _ : state) {
            const std::vector<analysis::SweepResult> results =
                analysis::run_sweep(grid, paper_platform(),
                                    {.workers = d.workers});
            total_makespan = 0.0;
            for (const analysis::SweepResult& r : results) {
              total_makespan += r.makespan;
            }
            benchmark::DoNotOptimize(total_makespan);
          }
          state.counters["points"] = static_cast<double>(grid.size());
          state.counters["workers"] = static_cast<double>(
              d.workers == 0 ? ThreadPool::default_workers()
                             : static_cast<unsigned>(d.workers));
          state.counters["total_makespan"] = total_makespan;
          attach_profile_counters(state);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

void register_service_benchmarks() {
  // Scheduler-as-a-service (the ISSUE-9 tentpole) on the trajectory:
  // replay a deterministic mixed-size request stream through a
  // SchedulerService and track (a) sustained schedules/sec and (b) the
  // p99 enqueue-to-completion latency.  The service is constructed once
  // per bench (thread startup stays out of the timing loop); each
  // iteration submits the whole stream and drains, so the timed quantity
  // is exactly one replay -- queue admission, batched drains, per-shard
  // cache lookups, and the run_sweep_point execution itself.  Fixed
  // shards/batch/depth so the bench shape does not depend on the host's
  // core count.
  const auto make_stream = [] {
    const char* testbeds[] = {"FORK-JOIN", "LU", "STENCIL"};
    const int sizes[] = {10, 20, 40};
    const char* schedulers[] = {"heft-oneport", "ilha-oneport"};
    std::vector<analysis::SweepPoint> stream;
    for (std::size_t i = 0; i < 32; ++i) {
      analysis::SweepPoint point;
      point.testbed = testbeds[i % 3];
      point.size = sizes[(i / 3) % 3];
      point.scheduler = schedulers[(i / 9) % 2];
      stream.push_back(point);
    }
    return stream;
  };
  const auto make_options = [] {
    service::ServiceOptions options;
    options.shards = 2;
    options.queue_depth = 64;
    options.batch_size = 4;
    options.backpressure = service::Backpressure::kBlock;
    return options;
  };

  benchmark::RegisterBenchmark(
      "service/throughput",
      [make_stream, make_options](benchmark::State& state) {
        service::SchedulerService svc(paper_platform(), make_options());
        const std::vector<analysis::SweepPoint> stream = make_stream();
        prof::reset();
        for (auto _ : state) {
          for (const analysis::SweepPoint& point : stream) {
            const service::Ticket ticket = svc.submit(point);
            OP_ASSERT(ticket.accepted,
                      "block-mode submit rejected a service bench request");
          }
          svc.drain();
        }
        state.counters["schedules_per_s"] = benchmark::Counter(
            static_cast<double>(stream.size()),
            benchmark::Counter::kIsIterationInvariantRate);
        state.counters["requests"] = static_cast<double>(stream.size());
        attach_profile_counters(state);
      })
      ->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark(
      "service/latency-p99",
      [make_stream, make_options](benchmark::State& state) {
        service::SchedulerService svc(paper_platform(), make_options());
        const std::vector<analysis::SweepPoint> stream = make_stream();
        prof::reset();
        for (auto _ : state) {
          for (const analysis::SweepPoint& point : stream) {
            const service::Ticket ticket = svc.submit(point);
            OP_ASSERT(ticket.accepted,
                      "block-mode submit rejected a service bench request");
          }
          svc.drain();
        }
        // Percentiles over every completed request across the timing
        // loop (more iterations = a better-populated tail).
        const std::vector<std::uint64_t> latencies = svc.latencies_ns();
        state.counters["latency_p50_ms"] =
            service::latency_percentile_ms(latencies, 0.50);
        state.counters["latency_p99_ms"] =
            service::latency_percentile_ms(latencies, 0.99);
        attach_profile_counters(state);
      })
      ->Unit(benchmark::kMillisecond);
}

/// Anytime branch-and-bound trajectory (ISSUE-10): one case the search
/// closes (an 8-task DAG proven to its MD optimum) and one it truncates
/// (MLTRAIN under a fixed node budget).  Besides the wall clock, the
/// counters export the bound itself and the resulting optimality gap
/// against HEFT, so the gate catches a *quality* regression (a weaker
/// bound after a pruning change) as loudly as a slowdown.
void register_exact_benchmarks() {
  struct ExactCase {
    std::string name;
    std::shared_ptr<const TaskGraph> graph;
    std::uint64_t node_budget;
  };
  std::vector<ExactCase> cases;
  {
    testbeds::RandomDagOptions opt;
    opt.layers = 4;
    opt.max_width = 2;
    opt.comm_ratio = 2.0;
    opt.seed = 7;
    cases.push_back({"closed/random8",
                     std::make_shared<const TaskGraph>(
                         testbeds::make_random_layered(opt)),
                     500'000});
  }
  cases.push_back({"anytime/mltrain2",
                   std::make_shared<const TaskGraph>(testbeds::make_mltrain(2)),
                   20'000});
  for (const ExactCase& c : cases) {
    const std::string name = "exact/lb-quality/" + c.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [c](benchmark::State& state) {
          const Platform& platform = paper_platform();
          const double heft_makespan =
              heft(*c.graph, platform, {.model = EftEngine::Model::kOnePort})
                  .makespan();
          exact::BranchBoundOptions options;
          options.node_budget = c.node_budget;
          exact::BranchBoundResult result;
          prof::reset();
          for (auto _ : state) {
            result = exact::branch_bound_lower_bound(*c.graph, platform,
                                                     options);
            // NOT DoNotOptimize(result.lower_bound): the "+m,r" asm
            // constraint marks the member asm-written, and gcc at -O3
            // stores back a clobbered register.  The call is opaque
            // (separate TU), so a compiler barrier is enough.
            benchmark::ClobberMemory();
          }
          OP_ASSERT(result.lower_bound <= heft_makespan + 1e-7,
                    "bound " << result.lower_bound << " exceeds HEFT "
                             << heft_makespan << " -- unsound");
          state.counters["lower_bound"] = result.lower_bound;
          state.counters["optimality_gap"] =
              analysis::optimality_gap(heft_makespan, result.lower_bound);
          state.counters["proven"] = result.proven_optimal ? 1.0 : 0.0;
          state.counters["nodes"] =
              static_cast<double>(result.nodes_expanded);
          attach_profile_counters(state);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

/// Importer throughput (ISSUE-10): parse the pre-rendered DOT/JSON dump
/// of a scale graph back into a TaskGraph, covering the full validate +
/// finalize path the trace:<path> testbeds take per sweep point.
void register_import_benchmarks() {
  for (const int n : {1000, 10000}) {
    for (const bool json : {false, true}) {
      std::string name = "import/parse/";
      name += json ? "json" : "dot";
      name += "/n=" + std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [n, json](benchmark::State& state) {
            const TaskGraph& graph = scale_graph(n);
            std::ostringstream os;
            if (json) {
              write_json_graph(os, graph, {.graph_name = "bench"});
            } else {
              write_dot(os, graph, {.graph_name = "bench",
                                    .max_tasks = graph.num_tasks()});
            }
            const std::string text = os.str();
            std::size_t tasks = 0;
            prof::reset();
            for (auto _ : state) {
              const ImportedGraph imported = import_task_graph(text);
              tasks = imported.graph.num_tasks();
              benchmark::DoNotOptimize(tasks);
            }
            OP_ASSERT(tasks == graph.num_tasks(),
                      "import dropped tasks: " << tasks << " != "
                                               << graph.num_tasks());
            state.counters["tasks"] = static_cast<double>(tasks);
            state.counters["bytes"] = static_cast<double>(text.size());
            state.counters["tasks_per_s"] = benchmark::Counter(
                static_cast<double>(tasks),
                benchmark::Counter::kIsIterationInvariantRate);
            attach_profile_counters(state);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_scheduler_benchmarks();
  register_routed_benchmarks();
  register_reschedule_benchmarks();
  register_timeline_benchmarks();
  register_sweep_benchmarks();
  register_service_benchmarks();
  register_exact_benchmarks();
  register_import_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
