// Scale benchmarks for the scheduling hot path (the ISSUE-2 tentpole):
//
//   * HEFT and ILHA on 1k/5k/10k-task random layered DAGs under both
//     communication models, once per timeline implementation (reference
//     sorted-vector vs gap-indexed), so the indexed timelines' win -- and
//     any future regression -- shows up directly in the timings;
//   * the figure-grid sweep driver run serially vs with the thread pool,
//     so the parallel experiment runner is tracked end to end.
//
// Schedule makespans are exported as counters: the two timeline
// implementations must agree bit-identically (the property sweep enforces
// it; the counters make a violation visible from bench output too).
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/platform.hpp"
#include "sched/timeline.hpp"
#include "testbeds/testbeds.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace oneport;

/// Random layered DAG with roughly `n` tasks (max_width 15 averages 8
/// tasks per layer); deterministic in `n`.
TaskGraph make_scale_graph(int n) {
  testbeds::RandomDagOptions opt;
  opt.layers = n / 8;
  opt.max_width = 15;
  opt.max_in_degree = 3;
  opt.back_reach = 2;
  opt.comm_ratio = 5.0;
  opt.seed = static_cast<std::uint64_t>(20260729 + n);
  return testbeds::make_random_layered(opt);
}

const TaskGraph& scale_graph(int n) {
  static std::map<int, TaskGraph>* cache = new std::map<int, TaskGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) it = cache->emplace(n, make_scale_graph(n)).first;
  return it->second;
}

const Platform& paper_platform() {
  static const Platform* platform = new Platform(make_paper_platform());
  return *platform;
}

void register_scheduler_benchmarks() {
  struct SchedulerCase {
    std::string name;
    EftEngine::Model model;
    bool ilha;
  };
  const std::vector<SchedulerCase> cases = {
      {"heft-oneport", EftEngine::Model::kOnePort, false},
      {"ilha-oneport", EftEngine::Model::kOnePort, true},
      {"heft-macro", EftEngine::Model::kMacroDataflow, false},
      {"ilha-macro", EftEngine::Model::kMacroDataflow, true},
  };
  for (const int n : {1000, 5000, 10000}) {
    for (const SchedulerCase& c : cases) {
      for (const TimelineImpl impl :
           {TimelineImpl::kGapIndexed, TimelineImpl::kReference}) {
        const std::string name = "scale/n=" + std::to_string(n) + "/" +
                                 c.name + "/" + timeline_impl_name(impl);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [n, c, impl](benchmark::State& state) {
              const TaskGraph& graph = scale_graph(n);
              const Platform& platform = paper_platform();
              ScopedTimelineImpl guard(impl);
              double makespan = 0.0;
              for (auto _ : state) {
                const Schedule s =
                    c.ilha ? ilha(graph, platform,
                                  {.model = c.model, .chunk_size = 38})
                           : heft(graph, platform, {.model = c.model});
                makespan = s.makespan();
                benchmark::DoNotOptimize(makespan);
              }
              state.counters["makespan"] = makespan;
              state.counters["tasks"] =
                  static_cast<double>(graph.num_tasks());
              state.counters["tasks_per_s"] = benchmark::Counter(
                  static_cast<double>(graph.num_tasks()),
                  benchmark::Counter::kIsIterationInvariantRate);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void register_sweep_benchmarks() {
  // A modest figure grid: 2 testbeds x 3 sizes x 2 schedulers = 12
  // points, the shape the figure benches sweep.
  const std::vector<analysis::SweepPoint> grid = analysis::make_sweep_grid(
      {"LU", "FORK-JOIN"}, {100, 200, 300}, {"heft-oneport", "ilha-oneport"});
  struct DriverCase {
    const char* name;
    int workers;
  };
  const DriverCase drivers[] = {
      {"figure-grid/serial", 1},
      {"figure-grid/parallel", 0},  // 0 = hardware concurrency
  };
  for (const DriverCase& d : drivers) {
    benchmark::RegisterBenchmark(
        d.name,
        // `grid` by value: the benchmark outlives this registration scope.
        [grid, d](benchmark::State& state) {
          double total_makespan = 0.0;
          for (auto _ : state) {
            const std::vector<analysis::SweepResult> results =
                analysis::run_sweep(grid, paper_platform(),
                                    {.workers = d.workers});
            total_makespan = 0.0;
            for (const analysis::SweepResult& r : results) {
              total_makespan += r.makespan;
            }
            benchmark::DoNotOptimize(total_makespan);
          }
          state.counters["points"] = static_cast<double>(grid.size());
          state.counters["workers"] = static_cast<double>(
              d.workers == 0 ? ThreadPool::default_workers()
                             : static_cast<unsigned>(d.workers));
          state.counters["total_makespan"] = total_makespan;
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_scheduler_benchmarks();
  register_sweep_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
