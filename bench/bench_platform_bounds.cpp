// §5.2: the experimental platform and its analytic bounds.
//
// 10 processors (5x cycle-time 6, 3x 10, 2x 15):
//   * smallest perfectly balanced chunk B = 38
//     (5x5 + 3x3 + 2x2 tasks, every processor busy 30 time units);
//   * speedup cap over the fastest processor 228/30 = 7.6.
// This binary regenerates both numbers and the optimal distribution that
// realizes them.
#include <iostream>
#include <string>
#include <utility>

#include "platform/load_balance.hpp"
#include "platform/platform.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

using namespace oneport;

int main() {
  const Platform platform = make_paper_platform();

  std::cout << "Platform of Section 5.2 (" << platform.num_processors()
            << " processors)\n\n";
  csv::Table procs({"processor", "cycle_time", "balanced_fraction"});
  const std::vector<double> fractions = balanced_fractions(platform);
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    procs.add_row({indexed_name("P", static_cast<std::size_t>(p)),
                   csv::format_number(platform.cycle_time(p)),
                   csv::format_number(
                       fractions[static_cast<std::size_t>(p)], 4)});
  }
  procs.write_pretty(std::cout);

  const std::int64_t chunk = perfect_balance_chunk(platform);
  const std::vector<int> dist =
      optimal_distribution(platform, static_cast<int>(chunk));
  std::cout << "\nperfect-balance chunk B = " << chunk
            << " (paper: 38); distribution over the three speed classes: ";
  for (std::size_t p = 0; p < dist.size(); ++p) {
    if (p) std::cout << "+";
    std::cout << dist[p];
  }
  std::cout << " tasks\nparallel time of that chunk = "
            << csv::format_number(distribution_makespan(platform, dist))
            << " (paper: 30), sequential on the fastest = "
            << csv::format_number(6.0 * static_cast<double>(chunk))
            << " (paper: 228)\n";
  std::cout << "speedup upper bound = "
            << csv::format_number(speedup_upper_bound(platform))
            << " (paper: 7.6)\n";
  return 0;
}
