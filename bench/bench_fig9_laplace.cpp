// Figure 9: HEFT vs ILHA on LAPLACE, 10 processors, c = 10, B = 38.
//
// The paper: ILHA gains roughly 10% over HEFT across the sweep and
// reaches 5.6 at n = 500.  Every LAPLACE node lies on a critical path, so
// the large (perfect-balance) chunk pays off.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  oneport::analysis::FigureConfig config;
  config.testbed = "LAPLACE";
  config.chunk_size = 38;
  return opbench::figure_main(
      argc, argv, "Figure 9 -- LAPLACE, ratio vs problem size", config,
      "ILHA ~10% over HEFT, ILHA -> 5.6 at n=500");
}
