// Figure 10: HEFT vs ILHA on LDMt, 10 processors, c = 10, B = 20.
//
// The paper: ILHA gains roughly 10% over HEFT, reaching 4.9; B = 20
// trades load balance against early critical-path processing.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  oneport::analysis::FigureConfig config;
  config.testbed = "LDMt";
  config.chunk_size = 20;
  return opbench::figure_main(
      argc, argv, "Figure 10 -- LDMt, ratio vs problem size", config,
      "ILHA ~10% over HEFT, ILHA -> 4.9 at n=500");
}
