// Figure 8: HEFT vs ILHA on LU, 10 processors, c = 10, B = 4.
//
// The paper: similar at n = 100, ILHA pulling ahead with size; at n = 500
// ILHA reaches 5.0 while HEFT stays at 4.5.  The small B reflects LU's
// urgent critical path.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  oneport::analysis::FigureConfig config;
  config.testbed = "LU";
  config.chunk_size = 4;
  return opbench::figure_main(
      argc, argv, "Figure 8 -- LU, ratio vs problem size", config,
      "ILHA -> 5.0 at n=500, HEFT -> 4.5; gap widens with n");
}
