// Ablation of the ILHA design variants sketched at the end of §4.4:
//   base               -- step 1 (no-comm scan) + step 2 (pure EFT);
//   +quota-step2       -- enforce the load-balance quota in step 2 too;
//   +single-comm scan  -- extra scan for tasks costing exactly one message;
//   +reschedule        -- keep the allocation, rebuild all dates with the
//                         fixed-allocation greedy scheduler (Theorem 2
//                         says the exact version is NP-complete).
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/ilha.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

using namespace oneport;

int main() {
  const Platform platform = make_paper_platform();
  const int n = 200;

  std::cout << "ILHA variant ablation, n=" << n << ", c=10, one-port, "
            << "B = paper's per-testbed pick\n\n";
  csv::Table table({"testbed", "base", "quota_step2", "single_comm",
                    "reschedule", "all_on"});
  for (const testbeds::TestbedEntry& entry : testbeds::paper_testbeds()) {
    const TaskGraph graph = entry.make(n, testbeds::kPaperCommRatio);
    auto run = [&](bool quota, bool scan, bool resched) {
      const Schedule s =
          ilha(graph, platform,
               {.model = EftEngine::Model::kOnePort,
                .chunk_size = entry.paper_best_b,
                .quota_in_step2 = quota,
                .single_comm_scan = scan,
                .reschedule_comms = resched});
      ensure(validate_one_port(s, graph, platform).ok(),
             "invalid ILHA variant schedule for " + entry.name);
      return analysis::speedup(graph, platform, s);
    };
    table.add_row({entry.name, csv::format_number(run(false, false, false)),
                   csv::format_number(run(true, false, false)),
                   csv::format_number(run(false, true, false)),
                   csv::format_number(run(false, false, true)),
                   csv::format_number(run(true, true, true))});
  }
  table.write_pretty(std::cout);
  std::cout << "\ncells are ratios (sequential time / makespan); higher "
               "is better.\n";
  return 0;
}
