// §5.3's remark on the chunk parameter B: the best value is testbed-
// dependent (LU wants a small B = 4 to rush the critical path; the
// kernels whose nodes all sit on critical paths prefer the perfect-
// balance chunk B = 38; DOOLITTLE/LDMt trade off at B = 20), and the
// paper found no systematic predictor.  This binary regenerates the sweep
// at n = 200 for every testbed.
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/ilha.hpp"
#include "platform/load_balance.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

using namespace oneport;

int main() {
  const Platform platform = make_paper_platform();
  const int n = 200;
  const auto perfect = static_cast<int>(perfect_balance_chunk(platform));
  const std::vector<int> bs = {platform.num_processors(), 15, 20, perfect,
                               2 * perfect};

  std::cout << "ILHA chunk-size sweep, n=" << n << ", c=10, one-port model\n"
            << "(paper's per-testbed picks: LU 4, DOOLITTLE/LDMt 20, "
               "others 38)\n\n";
  csv::Table table({"testbed", "B=10", "B=15", "B=20", "B=38", "B=76",
                    "best_B", "paper_B"});
  for (const testbeds::TestbedEntry& entry : testbeds::paper_testbeds()) {
    const TaskGraph graph = entry.make(n, testbeds::kPaperCommRatio);
    std::vector<std::string> row{entry.name};
    int best_b = 0;
    double best_ratio = 0.0;
    for (const int b : bs) {
      const Schedule s = ilha(
          graph, platform,
          {.model = EftEngine::Model::kOnePort, .chunk_size = b});
      ensure(validate_one_port(s, graph, platform).ok(),
             "invalid ILHA schedule in B sweep");
      const double ratio = analysis::speedup(graph, platform, s);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_b = b;
      }
      row.push_back(csv::format_number(ratio));
    }
    row.push_back(std::to_string(best_b));
    row.push_back(std::to_string(entry.paper_best_b));
    table.add_row(std::move(row));
  }
  table.write_pretty(std::cout);
  return 0;
}
