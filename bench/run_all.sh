#!/usr/bin/env bash
# Runs every bench_* binary and collects google-benchmark JSON artifacts.
#
# Usage: bench/run_all.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing bench/ (default: build)
#   OUT_DIR    where <bench>.json files land (default: bench/out)
#
# Extra google-benchmark flags can be passed via BENCH_ARGS, e.g.
#   BENCH_ARGS='--benchmark_filter=heft --benchmark_min_time=0.1s' \
#     bench/run_all.sh
# The console output (figure tables + timings) still goes to stdout; the
# JSON goes to OUT_DIR via --benchmark_out, so both artifacts survive.
#
# The gated trajectory set (scale/ incl. the n=100000 tier, routed/,
# reschedule/, timeline/ incl. the calendar-* group) all live in
# bench_scale and ride through here like any other binary.  Run with
# ONEPORT_PROFILE=1 to add the per-thread scalability counters as
# prof_<name> entries to every JSON artifact (docs/PROFILING.md).
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/out}

if ! compgen -G "$BUILD_DIR/bench/bench_*" > /dev/null; then
  echo "error: no bench binaries under $BUILD_DIR/bench -- build with" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

status=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  echo "==== $name"
  # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
  if ! "$bin" \
      --benchmark_out="$OUT_DIR/$name.json" \
      --benchmark_out_format=json \
      ${BENCH_ARGS:-}; then
    echo "FAILED: $name" >&2
    status=1
  fi
done

echo "==== JSON artifacts in $OUT_DIR:"
ls -l "$OUT_DIR"
exit $status
