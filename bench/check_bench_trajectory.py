#!/usr/bin/env python3
"""Gate bench JSON trajectories against the committed baseline.

Usage:
    check_bench_trajectory.py BASELINE.json CURRENT.json
        [--threshold=0.25] [--prefixes=routed/,scale/]

Both files are google-benchmark ``--benchmark_out`` JSON.  Only
benchmarks whose name starts with one of ``--prefixes`` participate.

Baseline and current runs generally come from different machines (the
committed baseline vs whatever CI runner picked up the job), so absolute
times are not comparable.  Instead the gate normalizes: it computes each
benchmark's current/baseline time ratio, takes the *median* ratio as the
machine factor, and fails when any single benchmark's ratio exceeds
``median * (1 + threshold)``.  A uniformly slower machine shifts every
ratio equally and passes; one benchmark regressing relative to the rest
-- the signature of a real code regression on a hot path -- fails.

Also fails when a baseline benchmark disappears from the current run
(renames must update bench/baseline.json in the same commit).  New
benchmarks in the current run are reported and allowed; check in a new
baseline to start tracking them.
"""

import json
import sys

# ns per unit -- google-benchmark may emit different time_units per entry.
_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path, prefixes):
    """name -> real_time in ns for plain (non-aggregate) entries.

    With ``--benchmark_repetitions=N`` the JSON holds N iteration rows
    per name; the *minimum* is kept.  Min-of-N is the standard
    noise-reduction for timing gates: scheduler preemption and cache
    pollution only ever make a run slower, so the fastest repetition is
    the best estimate of the code's true cost.
    """
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name", "")
        # Skip aggregate rows (mean/median/stddev of repetition runs).
        if entry.get("run_type") == "aggregate":
            continue
        if not any(name.startswith(p) for p in prefixes):
            continue
        if "real_time" not in entry:
            continue
        unit = _UNITS.get(entry.get("time_unit", "ns"), 1.0)
        t = float(entry["real_time"]) * unit
        times[name] = min(times.get(name, t), t)
    return times


def main(argv):
    threshold = 0.25
    prefixes = ["routed/", "scale/"]
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--prefixes="):
            prefixes = [p for p in arg.split("=", 1)[1].split(",") if p]
        else:
            positional.append(arg)
    if len(positional) != 2:
        sys.exit(__doc__)
    baseline_path, current_path = positional

    baseline = load_times(baseline_path, prefixes)
    current = load_times(current_path, prefixes)
    if not baseline:
        sys.exit(f"no benchmarks matching {prefixes} in {baseline_path}")

    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    shared = sorted(set(baseline) & set(current))
    if not shared:
        sys.exit("baseline and current run share no benchmark names")

    ratios = {name: current[name] / baseline[name] for name in shared}
    ordered = sorted(ratios.values())
    median = ordered[len(ordered) // 2]
    limit = median * (1.0 + threshold)

    failures = [name for name in shared if ratios[name] > limit]
    width = max(len(name) for name in shared)
    print(f"{len(shared)} benchmarks compared; machine factor "
          f"(median current/baseline ratio) {median:.3f}; "
          f"per-bench limit {limit:.3f} (threshold {threshold:.0%})")
    for name in sorted(shared, key=lambda n: -ratios[n]):
        flag = "  << REGRESSION" if name in failures else ""
        print(f"  {name:<{width}}  x{ratios[name] / median:6.3f} "
              f"of median{flag}")
    for name in new:
        print(f"  {name}: new benchmark (not in baseline)")

    ok = True
    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{threshold:.0%} beyond the machine factor")
        ok = False
    if missing:
        print("FAIL: baseline benchmarks missing from the current run "
              "(update bench/baseline.json in the same commit): "
              + ", ".join(missing))
        ok = False
    if ok:
        print("OK: no benchmark regressed beyond the threshold")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
