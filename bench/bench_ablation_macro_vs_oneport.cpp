// Ablation E11 (ours): what §2.3 claims, quantified.  Take the schedule a
// macro-dataflow heuristic produces (unlimited ports), serialize its
// messages under the one-port rules (ASAP replay keeping the original
// orders), and compare against the heuristics that were port-aware from
// the start.
//
// Three numbers per testbed:
//   macro(paper model)   -- the optimistic makespan the macro model reports;
//   macro replayed       -- what that schedule actually costs once ports
//                           serialize (a *valid* one-port schedule);
//   native one-port      -- HEFT/ILHA designed for the one-port model.
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

using namespace oneport;

int main() {
  const Platform platform = make_paper_platform();
  const int n = 200;

  std::cout << "Ablation: macro-dataflow optimism vs port-aware "
               "scheduling, n=" << n << ", c=10\n\n";
  csv::Table table({"testbed", "macro_reported", "macro_replayed_1port",
                    "heft_oneport", "ilha_oneport", "optimism_factor"});
  for (const testbeds::TestbedEntry& entry : testbeds::paper_testbeds()) {
    const TaskGraph graph = entry.make(n, testbeds::kPaperCommRatio);

    const Schedule macro =
        heft(graph, platform, {.model = EftEngine::Model::kMacroDataflow});
    const Schedule replayed =
        asap_replay(macro, graph, platform, CommModel::kOnePort);
    ensure(validate_one_port(replayed, graph, platform).ok(),
           "replayed schedule invalid for " + entry.name);
    const Schedule hop =
        heft(graph, platform, {.model = EftEngine::Model::kOnePort});
    const Schedule iop =
        ilha(graph, platform, {.model = EftEngine::Model::kOnePort,
                               .chunk_size = entry.paper_best_b});

    table.add_row({entry.name, csv::format_number(macro.makespan(), 0),
                   csv::format_number(replayed.makespan(), 0),
                   csv::format_number(hop.makespan(), 0),
                   csv::format_number(iop.makespan(), 0),
                   csv::format_number(replayed.makespan() / macro.makespan(),
                                      2)});
  }
  table.write_pretty(std::cout);
  std::cout << "\noptimism_factor = replayed / reported: how much the "
               "macro model under-estimates its own schedule once "
               "communications serialize.\n";
  return 0;
}
