// The paper closes with "more extensive experimental validation and
// comparisons" as future work.  This bench runs that wider net: random
// layered DAGs x three platform heterogeneity levels x three
// communication-to-computation ratios, 10 seeds each, comparing one-port
// HEFT, ILHA (autotuned B) and GDL by mean ratio.
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/autotune.hpp"
#include "core/gdl.hpp"
#include "core/heft.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

using namespace oneport;

namespace {

Platform make_platform(int heterogeneity) {
  switch (heterogeneity) {
    case 0:  // homogeneous
      return Platform(std::vector<double>(8, 6.0), 1.0);
    case 1:  // the paper's mix
      return Platform({6, 6, 6, 6, 10, 10, 15, 15}, 1.0);
    default:  // extreme spread
      return Platform({2, 2, 6, 6, 18, 18, 54, 54}, 1.0);
  }
}

}  // namespace

int main() {
  const int seeds = 10;
  std::cout << "Random layered DAGs (~160 tasks), one-port model, mean "
               "ratio over " << seeds << " seeds\n\n";
  csv::Table table({"heterogeneity", "c", "heft", "ilha(auto-B)", "gdl",
                    "best"});
  for (int het = 0; het < 3; ++het) {
    const Platform platform = make_platform(het);
    for (const double c : {1.0, 5.0, 10.0}) {
      double sum_heft = 0.0, sum_ilha = 0.0, sum_gdl = 0.0;
      for (int seed = 1; seed <= seeds; ++seed) {
        testbeds::RandomDagOptions options;
        options.layers = 40;
        options.max_width = 7;
        options.max_in_degree = 3;
        options.comm_ratio = c;
        options.seed = static_cast<std::uint64_t>(seed * 31 + het);
        const TaskGraph graph = testbeds::make_random_layered(options);

        const Schedule hs = heft(graph, platform,
                                 {.model = EftEngine::Model::kOnePort});
        const IlhaAutotuneResult ir = ilha_autotune(
            graph, platform, {.model = EftEngine::Model::kOnePort});
        const Schedule gs = gdl(graph, platform,
                                {.model = EftEngine::Model::kOnePort});
        for (const Schedule* s : {&hs, &ir.schedule, &gs}) {
          ensure(validate_one_port(*s, graph, platform).ok(),
                 "invalid schedule in random sweep");
        }
        sum_heft += analysis::speedup(graph, platform, hs);
        sum_ilha += analysis::speedup(graph, platform, ir.schedule);
        sum_gdl += analysis::speedup(graph, platform, gs);
      }
      const double mh = sum_heft / seeds;
      const double mi = sum_ilha / seeds;
      const double mg = sum_gdl / seeds;
      const char* best = mh >= mi && mh >= mg ? "heft"
                         : mi >= mg           ? "ilha"
                                              : "gdl";
      table.add_row({het == 0   ? "homogeneous"
                     : het == 1 ? "paper-mix"
                                : "extreme",
                     csv::format_number(c), csv::format_number(mh),
                     csv::format_number(mi), csv::format_number(mg), best});
    }
  }
  table.write_pretty(std::cout);
  std::cout << "\nhigher is better; 8 processors throughout.\n";
  return 0;
}
