// Figure 7: HEFT vs ILHA on FORK-JOIN, 10 processors, c = 10, B = 38.
//
// The paper reports both heuristics glued together around ratio
// 1.53-1.58, against the kernel's analytic cap w*t/c + 1 = 1.6 (with
// t = 6, c = 10, w = 1): almost all of the fork's messages serialize on
// the parent's send port, so the apparently poor speedup is in fact near
// optimal.
#include "bench_common.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  oneport::analysis::FigureConfig config;
  config.testbed = "FORK-JOIN";
  config.chunk_size = 38;
  const double cap = 1.0 * 6.0 / config.comm_ratio + 1.0;
  return opbench::figure_main(
      argc, argv, "Figure 7 -- FORK-JOIN, ratio vs problem size", config,
      "HEFT == ILHA, ratio 1.53-1.58, analytic cap " +
          oneport::csv::format_number(cap));
}
