// Extension experiment: how fragile are the static schedules?
//
// The paper's model assumes exact execution times.  Here each task's
// run-time is drawn from [1-eps, 1+eps] x its nominal duration and the
// schedule's decisions (allocation + resource orders) are re-executed
// event-driven; the table reports the mean makespan inflation over 20
// seeds.  An inflation well below 1+eps means the schedule has enough
// slack to absorb the jitter; equal to 1+eps means the critical path is
// tight everywhere.
#include <iostream>

#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/replay.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"
#include "util/csv.hpp"

using namespace oneport;

namespace {

double mean_inflation(const Schedule& schedule, const TaskGraph& graph,
                      const Platform& platform, double noise) {
  const double base =
      asap_replay(schedule, graph, platform, CommModel::kOnePort).makespan();
  double total = 0.0;
  const int seeds = 20;
  for (int seed = 1; seed <= seeds; ++seed) {
    total += perturbed_replay(schedule, graph, platform,
                              CommModel::kOnePort, noise,
                              static_cast<std::uint64_t>(seed))
                 .makespan();
  }
  return total / seeds / base;
}

}  // namespace

int main() {
  const Platform platform = make_paper_platform();
  const int n = 100;

  std::cout << "Execution-time jitter robustness, n=" << n
            << ", c=10, mean makespan inflation over 20 seeds\n\n";
  csv::Table table({"testbed", "heft@10%", "ilha@10%", "heft@30%",
                    "ilha@30%"});
  for (const testbeds::TestbedEntry& entry : testbeds::paper_testbeds()) {
    const TaskGraph graph = entry.make(n, testbeds::kPaperCommRatio);
    const Schedule hs = heft(graph, platform,
                             {.model = EftEngine::Model::kOnePort});
    const Schedule is = ilha(graph, platform,
                             {.model = EftEngine::Model::kOnePort,
                              .chunk_size = entry.paper_best_b});
    table.add_row({entry.name,
                   csv::format_number(mean_inflation(hs, graph, platform,
                                                     0.1)),
                   csv::format_number(mean_inflation(is, graph, platform,
                                                     0.1)),
                   csv::format_number(mean_inflation(hs, graph, platform,
                                                     0.3)),
                   csv::format_number(mean_inflation(is, graph, platform,
                                                     0.3))});
  }
  table.write_pretty(std::cout);
  std::cout << "\nvalues are perturbed makespan / unperturbed makespan; "
               "1.0 = fully absorbed, 1+eps = no slack at all.\n";
  return 0;
}
