// §4.4 toy example (Figures 3-4): two 4-task families plus two shared
// children, all unit weights and unit data, two same-speed processors.
//
// The paper walks through both heuristics: HEFT ping-pongs tasks between
// the processors and generates several messages, while ILHA (with B >= 8,
// i.e. a full chunk) assigns each family to its parent's processor in
// step 1 -- smaller makespan AND far fewer messages ("reducing
// communications while achieving a good load balance is the objective
// that has guided the design of ILHA").
#include <iostream>

#include "analysis/gantt.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/validate.hpp"
#include "util/csv.hpp"

using namespace oneport;

namespace {

/// Figure 3: a0 -> {a1,a2,a3,ab1,ab2}, b0 -> {ab1,ab2,b3,b2,b1}.  Task
/// ids follow the paper's priority order a1,a2,a3,ab1,ab2,b3,b2,b1 so the
/// id tie-break reproduces its ranking.
TaskGraph make_toy() {
  TaskGraph g;
  const TaskId a0 = g.add_task(1.0, "a0");
  const TaskId b0 = g.add_task(1.0, "b0");
  const TaskId a1 = g.add_task(1.0, "a1");
  const TaskId a2 = g.add_task(1.0, "a2");
  const TaskId a3 = g.add_task(1.0, "a3");
  const TaskId ab1 = g.add_task(1.0, "ab1");
  const TaskId ab2 = g.add_task(1.0, "ab2");
  const TaskId b3 = g.add_task(1.0, "b3");
  const TaskId b2 = g.add_task(1.0, "b2");
  const TaskId b1 = g.add_task(1.0, "b1");
  for (const TaskId child : {a1, a2, a3, ab1, ab2}) g.add_edge(a0, child, 1.0);
  for (const TaskId child : {ab1, ab2, b3, b2, b1}) g.add_edge(b0, child, 1.0);
  g.finalize();
  return g;
}

}  // namespace

int main() {
  const TaskGraph graph = make_toy();
  const Platform platform = make_homogeneous_platform(2, 1.0, 1.0);

  const Schedule hs =
      heft(graph, platform, {.model = EftEngine::Model::kOnePort});
  const Schedule is = ilha(
      graph, platform, {.model = EftEngine::Model::kOnePort, .chunk_size = 8});

  std::cout << "Section 4.4 toy example -- 2 same-speed processors\n\n";
  csv::Table table({"heuristic", "makespan", "messages", "valid"});
  table.add_row({"heft-oneport", csv::format_number(hs.makespan()),
                 std::to_string(hs.num_comms()),
                 validate_one_port(hs, graph, platform).ok() ? "yes" : "NO"});
  table.add_row({"ilha-oneport(B=8)", csv::format_number(is.makespan()),
                 std::to_string(is.num_comms()),
                 validate_one_port(is, graph, platform).ok() ? "yes" : "NO"});
  table.write_pretty(std::cout);
  std::cout << "\npaper reference: ILHA beats HEFT on makespan and cuts "
               "the message count drastically\n\n";

  std::cout << "HEFT schedule:\n";
  analysis::write_gantt_ascii(std::cout, hs, platform, {.width = 60});
  std::cout << "\nILHA schedule:\n";
  analysis::write_gantt_ascii(std::cout, is, platform, {.width = 60});
  return 0;
}
