// Shared scaffolding for the per-figure benchmark binaries.
//
// Every figure binary does two things:
//   1. regenerate the paper's data series (the primary artifact): the
//      ratio (sequential time / makespan) of one-port HEFT and one-port
//      ILHA over the problem-size sweep, printed as an aligned table;
//   2. run google-benchmark timings of the two schedulers at a mid-size
//      instance, so scheduler *throughput* regressions are visible too.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "analysis/experiment.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/platform.hpp"
#include "testbeds/registry.hpp"

namespace opbench {

/// Registers "<testbed>/heft" and "<testbed>/ilha" runtime benchmarks on a
/// single instance (one-port model).
inline void register_runtime_benchmarks(const std::string& testbed_name,
                                        int n, double comm_ratio,
                                        int chunk_size) {
  using namespace oneport;
  const testbeds::TestbedEntry entry = testbeds::find_testbed(testbed_name);
  // The graph and platform are shared by reference across iterations;
  // schedulers treat them as read-only.
  static std::vector<TaskGraph>* graphs = new std::vector<TaskGraph>();
  graphs->push_back(entry.make(n, comm_ratio));
  const TaskGraph* graph = &graphs->back();
  static const Platform* platform = new Platform(make_paper_platform());

  benchmark::RegisterBenchmark(
      (testbed_name + "/heft-oneport/n=" + std::to_string(n)).c_str(),
      [graph](benchmark::State& state) {
        double makespan = 0.0;
        for (auto _ : state) {
          const Schedule s =
              heft(*graph, *platform, {.model = EftEngine::Model::kOnePort});
          makespan = s.makespan();
          benchmark::DoNotOptimize(makespan);
        }
        state.counters["makespan"] = makespan;
        state.counters["tasks_per_s"] = benchmark::Counter(
            static_cast<double>(graph->num_tasks()),
            benchmark::Counter::kIsIterationInvariantRate);
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      (testbed_name + "/ilha-oneport/n=" + std::to_string(n)).c_str(),
      [graph, chunk_size](benchmark::State& state) {
        double makespan = 0.0;
        for (auto _ : state) {
          const Schedule s =
              ilha(*graph, *platform,
                   {.model = EftEngine::Model::kOnePort,
                    .chunk_size = chunk_size});
          makespan = s.makespan();
          benchmark::DoNotOptimize(makespan);
        }
        state.counters["makespan"] = makespan;
        state.counters["tasks_per_s"] = benchmark::Counter(
            static_cast<double>(graph->num_tasks()),
            benchmark::Counter::kIsIterationInvariantRate);
      })
      ->Unit(benchmark::kMillisecond);
}

/// Standard main for a figure binary: print the series table, then run
/// the registered runtime benchmarks.
inline int figure_main(int argc, char** argv, const std::string& title,
                       const oneport::analysis::FigureConfig& config,
                       const std::string& expectation) {
  const oneport::Platform platform = oneport::make_paper_platform();
  oneport::analysis::print_figure(std::cout, title, config, platform);
  std::cout << "paper reference: " << expectation << "\n\n";

  const int mid = config.sizes[config.sizes.size() / 2];
  register_runtime_benchmarks(config.testbed, mid, config.comm_ratio,
                              config.chunk_size);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace opbench
