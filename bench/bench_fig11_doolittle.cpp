// Figure 11: HEFT vs ILHA on DOOLITTLE, 10 processors, c = 10, B = 20.
//
// The paper: ILHA gains roughly 10% over HEFT, reaching 4.4 at n = 500.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  oneport::analysis::FigureConfig config;
  config.testbed = "DOOLITTLE";
  config.chunk_size = 20;
  return opbench::figure_main(
      argc, argv, "Figure 11 -- DOOLITTLE, ratio vs problem size", config,
      "ILHA ~10% over HEFT, ILHA -> 4.4 at n=500");
}
