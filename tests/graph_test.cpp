#include <gtest/gtest.h>

#include <sstream>

#include "graph/dot_export.hpp"
#include "graph/graph_algorithms.hpp"
#include "graph/task_graph.hpp"

namespace oneport {
namespace {

TaskGraph make_diamond() {
  // 0 -> {1, 2} -> 3, unit data.
  TaskGraph g;
  g.add_task(1.0, "a");
  g.add_task(2.0, "b");
  g.add_task(3.0, "c");
  g.add_task(4.0, "d");
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(2, 3, 4.0);
  g.finalize();
  return g;
}

TEST(TaskGraph, BuildAndQuery) {
  const TaskGraph g = make_diamond();
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(g.weight(1), 2.0);
  EXPECT_EQ(g.name(0), "a");
  EXPECT_DOUBLE_EQ(g.total_weight(), 10.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.edge_data(2, 3), 4.0);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(TaskGraph, RejectsBadInput) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(-1.0), std::invalid_argument);
  const TaskId a = g.add_task(1.0);
  const TaskId b = g.add_task(1.0);
  EXPECT_THROW(g.add_edge(a, a, 1.0), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_edge(a, 99, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, -2.0), std::invalid_argument);
  g.add_edge(a, b, 1.0);
  EXPECT_THROW(g.add_edge(a, b, 1.0), std::invalid_argument);  // duplicate
}

TEST(TaskGraph, FrozenAfterFinalize) {
  TaskGraph g;
  g.add_task(1.0);
  g.finalize();
  EXPECT_TRUE(g.finalized());
  EXPECT_THROW(g.add_task(1.0), std::invalid_argument);
  g.finalize();  // idempotent
}

TEST(TaskGraph, DetectsCycle) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0);
  const TaskId b = g.add_task(1.0);
  const TaskId c = g.add_task(1.0);
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  g.add_edge(c, a, 1.0);
  EXPECT_THROW(g.finalize(), std::invalid_argument);
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = make_diamond();
  const auto order = g.topological_order();
  std::vector<std::size_t> position(g.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const EdgeRef& e : g.successors(u)) {
      EXPECT_LT(position[u], position[e.task]);
    }
  }
}

TEST(TaskGraph, EntryAndExitTasks) {
  const TaskGraph g = make_diamond();
  EXPECT_EQ(g.entry_tasks(), std::vector<TaskId>{0});
  EXPECT_EQ(g.exit_tasks(), std::vector<TaskId>{3});
}

TEST(TaskGraph, AlgorithmsRequireFinalize) {
  TaskGraph g;
  g.add_task(1.0);
  EXPECT_THROW((void)g.topological_order(), std::invalid_argument);
  EXPECT_THROW(bottom_levels(g, 1.0, 1.0), std::invalid_argument);
}

// ------------------------------------------------------- levels / paths

TEST(GraphAlgorithms, BottomLevelsOnDiamond) {
  const TaskGraph g = make_diamond();
  // comp = 1, comm = 1: bl(3) = 4; bl(1) = 2 + 3 + 4 = 9;
  // bl(2) = 3 + 4 + 4 = 11; bl(0) = 1 + max(1+9, 2+11) = 14.
  const auto bl = bottom_levels(g, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(bl[3], 4.0);
  EXPECT_DOUBLE_EQ(bl[1], 9.0);
  EXPECT_DOUBLE_EQ(bl[2], 11.0);
  EXPECT_DOUBLE_EQ(bl[0], 14.0);
}

TEST(GraphAlgorithms, BottomLevelsScaleWithFactors) {
  const TaskGraph g = make_diamond();
  const auto bl = bottom_levels(g, 2.0, 0.0);
  // No communication charges: bl(0) = 2*(1 + max(2+4, 3+4)) = 2*8 = 16.
  EXPECT_DOUBLE_EQ(bl[0], 16.0);
}

TEST(GraphAlgorithms, TopLevelsOnDiamond) {
  const TaskGraph g = make_diamond();
  const auto tl = top_levels(g, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 2.0);   // w(0) + data(0,1)
  EXPECT_DOUBLE_EQ(tl[2], 3.0);   // w(0) + data(0,2)
  EXPECT_DOUBLE_EQ(tl[3], 10.0);  // via 2: 3 + 3 + 4
}

TEST(GraphAlgorithms, IsoLevels) {
  const TaskGraph g = make_diamond();
  const auto lvl = iso_levels(g);
  EXPECT_EQ(lvl[0], 0);
  EXPECT_EQ(lvl[1], 1);
  EXPECT_EQ(lvl[2], 1);
  EXPECT_EQ(lvl[3], 2);
  EXPECT_EQ(max_level_width(g), 2u);
}

TEST(GraphAlgorithms, CriticalPathFollowsHeaviestRoute) {
  const TaskGraph g = make_diamond();
  const CriticalPath cp = critical_path(g, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(cp.length, 14.0);
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{0, 2, 3}));
}

TEST(GraphAlgorithms, CriticalPathOnChain) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task(1.0);
  for (TaskId v = 0; v + 1 < 4; ++v) g.add_edge(v, v + 1, 2.0);
  g.finalize();
  const CriticalPath cp = critical_path(g, 1.0, 1.0);
  EXPECT_EQ(cp.tasks.size(), 4u);
  EXPECT_DOUBLE_EQ(cp.length, 4.0 + 3 * 2.0);
}

TEST(GraphAlgorithms, EmptyGraph) {
  TaskGraph g;
  g.finalize();
  EXPECT_TRUE(critical_path(g, 1.0, 1.0).tasks.empty());
  EXPECT_EQ(max_level_width(g), 0u);
}

// ------------------------------------------------------- DOT export

TEST(DotExport, EmitsNodesAndEdges) {
  const TaskGraph g = make_diamond();
  std::ostringstream oss;
  write_dot(oss, g, {.graph_name = "diamond"});
  const std::string dot = oss.str();
  EXPECT_NE(dot.find("digraph diamond"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("w=2"), std::string::npos);
}

TEST(DotExport, TruncatesLargeGraphs) {
  TaskGraph g;
  for (int i = 0; i < 10; ++i) g.add_task(1.0);
  g.finalize();
  std::ostringstream oss;
  write_dot(oss, g, {.max_tasks = 3});
  EXPECT_NE(oss.str().find("truncated"), std::string::npos);
  EXPECT_EQ(oss.str().find("n5"), std::string::npos);
}

}  // namespace
}  // namespace oneport
