#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace oneport {
namespace {

// ------------------------------------------------------------ Matrix

TEST(Matrix, StoresAndRetrieves) {
  Matrix<double> m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, BoundsChecked) {
  Matrix<int> m(2, 2);
  EXPECT_THROW((void)m(2, 0), std::invalid_argument);
  EXPECT_THROW((void)m(0, 2), std::invalid_argument);
}

TEST(Matrix, EqualityIsElementwise) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(1, 1) = 2;
  EXPECT_NE(a, b);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix<double> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

// ------------------------------------------------------------ csv::Table

TEST(CsvTable, RejectsEmptyHeaderAndWrongArity) {
  EXPECT_THROW(csv::Table({}), std::invalid_argument);
  csv::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvTable, WritesCsv) {
  csv::Table t({"n", "ratio"});
  t.add_row({"100", "4.5"});
  t.add_row({"200", "4.8"});
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_EQ(oss.str(), "n,ratio\n100,4.5\n200,4.8\n");
}

TEST(CsvTable, PrettyAlignsColumns) {
  csv::Table t({"name", "x"});
  t.add_row({"long-name-here", "1"});
  std::ostringstream oss;
  t.write_pretty(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("long-name-here"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(csv::format_number(4.0), "4");
  EXPECT_EQ(csv::format_number(4.5), "4.5");
  EXPECT_EQ(csv::format_number(4.126, 2), "4.13");
  EXPECT_EQ(csv::format_number(-0.5), "-0.5");
}

// ------------------------------------------------------------ SplitMix64

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  SplitMix64 a2(42);
  EXPECT_NE(a2(), c());
}

TEST(SplitMix64, Uniform01InRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, BelowRespectsBound) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(SplitMix64, BelowCoversRange) {
  SplitMix64 rng(1);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 500; ++i) ++seen[rng.below(5)];
  for (const int count : seen) EXPECT_GT(count, 0);
}

// ------------------------------------------------------------ Args

TEST(Args, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--n=42", "--flag", "pos1", "--x=1.5"};
  const Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 1.5);
  EXPECT_EQ(args.get("absent", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

// ------------------------------------------------------------ error helpers

TEST(Error, RequireAndEnsureThrow) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), std::invalid_argument);
  EXPECT_NO_THROW(ensure(true, "ok"));
  EXPECT_THROW(ensure(false, "bad"), std::logic_error);
}

TEST(Error, MacrosCarryContext) {
  const auto misuse = [] { OP_REQUIRE(false, "value " << 7 << " rejected"); };
  try {
    misuse();
    FAIL() << "OP_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("value 7 rejected"),
              std::string::npos);
  }
  const auto broken = [] { OP_ASSERT(1 + 1 == 3, "arithmetic drifted"); };
  try {
    broken();
    FAIL() << "OP_ASSERT did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant failed"), std::string::npos);
    EXPECT_NE(what.find("arithmetic drifted"), std::string::npos);
  }
}

// --------------------------------------------- previously uncovered corners

TEST(Args, LastDuplicateWinsAndEmptyValues) {
  const char* argv[] = {"prog", "--n=1", "--n=2", "--empty=", "--flag"};
  const Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 2);
  EXPECT_TRUE(args.has("empty"));
  EXPECT_EQ(args.get("empty", "fallback"), "");
  EXPECT_EQ(args.get("flag", "fallback"), "");
}

TEST(Args, NonNumericValuesFallBackToZero) {
  const char* argv[] = {"prog", "--n=abc", "--x=xyz"};
  const Args args(3, argv);
  // std::atoi / std::atof semantics: unparsable -> 0 (not the fallback).
  EXPECT_EQ(args.get_int("n", 5), 0);
  EXPECT_DOUBLE_EQ(args.get_double("x", 5.0), 0.0);
}

TEST(Args, NoArgumentsIsEmpty) {
  const char* argv[] = {"prog"};
  const Args args(1, argv);
  EXPECT_TRUE(args.positional().empty());
  EXPECT_FALSE(args.has("anything"));
}

TEST(CsvTable, ExposesHeaderAndRows) {
  csv::Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
  ASSERT_EQ(t.header().size(), 2u);
  EXPECT_EQ(t.header()[1], "b");
  ASSERT_EQ(t.rows().size(), 1u);
  EXPECT_EQ(t.rows()[0][0], "1");
}

TEST(CsvTable, CsvRoundTripPreservesCells) {
  csv::Table t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"beta", "-3"});
  std::ostringstream oss;
  t.write_csv(oss);
  // Re-parse the emitted CSV line by line and compare against the source
  // table (cells in this codebase never contain commas or quotes).
  std::istringstream iss(oss.str());
  std::string line;
  std::vector<std::vector<std::string>> parsed;
  while (std::getline(iss, line)) {
    std::vector<std::string> cells;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    parsed.push_back(cells);
  }
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], t.header());
  EXPECT_EQ(parsed[1], t.rows()[0]);
  EXPECT_EQ(parsed[2], t.rows()[1]);
}

TEST(FormatNumber, HandlesExtremes) {
  EXPECT_EQ(csv::format_number(0.0), "0");
  EXPECT_EQ(csv::format_number(-4.0), "-4");
  EXPECT_EQ(csv::format_number(0.001, 3), "0.001");
}

TEST(Matrix, SingleCellAndAsymmetricShapes) {
  Matrix<int> m(1, 1, 9);
  EXPECT_EQ(m(0, 0), 9);
  Matrix<int> wide(1, 4, 0);
  wide(0, 3) = 7;
  EXPECT_EQ(wide(0, 3), 7);
  EXPECT_NE(Matrix<int>(1, 4), Matrix<int>(4, 1));  // shape matters
}

TEST(Matrix, CopyIsDeep) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b = a;
  b(0, 0) = 5;
  EXPECT_EQ(a(0, 0), 1);
  EXPECT_EQ(b(0, 0), 5);
}

TEST(SplitMix64, GoldenValuesMatchReference) {
  // First three outputs of SplitMix64 seeded with 1234567, as published
  // in Steele et al.'s reference implementation -- guards against silent
  // constant or shift edits.
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng(), 6457827717110365317ULL);
  EXPECT_EQ(rng(), 3203168211198807973ULL);
  EXPECT_EQ(rng(), 9817491932198370423ULL);
}

TEST(SplitMix64, UniformRespectsBoundsAndSeed) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
  // Identical seeds replay the identical stream through every helper.
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 10.0), b.uniform(0.0, 10.0));
  }
}

}  // namespace
}  // namespace oneport
