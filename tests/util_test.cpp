#include <gtest/gtest.h>

#include <sstream>

#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace oneport {
namespace {

// ------------------------------------------------------------ Matrix

TEST(Matrix, StoresAndRetrieves) {
  Matrix<double> m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, BoundsChecked) {
  Matrix<int> m(2, 2);
  EXPECT_THROW((void)m(2, 0), std::invalid_argument);
  EXPECT_THROW((void)m(0, 2), std::invalid_argument);
}

TEST(Matrix, EqualityIsElementwise) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(1, 1) = 2;
  EXPECT_NE(a, b);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix<double> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

// ------------------------------------------------------------ csv::Table

TEST(CsvTable, RejectsEmptyHeaderAndWrongArity) {
  EXPECT_THROW(csv::Table({}), std::invalid_argument);
  csv::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvTable, WritesCsv) {
  csv::Table t({"n", "ratio"});
  t.add_row({"100", "4.5"});
  t.add_row({"200", "4.8"});
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_EQ(oss.str(), "n,ratio\n100,4.5\n200,4.8\n");
}

TEST(CsvTable, PrettyAlignsColumns) {
  csv::Table t({"name", "x"});
  t.add_row({"long-name-here", "1"});
  std::ostringstream oss;
  t.write_pretty(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("long-name-here"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(csv::format_number(4.0), "4");
  EXPECT_EQ(csv::format_number(4.5), "4.5");
  EXPECT_EQ(csv::format_number(4.126, 2), "4.13");
  EXPECT_EQ(csv::format_number(-0.5), "-0.5");
}

// ------------------------------------------------------------ SplitMix64

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  SplitMix64 a2(42);
  EXPECT_NE(a2(), c());
}

TEST(SplitMix64, Uniform01InRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, BelowRespectsBound) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(SplitMix64, BelowCoversRange) {
  SplitMix64 rng(1);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 500; ++i) ++seen[rng.below(5)];
  for (const int count : seen) EXPECT_GT(count, 0);
}

// ------------------------------------------------------------ Args

TEST(Args, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--n=42", "--flag", "pos1", "--x=1.5"};
  const Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 1.5);
  EXPECT_EQ(args.get("absent", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

// ------------------------------------------------------------ error helpers

TEST(Error, RequireAndEnsureThrow) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), std::invalid_argument);
  EXPECT_NO_THROW(ensure(true, "ok"));
  EXPECT_THROW(ensure(false, "bad"), std::logic_error);
}

}  // namespace
}  // namespace oneport
