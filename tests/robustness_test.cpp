// Tests for the perturbation-robustness replay.
#include <gtest/gtest.h>

#include "core/heft.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(PerturbedReplay, ZeroNoiseEqualsAsapReplay) {
  const TaskGraph g = testbeds::make_lu(10, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule exact = asap_replay(s, g, p, CommModel::kOnePort);
  const Schedule noisy = perturbed_replay(s, g, p, CommModel::kOnePort,
                                          0.0, 7);
  EXPECT_NEAR(noisy.makespan(), exact.makespan(), 1e-9);
}

TEST(PerturbedReplay, DeterministicInSeed) {
  const TaskGraph g = testbeds::make_stencil(8, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule a = perturbed_replay(s, g, p, CommModel::kOnePort, 0.3, 42);
  const Schedule b = perturbed_replay(s, g, p, CommModel::kOnePort, 0.3, 42);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  const Schedule c = perturbed_replay(s, g, p, CommModel::kOnePort, 0.3, 43);
  EXPECT_NE(a.makespan(), c.makespan());
}

TEST(PerturbedReplay, DegradationIsBoundedByNoise) {
  // Every duration grows by at most (1 + noise), and the event graph is a
  // longest-path computation whose arc lags scale by at most that factor,
  // so the makespan cannot grow beyond (1 + noise) * asap.
  const TaskGraph g = testbeds::make_laplace(10, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const double base = asap_replay(s, g, p, CommModel::kOnePort).makespan();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const double noisy =
        perturbed_replay(s, g, p, CommModel::kOnePort, 0.25, seed).makespan();
    EXPECT_LE(noisy, base * 1.25 + 1e-6);
    EXPECT_GE(noisy, base * 0.75 - 1e-6);
  }
}

TEST(PerturbedReplay, KeepsAllocation) {
  const TaskGraph g = testbeds::make_doolittle(8, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule noisy =
      perturbed_replay(s, g, p, CommModel::kOnePort, 0.4, 5);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(noisy.task(v).proc, s.task(v).proc);
  }
}

TEST(PerturbedReplay, RejectsInvalidNoise) {
  const TaskGraph g = testbeds::make_fork_join(3, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {});
  EXPECT_THROW(perturbed_replay(s, g, p, CommModel::kOnePort, -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(perturbed_replay(s, g, p, CommModel::kOnePort, 1.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace oneport
