#include <gtest/gtest.h>

#include <sstream>

#include "analysis/experiment.hpp"
#include "analysis/gantt.hpp"
#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport::analysis {
namespace {

TEST(Metrics, SequentialTimeUsesFastestProcessor) {
  TaskGraph g;
  g.add_task(2.0);
  g.add_task(3.0);
  g.finalize();
  const Platform p({4.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(sequential_time(g, p), 10.0);
}

TEST(Metrics, SpeedupIsSequentialOverMakespan) {
  TaskGraph g;
  g.add_task(2.0);
  g.add_task(2.0);
  g.finalize();
  const Platform p({1.0, 1.0}, 1.0);
  Schedule s(2);
  s.place_task(0, 0, 0.0, 2.0);
  s.place_task(1, 1, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(speedup(g, p, s), 2.0);
}

TEST(Metrics, StatsAccounting) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(3.0);
  g.add_edge(0, 1, 2.0);
  g.finalize();
  const Platform p({1.0, 1.0}, 1.0);
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 3.0});
  s.place_task(1, 1, 3.0, 6.0);
  const ScheduleStats stats = compute_stats(g, p, s);
  EXPECT_DOUBLE_EQ(stats.makespan, 6.0);
  EXPECT_EQ(stats.num_comms, 1u);
  EXPECT_DOUBLE_EQ(stats.total_comm_time, 2.0);
  ASSERT_EQ(stats.busy.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.busy[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.busy[1], 3.0);
  EXPECT_DOUBLE_EQ(stats.load_imbalance, 1.5);
  EXPECT_DOUBLE_EQ(stats.mean_utilization, 2.0 / 6.0);
}

TEST(Gantt, AsciiShowsComputeAndPorts) {
  const TaskGraph g = testbeds::make_fork(1.0, {1.0, 1.0}, {1.0, 1.0});
  const Platform p = make_homogeneous_platform(2, 1.0, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  std::ostringstream oss;
  write_gantt_ascii(oss, s, p, {.width = 40});
  const std::string out = oss.str();
  EXPECT_NE(out.find("P0 cpu"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
}

TEST(Gantt, AsciiWithoutPorts) {
  const TaskGraph g = testbeds::make_fork(1.0, {1.0}, {1.0});
  const Platform p = make_homogeneous_platform(2, 1.0, 1.0);
  const Schedule s = heft(g, p, {});
  std::ostringstream oss;
  write_gantt_ascii(oss, s, p, {.width = 40, .show_ports = false});
  EXPECT_EQ(oss.str().find("send"), std::string::npos);
}

TEST(Gantt, SvgContainsRectangles) {
  const TaskGraph g = testbeds::make_fork(1.0, {1.0, 1.0}, {1.0, 1.0});
  const Platform p = make_homogeneous_platform(2, 1.0, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  std::ostringstream oss;
  write_gantt_svg(oss, s, p);
  const std::string out = oss.str();
  EXPECT_NE(out.find("<svg"), std::string::npos);
  EXPECT_NE(out.find("<rect"), std::string::npos);
  EXPECT_NE(out.find("</svg>"), std::string::npos);
}

TEST(Experiment, RunFigureProducesValidatedRows) {
  FigureConfig config;
  config.testbed = "LAPLACE";
  config.sizes = {6, 10};
  config.chunk_size = 38;
  const Platform platform = make_paper_platform();
  const std::vector<FigureRow> rows = run_figure(config, platform);
  ASSERT_EQ(rows.size(), 2u);
  for (const FigureRow& r : rows) {
    EXPECT_GT(r.heft_speedup, 0.0);
    EXPECT_GT(r.ilha_speedup, 0.0);
    EXPECT_GT(r.heft_makespan, 0.0);
  }
  EXPECT_EQ(rows[0].size, 6);
  EXPECT_EQ(rows[1].size, 10);
}

TEST(Experiment, FigureTableFormatsRows) {
  std::vector<FigureRow> rows(1);
  rows[0].size = 100;
  rows[0].heft_speedup = 4.0;
  rows[0].ilha_speedup = 4.4;
  const csv::Table table = figure_table(rows);
  EXPECT_EQ(table.num_rows(), 1u);
  // 10% gain column.
  EXPECT_EQ(table.rows()[0][3], "10");
}

TEST(Experiment, UnknownTestbedThrows) {
  FigureConfig config;
  config.testbed = "BOGUS";
  EXPECT_THROW(run_figure(config, make_paper_platform()),
               std::invalid_argument);
}

TEST(Experiment, RebalanceIsAGridAxis) {
  // rebalance innermost: consecutive points differ only in the flag.
  const std::vector<SweepPoint> grid =
      make_sweep_grid({"LU"}, {20}, {"heft-oneport"}, 10.0, 38, {"full"},
                      {"mixed"}, {false, true});
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_FALSE(grid[0].rebalance);
  EXPECT_TRUE(grid[1].rebalance);
  EXPECT_EQ(grid[0].events, "mixed");
  EXPECT_EQ(grid[1].events, "mixed");
}

TEST(Experiment, SweepReportsEpochImbalance) {
  const std::vector<SweepPoint> grid =
      make_sweep_grid({"LU"}, {20}, {"heft-oneport"}, 10.0, 38, {"full"},
                      {"mixed"}, {false, true});
  const std::vector<SweepResult> results =
      run_sweep(grid, make_paper_platform(), {.workers = 1});
  ASSERT_EQ(results.size(), 2u);
  for (const SweepResult& r : results) {
    // The rebalancing pass never increases an epoch's suffix skew, and
    // the mixed trace always reschedules a non-trivial suffix, so the
    // before-skew is a real positive measurement on both points.
    EXPECT_GT(r.imbalance_before, 0.0);
    EXPECT_LE(r.imbalance_after, r.imbalance_before);
    EXPECT_GT(r.makespan, 0.0);
  }
  // Rebalance off: the pass is skipped, so before == after exactly.
  EXPECT_DOUBLE_EQ(results[0].imbalance_after, results[0].imbalance_before);
  // The table carries the axis and both imbalance columns.
  const csv::Table table = sweep_table(results);
  EXPECT_EQ(table.rows()[0][5], "off");
  EXPECT_EQ(table.rows()[1][5], "on");
}

}  // namespace
}  // namespace oneport::analysis
