#include <gtest/gtest.h>

#include "platform/load_balance.hpp"
#include "platform/platform.hpp"

namespace oneport {
namespace {

TEST(Platform, UniformLinkConstruction) {
  const Platform p({1.0, 2.0}, 3.0);
  EXPECT_EQ(p.num_processors(), 2);
  EXPECT_DOUBLE_EQ(p.link(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(p.link(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(p.link(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.cycle_time(1), 2.0);
}

TEST(Platform, RejectsBadConfigurations) {
  EXPECT_THROW(Platform({}, 1.0), std::invalid_argument);
  EXPECT_THROW(Platform({0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Platform({-1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Platform({1.0}, -1.0), std::invalid_argument);
  Matrix<double> bad_diag(2, 2, 1.0);  // non-zero diagonal
  EXPECT_THROW(Platform({1.0, 1.0}, bad_diag), std::invalid_argument);
  Matrix<double> wrong_size(3, 3, 0.0);
  EXPECT_THROW(Platform({1.0, 1.0}, wrong_size), std::invalid_argument);
}

TEST(Platform, ExecAndCommTimes) {
  const Platform p({2.0, 4.0}, 3.0);
  EXPECT_DOUBLE_EQ(p.exec_time(5.0, 0), 10.0);
  EXPECT_DOUBLE_EQ(p.exec_time(5.0, 1), 20.0);
  EXPECT_DOUBLE_EQ(p.comm_time(2.0, 0, 1), 6.0);
  EXPECT_DOUBLE_EQ(p.comm_time(2.0, 1, 1), 0.0);
}

TEST(Platform, FastestProcessorBreaksTiesLow) {
  const Platform p({3.0, 1.0, 1.0}, 1.0);
  EXPECT_EQ(p.fastest_processor(), 1);
}

TEST(Platform, HarmonicMeans) {
  const Platform p({2.0, 2.0}, 4.0);
  EXPECT_DOUBLE_EQ(p.harmonic_mean_cycle_time(), 2.0);
  EXPECT_DOUBLE_EQ(p.harmonic_mean_link(), 4.0);
  const Platform single({2.0}, 0.0);
  EXPECT_DOUBLE_EQ(single.harmonic_mean_link(), 0.0);
}

TEST(Platform, HeterogeneousLinkHarmonicMean) {
  Matrix<double> link(2, 2, 0.0);
  link(0, 1) = 1.0;
  link(1, 0) = 3.0;
  const Platform p({1.0, 1.0}, std::move(link));
  EXPECT_DOUBLE_EQ(p.harmonic_mean_link(), 2.0 / (1.0 + 1.0 / 3.0));
}

// ------------------------------------------------- the paper's platform

TEST(PaperPlatform, CompositionMatchesSection52) {
  const Platform p = make_paper_platform();
  ASSERT_EQ(p.num_processors(), 10);
  int six = 0, ten = 0, fifteen = 0;
  for (ProcId q = 0; q < 10; ++q) {
    if (p.cycle_time(q) == 6.0) ++six;
    if (p.cycle_time(q) == 10.0) ++ten;
    if (p.cycle_time(q) == 15.0) ++fifteen;
    for (ProcId r = 0; r < 10; ++r) {
      EXPECT_DOUBLE_EQ(p.link(q, r), q == r ? 0.0 : 1.0);
    }
  }
  EXPECT_EQ(six, 5);
  EXPECT_EQ(ten, 3);
  EXPECT_EQ(fifteen, 2);
}

TEST(PaperPlatform, AggregateSpeedAndBounds) {
  const Platform p = make_paper_platform();
  EXPECT_NEAR(p.aggregate_speed(), 38.0 / 30.0, 1e-12);
  // Speedup cap 228/30 = 7.6 (§5.2).
  EXPECT_NEAR(speedup_upper_bound(p), 7.6, 1e-12);
  // Perfect-balance chunk B = 38 (§5.2).
  EXPECT_EQ(perfect_balance_chunk(p), 38);
}

// ------------------------------------------------- load balancing

TEST(LoadBalance, FractionsSumToOne) {
  const Platform p = make_paper_platform();
  const std::vector<double> c = balanced_fractions(p);
  double sum = 0.0;
  for (const double f : c) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Faster processors get larger fractions.
  EXPECT_GT(c[0], c[5]);
  EXPECT_GT(c[5], c[8]);
}

TEST(LoadBalance, PaperDistributionOf38Tasks) {
  const Platform p = make_paper_platform();
  const std::vector<int> counts = optimal_distribution(p, 38);
  // 5 each for the cycle-6 processors, 3 each for cycle-10, 2 for cycle-15.
  const std::vector<int> expected = {5, 5, 5, 5, 5, 3, 3, 3, 2, 2};
  EXPECT_EQ(counts, expected);
  EXPECT_DOUBLE_EQ(distribution_makespan(p, counts), 30.0);
}

TEST(LoadBalance, DistributionSumsToN) {
  const Platform p = make_paper_platform();
  for (const int n : {1, 7, 37, 39, 100}) {
    const std::vector<int> counts = optimal_distribution(p, n);
    int total = 0;
    for (const int c : counts) total += c;
    EXPECT_EQ(total, n) << "n=" << n;
  }
}

/// Exhaustive optimality check on a small platform: the greedy
/// distribution minimizes max_i t_i * n_i over all integer splits.
TEST(LoadBalance, DistributionIsOptimalSmall) {
  const Platform p({1.0, 2.0, 3.0}, 1.0);
  for (int n = 1; n <= 12; ++n) {
    const double greedy =
        distribution_makespan(p, optimal_distribution(p, n));
    double best = 1e100;
    for (int i = 0; i <= n; ++i) {
      for (int j = 0; i + j <= n; ++j) {
        const int k = n - i - j;
        best = std::min(best, distribution_makespan(p, {i, j, k}));
      }
    }
    EXPECT_DOUBLE_EQ(greedy, best) << "n=" << n;
  }
}

TEST(LoadBalance, PerfectChunkRequiresIntegerCycleTimes) {
  const Platform p({1.5, 2.0}, 1.0);
  EXPECT_THROW((void)perfect_balance_chunk(p), std::invalid_argument);
}

TEST(LoadBalance, RejectsNegativeN) {
  const Platform p = make_paper_platform();
  EXPECT_THROW(optimal_distribution(p, -1), std::invalid_argument);
}

}  // namespace
}  // namespace oneport
