// Online rescheduling (src/dynamic): the fault-injection sweep plays
// every named event trace against every registry heuristic over dense,
// edge-case, and routed topologies, and the D1-D5 battery replays the
// frozen prefix and validates each epoch's rescheduled suffix hop by
// hop.  Unit tests pin the empty-trace static anchor, the rebalancing
// hook, arrival release floors, determinism, and trace validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/registry.hpp"
#include "sched/interval.hpp"
#include "dynamic/events.hpp"
#include "dynamic/reschedule.hpp"
#include "support/dynamic_invariants.hpp"
#include "support/scenario.hpp"

namespace oneport {
namespace {

using namespace testsupport;
using dyn::DynamicOptions;
using dyn::DynamicResult;
using dyn::EventKind;
using dyn::EventTrace;
using dyn::PlatformEvent;

std::string joined(const std::vector<std::string>& errors) {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

CommModel model_of(const std::string& scheduler) {
  return scheduler.find("oneport") != std::string::npos
             ? CommModel::kOnePort
             : CommModel::kMacroDataflow;
}

/// Plays the named preset trace for (scenario, scheduler) and returns
/// the result; the trace's event times are derived from the heuristic's
/// own static makespan, so events genuinely land mid-run.
DynamicResult run_named(const Scenario& scenario,
                        const std::string& scheduler,
                        const std::string& trace_name,
                        bool rebalance = false) {
  SchedulerConfig config;
  config.routing = scenario.routing_ptr();
  const Schedule initial =
      find_scheduler(scheduler, config).run(scenario.graph,
                                            scenario.platform);
  const EventTrace trace = dyn::make_named_trace(
      trace_name, scenario.graph, scenario.platform, initial,
      scenario.seed);
  DynamicOptions options;
  options.model = model_of(scheduler);
  options.rebalance = rebalance;
  return dyn::run_dynamic(scenario.graph, scenario.platform, scheduler,
                          config, trace, options);
}

void expect_invariants(const Scenario& scenario,
                       const std::string& scheduler,
                       const std::string& trace_name,
                       bool rebalance = false) {
  SchedulerConfig config;
  config.routing = scenario.routing_ptr();
  const Schedule initial =
      find_scheduler(scheduler, config).run(scenario.graph,
                                            scenario.platform);
  DynamicScenario dynamic;
  dynamic.base = &scenario;
  dynamic.model = model_of(scheduler);
  dynamic.trace = dyn::make_named_trace(trace_name, scenario.graph,
                                        scenario.platform, initial,
                                        scenario.seed);
  dynamic.description =
      scenario.description + "/" + scheduler + "/" + trace_name;
  DynamicOptions options;
  options.model = dynamic.model;
  options.rebalance = rebalance;
  const DynamicResult result =
      dyn::run_dynamic(scenario.graph, scenario.platform, scheduler,
                       config, dynamic.trace, options);
  const std::vector<std::string> violations =
      check_all_dynamic_invariants(dynamic, result);
  EXPECT_TRUE(violations.empty()) << joined(violations);
}

/// An 8-task chain on a heterogeneous platform: every EFT heuristic
/// serializes it onto the fastest processor, which is maximally skewed
/// from the balanced-fractions ideal -- the rebalancer must strictly
/// improve it.
Scenario skewed_chain_scenario() {
  TaskGraph g;
  for (int i = 0; i < 8; ++i) g.add_task(1.0);
  for (TaskId v = 0; v + 1 < 8; ++v) g.add_edge(v, v + 1, 0.0);
  g.finalize();
  return Scenario{11, "dynamic/skewed-chain", std::move(g),
                  Platform({1.0, 2.0, 4.0, 8.0}, 1.0), std::nullopt};
}

// ---------------------------------------------------------------- sweeps

TEST(DynamicSweep, FaultInjectionAcrossTopologiesAndHeuristics) {
  // Dense random platforms, hand-picked degenerate corners, and ten
  // routed scenarios (one full rotation: ring, star, random, line,
  // 2-proc, mesh, torus, fat tree, heterogeneous mesh, alt policy).
  std::vector<Scenario> scenarios = scenario_sweep(7100, 3);
  for (Scenario& s : edge_case_scenarios()) {
    scenarios.push_back(std::move(s));
  }
  for (Scenario& s : routed_scenario_sweep(7200, 10)) {
    scenarios.push_back(std::move(s));
  }
  const std::vector<SchedulerEntry> entries = builtin_schedulers();
  const std::vector<std::string> traces = {"slowdown", "dropout", "mixed",
                                           "arrival"};
  for (const Scenario& scenario : scenarios) {
    for (const SchedulerEntry& entry : entries) {
      for (const std::string& trace : traces) {
        expect_invariants(scenario, entry.name, trace);
      }
    }
  }
}

TEST(DynamicSweep, RebalancedRunsKeepEveryInvariant) {
  const std::vector<Scenario> scenarios = scenario_sweep(7300, 3);
  for (const Scenario& scenario : scenarios) {
    for (const std::string& scheduler :
         {std::string("heft-oneport"), std::string("minmin-macro")}) {
      for (const std::string& trace : {std::string("mixed"),
                                       std::string("arrival")}) {
        expect_invariants(scenario, scheduler, trace, /*rebalance=*/true);
      }
    }
  }
}

// ----------------------------------------------------------- unit tests

TEST(Dynamic, EmptyTraceReproducesTheStaticScheduleBitForBit) {
  const std::vector<Scenario> scenarios = scenario_sweep(7400, 2);
  for (const Scenario& scenario : scenarios) {
    SchedulerConfig config;
    config.routing = scenario.routing_ptr();
    for (const SchedulerEntry& entry : builtin_schedulers(config)) {
      const Schedule expected =
          entry.run(scenario.graph, scenario.platform);
      DynamicOptions options;
      options.model = model_of(entry.name);
      const DynamicResult result = dyn::run_dynamic(
          scenario.graph, scenario.platform, entry.name, config, {},
          options);
      ASSERT_EQ(result.epochs.size(), 1u);
      EXPECT_EQ(result.schedule.tasks(), expected.tasks())
          << scenario.description << "/" << entry.name;
      // The composite stores chains grouped by edge, so compare the
      // message multisets.
      auto lhs = result.schedule.comms();
      auto rhs = expected.comms();
      const auto key = [](const CommPlacement& c) {
        return std::tuple(c.src, c.dst, c.from, c.to, c.start, c.finish);
      };
      const auto by_key = [&key](const CommPlacement& a,
                                 const CommPlacement& b) {
        return key(a) < key(b);
      };
      std::sort(lhs.begin(), lhs.end(), by_key);
      std::sort(rhs.begin(), rhs.end(), by_key);
      EXPECT_EQ(lhs, rhs) << scenario.description << "/" << entry.name;
      EXPECT_TRUE(result.stale_comms.empty());
    }
  }
}

TEST(Dynamic, RunsAreDeterministic) {
  const Scenario scenario = random_scenario(7500);
  const DynamicResult a = run_named(scenario, "heft-oneport", "mixed");
  const DynamicResult b = run_named(scenario, "heft-oneport", "mixed");
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_EQ(a.schedule.tasks(), b.schedule.tasks());
  EXPECT_EQ(a.schedule.comms(), b.schedule.comms());
  EXPECT_EQ(a.stale_comms, b.stale_comms);
  for (std::size_t k = 0; k < a.epochs.size(); ++k) {
    EXPECT_EQ(a.epochs[k].schedule.tasks(), b.epochs[k].schedule.tasks());
    EXPECT_EQ(a.epochs[k].schedule.comms(), b.epochs[k].schedule.comms());
  }
}

TEST(Dynamic, RebalancingStrictlyReducesImbalanceOnASkewedChain) {
  const Scenario scenario = skewed_chain_scenario();
  // The whole chain lands on the fastest processor: maximal skew.
  const DynamicResult result =
      run_named(scenario, "heft-oneport", "none", /*rebalance=*/true);
  ASSERT_EQ(result.epochs.size(), 1u);
  const dyn::EpochSnapshot& epoch = result.epochs[0];
  EXPECT_GT(epoch.imbalance_before, 0.5)
      << "expected the static plan to be skewed";
  EXPECT_LT(epoch.imbalance_after, epoch.imbalance_before);
  EXPECT_GT(epoch.rebalance_moves, 0);
  // And the rebalanced run still satisfies the whole battery.
  DynamicScenario dynamic;
  dynamic.base = &scenario;
  dynamic.model = CommModel::kOnePort;
  dynamic.description = "dynamic/skewed-chain/rebalanced";
  const std::vector<std::string> violations =
      check_all_dynamic_invariants(dynamic, result);
  EXPECT_TRUE(violations.empty()) << joined(violations);
}

TEST(Dynamic, SlowdownStretchesOnlyPostEventWork) {
  // One processor, two unit tasks in a chain, x2 slowdown between them:
  // the first keeps duration 1, the second runs for 2.
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 0.0);
  g.finalize();
  const Platform platform({1.0}, 1.0);
  EventTrace trace;
  PlatformEvent e;
  e.kind = EventKind::kSlowdown;
  e.time = 1.0;
  e.proc = 0;
  e.factor = 2.0;
  trace.push_back(e);
  const DynamicResult result =
      dyn::run_dynamic(g, platform, "heft-oneport", {}, trace, {});
  ASSERT_EQ(result.epochs.size(), 2u);
  const TaskPlacement& first = result.schedule.task(0);
  const TaskPlacement& second = result.schedule.task(1);
  EXPECT_DOUBLE_EQ(first.finish - first.start, 1.0);
  EXPECT_DOUBLE_EQ(second.finish - second.start, 2.0);
  EXPECT_GE(second.start, 1.0 - kTimeEps);
}

TEST(Dynamic, ArrivalsFloorTheirStartTimes) {
  const Scenario scenario = random_scenario(7600);
  const DynamicResult result =
      run_named(scenario, "ilha-oneport", "arrival");
  bool any_late = false;
  for (TaskId v = 0; v < scenario.graph.num_tasks(); ++v) {
    const TaskPlacement& t = result.schedule.task(v);
    ASSERT_TRUE(t.placed());
    EXPECT_GE(t.start, result.release[v] - kTimeEps);
    any_late |= result.release[v] > 0.0;
  }
  EXPECT_TRUE(any_late) << "arrival preset released no task late";
}

TEST(Dynamic, DropoutDrainsButNeverRestartsTheLostProcessor) {
  const Scenario scenario = random_scenario(7700);
  SchedulerConfig config;
  const Schedule initial =
      find_scheduler("heft-oneport", config).run(scenario.graph,
                                                 scenario.platform);
  const EventTrace trace = dyn::make_named_trace(
      "dropout", scenario.graph, scenario.platform, initial, scenario.seed);
  ASSERT_EQ(trace.size(), 1u);
  const DynamicResult result = dyn::run_dynamic(
      scenario.graph, scenario.platform, "heft-oneport", config, trace, {});
  const ProcId lost = trace[0].proc;
  const double when = trace[0].time;
  for (const TaskPlacement& t : result.schedule.tasks()) {
    if (t.proc == lost) {
      EXPECT_LT(t.start, when - kTimeEps)
          << "a task started on the dropped processor after the drop";
    }
  }
}

// ----------------------------------------------------- trace validation

TEST(TraceValidation, RejectsMalformedTraces) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const Platform platform({1.0, 2.0}, 1.0);
  const auto reject = [&](EventTrace trace) {
    EXPECT_THROW(dyn::validate_trace(trace, g, platform),
                 std::invalid_argument);
  };
  const auto ev = [](EventKind kind, double time, ProcId proc,
                     double factor = 1.0) {
    PlatformEvent e;
    e.kind = kind;
    e.time = time;
    e.proc = proc;
    e.factor = factor;
    return e;
  };

  // Times must be finite, positive, and non-decreasing.
  reject({ev(EventKind::kSlowdown, -1.0, 0, 2.0)});
  reject({ev(EventKind::kSlowdown, 0.0, 0, 2.0)});
  reject({ev(EventKind::kSlowdown, 2.0, 0, 2.0),
          ev(EventKind::kSlowdown, 1.0, 1, 2.0)});
  // Processor ids must exist; factors must be positive and finite.
  reject({ev(EventKind::kSlowdown, 1.0, 7, 2.0)});
  reject({ev(EventKind::kSlowdown, 1.0, -1, 2.0)});
  reject({ev(EventKind::kSlowdown, 1.0, 0, 0.0)});
  reject({ev(EventKind::kSlowdown, 1.0, 0, -2.0)});
  // No event may target a processor after it dropped, nobody drops
  // twice, and at least one processor must survive.
  reject({ev(EventKind::kDropout, 1.0, 0),
          ev(EventKind::kSlowdown, 2.0, 0, 2.0)});
  reject({ev(EventKind::kDropout, 1.0, 0), ev(EventKind::kDropout, 2.0, 0)});
  reject({ev(EventKind::kDropout, 1.0, 0), ev(EventKind::kDropout, 2.0, 1)});

  // Arrivals: non-empty, known ids, no double arrival, successor-closed.
  PlatformEvent empty_arrival;
  empty_arrival.kind = EventKind::kArrival;
  empty_arrival.time = 1.0;
  reject({empty_arrival});
  PlatformEvent unknown = empty_arrival;
  unknown.tasks = {5};
  reject({unknown});
  PlatformEvent twice = empty_arrival;
  twice.tasks = {1, 1};
  reject({twice});
  // Task 0 arriving late while its successor 1 is known from the start
  // breaks the successor closure.
  PlatformEvent closure = empty_arrival;
  closure.tasks = {0};
  reject({closure});

  // And a well-formed trace passes.
  PlatformEvent ok_arrival = empty_arrival;
  ok_arrival.tasks = {1};
  EXPECT_NO_THROW(dyn::validate_trace(
      {ev(EventKind::kSlowdown, 0.5, 0, 2.0), ok_arrival,
       ev(EventKind::kDropout, 2.0, 1)},
      g, platform));
}

TEST(TraceValidation, NamedTracePresetsAreValidAndListed) {
  const Scenario scenario = random_scenario(7800);
  SchedulerConfig config;
  const Schedule initial = find_scheduler("heft-oneport", config)
                               .run(scenario.graph, scenario.platform);
  for (const std::string& name : dyn::known_event_trace_names()) {
    const EventTrace trace = dyn::make_named_trace(
        name, scenario.graph, scenario.platform, initial, scenario.seed);
    EXPECT_NO_THROW(
        dyn::validate_trace(trace, scenario.graph, scenario.platform));
    if (name != "none") {
      EXPECT_FALSE(trace.empty()) << name;
    } else {
      EXPECT_TRUE(trace.empty());
    }
  }
  EXPECT_THROW(dyn::make_named_trace("meteor", scenario.graph,
                                     scenario.platform, initial, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace oneport
