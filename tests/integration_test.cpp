// Cross-module integration: every built-in scheduler x every paper
// testbed x several sizes produces a schedule that the matching
// independent validator accepts, whose dates survive ASAP replay, and
// whose makespan respects the area lower bound.
#include <gtest/gtest.h>

#include <tuple>

#include "core/registry.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

using Param = std::tuple<std::string, int, std::string>;

class SchedulerTestbedMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerTestbedMatrix, ProducesValidSchedules) {
  const auto& [testbed_name, size, scheduler_name] = GetParam();
  const testbeds::TestbedEntry testbed = testbeds::find_testbed(testbed_name);
  const TaskGraph graph = testbed.make(size, testbeds::kPaperCommRatio);
  const Platform platform = make_paper_platform();
  const SchedulerEntry scheduler =
      find_scheduler(scheduler_name, testbed.paper_best_b);

  const Schedule schedule = scheduler.run(graph, platform);
  ASSERT_TRUE(schedule.complete());

  const bool one_port =
      scheduler_name.find("oneport") != std::string::npos;
  const ValidationResult check =
      one_port ? validate_one_port(schedule, graph, platform)
               : validate_macro_dataflow(schedule, graph, platform);
  ASSERT_TRUE(check.ok()) << check.message();

  // Area bound: total work cannot beat the aggregate speed.
  EXPECT_GE(schedule.makespan(),
            graph.total_weight() / platform.aggregate_speed() - 1e-6);

  // ASAP replay under the same model never worsens a valid schedule, and
  // the result still validates.
  const CommModel model =
      one_port ? CommModel::kOnePort : CommModel::kMacroDataflow;
  const Schedule replayed = asap_replay(schedule, graph, platform, model);
  EXPECT_LE(replayed.makespan(), schedule.makespan() + 1e-6);
  const ValidationResult recheck =
      one_port ? validate_one_port(replayed, graph, platform)
               : validate_macro_dataflow(replayed, graph, platform);
  EXPECT_TRUE(recheck.ok()) << recheck.message();
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, SchedulerTestbedMatrix,
    ::testing::Combine(
        ::testing::Values("LU", "LAPLACE", "STENCIL", "FORK-JOIN",
                          "DOOLITTLE", "LDMt"),
        ::testing::Values(12, 25),
        ::testing::Values("heft-macro", "heft-oneport", "ilha-macro",
                          "ilha-oneport", "cpop-macro", "cpop-oneport")),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_n" +
                         std::to_string(std::get<1>(param_info.param)) + "_" +
                         std::get<2>(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Registry, ExposesAllSchedulers) {
  EXPECT_EQ(builtin_schedulers().size(), 11u);
  EXPECT_THROW(find_scheduler("nope"), std::invalid_argument);
  EXPECT_EQ(find_scheduler("ilha-oneport").name, "ilha-oneport");
}

/// The macro model is a relaxation of the one-port model, so for the SAME
/// scheduler family the macro makespan reported is never above the
/// one-port makespan on these kernels.
TEST(ModelComparison, MacroIsOptimisticOnPaperKernels) {
  const Platform platform = make_paper_platform();
  for (const auto& testbed : testbeds::paper_testbeds()) {
    const TaskGraph graph = testbed.make(15, testbeds::kPaperCommRatio);
    const Schedule macro =
        find_scheduler("heft-macro").run(graph, platform);
    const Schedule oneport =
        find_scheduler("heft-oneport").run(graph, platform);
    EXPECT_LE(macro.makespan(), oneport.makespan() + 1e-6) << testbed.name;
  }
}

}  // namespace
}  // namespace oneport
