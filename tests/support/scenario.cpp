#include "support/scenario.hpp"

#include <sstream>
#include <utility>

#include "graph/dot_export.hpp"
#include "graph/dot_import.hpp"
#include "testbeds/testbeds.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace oneport::testsupport {

Platform random_platform(std::uint64_t seed, const ScenarioOptions& options) {
  SplitMix64 rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  const int span = options.max_processors - options.min_processors + 1;
  const int p = options.min_processors +
                static_cast<int>(rng.below(static_cast<std::uint64_t>(span)));
  std::vector<double> cycle(static_cast<std::size_t>(p));
  for (double& t : cycle) t = rng.uniform(options.cycle_lo, options.cycle_hi);

  if (rng.uniform01() < options.uniform_link_probability) {
    return Platform(std::move(cycle),
                    rng.uniform(options.link_lo, options.link_hi));
  }
  Matrix<double> link(static_cast<std::size_t>(p), static_cast<std::size_t>(p),
                      0.0);
  for (int q = 0; q < p; ++q) {
    for (int r = 0; r < p; ++r) {
      if (q != r) {
        link(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) =
            rng.uniform(options.link_lo, options.link_hi);
      }
    }
  }
  return Platform(std::move(cycle), std::move(link));
}

TaskGraph random_graph(std::uint64_t seed, const ScenarioOptions& options) {
  SplitMix64 rng(seed * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL);
  testbeds::RandomDagOptions dag;
  dag.seed = seed;
  const int layer_span = options.max_layers - options.min_layers + 1;
  dag.layers =
      options.min_layers +
      static_cast<int>(rng.below(static_cast<std::uint64_t>(layer_span)));
  dag.max_width =
      1 + static_cast<int>(
              rng.below(static_cast<std::uint64_t>(options.max_width)));
  dag.max_in_degree = options.max_in_degree;
  dag.back_reach = 1 + static_cast<int>(rng.below(3));
  dag.comm_ratio = rng.uniform(options.comm_lo, options.comm_hi);
  return testbeds::make_random_layered(dag);
}

Scenario random_scenario(std::uint64_t seed, const ScenarioOptions& options) {
  Scenario s{seed, "random/seed=" + std::to_string(seed),
             random_graph(seed, options),
             random_platform(seed * 7 + 1, options), std::nullopt};
  return s;
}

std::vector<Scenario> scenario_sweep(std::uint64_t base_seed, int count,
                                     const ScenarioOptions& options) {
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    // Every fourth scenario is an edge case; which one rotates with the
    // seed so short sweeps still cover all three variants across bases.
    const int variant = (i % 4 == 3) ? 1 + static_cast<int>(seed % 3) : 0;
    switch (variant) {
      case 1: {  // single-processor platform (only the graph is random)
        out.push_back({seed, "single-proc/seed=" + std::to_string(seed),
                       random_graph(seed, options), Platform({2.0}, 1.0),
                       std::nullopt});
        break;
      }
      case 2: {  // zero-communication edges
        ScenarioOptions zero = options;
        zero.comm_lo = 0.0;
        zero.comm_hi = 1e-12;
        Scenario s = random_scenario(seed, zero);
        s.description = "zero-comm/seed=" + std::to_string(seed);
        out.push_back(std::move(s));
        break;
      }
      case 3: {  // near-chain DAG (width 1)
        ScenarioOptions chain = options;
        chain.max_width = 1;
        chain.min_layers = 6;
        chain.max_layers = 14;
        Scenario s = random_scenario(seed, chain);
        s.description = "chain/seed=" + std::to_string(seed);
        out.push_back(std::move(s));
        break;
      }
      default:
        out.push_back(random_scenario(seed, options));
        break;
    }
  }
  return out;
}

std::vector<Scenario> routed_scenario_sweep(std::uint64_t base_seed, int count,
                                            const ScenarioOptions& options) {
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SplitMix64 rng(seed * 0x6C62272E07BB0142ULL + 0x2545F4914F6CDD1DULL);

    // Sparse topologies need >= 2 processors; otherwise respect the
    // platform knobs of `options`.
    const int min_p = options.min_processors < 2 ? 2 : options.min_processors;
    const int span = options.max_processors - min_p + 1;
    const int p =
        span <= 1 ? min_p
                  : min_p + static_cast<int>(
                                rng.below(static_cast<std::uint64_t>(span)));
    std::vector<double> cycle(static_cast<std::size_t>(p));
    for (double& t : cycle) t = rng.uniform(options.cycle_lo, options.cycle_hi);
    const double link = rng.uniform(options.link_lo, options.link_hi);

    static const char* const kTopologies[] = {
        "ring",  "star",    "random", "line", "two-node",
        "mesh",  "torus",   "fattree", "het",  "policy"};
    std::string topology = kTopologies[i % 10];
    // Small random dimensions (2..3 x 2..3 grids, 1..2-level fan-out
    // 2..3 trees); the name fixes the processor count,
    // make_topology_platform recycles the cycle times.  The draws are
    // sequenced as separate statements -- inside one `+` expression
    // their order would be compiler-dependent and the seeded shapes
    // would not reproduce across toolchains.
    if (topology == "mesh" || topology == "torus") {
      const std::uint64_t rows = 2 + rng.below(2);
      const std::uint64_t cols = 2 + rng.below(2);
      topology += std::to_string(rows) + "x" + std::to_string(cols);
    } else if (topology == "fattree") {
      const std::uint64_t levels = 1 + rng.below(2);
      const std::uint64_t arity = 2 + rng.below(2);
      topology += std::to_string(levels) + "x" + std::to_string(arity);
    } else if (topology == "het") {
      // Heterogeneous-cost mesh (ISSUE-5): seeded link jitter, sometimes
      // with hotspots, under a per-seed routing policy, so every sweep
      // rotation pushes a non-uniform network through all P1-P5 checks.
      const std::uint64_t rows = 2 + rng.below(2);
      const std::uint64_t cols = 2 + rng.below(2);
      static const char* const kAmps[] = {":het0.25", ":het0.5", ":het0.75"};
      const std::uint64_t amp = rng.below(3);
      const std::uint64_t hot = rng.below(2);
      static const char* const kPolicies[] = {"", ":alt", ":swp"};
      const std::uint64_t pol = rng.below(3);
      topology = "mesh" + std::to_string(rows) + "x" + std::to_string(cols) +
                 kAmps[amp] + (hot == 1 ? ":hot0.25" : "") + kPolicies[pol];
    } else if (topology == "policy") {
      // Non-default routing policy on a uniform structured network: the
      // load-spreading alternating-XY torus, the cost-aware swp torus
      // (where wrap links give swp real choices), or a swp fat tree.
      static const char* const kShapes[] = {"torus2x4:alt", "torus3x3:swp",
                                            "fattree2x2:swp"};
      topology = kShapes[rng.below(3)];
    }
    RoutedPlatform routed =
        topology == "two-node"
            ? make_line_platform({cycle[0], cycle[1 % cycle.size()]}, link)
            : make_topology_platform(topology, std::move(cycle), link, seed);

    Scenario s{seed,
               topology + "/p=" +
                   std::to_string(routed.platform.num_processors()) +
                   "/seed=" + std::to_string(seed),
               random_graph(seed, options), std::move(routed.platform),
               std::move(routed.routing)};
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Scenario> workload_scenario_sweep(std::uint64_t base_seed,
                                              int count,
                                              const ScenarioOptions& options) {
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SplitMix64 rng(seed * 0xA0761D6478BD642FULL + 0xE7037ED1A0B428DBULL);
    // Small instances keep the full-heuristic x full-invariant sweep
    // affordable; the generators are deterministic in n, so the workload
    // axis varies via n while the platform varies via the seed.
    std::string description;
    TaskGraph graph;
    switch (i % 4) {
      case 0: {
        const int layers = 2 + static_cast<int>(rng.below(3));
        graph = testbeds::make_mltrain(layers);
        description = "mltrain/n=" + std::to_string(layers);
        break;
      }
      case 1: {
        const int services = 3 + static_cast<int>(rng.below(8));
        graph = testbeds::make_microsvc(services);
        description = "microsvc/n=" + std::to_string(services);
        break;
      }
      case 2: {
        // DOT round trip: schedule what the importer rebuilt, not the
        // original -- a structural importer bug breaks P1-P5 here.
        std::ostringstream os;
        write_dot(os, random_graph(seed, options), {.graph_name = "rt"});
        graph = import_dot(os.str()).graph;
        description = "imported-dot";
        break;
      }
      default: {
        std::ostringstream os;
        write_json_graph(os, random_graph(seed, options),
                         {.graph_name = "rt"});
        graph = import_json(os.str()).graph;
        description = "imported-json";
        break;
      }
    }
    description += "/seed=" + std::to_string(seed);
    out.push_back({seed, std::move(description), std::move(graph),
                   random_platform(seed * 11 + 3, options), std::nullopt});
  }
  return out;
}

std::vector<Scenario> edge_case_scenarios() {
  std::vector<Scenario> out;

  {
    TaskGraph g;
    g.add_task(3.0, "only");
    g.finalize();
    out.push_back({9001, "edge/single-task", std::move(g),
                   Platform({2.0, 1.0, 4.0}, 1.5), std::nullopt});
  }
  {
    TaskGraph g;
    const TaskId a = g.add_task(1.0);
    const TaskId b = g.add_task(2.0);
    const TaskId c = g.add_task(1.5);
    g.add_edge(a, b, 4.0);
    g.add_edge(b, c, 4.0);
    g.finalize();
    out.push_back({9002, "edge/single-proc-chain", std::move(g),
                   Platform({3.0}, 1.0), std::nullopt});
  }
  {
    // Fork whose edges carry no data: placements are free of comm cost.
    TaskGraph g = testbeds::make_fork(2.0, {1.0, 1.0, 1.0, 1.0},
                                      {0.0, 0.0, 0.0, 0.0});
    out.push_back({9003, "edge/zero-data-fork", std::move(g),
                   Platform({1.0, 2.0}, 5.0), std::nullopt});
  }
  {
    TaskGraph g;
    TaskId prev = g.add_task(1.0);
    for (int i = 0; i < 12; ++i) {
      const TaskId next = g.add_task(1.0 + 0.25 * i);
      g.add_edge(prev, next, 2.0);
      prev = next;
    }
    g.finalize();
    out.push_back({9004, "edge/pure-chain", std::move(g),
                   Platform({1.0, 1.0, 1.0, 1.0}, 2.0), std::nullopt});
  }
  {
    // Independent tasks: no edges at all, pure load balancing.
    TaskGraph g;
    for (int i = 0; i < 16; ++i) g.add_task(1.0 + (i % 5));
    g.finalize();
    out.push_back({9005, "edge/independent-bag", std::move(g),
                   Platform({1.0, 2.0, 3.0, 4.0}, 1.0), std::nullopt});
  }
  return out;
}

}  // namespace oneport::testsupport
