// Reusable random-scenario generation for property tests.
//
// A Scenario couples a finalized task graph with a platform and a short
// human-readable tag, so a failing property can print exactly which
// workload broke it and the run can be reproduced from the seed alone.
// Generators are deterministic in the seed (SplitMix64 underneath) and
// deliberately spread over the awkward corners of the input space:
// single-processor platforms, heterogeneous link matrices, near-chain and
// near-parallel DAGs, zero-communication edges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"

namespace oneport::testsupport {

struct ScenarioOptions {
  // Platform shape.
  int min_processors = 2;
  int max_processors = 8;
  double cycle_lo = 1.0;
  double cycle_hi = 6.0;
  double link_lo = 0.25;
  double link_hi = 3.0;
  /// Probability that the link matrix is uniform (one value for all
  /// pairs) instead of fully heterogeneous.
  double uniform_link_probability = 0.5;

  // DAG shape (fed to testbeds::make_random_layered with jitter).
  int min_layers = 3;
  int max_layers = 9;
  int max_width = 6;
  int max_in_degree = 3;
  double comm_lo = 0.0;  ///< comm ratios are drawn from [comm_lo, comm_hi)
  double comm_hi = 8.0;
};

struct Scenario {
  std::uint64_t seed = 0;
  std::string description;
  TaskGraph graph;
  Platform platform;
  /// Set for sparse (routed) platforms: schedulers must send messages
  /// between non-adjacent processors as store-and-forward chains along
  /// these shortest paths, and the invariant checkers validate the chains
  /// hop by hop against this table.
  std::optional<RoutingTable> routing;

  /// The form schedulers take the table in (nullptr = fully connected).
  [[nodiscard]] const RoutingTable* routing_ptr() const {
    return routing ? &*routing : nullptr;
  }
};

/// Deterministic random platform; respects `options`' platform knobs.
[[nodiscard]] Platform random_platform(std::uint64_t seed,
                                       const ScenarioOptions& options = {});

/// Deterministic random layered DAG; respects `options`' DAG knobs.
[[nodiscard]] TaskGraph random_graph(std::uint64_t seed,
                                     const ScenarioOptions& options = {});

/// Couples random_graph and random_platform under one seed.
[[nodiscard]] Scenario random_scenario(std::uint64_t seed,
                                       const ScenarioOptions& options = {});

/// `count` scenarios seeded base_seed, base_seed+1, ...  Every fourth
/// scenario pins an edge case (single processor, chain DAG, or
/// zero-communication edges) so sweeps always cover the degenerate
/// corners regardless of `count`.
[[nodiscard]] std::vector<Scenario> scenario_sweep(
    std::uint64_t base_seed, int count, const ScenarioOptions& options = {});

/// Hand-picked degenerate workloads that randomized sweeps are unlikely
/// to hit exactly: one task, one processor, an empty-communication fork,
/// a pure chain, and a wide independent-task bag.
[[nodiscard]] std::vector<Scenario> edge_case_scenarios();

/// `count` sparse-topology scenarios seeded base_seed, base_seed+1, ...
/// The topology rotates through ring, star, random connected graph, line,
/// the degenerate 2-processor network, 2D mesh, torus, fat tree, a
/// heterogeneous-cost mesh (seeded ':het' jitter, sometimes ':hot'
/// hotspots, under a per-seed routing policy), and a non-default-policy
/// network (':alt' / ':swp'); the structured shapes draw small random
/// dimensions per seed, so any sweep of >= 10 scenarios covers every
/// shape; cycle times, link costs and the DAG stay random per seed.
/// Every scenario carries its RoutingTable.
[[nodiscard]] std::vector<Scenario> routed_scenario_sweep(
    std::uint64_t base_seed, int count, const ScenarioOptions& options = {});

/// `count` scenarios over the ISSUE-10 workload families, rotating
/// through MLTRAIN (layered fwd/bwd chains with allreduce fan-in/out),
/// MICROSVC (shallow wide fanout with heavy-tailed service times), and
/// graphs that took a full DOT or JSON export -> import round trip
/// through graph/dot_import before scheduling -- so imported graphs get
/// the same P1-P5 verification depth as the synthetic kernels, and any
/// importer bug that perturbs structure trips the invariant battery.
/// Platforms stay random per seed (respecting `options`).
[[nodiscard]] std::vector<Scenario> workload_scenario_sweep(
    std::uint64_t base_seed, int count, const ScenarioOptions& options = {});

}  // namespace oneport::testsupport
