#include "support/dynamic_invariants.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sched/interval.hpp"
#include "sched/serialize.hpp"

namespace oneport::testsupport {
namespace {

using dyn::DynamicResult;
using dyn::EpochSnapshot;
using dyn::EventKind;
using dyn::PlatformEvent;

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string comm_str(const CommPlacement& c) {
  std::ostringstream os;
  os << c.src << "->" << c.dst << " P" << c.from << "->P" << c.to << " ["
     << fmt(c.start) << "," << fmt(c.finish) << ")";
  return os.str();
}

using CommKey = std::tuple<TaskId, TaskId, ProcId, ProcId, double, double>;

CommKey key_of(const CommPlacement& c) {
  return {c.src, c.dst, c.from, c.to, c.start, c.finish};
}

/// Sorted keys of an epoch's live + stale messages, for exact membership
/// queries.
std::vector<CommKey> all_comm_keys(const EpochSnapshot& epoch) {
  std::vector<CommKey> keys;
  keys.reserve(epoch.schedule.comms().size() + epoch.stale_comms.size());
  for (const CommPlacement& c : epoch.schedule.comms()) {
    keys.push_back(key_of(c));
  }
  for (const CommPlacement& c : epoch.stale_comms) keys.push_back(key_of(c));
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Index of the epoch whose platform state governs a reservation
/// starting at `start`: the last epoch at or before it.  Several epochs
/// can share a time; the later one wins, matching the event loop
/// (anything placed by an earlier same-time epoch is rescheduled by the
/// later one).
std::size_t epoch_at(const std::vector<EpochSnapshot>& epochs,
                     std::size_t limit, double start) {
  std::size_t j = 0;
  for (std::size_t k = 1; k < limit; ++k) {
    if (epochs[k].time <= start + kTimeEps) j = k;
  }
  return j;
}

/// Exclusive-resource check shared by compute and port rules: intervals
/// sorted by start must never overlap (touching allowed, degenerate
/// intervals ignored -- the overlaps() tolerance contract).
void check_exclusive(std::vector<Interval> ivs, const std::string& what,
                     std::vector<std::string>& errors) {
  std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
  double cursor = -1e300;
  for (const Interval& iv : ivs) {
    if (iv.degenerate()) continue;
    if (iv.start < cursor - kTimeEps) {
      errors.push_back(what + " overlap at [" + fmt(iv.start) + "," +
                       fmt(iv.end) + ")");
    }
    cursor = std::max(cursor, iv.end);
  }
}

}  // namespace

std::vector<std::string> check_dynamic_structure(
    const DynamicScenario& scenario, const DynamicResult& result) {
  std::vector<std::string> errors;
  const TaskGraph& g = scenario.base->graph;
  if (result.epochs.size() != scenario.trace.size() + 1) {
    errors.push_back("expected " + std::to_string(scenario.trace.size() + 1) +
                     " epochs, got " + std::to_string(result.epochs.size()));
    return errors;
  }
  if (result.epochs[0].time != 0.0) {
    errors.push_back("initial epoch time is " +
                     fmt(result.epochs[0].time) + ", not 0");
  }
  for (std::size_t k = 0; k < scenario.trace.size(); ++k) {
    if (result.epochs[k + 1].time != scenario.trace[k].time ||
        !(result.epochs[k + 1].event == scenario.trace[k])) {
      errors.push_back("epoch " + std::to_string(k + 1) +
                       " does not match trace event " + std::to_string(k));
    }
  }
  const EpochSnapshot& last = result.epochs.back();
  if (result.schedule.tasks() != last.schedule.tasks() ||
      result.schedule.comms() != last.schedule.comms()) {
    errors.push_back("final schedule differs from the last snapshot");
  }
  if (result.stale_comms != last.stale_comms) {
    errors.push_back("final stale list differs from the last snapshot");
  }
  if (result.schedule.num_tasks() != g.num_tasks()) {
    errors.push_back("final schedule has " +
                     std::to_string(result.schedule.num_tasks()) +
                     " tasks, graph has " + std::to_string(g.num_tasks()));
  } else if (!result.schedule.complete()) {
    errors.push_back("final schedule leaves tasks unplaced");
  }
  if (result.release.size() != g.num_tasks()) {
    errors.push_back("release vector arity mismatch");
  }
  return errors;
}

std::vector<std::string> check_frozen_prefix(const DynamicScenario& scenario,
                                             const DynamicResult& result) {
  (void)scenario;  // the property is intrinsic to the epoch history
  std::vector<std::string> errors;
  for (std::size_t k = 1; k < result.epochs.size(); ++k) {
    const EpochSnapshot& prev = result.epochs[k - 1];
    const EpochSnapshot& cur = result.epochs[k];
    const double now = cur.time;
    const std::string tag = "epoch " + std::to_string(k) + " (t=" +
                            fmt(now) + "): ";

    // Tasks: started-before-the-event placements replay identically;
    // everything else is re-placed no earlier than the event.
    for (TaskId v = 0; v < prev.schedule.num_tasks(); ++v) {
      const TaskPlacement& before = prev.schedule.task(v);
      const TaskPlacement& after = cur.schedule.task(v);
      if (before.placed() && before.start < now - kTimeEps) {
        if (!(after == before)) {
          errors.push_back(tag + "frozen task " + std::to_string(v) +
                           " moved");
        }
      } else if (after.placed() && after.start < now - kTimeEps) {
        errors.push_back(tag + "task " + std::to_string(v) +
                         " rescheduled into the past (start " +
                         fmt(after.start) + ")");
      }
    }

    // Messages: anything that started keeps existing, live or stale.
    const std::vector<CommKey> pool = all_comm_keys(cur);
    for (const CommPlacement& c : prev.schedule.comms()) {
      if (c.start >= now - kTimeEps) continue;  // cancelled before it ran
      if (!std::binary_search(pool.begin(), pool.end(), key_of(c))) {
        errors.push_back(tag + "started message vanished: " + comm_str(c));
      }
    }
    // The stale list only ever grows, in order.
    if (prev.stale_comms.size() > cur.stale_comms.size() ||
        !std::equal(prev.stale_comms.begin(), prev.stale_comms.end(),
                    cur.stale_comms.begin())) {
      errors.push_back(tag + "stale list is not append-only");
    }
  }
  return errors;
}

std::vector<std::string> check_epoch_validity(const DynamicScenario& scenario,
                                              const DynamicResult& result) {
  std::vector<std::string> errors;
  const TaskGraph& g = scenario.base->graph;
  const Platform& platform = scenario.base->platform;
  const RoutingTable* routing = scenario.base->routing_ptr();
  const int p = platform.num_processors();

  // Drop instants, accumulated as the trace unfolds.
  std::vector<double> drop_time(static_cast<std::size_t>(p), -1.0);

  for (std::size_t k = 0; k < result.epochs.size(); ++k) {
    const EpochSnapshot& epoch = result.epochs[k];
    const Schedule& sched = epoch.schedule;
    const std::string tag = "epoch " + std::to_string(k) + ": ";
    if (k > 0 && epoch.event.kind == EventKind::kDropout) {
      drop_time[static_cast<std::size_t>(epoch.event.proc)] = epoch.time;
    }

    // Placement rules per task.
    std::vector<std::vector<Interval>> compute(static_cast<std::size_t>(p));
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      const TaskPlacement& t = sched.task(v);
      if (!epoch.known[v]) {
        if (t.placed()) {
          errors.push_back(tag + "unknown task " + std::to_string(v) +
                           " is placed");
        }
        continue;
      }
      if (!t.placed()) {
        errors.push_back(tag + "known task " + std::to_string(v) +
                         " is unplaced");
        continue;
      }
      if (t.proc < 0 || t.proc >= p) {
        errors.push_back(tag + "task " + std::to_string(v) +
                         " on invalid processor " + std::to_string(t.proc));
        continue;
      }
      const double dropped_at = drop_time[static_cast<std::size_t>(t.proc)];
      if (dropped_at >= 0.0 && t.start >= dropped_at - kTimeEps) {
        errors.push_back(tag + "task " + std::to_string(v) +
                         " starts on P" + std::to_string(t.proc) +
                         " after it dropped out at " + fmt(dropped_at));
      }
      if (t.start < result.release[v] - kTimeEps) {
        errors.push_back(tag + "task " + std::to_string(v) + " starts at " +
                         fmt(t.start) + " before its release " +
                         fmt(result.release[v]));
      }
      // Duration follows the cycle time of the epoch the start falls in.
      const std::size_t j = epoch_at(result.epochs, k + 1, t.start);
      const double cycle =
          result.epochs[j].cycle_times[static_cast<std::size_t>(t.proc)];
      const double expected = g.weight(v) * cycle;
      if (std::abs((t.finish - t.start) - expected) > kTimeEps) {
        errors.push_back(tag + "task " + std::to_string(v) + " runs for " +
                         fmt(t.finish - t.start) + ", epoch " +
                         std::to_string(j) + " cycle time says " +
                         fmt(expected));
      }
      compute[static_cast<std::size_t>(t.proc)].push_back(
          {t.start, t.finish});
    }
    for (ProcId q = 0; q < p; ++q) {
      check_exclusive(std::move(compute[static_cast<std::size_t>(q)]),
                      tag + "compute P" + std::to_string(q), errors);
    }

    // One-port exclusivity over live AND stale messages: retired
    // messages still occupied their ports.
    if (scenario.model == CommModel::kOnePort) {
      std::vector<std::vector<Interval>> send(static_cast<std::size_t>(p));
      std::vector<std::vector<Interval>> recv(static_cast<std::size_t>(p));
      const auto absorb = [&](const CommPlacement& c) {
        if (c.from >= 0 && c.from < p && c.to >= 0 && c.to < p) {
          send[static_cast<std::size_t>(c.from)].push_back(
              {c.start, c.finish});
          recv[static_cast<std::size_t>(c.to)].push_back(
              {c.start, c.finish});
        }
      };
      for (const CommPlacement& c : sched.comms()) absorb(c);
      for (const CommPlacement& c : epoch.stale_comms) absorb(c);
      for (ProcId q = 0; q < p; ++q) {
        check_exclusive(std::move(send[static_cast<std::size_t>(q)]),
                        tag + "send port P" + std::to_string(q), errors);
        check_exclusive(std::move(recv[static_cast<std::size_t>(q)]),
                        tag + "recv port P" + std::to_string(q), errors);
      }
    }

    // Live chains: every cross-processor edge between placed tasks is
    // carried by exactly the routed hops, in order and on time.
    std::map<std::pair<TaskId, TaskId>, std::vector<const CommPlacement*>>
        by_edge;
    bool comms_ok = true;
    for (const CommPlacement& c : sched.comms()) {
      if (c.src >= g.num_tasks() || c.dst >= g.num_tasks() ||
          !g.has_edge(c.src, c.dst)) {
        errors.push_back(tag + "live message for non-edge " + comm_str(c));
        comms_ok = false;
        continue;
      }
      by_edge[{c.src, c.dst}].push_back(&c);
    }
    if (!comms_ok) continue;
    for (TaskId u = 0; u < g.num_tasks(); ++u) {
      const TaskPlacement& su = sched.task(u);
      if (!su.placed()) continue;
      for (const EdgeRef& e : g.successors(u)) {
        const TaskId v = e.task;
        const TaskPlacement& sv = sched.task(v);
        if (!sv.placed()) {
          if (by_edge.contains({u, v})) {
            errors.push_back(tag + "live chain for edge to unplaced task " +
                             std::to_string(v));
          }
          continue;
        }
        const std::string edge_name =
            std::to_string(u) + "->" + std::to_string(v);
        auto it = by_edge.find({u, v});
        if (su.proc == sv.proc) {
          if (it != by_edge.end()) {
            errors.push_back(tag + "message for co-located edge " +
                             edge_name);
          }
          continue;
        }
        if (it == by_edge.end()) {
          errors.push_back(tag + "cross-processor edge " + edge_name +
                           " has no chain");
          continue;
        }
        std::vector<const CommPlacement*>& msgs = it->second;
        std::sort(msgs.begin(), msgs.end(),
                  [](const CommPlacement* a, const CommPlacement* b) {
                    return a->start < b->start;
                  });
        const std::vector<ProcId> path =
            routing != nullptr
                ? routing->path(su.proc, sv.proc)
                : std::vector<ProcId>{su.proc, sv.proc};
        if (msgs.size() != path.size() - 1) {
          errors.push_back(tag + "edge " + edge_name + " carried by " +
                           std::to_string(msgs.size()) +
                           " hops; the routed path needs " +
                           std::to_string(path.size() - 1));
          continue;
        }
        double cursor = su.finish;
        for (std::size_t h = 0; h < msgs.size(); ++h) {
          const CommPlacement& c = *msgs[h];
          if (c.from != path[h] || c.to != path[h + 1]) {
            errors.push_back(tag + "edge " + edge_name + " hop " +
                             std::to_string(h) + " travels P" +
                             std::to_string(c.from) + "->P" +
                             std::to_string(c.to) +
                             " but the routed path says P" +
                             std::to_string(path[h]) + "->P" +
                             std::to_string(path[h + 1]));
            break;
          }
          const double duration = platform.comm_time(e.data, c.from, c.to);
          if (std::abs((c.finish - c.start) - duration) > kTimeEps) {
            errors.push_back(tag + "edge " + edge_name + " hop " +
                             std::to_string(h) + " lasts " +
                             fmt(c.finish - c.start) +
                             ", the link matrix says " + fmt(duration));
          }
          if (c.start < cursor - kTimeEps) {
            errors.push_back(tag + "edge " + edge_name + " hop " +
                             std::to_string(h) + " starts at " +
                             fmt(c.start) + " before its data is ready at " +
                             fmt(cursor));
          }
          cursor = std::max(cursor, c.finish);
        }
        if (cursor > sv.start + kTimeEps) {
          errors.push_back(tag + "edge " + edge_name + " delivers at " +
                           fmt(cursor) + " after the sink starts at " +
                           fmt(sv.start));
        }
      }
    }
  }
  return errors;
}

std::vector<std::string> check_dynamic_lower_bounds(
    const DynamicScenario& scenario, const DynamicResult& result) {
  std::vector<std::string> errors;
  const TaskGraph& g = scenario.base->graph;
  const Platform& platform = scenario.base->platform;
  const int p = platform.num_processors();
  const double makespan = result.schedule.makespan();

  // The most optimistic cycle time any epoch ever offered, per
  // processor and overall -- valid lower-bound material whatever the
  // trace did.
  std::vector<double> best(static_cast<std::size_t>(p), 0.0);
  for (ProcId q = 0; q < p; ++q) {
    best[static_cast<std::size_t>(q)] = platform.cycle_time(q);
    for (const EpochSnapshot& epoch : result.epochs) {
      best[static_cast<std::size_t>(q)] =
          std::min(best[static_cast<std::size_t>(q)],
                   epoch.cycle_times[static_cast<std::size_t>(q)]);
    }
  }
  const double min_cycle = *std::min_element(best.begin(), best.end());

  double aggregate = 0.0;
  for (const double t : best) aggregate += 1.0 / t;
  const double area_bound = g.total_weight() / aggregate;

  // Release-aware critical path on the fastest cycle ever seen.
  std::vector<double> done(g.num_tasks(), 0.0);
  double cp_bound = 0.0;
  for (const TaskId v : g.topological_order()) {
    double ready = result.release[v];
    for (const EdgeRef& in : g.predecessors(v)) {
      ready = std::max(ready, done[in.task]);
    }
    done[v] = ready + g.weight(v) * min_cycle;
    cp_bound = std::max(cp_bound, done[v]);
  }

  const struct {
    const char* name;
    double bound;
  } bounds[] = {{"area", area_bound}, {"release-critical-path", cp_bound}};
  for (const auto& b : bounds) {
    if (makespan < b.bound - kTimeEps) {
      errors.push_back("makespan " + fmt(makespan) + " beats the " +
                       b.name + " lower bound " + fmt(b.bound));
    }
  }
  return errors;
}

std::vector<std::string> check_dynamic_serialize(
    const DynamicScenario& scenario, const DynamicResult& result) {
  std::vector<std::string> errors;
  (void)scenario;
  std::stringstream io;
  write_schedule(io, result.schedule);
  Schedule reread;
  try {
    reread = read_schedule(io);
  } catch (const std::exception& e) {
    errors.push_back(std::string("final schedule failed to re-parse: ") +
                     e.what());
    return errors;
  }
  if (reread.tasks() != result.schedule.tasks() ||
      reread.comms() != result.schedule.comms()) {
    errors.push_back("final schedule round-trip is not bit-exact");
  }
  return errors;
}

std::vector<std::string> check_all_dynamic_invariants(
    const DynamicScenario& scenario, const DynamicResult& result) {
  std::vector<std::string> all;
  const auto absorb = [&](const char* property,
                          std::vector<std::string> errors) {
    for (std::string& e : errors) {
      all.push_back(scenario.description + " [" + property + "] " +
                    std::move(e));
    }
  };
  absorb("D1/structure", check_dynamic_structure(scenario, result));
  if (!all.empty()) return all;  // downstream checks assume the shape
  absorb("D2/frozen-prefix", check_frozen_prefix(scenario, result));
  absorb("D3/epoch-validity", check_epoch_validity(scenario, result));
  absorb("D4/lower-bounds", check_dynamic_lower_bounds(scenario, result));
  absorb("D5/serialize", check_dynamic_serialize(scenario, result));
  return all;
}

}  // namespace oneport::testsupport
