#include "support/faults.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace oneport::testsupport {
namespace {

/// Rebuilds a Schedule value from raw placement vectors (the Schedule
/// API deliberately has no mutating accessors).
Schedule rebuild(const std::vector<TaskPlacement>& tasks,
                 const std::vector<CommPlacement>& comms) {
  Schedule out(tasks.size());
  for (TaskId v = 0; v < tasks.size(); ++v) {
    out.place_task(v, tasks[v].proc, tasks[v].start, tasks[v].finish);
  }
  for (const CommPlacement& c : comms) out.add_comm(c);
  return out;
}

/// Message indices grouped by edge, each group in chain (start) order.
std::map<std::pair<TaskId, TaskId>, std::vector<std::size_t>> chains_of(
    const std::vector<CommPlacement>& comms) {
  std::map<std::pair<TaskId, TaskId>, std::vector<std::size_t>> chains;
  for (std::size_t c = 0; c < comms.size(); ++c) {
    chains[{comms[c].src, comms[c].dst}].push_back(c);
  }
  for (auto& [key, chain] : chains) {
    std::sort(chain.begin(), chain.end(),
              [&comms](std::size_t a, std::size_t b) {
                return comms[a].start < comms[b].start;
              });
  }
  return chains;
}

/// Shifts comms[later] so it strictly overlaps comms[earlier].
Schedule overlap_messages(const Schedule& schedule, std::size_t earlier,
                          std::size_t later) {
  std::vector<CommPlacement> comms = schedule.comms();
  const double duration = comms[later].finish - comms[later].start;
  const double mid =
      0.5 * (comms[earlier].start + comms[earlier].finish);
  comms[later].start = mid;
  comms[later].finish = mid + duration;
  return rebuild(schedule.tasks(), comms);
}

/// First pair of distinct non-degenerate messages sharing a port, by the
/// given port-of-message projection; throws when there is none.
std::pair<std::size_t, std::size_t> shared_port_pair(
    const std::vector<CommPlacement>& comms, ProcId CommPlacement::*port) {
  for (std::size_t a = 0; a < comms.size(); ++a) {
    if (comms[a].finish <= comms[a].start) continue;
    for (std::size_t b = a + 1; b < comms.size(); ++b) {
      if (comms[b].finish <= comms[b].start) continue;
      if (comms[a].*port != comms[b].*port) continue;
      return comms[a].start <= comms[b].start ? std::pair{a, b}
                                              : std::pair{b, a};
    }
  }
  OP_REQUIRE(false, "no two messages share that port");
  return {0, 0};  // unreachable
}

}  // namespace

Schedule drop_chain_hop(const Schedule& schedule) {
  const std::vector<CommPlacement>& comms = schedule.comms();
  for (const auto& [key, chain] : chains_of(comms)) {
    if (chain.size() < 2) continue;
    std::vector<CommPlacement> mutated;
    for (std::size_t c = 0; c < comms.size(); ++c) {
      if (c != chain[1]) mutated.push_back(comms[c]);
    }
    return rebuild(schedule.tasks(), mutated);
  }
  OP_REQUIRE(false, "no multi-hop chain to drop a hop from");
  return schedule;  // unreachable
}

Schedule drop_edge_messages(const Schedule& schedule) {
  const std::vector<CommPlacement>& comms = schedule.comms();
  OP_REQUIRE(!comms.empty(), "no message to drop");
  const TaskId src = comms.front().src;
  const TaskId dst = comms.front().dst;
  std::vector<CommPlacement> mutated;
  for (const CommPlacement& c : comms) {
    if (c.src != src || c.dst != dst) mutated.push_back(c);
  }
  return rebuild(schedule.tasks(), mutated);
}

Schedule shift_receive_before_send(const Schedule& schedule) {
  const std::vector<CommPlacement>& comms = schedule.comms();
  for (const auto& [key, chain] : chains_of(comms)) {
    const CommPlacement& first = comms[chain.front()];
    const double src_finish = schedule.task(first.src).finish;
    std::vector<CommPlacement> mutated = comms;
    CommPlacement& m = mutated[chain.front()];
    const double duration = m.finish - m.start;
    // Strictly before the source finishes, by a full time unit, so the
    // violation is beyond every epsilon tolerance.
    m.start = src_finish - duration - 1.0;
    m.finish = m.start + duration;
    return rebuild(schedule.tasks(), mutated);
  }
  OP_REQUIRE(false, "no message to shift");
  return schedule;  // unreachable
}

Schedule overlap_send_port(const Schedule& schedule) {
  const auto [earlier, later] =
      shared_port_pair(schedule.comms(), &CommPlacement::from);
  return overlap_messages(schedule, earlier, later);
}

Schedule overlap_recv_port(const Schedule& schedule) {
  const auto [earlier, later] =
      shared_port_pair(schedule.comms(), &CommPlacement::to);
  return overlap_messages(schedule, earlier, later);
}

Schedule overlap_compute(const Schedule& schedule) {
  const std::vector<TaskPlacement>& tasks = schedule.tasks();
  for (TaskId a = 0; a < tasks.size(); ++a) {
    for (TaskId b = a + 1; b < tasks.size(); ++b) {
      if (tasks[a].proc != tasks[b].proc) continue;
      const TaskId earlier = tasks[a].start <= tasks[b].start ? a : b;
      const TaskId later = earlier == a ? b : a;
      std::vector<TaskPlacement> mutated = tasks;
      const double duration =
          mutated[later].finish - mutated[later].start;
      const double mid =
          0.5 * (mutated[earlier].start + mutated[earlier].finish);
      mutated[later].start = mid;
      mutated[later].finish = mid + duration;
      return rebuild(mutated, schedule.comms());
    }
  }
  OP_REQUIRE(false, "no two tasks share a processor");
  return schedule;  // unreachable
}

Schedule stretch_task_duration(const Schedule& schedule) {
  std::vector<TaskPlacement> tasks = schedule.tasks();
  OP_REQUIRE(!tasks.empty(), "no task to stretch");
  TaskPlacement& t = tasks.front();
  t.finish += 0.5 * (t.finish - t.start) + 1.0;
  return rebuild(tasks, schedule.comms());
}

Schedule misplace_task(const Schedule& schedule, int bad_proc) {
  std::vector<TaskPlacement> tasks = schedule.tasks();
  OP_REQUIRE(!tasks.empty(), "no task to misplace");
  tasks.front().proc = bad_proc;
  return rebuild(tasks, schedule.comms());
}

Schedule duplicate_message(const Schedule& schedule) {
  std::vector<CommPlacement> comms = schedule.comms();
  OP_REQUIRE(!comms.empty(), "no message to duplicate");
  comms.push_back(comms.front());
  return rebuild(schedule.tasks(), comms);
}

Schedule reroute_chain_hop(const Schedule& schedule, ProcId via) {
  const std::vector<CommPlacement>& comms = schedule.comms();
  for (const auto& [key, chain] : chains_of(comms)) {
    if (chain.size() != 2) continue;
    OP_REQUIRE(via != comms[chain[0]].to,
               "`via` is already the chain's intermediate");
    OP_REQUIRE(via != comms[chain[0]].from && via != comms[chain[1]].to,
               "`via` must be a third processor");
    std::vector<CommPlacement> mutated = comms;
    mutated[chain[0]].to = via;
    mutated[chain[1]].from = via;
    return rebuild(schedule.tasks(), mutated);
  }
  OP_REQUIRE(false, "no exactly-two-hop chain to reroute");
  return schedule;  // unreachable
}

Schedule compress_schedule(const Schedule& schedule, double factor) {
  OP_REQUIRE(factor > 0.0 && factor < 1.0, "factor must be in (0, 1)");
  std::vector<TaskPlacement> tasks = schedule.tasks();
  std::vector<CommPlacement> comms = schedule.comms();
  for (TaskPlacement& t : tasks) {
    t.start *= factor;
    t.finish *= factor;
  }
  for (CommPlacement& c : comms) {
    c.start *= factor;
    c.finish *= factor;
  }
  return rebuild(tasks, comms);
}

}  // namespace oneport::testsupport
