#include "support/invariants.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sched/interval.hpp"
#include "sched/serialize.hpp"
#include "sched/validate.hpp"

namespace oneport::testsupport {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::vector<std::string> check_valid(const Scenario& scenario,
                                     const Schedule& schedule,
                                     CommModel model) {
  std::vector<std::string> errors;
  if (schedule.num_tasks() != scenario.graph.num_tasks()) {
    errors.push_back("schedule has " + std::to_string(schedule.num_tasks()) +
                     " tasks, graph has " +
                     std::to_string(scenario.graph.num_tasks()));
    return errors;
  }
  if (!schedule.complete()) {
    errors.push_back("schedule is incomplete (unplaced tasks)");
    return errors;
  }
  const ValidationResult check =
      model == CommModel::kOnePort
          ? validate_one_port(schedule, scenario.graph, scenario.platform)
          : validate_macro_dataflow(schedule, scenario.graph,
                                    scenario.platform);
  for (const std::string& e : check.errors) errors.push_back(e);
  return errors;
}

std::vector<std::string> check_makespan_lower_bounds(const Scenario& scenario,
                                                     const Schedule& schedule) {
  std::vector<std::string> errors;
  const TaskGraph& g = scenario.graph;
  const Platform& p = scenario.platform;
  const double makespan = schedule.makespan();

  double min_cycle = p.cycle_time(0);
  for (ProcId q = 1; q < p.num_processors(); ++q) {
    min_cycle = std::min(min_cycle, p.cycle_time(q));
  }

  // (a) heaviest task on the fastest processor.
  double heaviest = 0.0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    heaviest = std::max(heaviest, g.weight(v));
  }
  const double single_task_bound = heaviest * min_cycle;

  // (b) perfectly divisible work over the aggregate speed.
  const double area_bound = g.total_weight() / p.aggregate_speed();

  // (c) communication-free critical path, every task on the fastest
  // processor -- a relaxation of any legal execution.
  std::vector<double> done(g.num_tasks(), 0.0);
  double cp_bound = 0.0;
  for (const TaskId v : g.topological_order()) {
    double ready = 0.0;
    for (const EdgeRef& in : g.predecessors(v)) {
      ready = std::max(ready, done[in.task]);
    }
    done[v] = ready + g.weight(v) * min_cycle;
    cp_bound = std::max(cp_bound, done[v]);
  }

  const struct {
    const char* name;
    double bound;
  } bounds[] = {{"single-task", single_task_bound},
                {"area", area_bound},
                {"critical-path", cp_bound}};
  for (const auto& b : bounds) {
    if (makespan < b.bound - kTimeEps) {
      errors.push_back(std::string("makespan ") + fmt(makespan) +
                       " beats the " + b.name + " lower bound " +
                       fmt(b.bound));
    }
  }
  return errors;
}

std::vector<std::string> check_replay_dominance(const Scenario& scenario,
                                                const Schedule& schedule,
                                                CommModel model) {
  std::vector<std::string> errors;
  const double makespan = schedule.makespan();

  const Schedule same =
      asap_replay(schedule, scenario.graph, scenario.platform, model);
  if (same.makespan() > makespan + kTimeEps) {
    errors.push_back("ASAP replay under the same model worsened the "
                     "makespan: " +
                     fmt(makespan) + " -> " + fmt(same.makespan()));
  }

  if (model == CommModel::kOnePort) {
    // Macro-dataflow drops the port constraints, so replaying the same
    // decisions under the relaxed rules can only help.
    const Schedule relaxed = asap_replay(schedule, scenario.graph,
                                         scenario.platform,
                                         CommModel::kMacroDataflow);
    if (relaxed.makespan() > makespan + kTimeEps) {
      errors.push_back("macro-dataflow relaxation worsened the makespan: " +
                       fmt(makespan) + " -> " + fmt(relaxed.makespan()));
    }
  }
  return errors;
}

std::vector<std::string> check_serialize_round_trip(const Scenario& scenario,
                                                    const Schedule& schedule,
                                                    CommModel model) {
  std::vector<std::string> errors;

  std::stringstream graph_io;
  write_task_graph(graph_io, scenario.graph);
  TaskGraph graph2;
  try {
    graph2 = read_task_graph(graph_io);
  } catch (const std::exception& e) {
    errors.push_back(std::string("graph round-trip failed to parse: ") +
                     e.what());
    return errors;
  }
  if (graph2.num_tasks() != scenario.graph.num_tasks() ||
      graph2.num_edges() != scenario.graph.num_edges()) {
    errors.push_back("graph round-trip changed the shape");
    return errors;
  }
  for (TaskId v = 0; v < scenario.graph.num_tasks(); ++v) {
    if (graph2.weight(v) != scenario.graph.weight(v)) {
      errors.push_back("graph round-trip changed weight of task " +
                       std::to_string(v));
    }
    for (const EdgeRef& out : scenario.graph.successors(v)) {
      if (!graph2.has_edge(v, out.task) ||
          graph2.edge_data(v, out.task) != out.data) {
        errors.push_back("graph round-trip lost or changed edge " +
                         std::to_string(v) + "->" + std::to_string(out.task));
      }
    }
  }

  std::stringstream sched_io;
  write_schedule(sched_io, schedule);
  Schedule schedule2;
  try {
    schedule2 = read_schedule(sched_io);
  } catch (const std::exception& e) {
    errors.push_back(std::string("schedule round-trip failed to parse: ") +
                     e.what());
    return errors;
  }
  if (schedule2.tasks() != schedule.tasks() ||
      schedule2.comms() != schedule.comms()) {
    errors.push_back("schedule round-trip is not bit-exact");
  }
  // The reread schedule must still pass the independent validator against
  // the reread graph.
  const ValidationResult check =
      model == CommModel::kOnePort
          ? validate_one_port(schedule2, graph2, scenario.platform)
          : validate_macro_dataflow(schedule2, graph2, scenario.platform);
  if (!check.ok()) {
    errors.push_back("reread schedule fails validation:\n" + check.message());
  }
  return errors;
}

std::vector<std::string> check_comm_bounds(const Scenario& scenario,
                                           const Schedule& schedule) {
  std::vector<std::string> errors;
  const TaskGraph& g = scenario.graph;
  const RoutingTable* routing = scenario.routing_ptr();

  if (scenario.platform.num_processors() == 1 && schedule.num_comms() != 0) {
    errors.push_back("messages on a single-processor platform");
  }

  // Group messages by edge; order within a group by start time (the
  // store-and-forward chain order).
  std::map<std::pair<TaskId, TaskId>, std::vector<const CommPlacement*>>
      by_edge;
  for (const CommPlacement& c : schedule.comms()) {
    if (c.src >= g.num_tasks() || c.dst >= g.num_tasks() ||
        !g.has_edge(c.src, c.dst)) {
      errors.push_back("message for non-edge " + std::to_string(c.src) +
                       "->" + std::to_string(c.dst));
      continue;
    }
    by_edge[{c.src, c.dst}].push_back(&c);
  }

  for (auto& [key, msgs] : by_edge) {
    const auto [u, v] = key;
    const std::string edge_name =
        std::to_string(u) + "->" + std::to_string(v);
    const ProcId q = schedule.task(u).proc;
    const ProcId r = schedule.task(v).proc;
    if (q == r) {
      errors.push_back("message for co-located edge " + edge_name);
      continue;
    }
    // Out-of-range endpoints are an M1 violation; report instead of
    // letting the routing-table lookup below throw, so the checker keeps
    // its return-the-violations contract on arbitrary mutated schedules.
    const int p = scenario.platform.num_processors();
    if (q < 0 || q >= p || r < 0 || r >= p) {
      errors.push_back("edge " + edge_name +
                       " endpoint on invalid processor");
      continue;
    }
    std::sort(msgs.begin(), msgs.end(),
              [](const CommPlacement* a, const CommPlacement* b) {
                return a->start < b->start;
              });
    if (routing == nullptr) {
      // Fully connected: exactly one direct message per cross-processor
      // edge.
      if (msgs.size() != 1) {
        errors.push_back("duplicate message for edge " + edge_name);
      }
      continue;
    }
    // Routed: the messages must be exactly the hops of the table's path
    // between the endpoint processors, in order.
    const std::vector<ProcId> path = routing->path(q, r);
    if (msgs.size() != path.size() - 1) {
      errors.push_back("edge " + edge_name + " carried by " +
                       std::to_string(msgs.size()) +
                       " hops; the routed path needs " +
                       std::to_string(path.size() - 1));
      continue;
    }
    for (std::size_t h = 0; h < msgs.size(); ++h) {
      if (msgs[h]->from != path[h] || msgs[h]->to != path[h + 1]) {
        errors.push_back("edge " + edge_name + " hop " + std::to_string(h) +
                         " travels P" + std::to_string(msgs[h]->from) +
                         "->P" + std::to_string(msgs[h]->to) +
                         " but the routed path says P" +
                         std::to_string(path[h]) + "->P" +
                         std::to_string(path[h + 1]));
      }
    }
  }
  return errors;
}

std::vector<std::string> check_all_invariants(const Scenario& scenario,
                                              const Schedule& schedule,
                                              CommModel model) {
  std::vector<std::string> all;
  const auto absorb = [&](const char* property,
                          std::vector<std::string> errors) {
    for (std::string& e : errors) {
      all.push_back(scenario.description + " [" + property + "] " +
                    std::move(e));
    }
  };
  absorb("P1/valid", check_valid(scenario, schedule, model));
  if (!all.empty()) return all;  // downstream checks assume validity
  absorb("P2/lower-bounds", check_makespan_lower_bounds(scenario, schedule));
  absorb("P3/replay", check_replay_dominance(scenario, schedule, model));
  absorb("P4/serialize",
         check_serialize_round_trip(scenario, schedule, model));
  absorb("P5/comm-bounds", check_comm_bounds(scenario, schedule));
  return all;
}

}  // namespace oneport::testsupport
