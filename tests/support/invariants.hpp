// Reusable schedule invariant checkers for property sweeps.
//
// Each checker returns the list of violations it found (empty = the
// property holds), so a sweep can aggregate everything that went wrong
// for one scenario instead of stopping at the first failure.  They are
// deliberately layered on the *independent* machinery of the library --
// sched/validate.hpp, sched/replay.hpp, sched/serialize.hpp -- so a bug
// in a heuristic cannot be masked by that heuristic's own bookkeeping.
//
// Properties checked:
//   P1 completeness + model validation (M1-M5, and O1-O2 for one-port);
//   P2 makespan lower bounds: the makespan of any valid schedule
//      dominates (a) the heaviest single task on the fastest processor,
//      (b) perfectly divisible work over the aggregate speed, and
//      (c) the communication-free critical path;
//   P3 replay dominance: an ASAP replay under the same model never
//      increases the makespan, and relaxing a one-port schedule to the
//      macro-dataflow rules never increases it either;
//   P4 serialize round-trip: graph and schedule survive a write -> read
//      cycle bit-exactly;
//   P5 communication bounds: every message maps to a cross-processor
//      edge; on fully-connected platforms each such edge carries exactly
//      one direct message (so #comms <= #edges, and 0 on a
//      single-processor platform), while on routed platforms each edge's
//      messages must be exactly the hops of the scenario's RoutingTable
//      path between the endpoint processors, in order.
#pragma once

#include <string>
#include <vector>

#include "sched/replay.hpp"
#include "sched/schedule.hpp"
#include "support/scenario.hpp"

namespace oneport::testsupport {

/// P1: schedule is complete and passes the model's validator.
[[nodiscard]] std::vector<std::string> check_valid(const Scenario& scenario,
                                                   const Schedule& schedule,
                                                   CommModel model);

/// P2: makespan dominates the three communication-free lower bounds.
[[nodiscard]] std::vector<std::string> check_makespan_lower_bounds(
    const Scenario& scenario, const Schedule& schedule);

/// P3: ASAP replay under `model` does not increase the makespan; for
/// one-port schedules, the macro-dataflow relaxation does not either.
[[nodiscard]] std::vector<std::string> check_replay_dominance(
    const Scenario& scenario, const Schedule& schedule, CommModel model);

/// P4: write_task_graph/read_task_graph and write_schedule/read_schedule
/// round-trip bit-exactly (and the reread schedule still validates).
[[nodiscard]] std::vector<std::string> check_serialize_round_trip(
    const Scenario& scenario, const Schedule& schedule, CommModel model);

/// P5: messages biject into a subset of the cross-processor edges; with
/// scenario routing, each edge's chain must follow the routed path hop by
/// hop.
[[nodiscard]] std::vector<std::string> check_comm_bounds(
    const Scenario& scenario, const Schedule& schedule);

/// Runs P1-P5 and returns every violation, each prefixed with the
/// scenario description and the property id.
[[nodiscard]] std::vector<std::string> check_all_invariants(
    const Scenario& scenario, const Schedule& schedule, CommModel model);

}  // namespace oneport::testsupport
