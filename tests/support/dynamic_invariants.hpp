// Extended P1-P5 checkers for online rescheduling (src/dynamic): replay
// the frozen prefix across epochs and validate each epoch's rescheduled
// suffix hop by hop, including under routed topologies.
//
// A DynamicResult is not one schedule but a *history*: epochs[0] is the
// initial static schedule and every event contributes a snapshot of the
// composite state right after its reschedule.  The static validators
// cannot judge it (task durations follow the cycle time in force when
// the task started, superseded messages occupy ports without delivering
// anything), so this checker re-derives the rules epoch by epoch:
//
//   D1 structure      one epoch per event, times match the trace, the
//                     final schedule is the last snapshot and covers
//                     every task;
//   D2 frozen prefix  anything started before an event keeps its exact
//                     placement in every later epoch, messages that ran
//                     are never dropped (they move to the stale list at
//                     worst), and new placements never start before the
//                     event that caused them;
//   D3 epoch validity per epoch: placements on valid processors, no
//                     task starts on a dropped processor at or after
//                     the drop, durations match the epoch-attributed
//                     cycle times, compute exclusivity, one-port send/
//                     receive exclusivity over live AND stale messages,
//                     and every cross-processor edge carried by a chain
//                     that leaves after the source finishes, hops in
//                     order along the routed path, and lands before the
//                     sink starts -- with per-hop durations priced by
//                     the link matrix;
//   D4 lower bounds   the final makespan dominates optimistic area /
//                     critical-path / release-time bounds built from
//                     the *best* cycle time any epoch ever offered;
//   D5 serialize      the final composite schedule round-trips through
//                     the text format bit-exactly.
#pragma once

#include <string>
#include <vector>

#include "dynamic/events.hpp"
#include "dynamic/reschedule.hpp"
#include "sched/replay.hpp"
#include "support/scenario.hpp"

namespace oneport::testsupport {

/// Inputs of one dynamic run under test.
struct DynamicScenario {
  const Scenario* base = nullptr;  ///< graph + platform (+ routing)
  CommModel model = CommModel::kOnePort;
  dyn::EventTrace trace;
  std::string description;
};

[[nodiscard]] std::vector<std::string> check_dynamic_structure(
    const DynamicScenario& scenario, const dyn::DynamicResult& result);

[[nodiscard]] std::vector<std::string> check_frozen_prefix(
    const DynamicScenario& scenario, const dyn::DynamicResult& result);

[[nodiscard]] std::vector<std::string> check_epoch_validity(
    const DynamicScenario& scenario, const dyn::DynamicResult& result);

[[nodiscard]] std::vector<std::string> check_dynamic_lower_bounds(
    const DynamicScenario& scenario, const dyn::DynamicResult& result);

[[nodiscard]] std::vector<std::string> check_dynamic_serialize(
    const DynamicScenario& scenario, const dyn::DynamicResult& result);

/// Runs D1-D5 and returns every violation, each prefixed with the
/// scenario description and the property id (mirrors
/// check_all_invariants for static schedules).
[[nodiscard]] std::vector<std::string> check_all_dynamic_invariants(
    const DynamicScenario& scenario, const dyn::DynamicResult& result);

}  // namespace oneport::testsupport
