// Deterministic schedule mutators for validator fault-injection tests.
//
// Each mutator copies a *valid* schedule and injects exactly one targeted
// rule violation, so a test can assert that the corresponding checker --
// and only a deliberately chosen checker -- flags it.  Mutators throw
// std::invalid_argument when the schedule has no site to mutate (e.g. no
// multi-hop chain to drop a hop from): a fault test that silently checks
// nothing is worse than a failing one.
//
// Mutator -> targeted rule (see sched/validate.hpp and
// support/invariants.hpp):
//   drop_chain_hop            M5: a store-and-forward chain no longer
//                             reaches the sink's processor
//   drop_edge_messages        M4: cross-processor edge with no message
//   shift_receive_before_send M4: first hop starts before the source
//                             task finishes
//   overlap_send_port         O1: two messages overlap on a send port
//   overlap_recv_port         O2: two messages overlap on a receive port
//   overlap_compute           M3: two tasks overlap on one processor
//   stretch_task_duration     M2: task duration != w * t
//   misplace_task             M1: task placed on an invalid processor
//   duplicate_message         P5: two messages for one direct edge
//   reroute_chain_hop         P5: chain deviates from the routed path
//                             (stays M1-M5/O1-O2 clean on symmetric-cost
//                             topologies -- only the routing-aware
//                             invariant can catch it)
//   compress_schedule         P2: makespan beats the lower bounds
#pragma once

#include "sched/schedule.hpp"

namespace oneport::testsupport {

/// Removes the second hop of the first multi-hop chain.
[[nodiscard]] Schedule drop_chain_hop(const Schedule& schedule);

/// Removes every message of the first cross-processor edge.
[[nodiscard]] Schedule drop_edge_messages(const Schedule& schedule);

/// Moves the first chain-leading message to start strictly before its
/// source task finishes (duration preserved).
[[nodiscard]] Schedule shift_receive_before_send(const Schedule& schedule);

/// Shifts the later of two messages sharing a send port onto the earlier.
[[nodiscard]] Schedule overlap_send_port(const Schedule& schedule);

/// Shifts the later of two messages sharing a receive port onto the
/// earlier.
[[nodiscard]] Schedule overlap_recv_port(const Schedule& schedule);

/// Shifts the later of two tasks sharing a processor onto the earlier.
[[nodiscard]] Schedule overlap_compute(const Schedule& schedule);

/// Stretches the duration of the first task by 50% plus one time unit.
[[nodiscard]] Schedule stretch_task_duration(const Schedule& schedule);

/// Moves the first task to processor id `bad_proc` (pass the platform's
/// processor count for an out-of-range placement).
[[nodiscard]] Schedule misplace_task(const Schedule& schedule, int bad_proc);

/// Appends a verbatim copy of the first message.
[[nodiscard]] Schedule duplicate_message(const Schedule& schedule);

/// Redirects the first exactly-two-hop chain through `via` instead of its
/// scheduled intermediate (hop durations are preserved, so on topologies
/// with symmetric link costs the result still satisfies M1-M5).
[[nodiscard]] Schedule reroute_chain_hop(const Schedule& schedule,
                                         ProcId via);

/// Scales every task and message date by `factor` (in (0, 1)).
[[nodiscard]] Schedule compress_schedule(const Schedule& schedule,
                                         double factor);

}  // namespace oneport::testsupport
