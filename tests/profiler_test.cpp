// Per-thread scalability profiler (util/profiler.hpp): the zero-overhead
// contract when disabled, counter semantics when enabled, and the pin
// that turning the profiler on cannot change a single scheduling
// decision.
//
// ORDERING MATTERS: counter slabs persist for the process lifetime once
// any thread bumps while enabled, so the "disabled path never allocates"
// pin must be the FIRST test in this file -- gtest runs tests in
// definition order within a binary.  Every later test that enables the
// profiler uses ScopedProfiler, which restores the previous state and
// resets the counters it produced.
#include <gtest/gtest.h>

#include <string>

#include "core/registry.hpp"
#include "sched/schedule.hpp"
#include "support/scenario.hpp"
#include "util/env_knobs.hpp"
#include "util/profiler.hpp"
#include "util/thread_pool.hpp"

namespace oneport {
namespace {

using testsupport::Scenario;

Scenario make_scenario() { return testsupport::random_scenario(7207); }

Schedule run_heft(const Scenario& scenario) {
  return find_scheduler("heft-oneport")
      .run(scenario.graph, scenario.platform);
}

// The zero-overhead pin, stated as a provable allocation property rather
// than a flaky wall-clock delta: while the profiler is disabled, no
// counter ever moves and no per-thread slab is ever allocated -- even
// though the scheduling hot path calls prof::bump() millions of times.
// MUST STAY THE FIRST TEST IN THIS FILE (see header comment).
TEST(ProfilerDisabled, NeverAllocatesSlabsOrMovesCounters) {
  if (env::flag(env::Knob::kProfile)) {
    GTEST_SKIP() << "ONEPORT_PROFILE is set: slabs legitimately exist";
  }
  ASSERT_FALSE(prof::enabled());
  const Scenario scenario = make_scenario();
  const Schedule schedule = run_heft(scenario);
  ASSERT_GT(schedule.num_tasks(), 0u);
  // Exercise the thread-pool probe sites too.
  ThreadPool pool(2);
  pool.parallel_for(16, [](std::size_t) {});
  EXPECT_EQ(prof::slab_count(), 0u)
      << "the disabled path allocated a counter slab, breaking the "
         "zero-overhead contract";
  const prof::Counts totals = prof::aggregate();
  for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
    EXPECT_EQ(totals[i], 0u)
        << "counter " << prof::counter_name(static_cast<prof::Counter>(i))
        << " moved while the profiler was disabled";
  }
}

TEST(Profiler, CounterNamesAreStableSnakeCase) {
  EXPECT_STREQ(prof::counter_name(prof::Counter::kTimelineNextFit),
               "timeline_next_fit");
  EXPECT_STREQ(prof::counter_name(prof::Counter::kEngineCommits),
               "engine_commits");
  EXPECT_STREQ(prof::counter_name(prof::Counter::kCalendarRebuilds),
               "calendar_rebuilds");
  EXPECT_STREQ(prof::counter_name(prof::Counter::kPoolTaskNanos),
               "pool_task_nanos");
  for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
    const char* name = prof::counter_name(static_cast<prof::Counter>(i));
    ASSERT_NE(name, nullptr);
    for (const char* p = name; *p != '\0'; ++p) {
      EXPECT_TRUE((*p >= 'a' && *p <= 'z') || (*p >= '0' && *p <= '9') ||
                  *p == '_')
          << "counter name '" << name << "' is not snake_case";
    }
  }
}

TEST(Profiler, ScopedProfilerRestoresPreviousState) {
  if (!prof::compiled_in()) GTEST_SKIP() << "built with ONEPORT_PROFILER=OFF";
  const bool before = prof::enabled();
  {
    prof::ScopedProfiler guard(true);
    EXPECT_TRUE(prof::enabled());
    {
      prof::ScopedProfiler inner(false);
      EXPECT_FALSE(prof::enabled());
    }
    EXPECT_TRUE(prof::enabled());
  }
  EXPECT_EQ(prof::enabled(), before);
}

// One static HEFT run commits each task exactly once, so the
// engine_commits counter is an exact pin, and the timeline probe
// counters must have moved (every placement probes at least one
// processor timeline).
TEST(Profiler, CountersTrackOneScheduleRunExactly) {
  if (!prof::compiled_in()) GTEST_SKIP() << "built with ONEPORT_PROFILER=OFF";
  const Scenario scenario = make_scenario();
  prof::ScopedProfiler guard(true);
  prof::reset();
  const Schedule schedule = run_heft(scenario);
  EXPECT_GE(prof::slab_count(), 1u);
  const prof::Counts totals = prof::aggregate();
  EXPECT_EQ(totals[static_cast<std::size_t>(prof::Counter::kEngineCommits)],
            static_cast<std::uint64_t>(schedule.num_tasks()));
  EXPECT_GT(totals[static_cast<std::size_t>(prof::Counter::kTimelineNextFit)],
            0u);
  EXPECT_GT(totals[static_cast<std::size_t>(prof::Counter::kTimelineReserves)],
            0u);
}

TEST(Profiler, ResetZeroesEveryRegisteredSlab) {
  if (!prof::compiled_in()) GTEST_SKIP() << "built with ONEPORT_PROFILER=OFF";
  const Scenario scenario = make_scenario();
  prof::ScopedProfiler guard(true);
  (void)run_heft(scenario);
  ASSERT_GE(prof::slab_count(), 1u);
  prof::reset();
  const prof::Counts totals = prof::aggregate();
  for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
    EXPECT_EQ(totals[i], 0u)
        << prof::counter_name(static_cast<prof::Counter>(i));
  }
  // Slabs stay registered across reset; only the counts are zeroed.
  EXPECT_GE(prof::slab_count(), 1u);
}

TEST(Profiler, PoolJobsAreCountedWithWallTime) {
  if (!prof::compiled_in()) GTEST_SKIP() << "built with ONEPORT_PROFILER=OFF";
  prof::ScopedProfiler guard(true);
  prof::reset();
  ThreadPool pool(2);
  pool.parallel_for(32, [](std::size_t) {});
  const prof::Counts totals = prof::aggregate();
  EXPECT_EQ(totals[static_cast<std::size_t>(prof::Counter::kPoolTasks)], 2u)
      << "parallel_for submits one lane job per worker";
}

// The behavioral pin: profiling observes, never steers.  The same
// (graph, platform, heuristic) input must yield bit-identical schedules
// with the profiler on and off, for every registered heuristic.
TEST(Profiler, SchedulesAreBitIdenticalProfilerOnVsOff) {
  if (!prof::compiled_in()) GTEST_SKIP() << "built with ONEPORT_PROFILER=OFF";
  for (const Scenario& scenario : testsupport::scenario_sweep(7307, 4)) {
    for (const SchedulerEntry& entry : builtin_schedulers(
             SchedulerConfig{.ilha_chunk_size = 5,
                             .routing = scenario.routing_ptr()})) {
      SCOPED_TRACE(scenario.description + " scheduler=" + entry.name);
      Schedule off_schedule;
      Schedule on_schedule;
      {
        prof::ScopedProfiler guard(false);
        off_schedule = entry.run(scenario.graph, scenario.platform);
      }
      {
        prof::ScopedProfiler guard(true);
        on_schedule = entry.run(scenario.graph, scenario.platform);
      }
      EXPECT_TRUE(off_schedule.tasks() == on_schedule.tasks())
          << "profiler changed task placements";
      EXPECT_TRUE(off_schedule.comms() == on_schedule.comms())
          << "profiler changed communications";
      EXPECT_EQ(off_schedule.makespan(), on_schedule.makespan());
    }
  }
}

}  // namespace
}  // namespace oneport
