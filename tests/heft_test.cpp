#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "core/priorities.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(Priorities, AveragedBottomLevelsUseHarmonicMeans) {
  TaskGraph g;
  g.add_task(2.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 3.0);
  g.finalize();
  const Platform p({2.0, 2.0}, 4.0);  // H(t) = 2, H(link) = 4
  const auto bl = averaged_bottom_levels(g, p);
  EXPECT_DOUBLE_EQ(bl[1], 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(bl[0], 2.0 * 2.0 + 3.0 * 4.0 + 2.0);
}

TEST(Heft, SingleTaskGoesToFastestProcessor) {
  TaskGraph g;
  g.add_task(4.0);
  g.finalize();
  const Platform p({3.0, 1.0, 2.0}, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_EQ(s.task(0).proc, 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
}

TEST(Heft, ChainStaysOnOneProcessorWhenCommsAreExpensive) {
  TaskGraph g;
  for (int i = 0; i < 5; ++i) g.add_task(1.0);
  for (TaskId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1, 100.0);
  g.finalize();
  const Platform p({1.0, 1.0, 1.0}, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  for (TaskId v = 1; v < 5; ++v) EXPECT_EQ(s.task(v).proc, s.task(0).proc);
  EXPECT_EQ(s.num_comms(), 0u);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
}

TEST(Heft, IndependentTasksSpreadAcrossProcessors) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task(1.0);
  g.finalize();
  const Platform p({1.0, 1.0}, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  // Two tasks per processor, makespan 2.
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(Heft, TieBreaksTowardLowerProcessorId) {
  TaskGraph g;
  g.add_task(1.0);
  g.finalize();
  const Platform p({2.0, 2.0, 2.0}, 1.0);
  const Schedule s = heft(g, p, {});
  EXPECT_EQ(s.task(0).proc, 0);
}

TEST(Heft, MacroModelOnSection2Fork) {
  // The §2.3 example: macro HEFT finds the makespan-3 schedule.
  const TaskGraph g = testbeds::make_fork(1.0, std::vector<double>(6, 1.0),
                                          std::vector<double>(6, 1.0));
  const Platform p = make_homogeneous_platform(5, 1.0, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kMacroDataflow});
  EXPECT_TRUE(validate_macro_dataflow(s, g, p).ok());
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(Heft, OnePortModelOnSection2Fork) {
  // Port-aware HEFT avoids the serialization trap and reaches the
  // one-port optimum of 5.
  const TaskGraph g = testbeds::make_fork(1.0, std::vector<double>(6, 1.0),
                                          std::vector<double>(6, 1.0));
  const Platform p = make_homogeneous_platform(5, 1.0, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
}

TEST(Heft, InsertionBasedGapUse) {
  // Two entry tasks and a heavy independent task: the light successor
  // should slot into the idle gap before the heavy task's finish.
  TaskGraph g;
  const TaskId heavy = g.add_task(10.0);
  const TaskId src = g.add_task(1.0);
  const TaskId child = g.add_task(1.0);
  g.add_edge(src, child, 0.5);
  g.finalize();
  (void)heavy;
  const Platform p({1.0, 1.0}, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(Heft, ZeroWeightTasksAreLegal) {
  TaskGraph g;
  g.add_task(0.0);
  g.add_task(0.0);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const Platform p({1.0, 1.0}, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
}

TEST(Heft, ParentsBeforeChildrenAlways) {
  const TaskGraph g = testbeds::make_laplace(12, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const EdgeRef& e : g.successors(u)) {
      EXPECT_GE(s.task(e.task).start, s.task(u).finish - 1e-9);
    }
  }
}

TEST(Heft, MakespanAboveAreaLowerBound) {
  // No schedule can beat total-work / aggregate-speed.
  const TaskGraph g = testbeds::make_lu(25, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_GE(s.makespan(), g.total_weight() / p.aggregate_speed() - 1e-9);
}

TEST(Heft, DeterministicAcrossRuns) {
  const TaskGraph g = testbeds::make_doolittle(15, 10.0);
  const Platform p = make_paper_platform();
  const Schedule a = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule b = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(a.task(v).proc, b.task(v).proc);
    EXPECT_DOUBLE_EQ(a.task(v).start, b.task(v).start);
  }
}

}  // namespace
}  // namespace oneport
