#include <gtest/gtest.h>

#include <sstream>

#include "core/heft.hpp"
#include "sched/serialize.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(SerializeGraph, RoundTripPreservesEverything) {
  const TaskGraph original = testbeds::make_lu(8, 10.0);
  std::stringstream buffer;
  write_task_graph(buffer, original);
  const TaskGraph loaded = read_task_graph(buffer);
  ASSERT_EQ(loaded.num_tasks(), original.num_tasks());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (TaskId v = 0; v < original.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(loaded.weight(v), original.weight(v));
    for (const EdgeRef& e : original.successors(v)) {
      EXPECT_TRUE(loaded.has_edge(v, e.task));
      EXPECT_DOUBLE_EQ(loaded.edge_data(v, e.task), e.data);
    }
  }
}

TEST(SerializeGraph, NamesSurvive) {
  TaskGraph g;
  g.add_task(1.5, "alpha");
  g.add_task(2.5);
  g.add_edge(0, 1, 0.25);
  g.finalize();
  std::stringstream buffer;
  write_task_graph(buffer, g);
  const TaskGraph loaded = read_task_graph(buffer);
  EXPECT_EQ(loaded.name(0), "alpha");
  EXPECT_TRUE(loaded.name(1).empty());
}

TEST(SerializeGraph, CommentsAndBlanksIgnored) {
  std::stringstream buffer(
      "taskgraph v1\n"
      "# a comment\n"
      "\n"
      "task 0 2.0   # trailing comment\n"
      "task 1 3.0\n"
      "edge 0 1 4.0\n");
  const TaskGraph g = read_task_graph(buffer);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_data(0, 1), 4.0);
}

TEST(SerializeGraph, RejectsMalformedInput) {
  std::stringstream no_header("task 0 1.0\n");
  EXPECT_THROW(read_task_graph(no_header), std::invalid_argument);
  std::stringstream bad_stmt("taskgraph v1\nblurb 1 2\n");
  EXPECT_THROW(read_task_graph(bad_stmt), std::invalid_argument);
  std::stringstream sparse_ids("taskgraph v1\ntask 5 1.0\n");
  EXPECT_THROW(read_task_graph(sparse_ids), std::invalid_argument);
  std::stringstream short_task("taskgraph v1\ntask 0\n");
  EXPECT_THROW(read_task_graph(short_task), std::invalid_argument);
}

TEST(SerializeSchedule, RoundTripStaysValid) {
  const TaskGraph g = testbeds::make_stencil(6, 10.0);
  const Platform p = make_paper_platform();
  const Schedule original = heft(g, p, {.model = EftEngine::Model::kOnePort});
  std::stringstream buffer;
  write_schedule(buffer, original);
  const Schedule loaded = read_schedule(buffer);
  ASSERT_EQ(loaded.num_tasks(), original.num_tasks());
  EXPECT_DOUBLE_EQ(loaded.makespan(), original.makespan());
  EXPECT_EQ(loaded.num_comms(), original.num_comms());
  EXPECT_TRUE(validate_one_port(loaded, g, p).ok());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(loaded.task(v).proc, original.task(v).proc);
    EXPECT_DOUBLE_EQ(loaded.task(v).start, original.task(v).start);
  }
}

TEST(SerializeSchedule, IncompleteScheduleRejected) {
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  std::stringstream buffer;
  EXPECT_THROW(write_schedule(buffer, s), std::invalid_argument);
}

TEST(SerializeSchedule, RejectsMalformedInput) {
  std::stringstream no_header("task 0 0 0 1\n");
  EXPECT_THROW(read_schedule(no_header), std::invalid_argument);
  std::stringstream bad_comm("schedule v1\ncomm 0 1 0\n");
  EXPECT_THROW(read_schedule(bad_comm), std::invalid_argument);
}

}  // namespace
}  // namespace oneport
