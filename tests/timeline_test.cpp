#include <gtest/gtest.h>

#include "sched/timeline.hpp"
#include "util/rng.hpp"

namespace oneport {
namespace {

TEST(Timeline, EmptyFitsAnywhere) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.next_fit(3.5, 5.0), 3.5);
  EXPECT_DOUBLE_EQ(t.horizon(), 0.0);
  EXPECT_TRUE(t.empty());
}

TEST(Timeline, FitsIntoExactGap) {
  Timeline t;
  t.reserve(0.0, 2.0);
  t.reserve(5.0, 8.0);
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 3.0), 2.0);  // the [2,5) hole
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 4.0), 8.0);  // too big -> after the end
  EXPECT_DOUBLE_EQ(t.next_fit(6.0, 1.0), 8.0);  // ready inside a busy slot
  EXPECT_DOUBLE_EQ(t.next_fit(2.0, 2.0), 2.0);
}

TEST(Timeline, ZeroDurationAlwaysFits) {
  Timeline t;
  t.reserve(0.0, 10.0);
  EXPECT_DOUBLE_EQ(t.next_fit(4.0, 0.0), 4.0);
}

TEST(Timeline, ReserveRejectsOverlap) {
  Timeline t;
  t.reserve(0.0, 2.0);
  EXPECT_THROW(t.reserve(1.0, 3.0), std::logic_error);
  EXPECT_THROW(t.reserve(-1.0, 0.5), std::logic_error);
  EXPECT_NO_THROW(t.reserve(2.0, 3.0));  // touching is fine
}

TEST(Timeline, ReserveMergesTouchingIntervals) {
  Timeline t;
  t.reserve(0.0, 1.0);
  t.reserve(2.0, 3.0);
  t.reserve(1.0, 2.0);  // bridges both neighbours
  ASSERT_EQ(t.busy().size(), 1u);
  EXPECT_DOUBLE_EQ(t.busy()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(t.busy()[0].end, 3.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 3.0);
}

TEST(Timeline, IsFree) {
  Timeline t;
  t.reserve(2.0, 4.0);
  EXPECT_TRUE(t.is_free(0.0, 2.0));
  EXPECT_TRUE(t.is_free(4.0, 9.0));
  EXPECT_FALSE(t.is_free(3.0, 5.0));
  EXPECT_FALSE(t.is_free(1.0, 3.0));
  EXPECT_TRUE(t.is_free(3.0, 3.0));  // degenerate
}

TEST(Timeline, NextFitRejectsNegativeDuration) {
  Timeline t;
  EXPECT_THROW((void)t.next_fit(0.0, -1.0), std::invalid_argument);
}

TEST(Interval, OverlapSemantics) {
  EXPECT_TRUE(overlaps({0.0, 2.0}, {1.0, 3.0}));
  EXPECT_FALSE(overlaps({0.0, 2.0}, {2.0, 3.0}));  // touching
  EXPECT_FALSE(overlaps({0.0, 2.0}, {5.0, 6.0}));
  EXPECT_FALSE(overlaps({1.0, 1.0}, {0.0, 9.0}));  // degenerate
}

// --------------------------------------------------------- overlays

TEST(TimelineOverlay, SeesBaseAndExtras) {
  Timeline base;
  base.reserve(0.0, 2.0);
  TimelineOverlay overlay(base);
  overlay.add(3.0, 5.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 1.0), 2.0);  // the [2,3) hole
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 2.0), 5.0);  // hole too small
  EXPECT_DOUBLE_EQ(overlay.next_fit(4.0, 1.0), 5.0);
}

TEST(TimelineOverlay, ExtrasDoNotMutateBase) {
  Timeline base;
  TimelineOverlay overlay(base);
  overlay.add(0.0, 4.0);
  EXPECT_TRUE(base.empty());
  EXPECT_DOUBLE_EQ(base.next_fit(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 1.0), 4.0);
}

TEST(TimelineOverlay, UnsortedAddsHandled) {
  Timeline base;
  TimelineOverlay overlay(base);
  overlay.add(6.0, 8.0);
  overlay.add(0.0, 2.0);
  overlay.add(3.0, 4.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 2.0), 4.0);  // between 4 and 6
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 3.0), 8.0);
}

// --------------------------------------------------------- joint fit

TEST(JointFit, BothFreeImmediately) {
  Timeline a, b;
  TimelineOverlay oa(a), ob(b);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 1.0, 2.0), 1.0);
}

TEST(JointFit, AlternatingBusySlots) {
  // a busy [0,2), b busy [2,4): the first joint 1-slot is at 4.
  Timeline a, b;
  a.reserve(0.0, 2.0);
  b.reserve(2.0, 4.0);
  TimelineOverlay oa(a), ob(b);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 0.0, 1.0), 4.0);
}

TEST(JointFit, FindsSharedHole) {
  Timeline a, b;
  a.reserve(0.0, 1.0);
  a.reserve(4.0, 6.0);
  b.reserve(0.0, 2.0);
  b.reserve(5.0, 7.0);
  TimelineOverlay oa(a), ob(b);
  // Shared holes: [2,4) then [7,inf); a 2-slot fits at 2.
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 0.0, 3.0), 7.0);
}

TEST(JointFit, ZeroDuration) {
  Timeline a, b;
  a.reserve(0.0, 5.0);
  TimelineOverlay oa(a), ob(b);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 3.0, 0.0), 3.0);
}

// --------------------------------------------------------- properties

class TimelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

/// next_fit always returns a slot that reserve() accepts, for arbitrary
/// reservation sequences.
TEST_P(TimelinePropertyTest, NextFitSlotsAreAlwaysReservable) {
  SplitMix64 rng(GetParam());
  Timeline t;
  double total = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double ready = rng.uniform(0.0, 50.0);
    const double duration = rng.uniform(0.0, 5.0);
    const double start = t.next_fit(ready, duration);
    EXPECT_GE(start, ready);
    EXPECT_TRUE(t.is_free(start, start + duration));
    ASSERT_NO_THROW(t.reserve(start, start + duration));
    total += duration;
  }
  EXPECT_NEAR(t.busy_time(), total, 1e-6);
}

/// Busy intervals stay sorted and disjoint.
TEST_P(TimelinePropertyTest, InvariantSortedDisjoint) {
  SplitMix64 rng(GetParam() + 1000);
  Timeline t;
  for (int i = 0; i < 150; ++i) {
    const double duration = rng.uniform(0.1, 3.0);
    const double start = t.next_fit(rng.uniform(0.0, 100.0), duration);
    t.reserve(start, start + duration);
  }
  const auto busy = t.busy();
  for (std::size_t i = 1; i < busy.size(); ++i) {
    EXPECT_GE(busy[i].start, busy[i - 1].end - kTimeEps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

}  // namespace
}  // namespace oneport
