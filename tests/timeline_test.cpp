#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sched/timeline.hpp"
#include "util/rng.hpp"

namespace oneport {
namespace {

// Every contract test below runs against ALL timeline implementations:
// the reference sorted-busy-vector (Timeline), the gap-indexed free
// list (GapTimeline), and the bucketed calendar queue (CalendarTimeline).
// They must agree not just on semantics but on the exact doubles they
// return -- the property sweep relies on bit-identical schedules from
// every implementation.
template <typename T>
class TimelineContractTest : public ::testing::Test {};

using TimelineImpls = ::testing::Types<Timeline, GapTimeline, CalendarTimeline>;
TYPED_TEST_SUITE(TimelineContractTest, TimelineImpls);

TYPED_TEST(TimelineContractTest, EmptyFitsAnywhere) {
  TypeParam t;
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.next_fit(3.5, 5.0), 3.5);
  EXPECT_DOUBLE_EQ(t.horizon(), 0.0);
  EXPECT_TRUE(t.empty());
}

TYPED_TEST(TimelineContractTest, FitsIntoExactGap) {
  TypeParam t;
  t.reserve(0.0, 2.0);
  t.reserve(5.0, 8.0);
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 3.0), 2.0);  // the [2,5) hole
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 4.0), 8.0);  // too big -> after the end
  EXPECT_DOUBLE_EQ(t.next_fit(6.0, 1.0), 8.0);  // ready inside a busy slot
  EXPECT_DOUBLE_EQ(t.next_fit(2.0, 2.0), 2.0);
}

TYPED_TEST(TimelineContractTest, ZeroDurationAlwaysFits) {
  TypeParam t;
  t.reserve(0.0, 10.0);
  EXPECT_DOUBLE_EQ(t.next_fit(4.0, 0.0), 4.0);
}

TYPED_TEST(TimelineContractTest, ReserveRejectsOverlap) {
  TypeParam t;
  t.reserve(0.0, 2.0);
  EXPECT_THROW(t.reserve(1.0, 3.0), std::logic_error);
  EXPECT_THROW(t.reserve(-1.0, 0.5), std::logic_error);
  EXPECT_NO_THROW(t.reserve(2.0, 3.0));  // touching is fine
}

TYPED_TEST(TimelineContractTest, ReserveMergesTouchingIntervals) {
  TypeParam t;
  t.reserve(0.0, 1.0);
  t.reserve(2.0, 3.0);
  t.reserve(1.0, 2.0);  // bridges both neighbours
  const std::vector<Interval> busy = t.busy_intervals();
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_DOUBLE_EQ(busy[0].start, 0.0);
  EXPECT_DOUBLE_EQ(busy[0].end, 3.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 3.0);
}

TYPED_TEST(TimelineContractTest, IsFree) {
  TypeParam t;
  t.reserve(2.0, 4.0);
  EXPECT_TRUE(t.is_free(0.0, 2.0));
  EXPECT_TRUE(t.is_free(4.0, 9.0));
  EXPECT_FALSE(t.is_free(3.0, 5.0));
  EXPECT_FALSE(t.is_free(1.0, 3.0));
  EXPECT_TRUE(t.is_free(3.0, 3.0));  // degenerate
}

TYPED_TEST(TimelineContractTest, NextFitRejectsNegativeDuration) {
  TypeParam t;
  EXPECT_THROW((void)t.next_fit(0.0, -1.0), std::invalid_argument);
}

TYPED_TEST(TimelineContractTest, ClearResets) {
  TypeParam t;
  t.reserve(0.0, 5.0);
  t.reserve(7.0, 9.0);
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.horizon(), 0.0);
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 100.0), 0.0);
  t.reserve(1.0, 2.0);  // usable again after clear
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 2.0), 2.0);
}

// ------------------------------------- adversarial gap patterns

/// Many small gaps: 100 unit reservations leaving 0.5-wide holes; a
/// 0.5-slot fits into the first hole, a 0.6-slot only after everything.
TYPED_TEST(TimelineContractTest, ManySmallGaps) {
  TypeParam t;
  for (int i = 0; i < 100; ++i) {
    const double start = 1.5 * i;
    t.reserve(start, start + 1.0);
  }
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 0.5), 1.0);    // the [1, 1.5) hole
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 0.6), 149.5);  // no interior hole fits
  EXPECT_DOUBLE_EQ(t.next_fit(76.0, 0.5), 76.0);  // mid-sequence hole
  EXPECT_DOUBLE_EQ(t.next_fit(76.2, 0.5), 77.5);  // partially eaten hole
  EXPECT_EQ(t.busy_intervals().size(), 100u);
  // Fill one hole and the neighbours merge into a triple-length run.
  t.reserve(10.0, 10.5);
  EXPECT_EQ(t.busy_intervals().size(), 99u);
  EXPECT_DOUBLE_EQ(t.next_fit(9.0, 0.5), 11.5);
}

/// Eps-touching reservations must merge exactly like exactly-touching
/// ones, and next_fit may start inside the eps shadow of a busy end.
TYPED_TEST(TimelineContractTest, EpsTouchingReservations) {
  TypeParam t;
  t.reserve(0.0, 1.0);
  t.reserve(1.0 + 0.5 * kTimeEps, 2.0);  // within tolerance: merges
  ASSERT_EQ(t.busy_intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(t.busy_intervals()[0].end, 2.0);
  // A slot requested within eps *before* the busy end is granted as-is:
  // the reference scan treats the busy interval as already over.
  const double ready = 2.0 - 0.5 * kTimeEps;
  EXPECT_DOUBLE_EQ(t.next_fit(ready, 1.0), ready);
  // ...but asking well inside the busy interval snaps to its end.
  EXPECT_DOUBLE_EQ(t.next_fit(1.5, 1.0), 2.0);
}

/// Zero-duration fits never move and never conflict, even inside busy
/// intervals or exactly at boundaries.
TYPED_TEST(TimelineContractTest, ZeroDurationFits) {
  TypeParam t;
  t.reserve(0.0, 2.0);
  t.reserve(3.0, 5.0);
  for (const double at : {0.0, 1.0, 2.0, 2.5, 3.0, 4.999, 5.0, 100.0}) {
    EXPECT_DOUBLE_EQ(t.next_fit(at, 0.0), at) << "at=" << at;
    EXPECT_TRUE(t.is_free(at, at));
  }
  // Degenerate reservations are ignored entirely, even inside busy slots.
  t.reserve(1.0, 1.0);
  t.reserve(4.0, 4.0 + 0.5 * kTimeEps);
  EXPECT_EQ(t.busy_intervals().size(), 2u);
}

/// Backward-jumping readies: after appending at the far end, queries way
/// back in time must still see the old holes (exercises the gap cursor).
TYPED_TEST(TimelineContractTest, BackwardJumpsAfterAppends) {
  TypeParam t;
  double cursor = 0.0;
  for (int i = 0; i < 50; ++i) {  // back-to-back appends, hole at [24,25)
    const double next = (i == 16) ? cursor + 1.0 : cursor;
    t.reserve(next, next + 1.5);
    cursor = next + 1.5;
  }
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 1.0), 24.0);  // the punched hole
  EXPECT_DOUBLE_EQ(t.next_fit(0.0, 1.5), cursor);
  EXPECT_DOUBLE_EQ(t.next_fit(10.0, 0.5), 24.0);
  t.reserve(24.0, 25.0);  // plug it; everything merges into one run
  EXPECT_EQ(t.busy_intervals().size(), 1u);
}

TEST(Interval, OverlapSemantics) {
  EXPECT_TRUE(overlaps({0.0, 2.0}, {1.0, 3.0}));
  EXPECT_FALSE(overlaps({0.0, 2.0}, {2.0, 3.0}));  // touching
  EXPECT_FALSE(overlaps({0.0, 2.0}, {5.0, 6.0}));
  EXPECT_FALSE(overlaps({1.0, 1.0}, {0.0, 9.0}));  // degenerate
}

// ----------------------------------------------- differential fuzzing

/// Drives all three implementations through an identical random op
/// sequence and demands exactly equal answers and busy structures at
/// every step.
class TimelineDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineDifferentialTest, ImplementationsAgreeExactly) {
  SplitMix64 rng(GetParam());
  Timeline reference;
  GapTimeline gap;
  CalendarTimeline calendar;
  for (int i = 0; i < 400; ++i) {
    const double ready = rng.uniform(0.0, 60.0);
    const double duration =
        rng.below(8) == 0 ? 0.0 : rng.uniform(0.0, 4.0);
    const double fit_ref = reference.next_fit(ready, duration);
    const double fit_gap = gap.next_fit(ready, duration);
    const double fit_cal = calendar.next_fit(ready, duration);
    ASSERT_EQ(fit_ref, fit_gap)  // bitwise: no tolerance
        << "step " << i << " ready=" << ready << " duration=" << duration;
    ASSERT_EQ(fit_ref, fit_cal)
        << "step " << i << " ready=" << ready << " duration=" << duration;
    const double probe_end = ready + rng.uniform(0.0, 5.0);
    ASSERT_EQ(reference.is_free(ready, probe_end),
              gap.is_free(ready, probe_end))
        << "step " << i;
    ASSERT_EQ(reference.is_free(ready, probe_end),
              calendar.is_free(ready, probe_end))
        << "step " << i;
    if (rng.below(3) != 0) {  // reserve the found slot 2/3 of the time
      reference.reserve(fit_ref, fit_ref + duration);
      gap.reserve(fit_gap, fit_gap + duration);
      calendar.reserve(fit_cal, fit_cal + duration);
    }
    ASSERT_EQ(reference.busy_intervals(), gap.busy_intervals())
        << "step " << i;
    ASSERT_EQ(reference.busy_intervals(), calendar.busy_intervals())
        << "step " << i;
    ASSERT_EQ(reference.horizon(), gap.horizon()) << "step " << i;
    ASSERT_EQ(reference.horizon(), calendar.horizon()) << "step " << i;
  }
  EXPECT_NEAR(reference.busy_time(), gap.busy_time(), 1e-9);
  EXPECT_NEAR(reference.busy_time(), calendar.busy_time(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineDifferentialTest,
                         ::testing::Values<std::uint64_t>(7, 21, 99, 1234,
                                                          777777));

// --------------------------------------------------------- overlays

TEST(TimelineOverlay, SeesBaseAndExtras) {
  TimelineIndex base;
  base.reserve(0.0, 2.0);
  TimelineOverlay overlay(base);
  overlay.add(3.0, 5.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 1.0), 2.0);  // the [2,3) hole
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 2.0), 5.0);  // hole too small
  EXPECT_DOUBLE_EQ(overlay.next_fit(4.0, 1.0), 5.0);
}

TEST(TimelineOverlay, ExtrasDoNotMutateBase) {
  TimelineIndex base;
  TimelineOverlay overlay(base);
  overlay.add(0.0, 4.0);
  EXPECT_TRUE(base.empty());
  EXPECT_DOUBLE_EQ(base.next_fit(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 1.0), 4.0);
}

TEST(TimelineOverlay, UnsortedAddsHandled) {
  TimelineIndex base;
  TimelineOverlay overlay(base);
  overlay.add(6.0, 8.0);
  overlay.add(0.0, 2.0);
  overlay.add(3.0, 4.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 2.0), 4.0);  // between 4 and 6
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 3.0), 8.0);
}

TEST(TimelineOverlay, ResetKeepsViewFreshAcrossBases) {
  TimelineIndex first, second;
  first.reserve(0.0, 10.0);
  TimelineOverlay overlay(first);
  overlay.add(12.0, 14.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 3.0), 14.0);
  overlay.reset(second);  // extras dropped, base swapped
  EXPECT_TRUE(overlay.extras().empty());
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 3.0), 0.0);
}

TEST(TimelineOverlay, ManyExtrasOrderedPass) {
  TimelineIndex base;
  base.reserve(0.0, 1.0);
  TimelineOverlay overlay(base);
  for (int i = 1; i <= 50; ++i) {  // extras [2i, 2i+1): unit holes between
    overlay.add(2.0 * i, 2.0 * i + 1.0);
  }
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(overlay.next_fit(0.0, 1.5), 101.0);  // past every extra
  EXPECT_DOUBLE_EQ(overlay.next_fit(50.0, 1.0), 51.0);
}

// --------------------------------------------------------- joint fit

TEST(JointFit, BothFreeImmediately) {
  TimelineIndex a, b;
  TimelineOverlay oa(a), ob(b);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 1.0, 2.0), 1.0);
}

TEST(JointFit, AlternatingBusySlots) {
  // a busy [0,2), b busy [2,4): the first joint 1-slot is at 4.
  TimelineIndex a, b;
  a.reserve(0.0, 2.0);
  b.reserve(2.0, 4.0);
  TimelineOverlay oa(a), ob(b);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 0.0, 1.0), 4.0);
}

TEST(JointFit, FindsSharedHole) {
  TimelineIndex a, b;
  a.reserve(0.0, 1.0);
  a.reserve(4.0, 6.0);
  b.reserve(0.0, 2.0);
  b.reserve(5.0, 7.0);
  TimelineOverlay oa(a), ob(b);
  // Shared holes: [2,4) then [7,inf); a 2-slot fits at 2.
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 0.0, 3.0), 7.0);
}

TEST(JointFit, ZeroDuration) {
  TimelineIndex a, b;
  a.reserve(0.0, 5.0);
  TimelineOverlay oa(a), ob(b);
  EXPECT_DOUBLE_EQ(earliest_joint_fit(oa, ob, 3.0, 0.0), 3.0);
}

// ------------------------------------------- implementation selection

TEST(TimelineIndexSelection, ScopedOverrideRoundTrips) {
  const TimelineImpl before = default_timeline_impl();
  {
    ScopedTimelineImpl guard(TimelineImpl::kReference);
    EXPECT_EQ(default_timeline_impl(), TimelineImpl::kReference);
    EXPECT_EQ(TimelineIndex().impl(), TimelineImpl::kReference);
    {
      ScopedTimelineImpl inner(TimelineImpl::kGapIndexed);
      EXPECT_EQ(TimelineIndex().impl(), TimelineImpl::kGapIndexed);
    }
    EXPECT_EQ(default_timeline_impl(), TimelineImpl::kReference);
  }
  EXPECT_EQ(default_timeline_impl(), before);
  EXPECT_STREQ(timeline_impl_name(TimelineImpl::kReference), "reference");
  EXPECT_STREQ(timeline_impl_name(TimelineImpl::kGapIndexed),
               "gap-indexed");
  EXPECT_STREQ(timeline_impl_name(TimelineImpl::kCalendar), "calendar");
}

TEST(TimelineIndexSelection, ExplicitImplIgnoresDefault) {
  ScopedTimelineImpl guard(TimelineImpl::kReference);
  TimelineIndex gap(TimelineImpl::kGapIndexed);
  gap.reserve(0.0, 2.0);
  EXPECT_EQ(gap.impl(), TimelineImpl::kGapIndexed);
  EXPECT_DOUBLE_EQ(gap.next_fit(0.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gap.horizon(), 2.0);
  EXPECT_EQ(gap.busy_intervals().size(), 1u);
}

// --------------------------------------------------------- properties

class TimelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

/// next_fit always returns a slot that reserve() accepts, for arbitrary
/// reservation sequences -- on both implementations.
template <typename T>
void next_fit_slots_always_reservable(std::uint64_t seed) {
  SplitMix64 rng(seed);
  T t;
  double total = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double ready = rng.uniform(0.0, 50.0);
    const double duration = rng.uniform(0.0, 5.0);
    const double start = t.next_fit(ready, duration);
    EXPECT_GE(start, ready);
    EXPECT_TRUE(t.is_free(start, start + duration));
    ASSERT_NO_THROW(t.reserve(start, start + duration));
    total += duration;
  }
  EXPECT_NEAR(t.busy_time(), total, 1e-6);
}

TEST_P(TimelinePropertyTest, NextFitSlotsAreAlwaysReservable) {
  next_fit_slots_always_reservable<Timeline>(GetParam());
  next_fit_slots_always_reservable<GapTimeline>(GetParam());
  next_fit_slots_always_reservable<CalendarTimeline>(GetParam());
}

/// Busy intervals stay sorted and disjoint on both implementations.
template <typename T>
void invariant_sorted_disjoint(std::uint64_t seed) {
  SplitMix64 rng(seed + 1000);
  T t;
  for (int i = 0; i < 150; ++i) {
    const double duration = rng.uniform(0.1, 3.0);
    const double start = t.next_fit(rng.uniform(0.0, 100.0), duration);
    t.reserve(start, start + duration);
  }
  const std::vector<Interval> busy = t.busy_intervals();
  for (std::size_t i = 1; i < busy.size(); ++i) {
    EXPECT_GE(busy[i].start, busy[i - 1].end - kTimeEps);
  }
}

TEST_P(TimelinePropertyTest, InvariantSortedDisjoint) {
  invariant_sorted_disjoint<Timeline>(GetParam());
  invariant_sorted_disjoint<GapTimeline>(GetParam());
  invariant_sorted_disjoint<CalendarTimeline>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

// --------------------------------------- deferred middle-insert buffer

// The scenarios below reserve deep inside long timelines -- the pattern
// the dynamic rescheduler's prefix-freeze produces -- so they drive the
// GapTimeline pending buffer (deferral, query absorption, flush) that
// pure next_fit/reserve appends never reach.

/// A long alternating timeline: blocks [4i, 4i+1), gaps in between.
template <typename T>
void lay_down_blocks(T& t, int blocks) {
  for (int i = 0; i < blocks; ++i) {
    t.reserve(4.0 * i, 4.0 * i + 1.0);
  }
}

class TimelineMiddleInsertTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineMiddleInsertTest, RandomMiddleInsertsAgreeWithReference) {
  SplitMix64 rng(GetParam());
  Timeline reference;
  GapTimeline gap;
  CalendarTimeline calendar;
  const int blocks = 600;
  lay_down_blocks(reference, blocks);
  lay_down_blocks(gap, blocks);
  lay_down_blocks(calendar, blocks);

  // Visit the interior gaps in a random order and drop a sliver strictly
  // inside each: every insert splits a gap far from the tail.
  std::vector<int> order(static_cast<std::size_t>(blocks - 1));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (std::size_t step = 0; step < order.size(); ++step) {
    const double base = 4.0 * order[step];
    const double start = base + 1.5 + rng.uniform(0.0, 0.5);
    const double end = start + rng.uniform(0.2, 0.8);
    reference.reserve(start, end);
    gap.reserve(start, end);
    calendar.reserve(start, end);
    // Interleave queries so absorption runs against a hot buffer.
    const double ready = rng.uniform(0.0, 4.0 * blocks);
    const double duration = rng.uniform(0.0, 2.0);
    ASSERT_EQ(reference.next_fit(ready, duration),
              gap.next_fit(ready, duration))
        << "step " << step;
    ASSERT_EQ(reference.next_fit(ready, duration),
              calendar.next_fit(ready, duration))
        << "step " << step;
    ASSERT_EQ(reference.is_free(start - 0.1, end),
              gap.is_free(start - 0.1, end))
        << "step " << step;
    ASSERT_EQ(reference.is_free(start - 0.1, end),
              calendar.is_free(start - 0.1, end))
        << "step " << step;
    if (step % 64 == 0) {
      ASSERT_EQ(reference.busy_intervals(), gap.busy_intervals())
          << "step " << step;
      ASSERT_EQ(reference.busy_intervals(), calendar.busy_intervals())
          << "step " << step;
    }
  }
  EXPECT_EQ(reference.busy_intervals(), gap.busy_intervals());
  EXPECT_EQ(reference.busy_intervals(), calendar.busy_intervals());
  EXPECT_NEAR(reference.busy_time(), gap.busy_time(), 1e-9);
  EXPECT_NEAR(reference.busy_time(), calendar.busy_time(), 1e-9);
  EXPECT_EQ(reference.horizon(), gap.horizon());
  EXPECT_EQ(reference.horizon(), calendar.horizon());
  // The pattern must actually have exercised the buffer.
  EXPECT_GT(gap.stats().deferred_inserts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineMiddleInsertTest,
                         ::testing::Values<std::uint64_t>(11, 42, 4096,
                                                          31337));

TEST(TimelineMiddleInsert, QueriesSeePendingImmediately) {
  GapTimeline gap;
  lay_down_blocks(gap, 200);
  // Split an early gap; with ~200 gaps after it the insert is deferred.
  gap.reserve(9.5, 10.5);
  EXPECT_GT(gap.stats().deferred_inserts, 0u);
  EXPECT_FALSE(gap.is_free(9.5, 10.5));
  EXPECT_FALSE(gap.is_free(9.0, 10.0));
  // next_fit must not hand the pending slot out again.
  EXPECT_DOUBLE_EQ(gap.next_fit(9.0, 1.0), 10.5);
  // And the busy view merges it in place.
  const std::vector<Interval> busy = gap.busy_intervals();
  const Interval expected{9.5, 10.5};
  bool found = false;
  for (const Interval& iv : busy) found |= iv == expected;
  EXPECT_TRUE(found);
}

TEST(TimelineMiddleInsert, BufferFlushesBeforeGrowingQuadratic) {
  GapTimeline gap;
  const int blocks = 400;
  lay_down_blocks(gap, blocks);
  for (int i = 0; i + 1 < blocks; ++i) {
    gap.reserve(4.0 * i + 2.0, 4.0 * i + 3.0);
  }
  const GapTimeline::Stats& stats = gap.stats();
  EXPECT_GT(stats.deferred_inserts, 0u);
  EXPECT_GE(stats.flushes, 1u);
  // Deferred compaction bounds element movement by ~n*sqrt(n); direct
  // middle inserts into n gaps would have shifted ~n^2/2 elements.  The
  // factor-8 headroom keeps the pin about the asymptotic, not the exact
  // constants.
  const auto n = static_cast<double>(blocks);
  EXPECT_LT(static_cast<double>(stats.moved_elements), 8.0 * n * std::sqrt(n))
      << "middle inserts moved quadratically many elements";
  // The result is still exactly right: blocks and slivers alternate.
  const std::vector<Interval> busy = gap.busy_intervals();
  ASSERT_EQ(busy.size(), static_cast<std::size_t>(2 * blocks - 1));
}

}  // namespace
}  // namespace oneport
