#include <gtest/gtest.h>

#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

/// The §4.4 toy example (Figure 3): ids follow the paper's ranking.
TaskGraph make_toy() {
  TaskGraph g;
  const TaskId a0 = g.add_task(1.0, "a0");
  const TaskId b0 = g.add_task(1.0, "b0");
  const TaskId a1 = g.add_task(1.0, "a1");
  const TaskId a2 = g.add_task(1.0, "a2");
  const TaskId a3 = g.add_task(1.0, "a3");
  const TaskId ab1 = g.add_task(1.0, "ab1");
  const TaskId ab2 = g.add_task(1.0, "ab2");
  const TaskId b3 = g.add_task(1.0, "b3");
  const TaskId b2 = g.add_task(1.0, "b2");
  const TaskId b1 = g.add_task(1.0, "b1");
  for (const TaskId c : {a1, a2, a3, ab1, ab2}) g.add_edge(a0, c, 1.0);
  for (const TaskId c : {ab1, ab2, b3, b2, b1}) g.add_edge(b0, c, 1.0);
  g.finalize();
  return g;
}

TEST(Ilha, ToyExampleReducesCommunications) {
  const TaskGraph g = make_toy();
  const Platform p = make_homogeneous_platform(2, 1.0, 1.0);
  const Schedule hs = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule is = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                  .chunk_size = 8});
  EXPECT_TRUE(validate_one_port(is, g, p).ok());
  // "the makespan is smaller, but also the number of communications has
  // dramatically been reduced"
  EXPECT_LE(is.makespan(), hs.makespan() + 1e-9);
  EXPECT_LT(is.num_comms(), hs.num_comms());
  // Step 1 keeps each family with its parent: only the two shared
  // children need a message.
  EXPECT_EQ(is.num_comms(), 2u);
}

TEST(Ilha, ToyExampleStep1Colocation) {
  const TaskGraph g = make_toy();
  const Platform p = make_homogeneous_platform(2, 1.0, 1.0);
  const Schedule s = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                 .chunk_size = 8});
  // a-family with a0, b-family with b0.
  const ProcId pa = s.task(0).proc;
  const ProcId pb = s.task(1).proc;
  EXPECT_NE(pa, pb);
  for (const TaskId v : {2u, 3u, 4u}) EXPECT_EQ(s.task(v).proc, pa);
  for (const TaskId v : {7u, 8u, 9u}) EXPECT_EQ(s.task(v).proc, pb);
}

TEST(Ilha, ChunkSizeClampedToProcessorCount) {
  // "B must be at least equal to the number of processors."
  const TaskGraph g = testbeds::make_laplace(8, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                 .chunk_size = 1});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
}

TEST(Ilha, RejectsNonPositiveChunk) {
  const TaskGraph g = testbeds::make_laplace(4, 10.0);
  const Platform p = make_paper_platform();
  EXPECT_THROW(ilha(g, p, {.chunk_size = 0}), std::invalid_argument);
}

TEST(Ilha, QuotaLimitsStep1Colocation) {
  // One parent with many children: without the quota, step 1 would dump
  // every child on the parent's processor; the quota caps its share of
  // each chunk, so at least one other processor must receive work.
  TaskGraph g;
  const TaskId parent = g.add_task(1.0);
  for (int i = 0; i < 16; ++i) {
    const TaskId child = g.add_task(1.0);
    g.add_edge(parent, child, 0.01);  // communications almost free
  }
  g.finalize();
  const Platform p = make_homogeneous_platform(4, 1.0, 1.0);
  const Schedule s = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                 .chunk_size = 16});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
  std::vector<int> count(4, 0);
  for (TaskId v = 1; v < g.num_tasks(); ++v) {
    ++count[static_cast<std::size_t>(s.task(v).proc)];
  }
  // Quota for a 16-task unit-weight chunk on 4 same-speed processors is 4.
  EXPECT_LE(count[static_cast<std::size_t>(s.task(parent).proc)], 5);
}

TEST(Ilha, MacroModelValidates) {
  const TaskGraph g = testbeds::make_lu(15, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = ilha(g, p, {.model = EftEngine::Model::kMacroDataflow,
                                 .chunk_size = 38});
  EXPECT_TRUE(validate_macro_dataflow(s, g, p).ok());
}

TEST(IlhaVariants, AllValidate) {
  const TaskGraph g = testbeds::make_stencil(12, 10.0);
  const Platform p = make_paper_platform();
  for (const bool quota : {false, true}) {
    for (const bool scan : {false, true}) {
      for (const bool resched : {false, true}) {
        const Schedule s = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                       .chunk_size = 20,
                                       .quota_in_step2 = quota,
                                       .single_comm_scan = scan,
                                       .reschedule_comms = resched});
        EXPECT_TRUE(validate_one_port(s, g, p).ok())
            << "quota=" << quota << " scan=" << scan << " resched=" << resched;
      }
    }
  }
}

TEST(IlhaVariants, RescheduleNeverHurts) {
  // ilha() only adopts the rebuilt schedule when it improves.
  const TaskGraph g = testbeds::make_doolittle(20, 10.0);
  const Platform p = make_paper_platform();
  const Schedule base = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                    .chunk_size = 20});
  const Schedule resched = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                       .chunk_size = 20,
                                       .reschedule_comms = true});
  EXPECT_LE(resched.makespan(), base.makespan() + 1e-9);
}

TEST(RescheduleFixedAllocation, KeepsAllocation) {
  const TaskGraph g = testbeds::make_laplace(10, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  std::vector<ProcId> alloc(g.num_tasks());
  for (TaskId v = 0; v < g.num_tasks(); ++v) alloc[v] = s.task(v).proc;
  const Schedule r = reschedule_fixed_allocation(g, p, alloc,
                                                 EftEngine::Model::kOnePort);
  EXPECT_TRUE(validate_one_port(r, g, p).ok());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(r.task(v).proc, alloc[v]);
  }
}

TEST(RescheduleFixedAllocation, ArityChecked) {
  const TaskGraph g = testbeds::make_laplace(4, 10.0);
  const Platform p = make_paper_platform();
  EXPECT_THROW(reschedule_fixed_allocation(g, p, {0, 1},
                                           EftEngine::Model::kOnePort),
               std::invalid_argument);
}

TEST(Ilha, DeterministicAcrossRuns) {
  const TaskGraph g = testbeds::make_ldmt(12, 10.0);
  const Platform p = make_paper_platform();
  const Schedule a = ilha(g, p, {.chunk_size = 20});
  const Schedule b = ilha(g, p, {.chunk_size = 20});
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(a.task(v).proc, b.task(v).proc);
    EXPECT_DOUBLE_EQ(a.task(v).start, b.task(v).start);
  }
}

}  // namespace
}  // namespace oneport
