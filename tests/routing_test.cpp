#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/experiment.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/routing.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(RoutingTable, RingPaths) {
  const RoutedPlatform ring = make_ring_platform({1, 1, 1, 1, 1}, 2.0);
  EXPECT_TRUE(ring.routing.direct(0, 1));
  EXPECT_TRUE(ring.routing.direct(0, 4));  // wrap-around neighbour
  EXPECT_FALSE(ring.routing.direct(0, 2));
  EXPECT_EQ(ring.routing.path(0, 2), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_EQ(ring.routing.path(0, 3), (std::vector<ProcId>{0, 4, 3}));
  EXPECT_EQ(ring.routing.path(2, 2), (std::vector<ProcId>{2}));
  EXPECT_DOUBLE_EQ(ring.routing.distance(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(ring.routing.distance(0, 0), 0.0);
}

TEST(RoutingTable, StarRoutesThroughHub) {
  const RoutedPlatform star = make_star_platform({1, 1, 1, 1}, 1.0);
  EXPECT_EQ(star.routing.path(1, 3), (std::vector<ProcId>{1, 0, 3}));
  EXPECT_EQ(star.routing.path(0, 2), (std::vector<ProcId>{0, 2}));
  EXPECT_DOUBLE_EQ(star.routing.distance(1, 3), 2.0);
}

TEST(RoutingTable, DisconnectedNetworkRejected) {
  Matrix<double> link(3, 3, kNoLink);
  for (std::size_t i = 0; i < 3; ++i) link(i, i) = 0.0;
  link(0, 1) = link(1, 0) = 1.0;  // P2 unreachable
  const Platform p({1.0, 1.0, 1.0}, std::move(link));
  EXPECT_THROW(RoutingTable::shortest_paths(p), std::invalid_argument);
}

TEST(RoutingTable, LineAndTwoNodePaths) {
  const RoutedPlatform line = make_line_platform({1, 1, 1, 1}, 1.0);
  EXPECT_EQ(line.routing.path(0, 3), (std::vector<ProcId>{0, 1, 2, 3}));
  EXPECT_EQ(line.routing.path(3, 1), (std::vector<ProcId>{3, 2, 1}));
  EXPECT_DOUBLE_EQ(line.routing.distance(0, 3), 3.0);

  const RoutedPlatform cable = make_line_platform({2, 3}, 0.5);
  EXPECT_TRUE(cable.routing.direct(0, 1));
  EXPECT_EQ(cable.routing.path(1, 0), (std::vector<ProcId>{1, 0}));
}

TEST(RoutingTable, RandomConnectedIsConnectedAndDeterministic) {
  const std::vector<double> cycles{1, 1, 2, 2, 3, 3};
  const RoutedPlatform a =
      make_random_connected_platform(cycles, 0.3, 42, 0.5, 2.0);
  const RoutedPlatform b =
      make_random_connected_platform(cycles, 0.3, 42, 0.5, 2.0);
  for (ProcId q = 0; q < 6; ++q) {
    for (ProcId r = 0; r < 6; ++r) {
      // Connectivity is guaranteed by the spanning tree ...
      EXPECT_TRUE(std::isfinite(a.routing.distance(q, r)));
      // ... and the whole build is a pure function of the seed.
      EXPECT_EQ(a.platform.link(q, r), b.platform.link(q, r));
      EXPECT_EQ(a.routing.path(q, r), b.routing.path(q, r));
    }
  }
}

TEST(RoutingTable, TopologyFactoryDispatchesAndRejects) {
  const std::vector<double> cycles{1, 1, 1, 1};
  EXPECT_EQ(make_topology_platform("ring", cycles).routing.path(0, 2).size(),
            3u);
  EXPECT_EQ(make_topology_platform("star", cycles).routing.path(1, 3),
            (std::vector<ProcId>{1, 0, 3}));
  EXPECT_EQ(make_topology_platform("line", cycles).routing.path(0, 3).size(),
            4u);
  EXPECT_NO_THROW(make_topology_platform("random", cycles, 1.0, 7));
  EXPECT_THROW(make_topology_platform("torus", cycles),
               std::invalid_argument);
}

// Regression (ISSUE-3): the loop-detection assert used to fire only
// after p+1 hops had been emitted; it must fire *before* the table can
// emit more entries than there are processors.
TEST(RoutingTable, CyclicTableFiresLoopAssertWithinPEntries) {
  Matrix<double> dist(3, 3, 1.0);
  Matrix<int> next(3, 3, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    next(i, i) = static_cast<int>(i);
  }
  // Deliberately corrupt: routes toward P2 bounce 0 <-> 1 forever.
  next(0, 2) = 1;
  next(1, 2) = 0;
  const RoutingTable table =
      RoutingTable::from_tables(3, std::move(dist), std::move(next));
  std::vector<ProcId> out;
  EXPECT_THROW(table.path_into(0, 2, out), std::logic_error);
  // Pre-fix the walk pushed {0, 1, 0, 1} before noticing the loop.
  EXPECT_LE(out.size(), 3u);
}

// Regression (ISSUE-3): shortest_paths compared with an 1e-12 epsilon,
// so a route genuinely shorter by less than that kept the stale (longer)
// path and the stale distance.
TEST(RoutingTable, ExactComparisonCatchesTinyImprovements) {
  const double detour_leg = 1.0 - 1e-13;
  Matrix<double> link(3, 3, kNoLink);
  for (std::size_t i = 0; i < 3; ++i) link(i, i) = 0.0;
  link(0, 1) = link(1, 0) = 1.0;
  link(1, 2) = link(2, 1) = detour_leg;
  link(0, 2) = link(2, 0) = 2.0;
  const Platform p({1.0, 1.0, 1.0}, std::move(link));
  const RoutingTable routing = RoutingTable::shortest_paths(p);
  EXPECT_EQ(routing.path(0, 2), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(routing.distance(0, 2), 1.0 + detour_leg);
}

// Golden paths on equal-cost routes: ties break toward fewer hops, then
// the smallest next hop, independent of accumulation order.
TEST(RoutingTable, EqualCostTieBreaksAreDeterministic) {
  // Even ring: both directions to the antipode cost the same; the route
  // through the smaller neighbour wins.
  const RoutedPlatform ring = make_ring_platform({1, 1, 1, 1}, 1.0);
  EXPECT_EQ(ring.routing.path(0, 2), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_EQ(ring.routing.path(1, 3), (std::vector<ProcId>{1, 0, 3}));
  EXPECT_EQ(ring.routing.path(3, 1), (std::vector<ProcId>{3, 0, 1}));

  // Direct link exactly as expensive as a two-hop detour: fewer hops win
  // (store-and-forward latency grows with every hop).
  Matrix<double> link(3, 3, kNoLink);
  for (std::size_t i = 0; i < 3; ++i) link(i, i) = 0.0;
  link(0, 1) = link(1, 0) = 1.0;
  link(1, 2) = link(2, 1) = 1.0;
  link(0, 2) = link(2, 0) = 2.0;
  const Platform p({1.0, 1.0, 1.0}, std::move(link));
  const RoutingTable routing = RoutingTable::shortest_paths(p);
  EXPECT_EQ(routing.path(0, 2), (std::vector<ProcId>{0, 2}));
  EXPECT_DOUBLE_EQ(routing.distance(0, 2), 2.0);
}

TEST(RoutingTable, PicksCheapestRoute) {
  // 0-1 expensive direct, 0-2-1 cheap detour.
  Matrix<double> link(3, 3, kNoLink);
  for (std::size_t i = 0; i < 3; ++i) link(i, i) = 0.0;
  link(0, 1) = link(1, 0) = 10.0;
  link(0, 2) = link(2, 0) = 1.0;
  link(2, 1) = link(1, 2) = 1.0;
  const Platform p({1.0, 1.0, 1.0}, std::move(link));
  const RoutingTable routing = RoutingTable::shortest_paths(p);
  EXPECT_EQ(routing.path(0, 1), (std::vector<ProcId>{0, 2, 1}));
  EXPECT_DOUBLE_EQ(routing.distance(0, 1), 2.0);
}

// ---------------------------------------------------------------------
// Structured topologies (ISSUE-4): golden hop sequences.  Node ids are
// row-major for meshes ((r, c) = r*cols + c) and breadth-first for fat
// trees (root 0; level-1 nodes 1, 2; leaves 3..6 on a 2-level binary
// tree).

TEST(StructuredTopologies, Mesh3x3XYGoldenRoutes) {
  const RoutedPlatform mesh =
      make_mesh2d_platform(std::vector<double>(9, 1.0), 3, 3,
                           /*wrap=*/false, 1.0);
  // Dimension-ordered: the column is corrected first, then the row.
  EXPECT_EQ(mesh.routing.path(0, 8), (std::vector<ProcId>{0, 1, 2, 5, 8}));
  EXPECT_EQ(mesh.routing.path(6, 2), (std::vector<ProcId>{6, 7, 8, 5, 2}));
  EXPECT_EQ(mesh.routing.path(0, 4), (std::vector<ProcId>{0, 1, 4}));
  EXPECT_EQ(mesh.routing.path(0, 2), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_EQ(mesh.routing.path(4, 4), (std::vector<ProcId>{4}));
  // No wrap links: the corner-to-corner route is the full Manhattan walk.
  EXPECT_DOUBLE_EQ(mesh.routing.distance(0, 8), 4.0);
  EXPECT_TRUE(mesh.routing.direct(0, 1));
  EXPECT_FALSE(mesh.routing.direct(0, 4));  // diagonals are two hops
}

TEST(StructuredTopologies, Torus3x3WraparoundGoldenRoutes) {
  const RoutedPlatform torus =
      make_mesh2d_platform(std::vector<double>(9, 1.0), 3, 3,
                           /*wrap=*/true, 1.0);
  // Each dimension takes the shorter way around the ring.
  EXPECT_EQ(torus.routing.path(0, 2), (std::vector<ProcId>{0, 2}));
  EXPECT_EQ(torus.routing.path(0, 6), (std::vector<ProcId>{0, 6}));
  EXPECT_EQ(torus.routing.path(0, 8), (std::vector<ProcId>{0, 2, 8}));
  EXPECT_EQ(torus.routing.path(1, 8), (std::vector<ProcId>{1, 2, 8}));
  EXPECT_DOUBLE_EQ(torus.routing.distance(0, 8), 2.0);
  EXPECT_TRUE(torus.routing.direct(0, 2));  // wraparound neighbour
}

TEST(StructuredTopologies, TorusAntipodeTieTakesIncreasingDirection) {
  // 1x4 torus: both ways to the antipode take two hops; the tie breaks
  // toward the increasing index, deterministically.
  const RoutedPlatform torus = make_topology_platform(
      "torus1x4", std::vector<double>(4, 1.0), 1.0);
  EXPECT_EQ(torus.routing.path(0, 2), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_EQ(torus.routing.path(3, 1), (std::vector<ProcId>{3, 0, 1}));
}

TEST(StructuredTopologies, FatTree2x2UpDownGoldenRoutes) {
  const RoutedPlatform tree = make_fat_tree_platform(
      std::vector<double>(7, 1.0), /*levels=*/2, /*arity=*/2,
      /*taper=*/2.0, /*link=*/1.0);
  EXPECT_EQ(tree.platform.num_processors(), 7);
  // Siblings meet at their parent; cousins climb through the root.
  EXPECT_EQ(tree.routing.path(3, 4), (std::vector<ProcId>{3, 1, 4}));
  EXPECT_EQ(tree.routing.path(3, 6), (std::vector<ProcId>{3, 1, 0, 2, 6}));
  EXPECT_EQ(tree.routing.path(4, 2), (std::vector<ProcId>{4, 1, 0, 2}));
  EXPECT_EQ(tree.routing.path(0, 5), (std::vector<ProcId>{0, 2, 5}));
  // Bandwidth taper: leaf links cost 1, the root level is 2x fatter.
  EXPECT_DOUBLE_EQ(tree.routing.distance(3, 4), 2.0);
  EXPECT_DOUBLE_EQ(tree.routing.distance(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(tree.routing.distance(3, 6), 3.0);
  EXPECT_TRUE(tree.routing.direct(3, 1));
  EXPECT_FALSE(tree.routing.direct(3, 0));
}

TEST(StructuredTopologies, FactoryParsesDimensionedNames) {
  // The name fixes the processor count; cycle times recycle cyclically.
  const std::vector<double> cycles{1.0, 2.0, 3.0};
  const RoutedPlatform mesh = make_topology_platform("mesh2x2", cycles);
  EXPECT_EQ(mesh.platform.num_processors(), 4);
  EXPECT_EQ(mesh.platform.cycle_times(),
            (std::vector<double>{1.0, 2.0, 3.0, 1.0}));
  EXPECT_EQ(make_topology_platform("torus2x5", cycles)
                .platform.num_processors(),
            10);
  EXPECT_EQ(make_topology_platform("fattree2x3", cycles)
                .platform.num_processors(),
            13);  // 1 + 3 + 9
}

TEST(StructuredTopologies, MalformedAndUnknownNamesAreHardErrors) {
  const std::vector<double> cycles{1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(make_topology_platform("mesh3", cycles),
               std::invalid_argument);
  EXPECT_THROW(make_topology_platform("meshAx3", cycles),
               std::invalid_argument);
  EXPECT_THROW(make_topology_platform("mesh0x2", cycles),
               std::invalid_argument);
  EXPECT_THROW(make_topology_platform("mesh1x1", cycles),
               std::invalid_argument);
  EXPECT_THROW(make_topology_platform("fattree2x1", cycles),
               std::invalid_argument);
  // Node-count cap fires before any allocation (the routing tables are
  // p x p, so it bounds the quadratic footprint): a fat finger must
  // produce an error, not an OOM.
  EXPECT_THROW(make_topology_platform("mesh99999x99999", cycles),
               std::invalid_argument);
  EXPECT_THROW(make_topology_platform("mesh100x100", cycles),
               std::invalid_argument);
  EXPECT_THROW(make_topology_platform("fattree30x3", cycles),
               std::invalid_argument);

  // validate_topology_name is the cheap up-front gate CLI drivers use
  // (the ISSUE-4 sweep_cli bugfix): same verdicts, nothing built, and
  // unknown names list the registry.
  EXPECT_NO_THROW(validate_topology_name("ring"));
  EXPECT_NO_THROW(validate_topology_name("mesh3x3"));
  EXPECT_NO_THROW(validate_topology_name("torus2x5"));
  EXPECT_NO_THROW(validate_topology_name("fattree2x2"));
  EXPECT_THROW(validate_topology_name("mesh3"), std::invalid_argument);
  EXPECT_THROW(validate_topology_name("fattree2x1"), std::invalid_argument);
  // The up-front gate enforces the node cap too, so an oversized name
  // cannot sneak past it only to explode mid-sweep.
  EXPECT_THROW(validate_topology_name("mesh99999x99999"),
               std::invalid_argument);
  EXPECT_THROW(validate_topology_name("mesh100x100"), std::invalid_argument);
  EXPECT_THROW(validate_topology_name("fattree30x3"), std::invalid_argument);
  try {
    validate_topology_name("rign");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown topology 'rign'"), std::string::npos)
        << what;
    EXPECT_NE(what.find(known_topology_names()), std::string::npos) << what;
  }
}

TEST(StructuredTopologies, StructuredRoutesScheduleAndValidate) {
  const TaskGraph g = testbeds::make_stencil(8, 4.0);
  for (const char* name : {"mesh2x3", "torus3x3", "fattree2x2"}) {
    SCOPED_TRACE(name);
    const RoutedPlatform routed = make_topology_platform(
        name, {1.0, 1.0, 2.0, 2.0, 3.0, 3.0}, 1.0);
    const Schedule s = heft(g, routed.platform,
                            {.model = EftEngine::Model::kOnePort,
                             .routing = &routed.routing});
    const ValidationResult check = validate_one_port(s, g, routed.platform);
    EXPECT_TRUE(check.ok()) << check.message();
  }
}

// Cache correctness (ISSUE-4): the process-wide sweep cache must return
// the same immutable instance per key, and that instance must be
// identical -- paths and distances -- to a freshly built platform.
TEST(StructuredTopologies, SharedTopologyPlatformCachePinsFreshTables) {
  const std::vector<double> cycles{1.0, 2.0, 1.0, 2.0, 3.0};
  const auto a = analysis::shared_topology_platform("mesh3x3", cycles, 1.0, 1);
  const auto b = analysis::shared_topology_platform("mesh3x3", cycles, 1.0, 1);
  EXPECT_EQ(a.get(), b.get()) << "second lookup must hit the cache";

  const RoutedPlatform fresh = make_topology_platform("mesh3x3", cycles, 1.0);
  ASSERT_EQ(a->platform.num_processors(), fresh.platform.num_processors());
  const int p = fresh.platform.num_processors();
  for (ProcId q = 0; q < p; ++q) {
    EXPECT_EQ(a->platform.cycle_time(q), fresh.platform.cycle_time(q));
    for (ProcId r = 0; r < p; ++r) {
      EXPECT_EQ(a->routing.path(q, r), fresh.routing.path(q, r));
      EXPECT_EQ(a->routing.distance(q, r), fresh.routing.distance(q, r));
      EXPECT_EQ(a->platform.link(q, r), fresh.platform.link(q, r));
    }
  }

  // Seed participates in the key: two random networks with different
  // seeds are distinct instances (and, in general, distinct graphs).
  const auto r1 = analysis::shared_topology_platform("random", cycles, 1.0, 1);
  const auto r2 = analysis::shared_topology_platform("random", cycles, 1.0, 2);
  EXPECT_NE(r1.get(), r2.get());
  const auto r1_again =
      analysis::shared_topology_platform("random", cycles, 1.0, 1);
  EXPECT_EQ(r1.get(), r1_again.get());
}

TEST(RoutedScheduling, ChainMessagesValidate) {
  // A two-task chain across a star's spokes: the message must hop via the
  // hub, occupying two port pairs.
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 3.0);
  g.finalize();
  const RoutedPlatform star = make_star_platform({5.0, 1.0, 1.0}, 1.0);
  // Force the chain across spokes with a fixed allocation (the hub is so
  // slow that EFT would otherwise avoid hopping).
  const Schedule s = reschedule_fixed_allocation(
      g, star.platform, {1, 2}, EftEngine::Model::kOnePort, &star.routing);
  const ValidationResult check = validate_one_port(s, g, star.platform);
  EXPECT_TRUE(check.ok()) << check.message();
  // Two hops of duration 3 each, store-and-forward: 1 + 3 + 3 + 1 = 8.
  EXPECT_EQ(s.num_comms(), 2u);
  EXPECT_DOUBLE_EQ(s.makespan(), 8.0);
}

TEST(RoutedScheduling, HeuristicsValidOnRingAndStar) {
  const TaskGraph g = testbeds::make_stencil(8, 4.0);
  for (const auto& routed :
       {make_ring_platform({1, 1, 2, 2, 3}, 1.0),
        make_star_platform({1, 1, 2, 2, 3}, 1.0)}) {
    const Schedule hs = heft(g, routed.platform,
                             {.model = EftEngine::Model::kOnePort,
                              .routing = &routed.routing});
    const ValidationResult hc = validate_one_port(hs, g, routed.platform);
    EXPECT_TRUE(hc.ok()) << hc.message();

    const Schedule is = ilha(g, routed.platform,
                             {.model = EftEngine::Model::kOnePort,
                              .chunk_size = 8,
                              .routing = &routed.routing});
    const ValidationResult ic = validate_one_port(is, g, routed.platform);
    EXPECT_TRUE(ic.ok()) << ic.message();
  }
}

TEST(RoutedScheduling, MacroModelSupportsRoutingToo) {
  const TaskGraph g = testbeds::make_lu(8, 4.0);
  const RoutedPlatform ring = make_ring_platform({1, 1, 2, 2}, 1.0);
  const Schedule s = heft(g, ring.platform,
                          {.model = EftEngine::Model::kMacroDataflow,
                           .routing = &ring.routing});
  const ValidationResult check = validate_macro_dataflow(s, g, ring.platform);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST(RoutedScheduling, ReplayHandlesHopChains) {
  const TaskGraph g = testbeds::make_laplace(6, 4.0);
  const RoutedPlatform ring = make_ring_platform({1, 1, 1, 2, 2}, 1.0);
  const Schedule s = heft(g, ring.platform,
                          {.model = EftEngine::Model::kOnePort,
                           .routing = &ring.routing});
  const Schedule r = asap_replay(s, g, ring.platform, CommModel::kOnePort);
  EXPECT_LE(r.makespan(), s.makespan() + 1e-6);
  EXPECT_TRUE(validate_one_port(r, g, ring.platform).ok());
}

TEST(RoutedScheduling, MissingLinkWithoutRoutingThrows) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const RoutedPlatform star = make_star_platform({5.0, 1.0, 1.0}, 1.0);
  // Forcing a spoke-to-spoke transfer without a routing table must fail
  // loudly rather than schedule an infinite-duration message.
  EXPECT_THROW(reschedule_fixed_allocation(g, star.platform, {1, 2},
                                           EftEngine::Model::kOnePort),
               std::invalid_argument);
}

// Note: this is an instance-level regression check, not a theorem --
// list-scheduling heuristics are not monotone in the network, and on some
// graphs a sparser network can steer HEFT toward *better* decisions.  On
// this fixed instance the expected ordering holds.
TEST(RoutedScheduling, SparserNetworkIsNeverFaster) {
  const TaskGraph g = testbeds::make_doolittle(10, 5.0);
  const std::vector<double> cycles{1, 1, 2, 2, 3};
  const Platform full(cycles, 1.0);
  const RoutedPlatform ring = make_ring_platform(cycles, 1.0);
  const Schedule full_s = heft(g, full, {.model = EftEngine::Model::kOnePort});
  const Schedule ring_s = heft(g, ring.platform,
                               {.model = EftEngine::Model::kOnePort,
                                .routing = &ring.routing});
  EXPECT_GE(ring_s.makespan(), full_s.makespan() - 1e-6);
}

}  // namespace
}  // namespace oneport
