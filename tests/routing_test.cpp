#include <gtest/gtest.h>

#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/routing.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(RoutingTable, RingPaths) {
  const RoutedPlatform ring = make_ring_platform({1, 1, 1, 1, 1}, 2.0);
  EXPECT_TRUE(ring.routing.direct(0, 1));
  EXPECT_TRUE(ring.routing.direct(0, 4));  // wrap-around neighbour
  EXPECT_FALSE(ring.routing.direct(0, 2));
  EXPECT_EQ(ring.routing.path(0, 2), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_EQ(ring.routing.path(0, 3), (std::vector<ProcId>{0, 4, 3}));
  EXPECT_EQ(ring.routing.path(2, 2), (std::vector<ProcId>{2}));
  EXPECT_DOUBLE_EQ(ring.routing.distance(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(ring.routing.distance(0, 0), 0.0);
}

TEST(RoutingTable, StarRoutesThroughHub) {
  const RoutedPlatform star = make_star_platform({1, 1, 1, 1}, 1.0);
  EXPECT_EQ(star.routing.path(1, 3), (std::vector<ProcId>{1, 0, 3}));
  EXPECT_EQ(star.routing.path(0, 2), (std::vector<ProcId>{0, 2}));
  EXPECT_DOUBLE_EQ(star.routing.distance(1, 3), 2.0);
}

TEST(RoutingTable, DisconnectedNetworkRejected) {
  Matrix<double> link(3, 3, kNoLink);
  for (std::size_t i = 0; i < 3; ++i) link(i, i) = 0.0;
  link(0, 1) = link(1, 0) = 1.0;  // P2 unreachable
  const Platform p({1.0, 1.0, 1.0}, std::move(link));
  EXPECT_THROW(RoutingTable::shortest_paths(p), std::invalid_argument);
}

TEST(RoutingTable, PicksCheapestRoute) {
  // 0-1 expensive direct, 0-2-1 cheap detour.
  Matrix<double> link(3, 3, kNoLink);
  for (std::size_t i = 0; i < 3; ++i) link(i, i) = 0.0;
  link(0, 1) = link(1, 0) = 10.0;
  link(0, 2) = link(2, 0) = 1.0;
  link(2, 1) = link(1, 2) = 1.0;
  const Platform p({1.0, 1.0, 1.0}, std::move(link));
  const RoutingTable routing = RoutingTable::shortest_paths(p);
  EXPECT_EQ(routing.path(0, 1), (std::vector<ProcId>{0, 2, 1}));
  EXPECT_DOUBLE_EQ(routing.distance(0, 1), 2.0);
}

TEST(RoutedScheduling, ChainMessagesValidate) {
  // A two-task chain across a star's spokes: the message must hop via the
  // hub, occupying two port pairs.
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 3.0);
  g.finalize();
  const RoutedPlatform star = make_star_platform({5.0, 1.0, 1.0}, 1.0);
  // Force the chain across spokes with a fixed allocation (the hub is so
  // slow that EFT would otherwise avoid hopping).
  const Schedule s = reschedule_fixed_allocation(
      g, star.platform, {1, 2}, EftEngine::Model::kOnePort, &star.routing);
  const ValidationResult check = validate_one_port(s, g, star.platform);
  EXPECT_TRUE(check.ok()) << check.message();
  // Two hops of duration 3 each, store-and-forward: 1 + 3 + 3 + 1 = 8.
  EXPECT_EQ(s.num_comms(), 2u);
  EXPECT_DOUBLE_EQ(s.makespan(), 8.0);
}

TEST(RoutedScheduling, HeuristicsValidOnRingAndStar) {
  const TaskGraph g = testbeds::make_stencil(8, 4.0);
  for (const auto& routed :
       {make_ring_platform({1, 1, 2, 2, 3}, 1.0),
        make_star_platform({1, 1, 2, 2, 3}, 1.0)}) {
    const Schedule hs = heft(g, routed.platform,
                             {.model = EftEngine::Model::kOnePort,
                              .routing = &routed.routing});
    const ValidationResult hc = validate_one_port(hs, g, routed.platform);
    EXPECT_TRUE(hc.ok()) << hc.message();

    const Schedule is = ilha(g, routed.platform,
                             {.model = EftEngine::Model::kOnePort,
                              .chunk_size = 8,
                              .routing = &routed.routing});
    const ValidationResult ic = validate_one_port(is, g, routed.platform);
    EXPECT_TRUE(ic.ok()) << ic.message();
  }
}

TEST(RoutedScheduling, MacroModelSupportsRoutingToo) {
  const TaskGraph g = testbeds::make_lu(8, 4.0);
  const RoutedPlatform ring = make_ring_platform({1, 1, 2, 2}, 1.0);
  const Schedule s = heft(g, ring.platform,
                          {.model = EftEngine::Model::kMacroDataflow,
                           .routing = &ring.routing});
  const ValidationResult check = validate_macro_dataflow(s, g, ring.platform);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST(RoutedScheduling, ReplayHandlesHopChains) {
  const TaskGraph g = testbeds::make_laplace(6, 4.0);
  const RoutedPlatform ring = make_ring_platform({1, 1, 1, 2, 2}, 1.0);
  const Schedule s = heft(g, ring.platform,
                          {.model = EftEngine::Model::kOnePort,
                           .routing = &ring.routing});
  const Schedule r = asap_replay(s, g, ring.platform, CommModel::kOnePort);
  EXPECT_LE(r.makespan(), s.makespan() + 1e-6);
  EXPECT_TRUE(validate_one_port(r, g, ring.platform).ok());
}

TEST(RoutedScheduling, MissingLinkWithoutRoutingThrows) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const RoutedPlatform star = make_star_platform({5.0, 1.0, 1.0}, 1.0);
  // Forcing a spoke-to-spoke transfer without a routing table must fail
  // loudly rather than schedule an infinite-duration message.
  EXPECT_THROW(reschedule_fixed_allocation(g, star.platform, {1, 2},
                                           EftEngine::Model::kOnePort),
               std::invalid_argument);
}

// Note: this is an instance-level regression check, not a theorem --
// list-scheduling heuristics are not monotone in the network, and on some
// graphs a sparser network can steer HEFT toward *better* decisions.  On
// this fixed instance the expected ordering holds.
TEST(RoutedScheduling, SparserNetworkIsNeverFaster) {
  const TaskGraph g = testbeds::make_doolittle(10, 5.0);
  const std::vector<double> cycles{1, 1, 2, 2, 3};
  const Platform full(cycles, 1.0);
  const RoutedPlatform ring = make_ring_platform(cycles, 1.0);
  const Schedule full_s = heft(g, full, {.model = EftEngine::Model::kOnePort});
  const Schedule ring_s = heft(g, ring.platform,
                               {.model = EftEngine::Model::kOnePort,
                                .routing = &ring.routing});
  EXPECT_GE(ring_s.makespan(), full_s.makespan() - 1e-6);
}

}  // namespace
}  // namespace oneport
