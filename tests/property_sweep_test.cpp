// Property sweep: every registered heuristic, under both communication
// models, over seeded random DAG x platform scenarios plus hand-picked
// degenerate workloads.  Each (scenario, scheduler) pair is pushed
// through the full invariant battery of tests/support/invariants.hpp:
// validation, makespan lower bounds, replay dominance, serialize
// round-trip, and communication bounds.
//
// Scenarios come in two flavours: fully-connected platforms
// (scenario_sweep) and sparse routed topologies -- ring, star, random
// connected, line, two-node, 2D mesh, torus, fat tree, heterogeneous-cost
// meshes (seeded ':het'/':hot' link costs), and non-default routing
// policies (':alt'/':swp') -- where messages between non-adjacent
// processors are store-and-forward chains validated hop by hop against
// the scenario's RoutingTable (routed_scenario_sweep).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "util/env_knobs.hpp"
#include "dynamic/events.hpp"
#include "graph/soa_view.hpp"
#include "dynamic/reschedule.hpp"
#include "sched/replay.hpp"
#include "sched/timeline.hpp"
#include "support/invariants.hpp"
#include "support/scenario.hpp"

namespace oneport {
namespace {

using testsupport::Scenario;
using testsupport::check_all_invariants;

/// The registry names one-port variants "<name>-oneport"; everything else
/// is scheduled (and must be validated) under the macro-dataflow rules.
CommModel model_of(const SchedulerEntry& entry) {
  return entry.name.find("oneport") != std::string::npos
             ? CommModel::kOnePort
             : CommModel::kMacroDataflow;
}

// A small chunk size exercises ILHA's load-balancing quota far more
// than the paper's default of 38 on these small DAGs.  The registry is
// rebuilt per scenario so routed scenarios thread their RoutingTable to
// every heuristic.
std::vector<SchedulerEntry> registry_for(const Scenario& scenario) {
  return builtin_schedulers(SchedulerConfig{
      .ilha_chunk_size = 5, .routing = scenario.routing_ptr()});
}

void sweep_scenario(const Scenario& scenario) {
  for (const SchedulerEntry& entry : registry_for(scenario)) {
    SCOPED_TRACE(scenario.description + " scheduler=" + entry.name);
    const Schedule schedule = entry.run(scenario.graph, scenario.platform);
    const std::vector<std::string> violations =
        check_all_invariants(scenario, schedule, model_of(entry));
    for (const std::string& v : violations) ADD_FAILURE() << v;
  }
}

class PropertySweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweepTest, AllHeuristicsSatisfyAllInvariants) {
  const std::uint64_t base = GetParam();
  for (const Scenario& scenario : testsupport::scenario_sweep(base, 6)) {
    sweep_scenario(scenario);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweepTest,
                         ::testing::Values<std::uint64_t>(101, 211, 307, 401,
                                                          503, 601, 701));

TEST(PropertySweepEdgeCases, AllHeuristicsSatisfyAllInvariants) {
  for (const Scenario& scenario : testsupport::edge_case_scenarios()) {
    sweep_scenario(scenario);
  }
}

// Workload-family axis (ISSUE-10): the ML-training and microservice
// generators plus graphs that took a DOT/JSON export -> import round
// trip through graph/dot_import get the same verification depth as the
// synthetic kernels.  Count 8 = two full rotations through the four
// workload variants per base seed.
class WorkloadPropertySweepTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadPropertySweepTest, AllHeuristicsSatisfyAllInvariants) {
  const std::uint64_t base = GetParam();
  for (const Scenario& scenario :
       testsupport::workload_scenario_sweep(base, 8)) {
    sweep_scenario(scenario);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadPropertySweepTest,
                         ::testing::Values<std::uint64_t>(151, 257, 353));

// Sparse-topology axis (the ISSUE-3 tentpole, grown by ISSUE-4/5):
// every heuristic under both communication models over ring / star /
// random-connected / line / two-node / 2D-mesh / torus / fat-tree
// networks plus heterogeneous-cost meshes and non-default routing
// policies (alternating XY, cost-aware shortest-weighted-path), with
// store-and-forward chains checked hop by hop against the scenario's
// RoutingTable by the invariant battery.  Count 10 = one full rotation
// through every topology shape.
class RoutedPropertySweepTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutedPropertySweepTest, AllHeuristicsSatisfyAllInvariants) {
  const std::uint64_t base = GetParam();
  for (const Scenario& scenario : testsupport::routed_scenario_sweep(base, 10)) {
    sweep_scenario(scenario);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutedPropertySweepTest,
                         ::testing::Values<std::uint64_t>(131, 233, 337,
                                                          433, 541));

// Extended mode for CI/nightly: ONEPORT_SWEEP_SEEDS=<count> deepens the
// default 7x6 sweep with <count> extra seeded sweeps -- no rebuild
// needed, just the environment variable.
TEST(PropertySweepExtended, HonorsEnvSeedCount) {
  const long extra = env::integer(env::Knob::kSweepSeeds, 0);
  if (extra <= 0) {
    GTEST_SKIP() << "set ONEPORT_SWEEP_SEEDS=<count> to deepen the sweep";
  }
  for (long i = 0; i < extra; ++i) {
    const auto base = static_cast<std::uint64_t>(900101 + 97 * i);
    SCOPED_TRACE("extended base seed " + std::to_string(base));
    for (const Scenario& scenario : testsupport::scenario_sweep(base, 6)) {
      sweep_scenario(scenario);
    }
    for (const Scenario& scenario :
         testsupport::routed_scenario_sweep(base + 7, 10)) {
      sweep_scenario(scenario);
    }
  }
}

// Differential pin for the ISSUE-2/ISSUE-7 hot-path refactors: every
// timeline implementation (reference sorted-vector, gap-indexed free
// list, bucketed calendar queue) and both task-graph iteration paths
// (pointer-chasing adjacency vs the CSR/SoA view) must produce
// BIT-IDENTICAL schedules (placements and messages compared with exact
// double equality) for every registered heuristic under both
// communication models.  Any divergence means an index or layout change
// altered scheduling behavior, not just speed.  Routed scenarios ride
// the same pin: the store-and-forward code path (and the routed
// finish_lower_bound pruning behind it) must not depend on the timeline
// implementation or memory layout either.
TEST(PropertySweepDifferential, TimelineImplsYieldIdenticalSchedules) {
  std::vector<Scenario> scenarios = testsupport::scenario_sweep(8087, 8);
  for (Scenario& scenario : testsupport::edge_case_scenarios()) {
    scenarios.push_back(std::move(scenario));
  }
  for (Scenario& scenario : testsupport::routed_scenario_sweep(9091, 10)) {
    scenarios.push_back(std::move(scenario));
  }
  // ISSUE-10 workload families ride the same bit-identity pin.
  for (Scenario& scenario : testsupport::workload_scenario_sweep(9191, 4)) {
    scenarios.push_back(std::move(scenario));
  }
  struct Variant {
    const char* label;
    TimelineImpl impl;
    GraphPath path;
  };
  const Variant variants[] = {
      {"gap/soa", TimelineImpl::kGapIndexed, GraphPath::kSoa},
      {"calendar/soa", TimelineImpl::kCalendar, GraphPath::kSoa},
      {"gap/pointer", TimelineImpl::kGapIndexed, GraphPath::kPointer},
  };
  for (const Scenario& scenario : scenarios) {
    for (const SchedulerEntry& entry : registry_for(scenario)) {
      SCOPED_TRACE(scenario.description + " scheduler=" + entry.name);
      Schedule reference;
      {
        ScopedTimelineImpl guard(TimelineImpl::kReference);
        ScopedGraphPath path_guard(GraphPath::kSoa);
        reference = entry.run(scenario.graph, scenario.platform);
      }
      for (const Variant& variant : variants) {
        SCOPED_TRACE(std::string("variant=") + variant.label);
        Schedule other;
        {
          ScopedTimelineImpl guard(variant.impl);
          ScopedGraphPath path_guard(variant.path);
          other = entry.run(scenario.graph, scenario.platform);
        }
        ASSERT_EQ(reference.num_tasks(), other.num_tasks());
        EXPECT_TRUE(reference.tasks() == other.tasks())
            << "task placements diverge from the reference timeline";
        EXPECT_TRUE(reference.comms() == other.comms())
            << "communications diverge from the reference timeline";
        EXPECT_EQ(reference.makespan(), other.makespan());
      }
    }
  }
}

// Event-trace determinism: the same (DAG, platform, trace, heuristic)
// input must yield a bit-identical dynamic result -- every epoch's
// placements, live messages, and stale list -- under all three
// ONEPORT_TIMELINE implementations.  The rebuild path leans on
// next_fit/reserve far harder than the static engines (timelines are
// pre-seeded with the whole frozen prefix), so this is the dynamic
// extension of the differential pin above.
TEST(PropertySweepDifferential, DynamicRunsAreTimelineImplInvariant) {
  std::vector<Scenario> scenarios = testsupport::scenario_sweep(8187, 4);
  for (Scenario& scenario : testsupport::routed_scenario_sweep(9191, 5)) {
    scenarios.push_back(std::move(scenario));
  }
  const std::vector<std::string> traces = {"slowdown", "dropout", "mixed",
                                           "arrival"};
  for (const Scenario& scenario : scenarios) {
    const SchedulerConfig config{.ilha_chunk_size = 5,
                                 .routing = scenario.routing_ptr()};
    for (const SchedulerEntry& entry : registry_for(scenario)) {
      const Schedule initial =
          entry.run(scenario.graph, scenario.platform);
      for (const std::string& trace_name : traces) {
        SCOPED_TRACE(scenario.description + " scheduler=" + entry.name +
                     " trace=" + trace_name);
        const dyn::EventTrace trace =
            dyn::make_named_trace(trace_name, scenario.graph,
                                  scenario.platform, initial, scenario.seed);
        dyn::DynamicOptions options;
        options.model = model_of(entry);
        dyn::DynamicResult reference;
        {
          ScopedTimelineImpl guard(TimelineImpl::kReference);
          reference = dyn::run_dynamic(scenario.graph, scenario.platform,
                                       entry.name, config, trace, options);
        }
        for (const TimelineImpl impl :
             {TimelineImpl::kGapIndexed, TimelineImpl::kCalendar}) {
          SCOPED_TRACE(std::string("impl=") + timeline_impl_name(impl));
          dyn::DynamicResult other;
          {
            ScopedTimelineImpl guard(impl);
            other = dyn::run_dynamic(scenario.graph, scenario.platform,
                                     entry.name, config, trace, options);
          }
          EXPECT_TRUE(reference.schedule.tasks() == other.schedule.tasks())
              << "dynamic placements diverge between timeline impls";
          EXPECT_TRUE(reference.schedule.comms() == other.schedule.comms())
              << "dynamic messages diverge between timeline impls";
          EXPECT_TRUE(reference.stale_comms == other.stale_comms)
              << "stale lists diverge between timeline impls";
          ASSERT_EQ(reference.epochs.size(), other.epochs.size());
          for (std::size_t k = 0; k < reference.epochs.size(); ++k) {
            EXPECT_TRUE(reference.epochs[k].schedule.tasks() ==
                        other.epochs[k].schedule.tasks())
                << "epoch " << k << " placements diverge";
            EXPECT_TRUE(reference.epochs[k].schedule.comms() ==
                        other.epochs[k].schedule.comms())
                << "epoch " << k << " messages diverge";
          }
        }
      }
    }
  }
}

// Cross-model dominance: for one fixed heuristic (HEFT), relaxing its
// one-port schedule to macro-dataflow rules via replay can only shrink
// the makespan -- the quantified version of "the one-port model is the
// pessimistic one" (§2.3), checked per scenario rather than per run.
TEST(PropertySweepModels, OnePortRelaxationNeverHurts) {
  const SchedulerEntry heft = find_scheduler("heft-oneport");
  for (const Scenario& scenario : testsupport::scenario_sweep(4242, 12)) {
    const Schedule one_port = heft.run(scenario.graph, scenario.platform);
    const Schedule relaxed =
        asap_replay(one_port, scenario.graph, scenario.platform,
                    CommModel::kMacroDataflow);
    EXPECT_LE(relaxed.makespan(), one_port.makespan() + 1e-7)
        << scenario.description;
  }
}

}  // namespace
}  // namespace oneport
