#include <gtest/gtest.h>

#include "core/cpop.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(Cpop, CriticalPathTasksShareAProcessor) {
  // A heavy chain with cheap side tasks: the chain is the critical path
  // and must land on one processor.
  TaskGraph g;
  TaskId prev = g.add_task(10.0);
  std::vector<TaskId> chain{prev};
  for (int i = 0; i < 4; ++i) {
    const TaskId next = g.add_task(10.0);
    g.add_edge(prev, next, 1.0);
    chain.push_back(next);
    prev = next;
  }
  const TaskId side = g.add_task(0.5);
  g.add_edge(chain[0], side, 0.1);
  g.finalize();

  const Platform p({1.0, 2.0, 2.0}, 1.0);
  const Schedule s = cpop(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
  const ProcId cp_proc = s.task(chain[0]).proc;
  EXPECT_EQ(cp_proc, 0);  // fastest processor executes the critical path
  for (const TaskId v : chain) EXPECT_EQ(s.task(v).proc, cp_proc);
}

TEST(Cpop, ValidOnTestbeds) {
  const Platform p = make_paper_platform();
  const TaskGraph lu = testbeds::make_lu(12, 10.0);
  EXPECT_TRUE(validate_one_port(
                  cpop(lu, p, {.model = EftEngine::Model::kOnePort}), lu, p)
                  .ok());
  EXPECT_TRUE(
      validate_macro_dataflow(
          cpop(lu, p, {.model = EftEngine::Model::kMacroDataflow}), lu, p)
          .ok());
}

TEST(Cpop, DegeneratesOnAllCriticalGraphs) {
  // Every LAPLACE node lies on a critical path, so CPOP pins the whole
  // graph to one processor -- a known weakness of the heuristic on
  // uniform wavefront graphs (and why the paper's baselines matter).
  const TaskGraph g = testbeds::make_laplace(6, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = cpop(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
  EXPECT_EQ(s.num_comms(), 0u);
  for (TaskId v = 1; v < g.num_tasks(); ++v) {
    EXPECT_EQ(s.task(v).proc, s.task(0).proc);
  }
}

TEST(Cpop, Deterministic) {
  const TaskGraph g = testbeds::make_stencil(8, 10.0);
  const Platform p = make_paper_platform();
  const Schedule a = cpop(g, p, {});
  const Schedule b = cpop(g, p, {});
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(a.task(v).proc, b.task(v).proc);
  }
}

}  // namespace
}  // namespace oneport
