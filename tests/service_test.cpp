// Concurrency + correctness battery for the scheduler service (the
// ISSUE-9 tentpole).  Labeled quick AND pool: the Debug CI leg runs it
// for fast feedback and the TSan leg replays it for races across the
// request queue, the shard workers, and the per-shard topology caches.
//
// The load-bearing pins:
//   * a schedule produced through the service is BIT-identical to the
//     same SweepPoint run through analysis::run_sweep -- both paths call
//     run_sweep_point, and this suite keeps that true from the outside;
//   * the per-shard routed-platform cache returns one instance per key
//     no matter how many threads demand it concurrently (the contract
//     the old process-wide cache had, now held per shard);
//   * backpressure is principled: block-mode submitters park and every
//     request completes; reject-mode tickets partition cleanly into
//     accepted (future resolves) and rejected (retry-after hint, no id
//     consumed), and submitting after stop() always rejects.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/topology_cache.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "service/scheduler_service.hpp"
#include "util/thread_pool.hpp"

namespace oneport {
namespace {

constexpr unsigned kWorkers = 4;

analysis::SweepPoint make_point(const std::string& testbed, int size,
                                const std::string& scheduler,
                                const std::string& topology = "full") {
  analysis::SweepPoint point;
  point.testbed = testbed;
  point.size = size;
  point.scheduler = scheduler;
  point.topology = topology;
  return point;
}

// A small mixed grid covering both heuristics, two testbeds, and a
// routed topology -- the shapes the service replays in production.
std::vector<analysis::SweepPoint> mixed_grid() {
  return {
      make_point("FORK-JOIN", 20, "heft-oneport"),
      make_point("LU", 40, "ilha-oneport"),
      make_point("FORK-JOIN", 30, "ilha-oneport"),
      make_point("LU", 20, "heft-oneport", "ring"),
      make_point("STENCIL", 25, "heft-oneport", "mesh2x2"),
  };
}

// ---------------------------------------------------------- bit identity

TEST(SchedulerService, ResultsBitIdenticalToRunSweep) {
  const Platform platform = make_paper_platform();
  const std::vector<analysis::SweepPoint> grid = mixed_grid();
  const std::vector<analysis::SweepResult> expected =
      analysis::run_sweep(grid, platform, {.workers = 1});

  service::ServiceOptions options;
  options.shards = 3;  // requests hash to different shard caches
  options.batch_size = 2;
  service::SchedulerService svc(platform, options);
  std::vector<service::Ticket> tickets;
  for (const analysis::SweepPoint& point : grid) {
    tickets.push_back(svc.submit(point));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(tickets[i].accepted);
    const service::Response response = tickets[i].response.get();
    const analysis::SweepResult& want = expected[i];
    // Doubles compared with EXPECT_EQ on purpose: the service path must
    // be the same arithmetic, not merely close.
    EXPECT_EQ(response.result.makespan, want.makespan) << grid[i].testbed;
    EXPECT_EQ(response.result.speedup, want.speedup);
    EXPECT_EQ(response.result.num_tasks, want.num_tasks);
    EXPECT_EQ(response.result.num_comms, want.num_comms);
    EXPECT_EQ(response.result.imbalance_before, want.imbalance_before);
    EXPECT_EQ(response.result.imbalance_after, want.imbalance_after);
    EXPECT_GT(response.latency_ns, 0u);
    EXPECT_GE(response.latency_ns, response.service_ns);
  }
}

// ----------------------------------------------------- contended replay

TEST(SchedulerService, ContendedSubmitDrainCompletesEverything) {
  const Platform platform = make_paper_platform();
  service::ServiceOptions options;
  options.shards = 2;
  options.queue_depth = 8;  // small: submitters really do park
  options.batch_size = 3;
  options.backpressure = service::Backpressure::kBlock;
  service::SchedulerService svc(platform, options);

  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 32;
  std::atomic<std::uint64_t> resolved{0};
  {
    ThreadPool submitters(kWorkers);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      submitters.submit([&svc, &resolved] {
        for (std::size_t i = 0; i < kPerSubmitter; ++i) {
          service::Ticket ticket =
              svc.submit(make_point("FORK-JOIN", 10, "heft-oneport"));
          ASSERT_TRUE(ticket.accepted);  // block mode never rejects live
          const service::Response response = ticket.response.get();
          EXPECT_EQ(response.result.point.testbed, "FORK-JOIN");
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    submitters.wait_idle();
  }
  svc.drain();
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(resolved.load(), kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.submitted, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.completed, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_LE(stats.peak_queue_depth, options.queue_depth);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.latency_p99_ms, 0.0);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
  EXPECT_EQ(svc.latencies_ns().size(), kSubmitters * kPerSubmitter);
}

// -------------------------------------------------------- backpressure

TEST(SchedulerService, RejectModePartitionsTicketsCleanly) {
  const Platform platform = make_paper_platform();
  service::ServiceOptions options;
  options.shards = 1;
  options.queue_depth = 1;
  options.batch_size = 1;
  options.backpressure = service::Backpressure::kReject;
  options.retry_after_ms = 7;
  service::SchedulerService svc(platform, options);

  constexpr int kAttempts = 64;
  std::vector<service::Ticket> accepted;
  std::uint64_t rejected = 0;
  for (int i = 0; i < kAttempts; ++i) {
    service::Ticket ticket =
        svc.submit(make_point("FORK-JOIN", 15, "heft-oneport"));
    if (ticket.accepted) {
      accepted.push_back(std::move(ticket));
    } else {
      // Rejection is fully described: the hint is the configured one and
      // no future was attached.
      EXPECT_EQ(ticket.retry_after_ms, 7);
      EXPECT_FALSE(ticket.response.valid());
      ++rejected;
    }
  }
  for (service::Ticket& ticket : accepted) {
    EXPECT_NO_THROW((void)ticket.response.get());
  }
  svc.drain();
  const service::ServiceStats stats = svc.stats();
  // Every attempt is accounted for exactly once; rejected submissions
  // consume no ticket id.
  EXPECT_EQ(accepted.size() + rejected, static_cast<std::size_t>(kAttempts));
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.completed, accepted.size());
  EXPECT_EQ(stats.rejected, rejected);
}

TEST(SchedulerService, SubmitAfterStopRejectsDeterministically) {
  const Platform platform = make_paper_platform();
  service::ServiceOptions options;
  options.shards = 1;
  options.retry_after_ms = 3;
  service::SchedulerService svc(platform, options);
  service::Ticket before =
      svc.submit(make_point("FORK-JOIN", 10, "heft-oneport"));
  ASSERT_TRUE(before.accepted);
  (void)before.response.get();
  svc.stop();
  svc.stop();  // idempotent
  for (int i = 0; i < 3; ++i) {
    service::Ticket after =
        svc.submit(make_point("FORK-JOIN", 10, "heft-oneport"));
    EXPECT_FALSE(after.accepted);
    EXPECT_EQ(after.retry_after_ms, 3);
    EXPECT_FALSE(after.response.valid());
  }
  EXPECT_EQ(svc.stats().completed, 1u);
}

TEST(SchedulerService, FaultingRequestResolvesItsFutureOnly) {
  const Platform platform = make_paper_platform();
  service::ServiceOptions options;
  options.shards = 1;
  options.batch_size = 4;
  service::SchedulerService svc(platform, options);
  // One poisoned request in the middle of a batch: its future throws,
  // its neighbors complete normally, and the worker survives.
  service::Ticket ok1 = svc.submit(make_point("FORK-JOIN", 10, "heft-oneport"));
  service::Ticket bad = svc.submit(make_point("NO-SUCH-TESTBED", 10,
                                              "heft-oneport"));
  service::Ticket ok2 = svc.submit(make_point("LU", 10, "heft-oneport"));
  ASSERT_TRUE(ok1.accepted && bad.accepted && ok2.accepted);
  EXPECT_NO_THROW((void)ok1.response.get());
  EXPECT_THROW((void)bad.response.get(), std::exception);
  EXPECT_NO_THROW((void)ok2.response.get());
  svc.drain();  // the failed request must not leave in_flight_ stuck
}

TEST(SchedulerService, BackpressureParsing) {
  EXPECT_EQ(service::parse_backpressure("block"),
            service::Backpressure::kBlock);
  EXPECT_EQ(service::parse_backpressure("reject"),
            service::Backpressure::kReject);
  EXPECT_THROW((void)service::parse_backpressure("drop"),
               std::invalid_argument);
  EXPECT_STREQ(service::backpressure_name(service::Backpressure::kBlock),
               "block");
  EXPECT_STREQ(service::backpressure_name(service::Backpressure::kReject),
               "reject");
}

// ------------------------------------------------- sharded topology cache

TEST(ShardedTopologyCache, ShardGetIsOneInstancePerKeyUnderContention) {
  analysis::TopologyCacheShard shard;
  const std::vector<double> cycles{4.0, 5.0, 6.0, 10.0};
  constexpr std::size_t kLookups = 256;
  std::vector<std::shared_ptr<const RoutedPlatform>> got(kLookups);
  ThreadPool pool(kWorkers);
  pool.parallel_for(kLookups, [&](std::size_t i) {
    got[i] = shard.get(i % 2 == 0 ? "ring" : "star", cycles, /*link=*/1.0,
                       /*seed=*/i % 3);
  });
  for (std::size_t i = 0; i < kLookups; ++i) {
    ASSERT_NE(got[i], nullptr);
    for (std::size_t j = i + 1; j < kLookups; ++j) {
      if (i % 2 == j % 2 && i % 3 == j % 3) {
        EXPECT_EQ(got[i].get(), got[j].get())
            << "shard built two instances for one key (" << i << ", " << j
            << ")";
      }
    }
  }
  EXPECT_EQ(shard.size(), 6u);  // 2 topologies x 3 seeds
}

TEST(ShardedTopologyCache, HashRoutingIsStableAndCoversAllShards) {
  analysis::ShardedTopologyCache cache(4);
  EXPECT_EQ(cache.num_shards(), 4u);
  // Routing is a pure function of (topology, seed)...
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_EQ(cache.shard_for("ring", seed), cache.shard_for("ring", seed));
  }
  // ...and the routed get() caches exactly once per key, in the shard
  // the router names.
  const std::vector<double> cycles{4.0, 5.0};
  const auto a = cache.get("ring", cycles, 1.0, 1);
  const auto b = cache.get("ring", cycles, 1.0, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.total_entries(), 1u);
  EXPECT_EQ(cache.shard(cache.shard_for("ring", 1)).size(), 1u);
}

TEST(ShardedTopologyCache, ServiceShardsStayDisjointButConsistent) {
  // Two service workers resolving the same routed point each populate
  // their own shard: instances may differ across shards (that is the
  // contention trade), but every schedule derived from them is
  // identical -- pinned end to end here via the service bit-identity
  // path on a routed topology.
  const Platform platform = make_paper_platform();
  const std::vector<analysis::SweepPoint> grid = {
      make_point("LU", 30, "heft-oneport", "mesh2x2"),
      make_point("LU", 30, "heft-oneport", "mesh2x2"),
  };
  const std::vector<analysis::SweepResult> expected =
      analysis::run_sweep(grid, platform, {.workers = 1});
  service::ServiceOptions options;
  options.shards = 2;
  options.batch_size = 1;
  service::SchedulerService svc(platform, options);
  std::vector<service::Ticket> tickets;
  for (const analysis::SweepPoint& point : grid) {
    tickets.push_back(svc.submit(point));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(tickets[i].accepted);
    const service::Response response = tickets[i].response.get();
    EXPECT_EQ(response.result.makespan, expected[i].makespan);
    EXPECT_EQ(response.result.num_comms, expected[i].num_comms);
  }
}

}  // namespace
}  // namespace oneport
