// Fault injection for the independent schedule checkers: mutate *valid*
// schedules with the tests/support/faults.hpp mutators and assert that
// the targeted P1-P5 checker (and the specific model rule inside it)
// catches exactly the injected violation.
//
// P3 (replay dominance) has no injection case by design: ASAP replay
// keeps the schedule's resource orders and recomputes every date as
// early as the model allows, so any order-consistent schedule -- valid
// or mutated -- replays to a makespan no larger than its own; a P3
// violation can only come from a scheduler whose bookkeeping disagrees
// with its own decisions, which the property sweeps cover.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/routing.hpp"
#include "sched/replay.hpp"
#include "support/faults.hpp"
#include "support/invariants.hpp"
#include "support/scenario.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

using namespace testsupport;

/// True when some violation message contains `needle`.
bool mentions(const std::vector<std::string>& errors,
              const std::string& needle) {
  for (const std::string& e : errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string joined(const std::vector<std::string>& errors) {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

/// A routed scenario whose only edge must hop spoke -> hub -> spoke: the
/// hub is so slow that a fixed allocation is the cheapest way to force a
/// deterministic two-hop store-and-forward chain.
Scenario star_scenario() {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 3.0);
  g.finalize();
  RoutedPlatform star = make_star_platform({5.0, 1.0, 1.0, 1.0}, 1.0);
  return Scenario{1, "fault/star-chain", std::move(g),
                  std::move(star.platform), std::move(star.routing)};
}

Schedule star_schedule(const Scenario& scenario) {
  return reschedule_fixed_allocation(scenario.graph, scenario.platform,
                                     {1, 2}, EftEngine::Model::kOnePort,
                                     scenario.routing_ptr());
}

/// A ring scenario whose only edge hops P0 -> P1 -> P2: the alternate
/// equal-cost route P0 -> P3 -> P2 also has real links, so a rerouted
/// chain stays model-valid and only routing conformance can flag it.
Scenario ring_scenario() {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 3.0);
  g.finalize();
  RoutedPlatform ring = make_ring_platform({1.0, 1.0, 1.0, 1.0}, 1.0);
  return Scenario{3, "fault/ring-chain", std::move(g),
                  std::move(ring.platform), std::move(ring.routing)};
}

/// A fork-join on a fully-connected platform: the root fans out over the
/// send port and the join fans in over the receive port, so both port
/// directions carry at least two messages.
Scenario forkjoin_scenario() {
  // Communication far cheaper than computation, so HEFT spreads the
  // children and the schedule actually carries messages.
  TaskGraph g = testbeds::make_fork_join(4, /*comm_ratio=*/0.1);
  return Scenario{2, "fault/fork-join", std::move(g),
                  Platform({1.0, 1.0, 1.0, 1.0}, 1.0), std::nullopt};
}

class StarFaults : public ::testing::Test {
 protected:
  StarFaults() : scenario_(star_scenario()), valid_(star_schedule(scenario_)) {}

  Scenario scenario_;
  Schedule valid_;
};

TEST_F(StarFaults, BaselineIsViolationFree) {
  const std::vector<std::string> violations =
      check_all_invariants(scenario_, valid_, CommModel::kOnePort);
  EXPECT_TRUE(violations.empty()) << joined(violations);
  ASSERT_EQ(valid_.num_comms(), 2u) << "expected a two-hop chain";
}

TEST_F(StarFaults, DroppedHopIsCaughtByValidator) {
  const Schedule mutated = drop_chain_hop(valid_);
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "M5")) << joined(errors);
  EXPECT_TRUE(mentions(errors, "last hop reaches")) << joined(errors);
  // The routing-aware P5 checker independently notices the short chain.
  EXPECT_TRUE(mentions(check_comm_bounds(scenario_, mutated),
                       "the routed path needs"));
}

TEST_F(StarFaults, DroppedEdgeMessagesAreCaughtByValidator) {
  const Schedule mutated = drop_edge_messages(valid_);
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "M4")) << joined(errors);
  EXPECT_TRUE(mentions(errors, "expected a message, found none"))
      << joined(errors);
}

TEST_F(StarFaults, ReceiveShiftedBeforeSendIsCaughtByValidator) {
  const Schedule mutated = shift_receive_before_send(valid_);
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "M4")) << joined(errors);
  EXPECT_TRUE(mentions(errors, "before source finishes")) << joined(errors);
}

TEST(RingFaults, ReroutedChainPassesValidatorButFailsRouting) {
  // Redirect the chain over the other side of the ring: every hop still
  // has a real link of the same cost, so M1-M5/O1-O2 all hold -- only
  // the routing-aware P5 conformance check can notice the deviation.
  const Scenario scenario = ring_scenario();
  const Schedule valid = reschedule_fixed_allocation(
      scenario.graph, scenario.platform, {0, 2}, EftEngine::Model::kOnePort,
      scenario.routing_ptr());
  ASSERT_TRUE(check_all_invariants(scenario, valid, CommModel::kOnePort)
                  .empty());
  ASSERT_EQ(valid.num_comms(), 2u) << "expected a two-hop chain";

  const Schedule mutated = reroute_chain_hop(valid, /*via=*/3);
  const std::vector<std::string> model_errors =
      check_valid(scenario, mutated, CommModel::kOnePort);
  EXPECT_TRUE(model_errors.empty()) << joined(model_errors);
  const std::vector<std::string> errors =
      check_comm_bounds(scenario, mutated);
  EXPECT_TRUE(mentions(errors, "the routed path says")) << joined(errors);
}

TEST_F(StarFaults, MisplacedTaskOnRoutedScenarioReportsInsteadOfThrowing) {
  // The routed P5 branch looks the endpoint processors up in the routing
  // table; an out-of-range placement must come back as a violation, not
  // escape as an exception and abort the battery.
  const Schedule mutated =
      misplace_task(valid_, scenario_.platform.num_processors());
  const std::vector<std::string> errors =
      check_comm_bounds(scenario_, mutated);
  EXPECT_TRUE(mentions(errors, "invalid processor")) << joined(errors);
  EXPECT_TRUE(mentions(check_valid(scenario_, mutated, CommModel::kOnePort),
                       "M1"));
}

TEST_F(StarFaults, CompressedScheduleBeatsTheLowerBounds) {
  // P2 checks makespan against work/critical-path relaxations, not the
  // per-rule model constraints, so it is probed with its own checker.
  const Schedule mutated = compress_schedule(valid_, 0.05);
  const std::vector<std::string> errors =
      check_makespan_lower_bounds(scenario_, mutated);
  EXPECT_TRUE(mentions(errors, "lower bound")) << joined(errors);
}

TEST_F(StarFaults, StretchedDurationFailsSerializeRoundTripValidation) {
  // P4 re-validates the schedule after a write -> read cycle, so a model
  // violation surfaces there too (the round trip itself stays bit-exact).
  const Schedule mutated = stretch_task_duration(valid_);
  const std::vector<std::string> errors =
      check_serialize_round_trip(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "reread schedule fails validation"))
      << joined(errors);
}

class ForkJoinFaults : public ::testing::Test {
 protected:
  ForkJoinFaults()
      : scenario_(forkjoin_scenario()),
        valid_(heft(scenario_.graph, scenario_.platform,
                    {.model = EftEngine::Model::kOnePort})) {}

  Scenario scenario_;
  Schedule valid_;
};

TEST_F(ForkJoinFaults, BaselineIsViolationFree) {
  const std::vector<std::string> violations =
      check_all_invariants(scenario_, valid_, CommModel::kOnePort);
  EXPECT_TRUE(violations.empty()) << joined(violations);
  ASSERT_GE(valid_.num_comms(), 2u);
}

TEST_F(ForkJoinFaults, SendPortOverlapIsCaughtByValidator) {
  const Schedule mutated = overlap_send_port(valid_);
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "O1")) << joined(errors);
}

TEST_F(ForkJoinFaults, RecvPortOverlapIsCaughtByValidator) {
  const Schedule mutated = overlap_recv_port(valid_);
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "O2")) << joined(errors);
}

TEST_F(ForkJoinFaults, ComputeOverlapIsCaughtByValidator) {
  const Schedule mutated = overlap_compute(valid_);
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "M3")) << joined(errors);
}

TEST_F(ForkJoinFaults, StretchedTaskDurationIsCaughtByValidator) {
  const Schedule mutated = stretch_task_duration(valid_);
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "M2")) << joined(errors);
}

TEST_F(ForkJoinFaults, MisplacedTaskIsCaughtByValidator) {
  const Schedule mutated =
      misplace_task(valid_, scenario_.platform.num_processors());
  const std::vector<std::string> errors =
      check_valid(scenario_, mutated, CommModel::kOnePort);
  EXPECT_TRUE(mentions(errors, "M1")) << joined(errors);
}

TEST_F(ForkJoinFaults, DuplicateMessageIsCaughtByCommBounds) {
  const Schedule mutated = duplicate_message(valid_);
  const std::vector<std::string> errors =
      check_comm_bounds(scenario_, mutated);
  EXPECT_TRUE(mentions(errors, "duplicate message")) << joined(errors);
}

TEST_F(ForkJoinFaults, EveryFaultTripsTheAggregateBattery) {
  const std::vector<Schedule> mutants = {
      overlap_send_port(valid_),   overlap_recv_port(valid_),
      overlap_compute(valid_),     stretch_task_duration(valid_),
      misplace_task(valid_, scenario_.platform.num_processors()),
      duplicate_message(valid_),   drop_edge_messages(valid_),
  };
  for (std::size_t i = 0; i < mutants.size(); ++i) {
    EXPECT_FALSE(
        check_all_invariants(scenario_, mutants[i], CommModel::kOnePort)
            .empty())
        << "mutant " << i << " slipped through the invariant battery";
  }
}

}  // namespace
}  // namespace oneport
