#include <gtest/gtest.h>

#include "sched/schedule.hpp"

namespace oneport {
namespace {

TEST(Schedule, PlaceAndQuery) {
  Schedule s(3);
  EXPECT_FALSE(s.complete());
  s.place_task(0, 1, 0.0, 2.0);
  s.place_task(1, 0, 1.0, 4.0);
  s.place_task(2, 1, 2.0, 3.0);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.task(1).proc, 0);
  EXPECT_DOUBLE_EQ(s.task(1).finish, 4.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
}

TEST(Schedule, RejectsDoublePlacementAndBadArgs) {
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  EXPECT_THROW(s.place_task(0, 1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.place_task(5, 0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.place_task(1, -1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.place_task(1, 0, 2.0, 1.0), std::invalid_argument);
}

TEST(Schedule, CommValidation) {
  Schedule s(2);
  s.add_comm({0, 1, 0, 1, 0.0, 3.0});
  EXPECT_EQ(s.num_comms(), 1u);
  EXPECT_THROW(s.add_comm({0, 9, 0, 1, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(s.add_comm({0, 1, 0, 0, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(s.add_comm({0, 1, 0, 1, 2.0, 1.0}), std::invalid_argument);
}

TEST(Schedule, MakespanIncludesComms) {
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 1, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 9.0});
  EXPECT_DOUBLE_EQ(s.makespan(), 9.0);
}

TEST(Schedule, EmptyMakespanIsZero) {
  const Schedule s(0);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  EXPECT_TRUE(s.complete());
}

TEST(TaskPlacement, PlacedFlag) {
  TaskPlacement t;
  EXPECT_FALSE(t.placed());
  t.proc = 0;
  EXPECT_TRUE(t.placed());
}

}  // namespace
}  // namespace oneport
