// Fuzz/property battery for graph/dot_import (ISSUE-10 satellite):
//   * round-trip pins: export -> import -> export is byte-identical in
//     both formats over seeded random DAGs and every testbed generator;
//   * a malformed-input corpus asserting the TYPED rejection kind --
//     cycles, dangling edges, duplicate ids, NaN/negative weights,
//     truncated exporter dumps -- no crash, no silent acceptance;
//   * a prefix-truncation fuzz: every proper prefix of a valid file
//     either parses or throws ImportError (nothing else escapes).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/dot_export.hpp"
#include "graph/dot_import.hpp"
#include "graph/task_graph.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

std::string to_dot(const TaskGraph& g, const std::string& name) {
  std::ostringstream os;
  write_dot(os, g, {.graph_name = name});
  return os.str();
}

std::string to_json(const TaskGraph& g, const std::string& name) {
  std::ostringstream os;
  write_json_graph(os, g, {.graph_name = name});
  return os.str();
}

/// Structural equality independent of the textual form.
void expect_same_graph(const TaskGraph& a, const TaskGraph& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(a.weight(v), b.weight(v)) << "task " << v;
    EXPECT_EQ(a.name(v), b.name(v)) << "task " << v;
    const auto sa = a.successors(v);
    const auto sb = b.successors(v);
    ASSERT_EQ(sa.size(), sb.size()) << "task " << v;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].task, sb[i].task) << "task " << v << " edge " << i;
      EXPECT_DOUBLE_EQ(sa[i].data, sb[i].data)
          << "task " << v << " edge " << i;
    }
  }
}

ImportError::Kind kind_of(const std::string& text) {
  try {
    (void)import_task_graph(text);
  } catch (const ImportError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "input was accepted:\n" << text;
  return ImportError::Kind::kIo;
}

// ------------------------------------------------------- round trips

TEST(ImportRoundTrip, DotByteIdentityOverSeededRandomDags) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    testbeds::RandomDagOptions options;
    options.seed = seed;
    options.layers = 3 + static_cast<int>(seed % 6);
    options.max_width = 2 + static_cast<int>(seed % 5);
    const TaskGraph g = testbeds::make_random_layered(options);
    // The first export may round weights (format_number keeps a few
    // significant digits); identity is over the normalized form: the
    // exported text reproduces itself byte for byte through import, and
    // re-importing that text rebuilds the identical structure.
    const std::string once = to_dot(g, "fuzz");
    const ImportedGraph imported = import_dot(once);
    EXPECT_EQ(imported.graph_name, "fuzz");
    const std::string twice = to_dot(imported.graph, imported.graph_name);
    EXPECT_EQ(once, twice) << "seed " << seed;
    expect_same_graph(imported.graph, import_dot(twice).graph);
  }
}

TEST(ImportRoundTrip, JsonByteIdentityOverSeededRandomDags) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    testbeds::RandomDagOptions options;
    options.seed = seed * 977;
    const TaskGraph g = testbeds::make_random_layered(options);
    const std::string once = to_json(g, "fuzz_json");
    const ImportedGraph imported = import_json(once);
    EXPECT_EQ(imported.graph_name, "fuzz_json");
    const std::string twice = to_json(imported.graph, imported.graph_name);
    EXPECT_EQ(once, twice) << "seed " << seed;
    expect_same_graph(imported.graph, import_json(twice).graph);
  }
}

TEST(ImportRoundTrip, EveryRegisteredTestbedRoundTripsBothFormats) {
  for (const auto& entry : testbeds::all_testbeds()) {
    const TaskGraph g = entry.make(6, testbeds::kPaperCommRatio);
    const std::string dot = to_dot(g, "bed");
    const std::string json = to_json(g, "bed");
    EXPECT_EQ(dot, to_dot(import_dot(dot).graph, "bed")) << entry.name;
    EXPECT_EQ(json, to_json(import_json(json).graph, "bed")) << entry.name;
  }
}

TEST(ImportRoundTrip, SnifferDispatchesOnLeadingByte) {
  TaskGraph g;
  g.add_task(1.0, "only");
  g.finalize();
  const std::string dot = to_dot(g, "one");
  const std::string json = "\n  " + to_json(g, "one");  // leading ws
  expect_same_graph(import_task_graph(dot).graph, g);
  expect_same_graph(import_task_graph(json).graph, g);
}

TEST(ImportRoundTrip, PlaceholderNamesMapBackToEmpty) {
  TaskGraph g;
  g.add_task(2.0);  // unnamed: exported as label "v0"
  g.add_task(3.0, "named");
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const ImportedGraph imported = import_dot(to_dot(g, "g"));
  EXPECT_EQ(imported.graph.name(0), "");
  EXPECT_EQ(imported.graph.name(1), "named");
}

TEST(ImportRoundTrip, MinimalJsonDocument) {
  // Smallest valid document: one task, no edges.  (The shipped
  // examples/traces/ files are exercised end to end by the
  // sweep_cli_imports_example_traces CTest smoke.)
  const ImportedGraph one = import_json(
      "{\"name\": \"d\", \"tasks\": [{\"id\": 0, \"w\": 1}], \"edges\": []}");
  EXPECT_EQ(one.graph.num_tasks(), 1u);
  EXPECT_DOUBLE_EQ(one.graph.weight(0), 1.0);
}

// ------------------------------------------- malformed-input corpus

TEST(ImportRejects, MissingFile) {
  try {
    (void)load_task_graph("/nonexistent/not_here.dot");
    FAIL() << "missing file accepted";
  } catch (const ImportError& e) {
    EXPECT_EQ(e.kind(), ImportError::Kind::kIo);
    EXPECT_NE(std::string(e.what()).find("not_here.dot"), std::string::npos);
  }
}

TEST(ImportRejects, EmptyAndHeaderlessInput) {
  EXPECT_EQ(kind_of(""), ImportError::Kind::kSyntax);
  EXPECT_EQ(kind_of("   \n\t\n"), ImportError::Kind::kSyntax);
  EXPECT_EQ(kind_of("graph g {\n}\n"), ImportError::Kind::kSyntax);
}

TEST(ImportRejects, TruncatedExporterDump) {
  TaskGraph g;
  for (int i = 0; i < 8; ++i) g.add_task(1.0);
  g.finalize();
  std::ostringstream os;
  write_dot(os, g, {.graph_name = "big", .max_tasks = 4});
  const std::string kind_name =
      import_error_kind_name(ImportError::Kind::kTruncatedDump);
  EXPECT_EQ(kind_name, "truncated-dump");
  EXPECT_EQ(kind_of(os.str()), ImportError::Kind::kTruncatedDump);
}

TEST(ImportRejects, CycleIsTyped) {
  const std::string text =
      "digraph c {\n"
      "  n0 [label=\"a\\nw=1\"];\n"
      "  n1 [label=\"b\\nw=1\"];\n"
      "  n0 -> n1 [label=\"1\"];\n"
      "  n1 -> n0 [label=\"1\"];\n"
      "}\n";
  EXPECT_EQ(kind_of(text), ImportError::Kind::kCycle);
}

TEST(ImportRejects, DuplicateNodeId) {
  const std::string text =
      "digraph d {\n"
      "  n0 [label=\"a\\nw=1\"];\n"
      "  n0 [label=\"b\\nw=2\"];\n"
      "}\n";
  EXPECT_EQ(kind_of(text), ImportError::Kind::kDuplicateNode);
}

TEST(ImportRejects, DanglingEdgeEndpoint) {
  const std::string text =
      "digraph d {\n"
      "  n0 [label=\"a\\nw=1\"];\n"
      "  n0 -> n7 [label=\"1\"];\n"
      "}\n";
  EXPECT_EQ(kind_of(text), ImportError::Kind::kUnknownNode);
  // Non-dense ids are the same disease: n5 declared but 0..4 missing.
  const std::string sparse =
      "digraph d {\n"
      "  n5 [label=\"a\\nw=1\"];\n"
      "}\n";
  EXPECT_EQ(kind_of(sparse), ImportError::Kind::kUnknownNode);
}

TEST(ImportRejects, DuplicateEdgeAndSelfLoop) {
  const std::string dup =
      "digraph d {\n"
      "  n0 [label=\"a\\nw=1\"];\n"
      "  n1 [label=\"b\\nw=1\"];\n"
      "  n0 -> n1 [label=\"1\"];\n"
      "  n0 -> n1 [label=\"2\"];\n"
      "}\n";
  EXPECT_EQ(kind_of(dup), ImportError::Kind::kDuplicateEdge);
  const std::string self_loop =
      "digraph d {\n"
      "  n0 [label=\"a\\nw=1\"];\n"
      "  n0 -> n0 [label=\"1\"];\n"
      "}\n";
  EXPECT_EQ(kind_of(self_loop), ImportError::Kind::kDuplicateEdge);
}

TEST(ImportRejects, BadWeights) {
  const char* cases[] = {"nan", "-1", "inf", "-0.5", "1.2.3", "weighty", ""};
  for (const char* bad : cases) {
    const std::string text = std::string("digraph w {\n  n0 [label=\"a\\nw=") +
                             bad + "\"];\n}\n";
    const ImportError::Kind kind = kind_of(text);
    EXPECT_TRUE(kind == ImportError::Kind::kBadWeight ||
                kind == ImportError::Kind::kSyntax)
        << "weight '" << bad << "' -> " << import_error_kind_name(kind);
  }
  // NaN / negative edge data, via JSON where the grammar is unambiguous.
  const std::string nan_edge =
      "{\"name\": \"j\", \"tasks\": [{\"id\": 0, \"w\": 1}, "
      "{\"id\": 1, \"w\": 1}], \"edges\": [{\"src\": 0, \"dst\": 1, "
      "\"data\": nan}]}";
  EXPECT_EQ(kind_of(nan_edge), ImportError::Kind::kBadWeight);
  const std::string neg_edge =
      "{\"name\": \"j\", \"tasks\": [{\"id\": 0, \"w\": 1}, "
      "{\"id\": 1, \"w\": 1}], \"edges\": [{\"src\": 0, \"dst\": 1, "
      "\"data\": -2}]}";
  EXPECT_EQ(kind_of(neg_edge), ImportError::Kind::kBadWeight);
}

TEST(ImportRejects, JsonStructuralErrors) {
  EXPECT_EQ(kind_of("{"), ImportError::Kind::kSyntax);
  EXPECT_EQ(kind_of("{}"), ImportError::Kind::kSyntax);
  EXPECT_EQ(kind_of("{\"name\": \"x\"}"), ImportError::Kind::kSyntax);
  EXPECT_EQ(kind_of("{\"name\": \"x\", \"tasks\": [], \"edges\": [], "
                    "\"extra\": 1}"),
            ImportError::Kind::kSyntax);
  EXPECT_EQ(
      kind_of("{\"name\": \"x\", \"tasks\": [{\"id\": 0}], \"edges\": []}"),
      ImportError::Kind::kSyntax);
  // Duplicate ids / dangling endpoints carry their typed kinds in JSON
  // too -- the structural checks are shared with the DOT path.
  EXPECT_EQ(kind_of("{\"name\": \"x\", \"tasks\": [{\"id\": 0, \"w\": 1}, "
                    "{\"id\": 0, \"w\": 2}], \"edges\": []}"),
            ImportError::Kind::kDuplicateNode);
  EXPECT_EQ(kind_of("{\"name\": \"x\", \"tasks\": [{\"id\": 0, \"w\": 1}], "
                    "\"edges\": [{\"src\": 0, \"dst\": 3, \"data\": 1}]}"),
            ImportError::Kind::kUnknownNode);
}

// ------------------------------------------------ prefix-truncation fuzz

/// Every proper prefix of a valid file must either parse cleanly or
/// throw ImportError -- never anything else, never UB.  (ASan/UBSan CI
/// legs run this same suite, giving the "never UB" half teeth.)
void fuzz_prefixes(const std::string& text) {
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    const std::string prefix = text.substr(0, cut);
    try {
      (void)import_task_graph(prefix);
    } catch (const ImportError&) {
      // expected for almost every cut
    } catch (const std::exception& e) {
      FAIL() << "prefix of length " << cut << " escaped with "
             << e.what();
    }
  }
}

TEST(ImportFuzz, DotPrefixesNeverEscape) {
  testbeds::RandomDagOptions options;
  options.seed = 7;
  options.layers = 4;
  const TaskGraph g = testbeds::make_random_layered(options);
  fuzz_prefixes(to_dot(g, "prefix_fuzz"));
}

TEST(ImportFuzz, JsonPrefixesNeverEscape) {
  testbeds::RandomDagOptions options;
  options.seed = 11;
  options.layers = 4;
  const TaskGraph g = testbeds::make_random_layered(options);
  fuzz_prefixes(to_json(g, "prefix_fuzz"));
}

TEST(ImportFuzz, ByteFlipsNeverEscape) {
  TaskGraph g;
  g.add_task(1.5, "a");
  g.add_task(2.0);
  g.add_edge(0, 1, 3.0);
  g.finalize();
  const std::string dot = to_dot(g, "flip");
  // Flip every byte through a handful of interesting replacements.
  const char replacements[] = {'\0', '{', '}', 'n', '"', '-', '9', '\n'};
  for (std::size_t i = 0; i < dot.size(); ++i) {
    for (const char r : replacements) {
      std::string mutated = dot;
      mutated[i] = r;
      try {
        (void)import_task_graph(mutated);
      } catch (const ImportError&) {
      } catch (const std::exception& e) {
        FAIL() << "flip at " << i << " ('" << r << "') escaped with "
               << e.what();
      }
    }
  }
}

}  // namespace
}  // namespace oneport
