#include <gtest/gtest.h>

#include "core/heft.hpp"
#include "exact/fork_optimal.hpp"
#include "exact/reductions.hpp"
#include "exact/two_partition.hpp"
#include "sched/validate.hpp"

namespace oneport::exact {
namespace {

// ---------------------------------------------------------- 2-PARTITION

TEST(TwoPartition, FindsACertificate) {
  const std::vector<std::int64_t> values{3, 1, 1, 2, 2, 1};  // sum 10
  const auto half = two_partition(values);
  ASSERT_TRUE(half.has_value());
  std::int64_t sum = 0;
  for (const std::size_t i : *half) sum += values[i];
  EXPECT_EQ(sum, 5);
}

TEST(TwoPartition, OddSumHasNoSolution) {
  EXPECT_FALSE(two_partition({1, 1, 1}).has_value());
}

TEST(TwoPartition, DominantValueHasNoSolution) {
  EXPECT_FALSE(two_partition({1, 1, 4}).has_value());  // sum 6, 4 > 3
}

TEST(TwoPartition, EmptyAndInvalid) {
  EXPECT_FALSE(two_partition({}).has_value());
  EXPECT_THROW(two_partition({0}), std::invalid_argument);
  EXPECT_THROW(two_partition({-1, 1}), std::invalid_argument);
}

TEST(TwoPartition, SingletonPair) {
  const auto half = two_partition({7, 7});
  ASSERT_TRUE(half.has_value());
  EXPECT_EQ(half->size(), 1u);
}

// ------------------------------------------------------- fork optimum

TEST(ForkOptimal, Section2ExampleIsFive) {
  const ForkInstance inst{1.0, std::vector<double>(6, 1.0),
                          std::vector<double>(6, 1.0), 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  EXPECT_DOUBLE_EQ(opt.makespan, 5.0);
  // One optimal solution keeps three children local (paper §2.3).
  EXPECT_EQ(opt.local_children.size(), 3u);
  const RealizedFork realized = realize_fork_schedule(inst, opt);
  EXPECT_TRUE(validate_one_port(realized.schedule, realized.graph,
                                realized.platform)
                  .ok());
  EXPECT_DOUBLE_EQ(realized.schedule.makespan(), 5.0);
}

TEST(ForkOptimal, AllLocalWhenCommsDominate) {
  const ForkInstance inst{1.0, {1.0, 1.0}, {100.0, 100.0}, 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  EXPECT_EQ(opt.local_children.size(), 2u);
  EXPECT_DOUBLE_EQ(opt.makespan, 3.0);
}

TEST(ForkOptimal, AllRemoteWhenCommsAreFree) {
  const ForkInstance inst{1.0, {5.0, 5.0, 5.0}, {0.0, 0.0, 0.0}, 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  EXPECT_TRUE(opt.local_children.empty());
  EXPECT_DOUBLE_EQ(opt.makespan, 6.0);
}

TEST(ForkOptimal, MatchesHeuristicLowerBound) {
  // The exact optimum can never exceed what one-port HEFT finds.
  const ForkInstance inst{2.0, {3.0, 1.0, 4.0, 1.0, 5.0},
                          {2.0, 6.0, 1.0, 3.0, 2.0}, 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  const TaskGraph g = fork_instance_graph(inst);
  const Platform p = make_homogeneous_platform(6, 1.0, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
  EXPECT_LE(opt.makespan, s.makespan() + 1e-9);
  const RealizedFork realized = realize_fork_schedule(inst, opt);
  EXPECT_TRUE(validate_one_port(realized.schedule, realized.graph,
                                realized.platform)
                  .ok());
  EXPECT_NEAR(realized.schedule.makespan(), opt.makespan, 1e-9);
}

TEST(ForkOptimal, CapsInstanceSize) {
  ForkInstance inst;
  inst.parent_weight = 1.0;
  inst.child_weights.assign(25, 1.0);
  inst.child_data.assign(25, 1.0);
  EXPECT_THROW(solve_fork_one_port_optimal(inst), std::invalid_argument);
}

// -------------------------------------------------------- Theorem 1

TEST(Theorem1, YesInstanceMeetsTheBound) {
  const std::vector<std::int64_t> values{3, 1, 1, 2, 2, 1};  // 2S = 10
  const auto half = two_partition(values);
  ASSERT_TRUE(half.has_value());

  const ForkSchedInstance inst = make_fork_sched_instance(values);
  // T = 5n(M+1) + 10S + 20(M+m) + 2 with n=6, M=3, m=1, S=5.
  EXPECT_DOUBLE_EQ(inst.time_bound, 5 * 6 * 4 + 10 * 5 + 20 * 4 + 2);
  EXPECT_DOUBLE_EQ(inst.w_min, 10 * (3 + 1) + 1);

  const RealizedFork realized = realize_theorem1_schedule(values, *half);
  EXPECT_TRUE(validate_one_port(realized.schedule, realized.graph,
                                realized.platform)
                  .ok());
  EXPECT_NEAR(realized.schedule.makespan(), inst.time_bound, 1e-9);

  // And the exhaustive optimum agrees that the bound is reachable.
  const ForkOptimum opt = solve_fork_one_port_optimal(inst.fork);
  EXPECT_NEAR(opt.makespan, inst.time_bound, 1e-9);
}

TEST(Theorem1, NoInstanceExceedsTheBound) {
  const std::vector<std::int64_t> values{1, 1, 4};  // sum 6, no partition
  ASSERT_FALSE(two_partition(values).has_value());
  const ForkSchedInstance inst = make_fork_sched_instance(values);
  const ForkOptimum opt = solve_fork_one_port_optimal(inst.fork);
  EXPECT_GT(opt.makespan, inst.time_bound + 1e-9);
}

TEST(Theorem1, WeightsSatisfyTheConstructionInvariants) {
  const std::vector<std::int64_t> values{2, 3, 5, 2};
  const ForkSchedInstance inst = make_fork_sched_instance(values);
  // w_min <= w_i <= 2 w_min for the value children (paper's remark).
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_GE(inst.fork.child_weights[i], inst.w_min);
    EXPECT_LE(inst.fork.child_weights[i], 2.0 * inst.w_min);
  }
  // d_i = w_i everywhere.
  EXPECT_EQ(inst.fork.child_data, inst.fork.child_weights);
}

// -------------------------------------------------------- Theorem 2

TEST(Theorem2, InstanceShape) {
  const std::vector<std::int64_t> values{2, 2, 3, 3};  // 2S = 10
  const CommSchedInstance inst = make_comm_sched_instance(values);
  EXPECT_EQ(inst.graph.num_tasks(), 3u * 4u + 1u);
  EXPECT_EQ(inst.platform.num_processors(), 2 * 4 + 1);
  EXPECT_DOUBLE_EQ(inst.time_bound, 10.0);  // 2S (see reductions.cpp note)
  // v_i and v_{n+i} share processor P_i.
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(inst.allocation[i], inst.allocation[4 + i]);
    EXPECT_EQ(inst.allocation[2 * 4 + i], static_cast<ProcId>(4 + i));
  }
}

TEST(Theorem2, YesInstanceMeetsTheBound) {
  const std::vector<std::int64_t> values{2, 2, 3, 3};
  const auto half = two_partition(values);
  ASSERT_TRUE(half.has_value());
  const CommSchedInstance inst = make_comm_sched_instance(values);
  const Schedule s = realize_theorem2_schedule(inst, values, *half);
  const ValidationResult check =
      validate_one_port(s, inst.graph, inst.platform);
  EXPECT_TRUE(check.ok()) << check.message();
  EXPECT_NEAR(s.makespan(), inst.time_bound, 1e-9);
  // Allocation is the fixed one.
  for (TaskId v = 0; v < inst.graph.num_tasks(); ++v) {
    EXPECT_EQ(s.task(v).proc, inst.allocation[v]);
  }
  EXPECT_NEAR(solve_comm_sched_optimal(inst, values), inst.time_bound, 1e-9);
}

TEST(Theorem2, NoInstanceExceedsTheBound) {
  const std::vector<std::int64_t> values{1, 1, 4};
  ASSERT_FALSE(two_partition(values).has_value());
  const CommSchedInstance inst = make_comm_sched_instance(values);
  EXPECT_GT(solve_comm_sched_optimal(inst, values),
            inst.time_bound + 1e-9);
}

TEST(Theorem2, IffPropertyOnSmallInstances) {
  // Exhaustive check of the reduction on all multisets from a small pool:
  // optimum == 2S iff 2-PARTITION has a solution.
  const std::vector<std::vector<std::int64_t>> instances = {
      {1, 1},       {1, 2},       {2, 2, 4},    {1, 2, 3},
      {1, 1, 1, 1}, {5, 4, 3, 2}, {3, 3, 3, 1}, {2, 4, 6, 8, 10},
  };
  for (const auto& values : instances) {
    const CommSchedInstance inst = make_comm_sched_instance(values);
    const double opt = solve_comm_sched_optimal(inst, values);
    const bool feasible = two_partition(values).has_value();
    if (feasible) {
      EXPECT_NEAR(opt, inst.time_bound, 1e-9);
    } else {
      EXPECT_GT(opt, inst.time_bound + 1e-9);
    }
  }
}

}  // namespace
}  // namespace oneport::exact
