#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/heft.hpp"
#include "core/registry.hpp"
#include "exact/branch_bound.hpp"
#include "exact/fork_optimal.hpp"
#include "exact/reductions.hpp"
#include "exact/two_partition.hpp"
#include "sched/validate.hpp"
#include "support/scenario.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport::exact {
namespace {

// ---------------------------------------------------------- 2-PARTITION

TEST(TwoPartition, FindsACertificate) {
  const std::vector<std::int64_t> values{3, 1, 1, 2, 2, 1};  // sum 10
  const auto half = two_partition(values);
  ASSERT_TRUE(half.has_value());
  std::int64_t sum = 0;
  for (const std::size_t i : *half) sum += values[i];
  EXPECT_EQ(sum, 5);
}

TEST(TwoPartition, OddSumHasNoSolution) {
  EXPECT_FALSE(two_partition({1, 1, 1}).has_value());
}

TEST(TwoPartition, DominantValueHasNoSolution) {
  EXPECT_FALSE(two_partition({1, 1, 4}).has_value());  // sum 6, 4 > 3
}

TEST(TwoPartition, EmptyAndInvalid) {
  EXPECT_FALSE(two_partition({}).has_value());
  EXPECT_THROW(two_partition({0}), std::invalid_argument);
  EXPECT_THROW(two_partition({-1, 1}), std::invalid_argument);
}

TEST(TwoPartition, SingletonPair) {
  const auto half = two_partition({7, 7});
  ASSERT_TRUE(half.has_value());
  EXPECT_EQ(half->size(), 1u);
}

// ------------------------------------------------------- fork optimum

TEST(ForkOptimal, Section2ExampleIsFive) {
  const ForkInstance inst{1.0, std::vector<double>(6, 1.0),
                          std::vector<double>(6, 1.0), 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  EXPECT_DOUBLE_EQ(opt.makespan, 5.0);
  // One optimal solution keeps three children local (paper §2.3).
  EXPECT_EQ(opt.local_children.size(), 3u);
  const RealizedFork realized = realize_fork_schedule(inst, opt);
  EXPECT_TRUE(validate_one_port(realized.schedule, realized.graph,
                                realized.platform)
                  .ok());
  EXPECT_DOUBLE_EQ(realized.schedule.makespan(), 5.0);
}

TEST(ForkOptimal, AllLocalWhenCommsDominate) {
  const ForkInstance inst{1.0, {1.0, 1.0}, {100.0, 100.0}, 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  EXPECT_EQ(opt.local_children.size(), 2u);
  EXPECT_DOUBLE_EQ(opt.makespan, 3.0);
}

TEST(ForkOptimal, AllRemoteWhenCommsAreFree) {
  const ForkInstance inst{1.0, {5.0, 5.0, 5.0}, {0.0, 0.0, 0.0}, 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  EXPECT_TRUE(opt.local_children.empty());
  EXPECT_DOUBLE_EQ(opt.makespan, 6.0);
}

TEST(ForkOptimal, MatchesHeuristicLowerBound) {
  // The exact optimum can never exceed what one-port HEFT finds.
  const ForkInstance inst{2.0, {3.0, 1.0, 4.0, 1.0, 5.0},
                          {2.0, 6.0, 1.0, 3.0, 2.0}, 1.0, 1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(inst);
  const TaskGraph g = fork_instance_graph(inst);
  const Platform p = make_homogeneous_platform(6, 1.0, 1.0);
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
  EXPECT_LE(opt.makespan, s.makespan() + 1e-9);
  const RealizedFork realized = realize_fork_schedule(inst, opt);
  EXPECT_TRUE(validate_one_port(realized.schedule, realized.graph,
                                realized.platform)
                  .ok());
  EXPECT_NEAR(realized.schedule.makespan(), opt.makespan, 1e-9);
}

TEST(ForkOptimal, CapsInstanceSize) {
  ForkInstance inst;
  inst.parent_weight = 1.0;
  inst.child_weights.assign(25, 1.0);
  inst.child_data.assign(25, 1.0);
  EXPECT_THROW(solve_fork_one_port_optimal(inst), std::invalid_argument);
}

// -------------------------------------------------------- Theorem 1

TEST(Theorem1, YesInstanceMeetsTheBound) {
  const std::vector<std::int64_t> values{3, 1, 1, 2, 2, 1};  // 2S = 10
  const auto half = two_partition(values);
  ASSERT_TRUE(half.has_value());

  const ForkSchedInstance inst = make_fork_sched_instance(values);
  // T = 10nK + 5 * 2S + 20K with n=6, K = 2S+1 = 11, 2S = 10.
  EXPECT_DOUBLE_EQ(inst.time_bound, 10 * 6 * 11 + 5 * 10 + 20 * 11);
  EXPECT_DOUBLE_EQ(inst.w_min, 10 * 11);
  EXPECT_EQ(inst.fork.child_weights.size(), 2u * 6u + 3u);

  const RealizedFork realized = realize_theorem1_schedule(values, *half);
  EXPECT_TRUE(validate_one_port(realized.schedule, realized.graph,
                                realized.platform)
                  .ok());
  EXPECT_NEAR(realized.schedule.makespan(), inst.time_bound, 1e-9);

  // And the exhaustive optimum agrees that the bound is reachable.
  const ForkOptimum opt = solve_fork_one_port_optimal(inst.fork);
  EXPECT_NEAR(opt.makespan, inst.time_bound, 1e-9);
}

TEST(Theorem1, NoInstanceExceedsTheBound) {
  const std::vector<std::int64_t> values{1, 1, 4};  // sum 6, no partition
  ASSERT_FALSE(two_partition(values).has_value());
  const ForkSchedInstance inst = make_fork_sched_instance(values);
  const ForkOptimum opt = solve_fork_one_port_optimal(inst.fork);
  EXPECT_GT(opt.makespan, inst.time_bound + 1e-9);
}

TEST(Theorem1, WeightsSatisfyTheConstructionInvariants) {
  const std::vector<std::int64_t> values{2, 3, 5, 2};
  const ForkSchedInstance inst = make_fork_sched_instance(values);
  // w_min <= w_i <= 2 w_min for all 2n value+dummy children (paper's
  // remark); the n balancing dummies sit exactly at w_min.
  for (std::size_t i = 0; i < 2 * values.size(); ++i) {
    EXPECT_GE(inst.fork.child_weights[i], inst.w_min);
    EXPECT_LE(inst.fork.child_weights[i], 2.0 * inst.w_min);
  }
  for (std::size_t i = values.size(); i < 2 * values.size(); ++i) {
    EXPECT_DOUBLE_EQ(inst.fork.child_weights[i], inst.w_min);
  }
  // d_i = w_i everywhere.
  EXPECT_EQ(inst.fork.child_data, inst.fork.child_weights);
}

// -------------------------------------------------------- Theorem 2

TEST(Theorem2, InstanceShape) {
  const std::vector<std::int64_t> values{2, 2, 3, 3};  // 2S = 10
  const CommSchedInstance inst = make_comm_sched_instance(values);
  EXPECT_EQ(inst.graph.num_tasks(), 3u * 4u + 1u);
  EXPECT_EQ(inst.platform.num_processors(), 2 * 4 + 1);
  EXPECT_DOUBLE_EQ(inst.time_bound, 10.0);  // 2S (see reductions.cpp note)
  // v_i and v_{n+i} share processor P_i.
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(inst.allocation[i], inst.allocation[4 + i]);
    EXPECT_EQ(inst.allocation[2 * 4 + i], static_cast<ProcId>(4 + i));
  }
}

TEST(Theorem2, YesInstanceMeetsTheBound) {
  const std::vector<std::int64_t> values{2, 2, 3, 3};
  const auto half = two_partition(values);
  ASSERT_TRUE(half.has_value());
  const CommSchedInstance inst = make_comm_sched_instance(values);
  const Schedule s = realize_theorem2_schedule(inst, values, *half);
  const ValidationResult check =
      validate_one_port(s, inst.graph, inst.platform);
  EXPECT_TRUE(check.ok()) << check.message();
  EXPECT_NEAR(s.makespan(), inst.time_bound, 1e-9);
  // Allocation is the fixed one.
  for (TaskId v = 0; v < inst.graph.num_tasks(); ++v) {
    EXPECT_EQ(s.task(v).proc, inst.allocation[v]);
  }
  EXPECT_NEAR(solve_comm_sched_optimal(inst, values), inst.time_bound, 1e-9);
}

TEST(Theorem2, NoInstanceExceedsTheBound) {
  const std::vector<std::int64_t> values{1, 1, 4};
  ASSERT_FALSE(two_partition(values).has_value());
  const CommSchedInstance inst = make_comm_sched_instance(values);
  EXPECT_GT(solve_comm_sched_optimal(inst, values),
            inst.time_bound + 1e-9);
}

// --------------------------------------- two_partition x fork_optimal
//
// Latent-gap fix (ISSUE-10 satellite): the two solvers were never
// cross-checked on instances where both apply.  Theorem 1's reduction
// ties them: 2-PARTITION(values) has a solution IFF the fork-scheduling
// optimum meets the constructed time bound.  Sweep the differential
// over a pool of small multisets covering yes-instances, odd sums, and
// dominant values.

TEST(TwoPartitionForkDifferential, ReductionAgreesOnSmallMultisets) {
  const std::vector<std::vector<std::int64_t>> instances = {
      {1, 1},          {1, 2},       {2, 2},       {1, 1, 2},
      {1, 2, 3},       {2, 2, 4},    {1, 1, 4},    {3, 3, 3, 1},
      {5, 4, 3, 2},    {1, 1, 1, 1}, {2, 3, 5, 2}, {7, 7},
      {2, 4, 6, 8, 10}, {1, 2, 3, 4, 5, 5},
  };
  for (const auto& values : instances) {
    SCOPED_TRACE(::testing::Message() << "instance size " << values.size());
    const auto half = two_partition(values);
    const ForkSchedInstance inst = make_fork_sched_instance(values);
    const ForkOptimum opt = solve_fork_one_port_optimal(inst.fork);
    if (half.has_value()) {
      EXPECT_LE(opt.makespan, inst.time_bound + 1e-9);
      // The proof-following schedule built from the DP's certificate must
      // land exactly on T -- including for unequal-cardinality halves
      // such as {1, 1} | {2}, which the balancing dummies absorb.
      const RealizedFork proof = realize_theorem1_schedule(values, *half);
      EXPECT_NEAR(proof.schedule.makespan(), inst.time_bound, 1e-9);
      const ValidationResult proof_check =
          validate_one_port(proof.schedule, proof.graph, proof.platform);
      EXPECT_TRUE(proof_check.ok()) << proof_check.message();
      // ... and the optimum realizes a validator-clean schedule at (or
      // under) the bound.
      const RealizedFork realized = realize_fork_schedule(inst.fork, opt);
      const ValidationResult check = validate_one_port(
          realized.schedule, realized.graph, realized.platform);
      EXPECT_TRUE(check.ok()) << check.message();
      EXPECT_NEAR(realized.schedule.makespan(), opt.makespan, 1e-9);
    } else {
      EXPECT_GT(opt.makespan, inst.time_bound + 1e-9);
    }
  }
}

TEST(TwoPartitionForkDifferential, DegenerateInputBattery) {
  // 1 task on 1 processor: every exact path must agree on w * t.
  {
    TaskGraph g;
    g.add_task(3.0, "only");
    g.finalize();
    const Platform p({2.0}, 1.0);
    const BranchBoundResult bb = branch_bound_lower_bound(g, p);
    EXPECT_TRUE(bb.proven_optimal);
    EXPECT_DOUBLE_EQ(bb.lower_bound, 6.0);
    EXPECT_DOUBLE_EQ(bb.incumbent, 6.0);
  }
  // Single-child fork: local vs remote is the whole decision space, and
  // remote = parent + data + child can never strictly beat local =
  // parent + child, so local must win with positive data and at worst
  // tie at zero data.
  {
    const ForkInstance costly_send{1.0, {2.0}, {10.0}, 1.0, 1.0};
    const ForkOptimum opt = solve_fork_one_port_optimal(costly_send);
    EXPECT_EQ(opt.local_children.size(), 1u);
    EXPECT_DOUBLE_EQ(opt.makespan, 3.0);
  }
  {
    const ForkInstance free_send{1.0, {5.0}, {0.0}, 1.0, 1.0};
    const ForkOptimum opt = solve_fork_one_port_optimal(free_send);
    EXPECT_DOUBLE_EQ(opt.makespan, 6.0);
  }
  // Degenerate 2-PARTITION shapes.
  EXPECT_FALSE(two_partition({2}).has_value());    // single value
  EXPECT_TRUE(two_partition({1, 1}).has_value());  // smallest yes
  EXPECT_THROW(two_partition({1, 0, 1}), std::invalid_argument);
}

// ------------------------------------------------- branch and bound

/// Independent brute-force MD optimum: the same semi-active enumeration
/// branch_bound performs, but with no bounds, no pruning, no symmetry
/// breaking and no budget -- a deliberately dumb oracle for small
/// instances.
double brute_force_md_optimum(const TaskGraph& g, const Platform& platform) {
  const std::size_t n = g.num_tasks();
  std::vector<int> proc(n, -1);
  std::vector<double> finish(n, 0.0);
  std::vector<double> avail(
      static_cast<std::size_t>(platform.num_processors()), 0.0);
  double best = std::numeric_limits<double>::infinity();
  std::size_t scheduled = 0;

  auto ready = [&](TaskId v) {
    if (proc[v] >= 0) return false;
    for (const EdgeRef& e : g.predecessors(v)) {
      if (proc[e.task] < 0) return false;
    }
    return true;
  };

  std::function<void()> recurse = [&]() {
    if (scheduled == n) {
      double makespan = 0.0;
      for (const double f : finish) makespan = std::max(makespan, f);
      best = std::min(best, makespan);
      return;
    }
    for (TaskId v = 0; v < n; ++v) {
      if (!ready(v)) continue;
      for (int p = 0; p < platform.num_processors(); ++p) {
        double start = avail[static_cast<std::size_t>(p)];
        for (const EdgeRef& e : g.predecessors(v)) {
          const double comm =
              proc[e.task] == p
                  ? 0.0
                  : platform.comm_time(e.data, proc[e.task], p);
          start = std::max(start, finish[e.task] + comm);
        }
        const double f = start + platform.exec_time(g.weight(v), p);
        const double prev_avail = avail[static_cast<std::size_t>(p)];
        proc[v] = p;
        finish[v] = f;
        avail[static_cast<std::size_t>(p)] = f;
        ++scheduled;
        recurse();
        --scheduled;
        avail[static_cast<std::size_t>(p)] = prev_avail;
        proc[v] = -1;
        finish[v] = 0.0;
      }
    }
  };
  recurse();
  return best;
}

TEST(BranchBound, MatchesBruteForceOnSmallInstances) {
  // Seeded small DAGs (<= 8 tasks) on 2-3 heterogeneous processors: the
  // pruned search and the dumb oracle must land on the same MD optimum,
  // and the search must prove it.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    testbeds::RandomDagOptions dag;
    dag.seed = seed;
    dag.layers = 3;
    dag.max_width = 2;
    dag.comm_ratio = static_cast<double>(seed % 4);
    const TaskGraph g = testbeds::make_random_layered(dag);
    ASSERT_LE(g.num_tasks(), 6u);  // layers=3 x max_width=2
    const Platform p = seed % 2 == 0 ? Platform({1.0, 2.0, 3.0}, 0.5)
                                     : Platform({1.0, 1.5}, 2.0);
    const BranchBoundResult bb = branch_bound_lower_bound(g, p);
    ASSERT_TRUE(bb.proven_optimal) << "seed " << seed;
    const double brute = brute_force_md_optimum(g, p);
    EXPECT_NEAR(bb.lower_bound, brute, 1e-9) << "seed " << seed;
    EXPECT_NEAR(bb.incumbent, brute, 1e-9) << "seed " << seed;
  }
}

TEST(BranchBound, NeverExceedsForkOnePortOptimum) {
  // The MD relaxation can only be <= the one-port optimum; on zero-data
  // forks the models coincide, so the bound is tight there.
  const ForkInstance zero_data{1.0, {5.0, 5.0, 5.0}, {0.0, 0.0, 0.0}, 1.0,
                               1.0};
  const ForkOptimum opt = solve_fork_one_port_optimal(zero_data);
  const TaskGraph g = fork_instance_graph(zero_data);
  const Platform p = make_homogeneous_platform(4, 1.0, 1.0);
  const BranchBoundResult bb = branch_bound_lower_bound(g, p);
  EXPECT_TRUE(bb.proven_optimal);
  EXPECT_NEAR(bb.lower_bound, opt.makespan, 1e-9);

  const ForkInstance with_data{2.0, {3.0, 1.0, 4.0, 1.0, 5.0},
                               {2.0, 6.0, 1.0, 3.0, 2.0}, 1.0, 1.0};
  const ForkOptimum opt2 = solve_fork_one_port_optimal(with_data);
  const TaskGraph g2 = fork_instance_graph(with_data);
  const Platform p2 = make_homogeneous_platform(6, 1.0, 1.0);
  const BranchBoundResult bb2 = branch_bound_lower_bound(g2, p2);
  EXPECT_LE(bb2.lower_bound, opt2.makespan + 1e-9);
}

TEST(BranchBound, AnytimeBudgetStaysSound) {
  // Starve the search: every truncated bound must stay a lower bound on
  // the proven optimum and never fall below the search-free root bound.
  testbeds::RandomDagOptions dag;
  dag.seed = 97;
  dag.layers = 4;
  dag.max_width = 2;
  dag.comm_ratio = 2.0;
  const TaskGraph g = testbeds::make_random_layered(dag);
  const Platform p({1.0, 2.0, 2.5}, 1.0);
  const BranchBoundResult full =
      branch_bound_lower_bound(g, p, {.node_budget = 5'000'000});
  ASSERT_TRUE(full.proven_optimal);
  // max_search_tasks = 0 forces the no-search path: root bound only.
  const BranchBoundResult root =
      branch_bound_lower_bound(g, p, {.node_budget = 1, .max_search_tasks = 0});
  EXPECT_FALSE(root.proven_optimal);
  for (const std::uint64_t budget : {1ull, 10ull, 100ull, 1000ull}) {
    const BranchBoundResult partial =
        branch_bound_lower_bound(g, p, {.node_budget = budget});
    EXPECT_LE(partial.lower_bound, full.lower_bound + 1e-9)
        << "budget " << budget;
    EXPECT_GE(partial.lower_bound, root.lower_bound - 1e-9)
        << "budget " << budget;
    EXPECT_GT(partial.lower_bound, 0.0) << "budget " << budget;
  }
}

TEST(BranchBound, OversizedInstanceGetsRootBoundOnly) {
  const TaskGraph g = testbeds::make_lu(12);  // 66 tasks > default cap 64
  const Platform p = make_paper_platform();
  const BranchBoundResult bb = branch_bound_lower_bound(g, p);
  EXPECT_FALSE(bb.proven_optimal);
  EXPECT_EQ(bb.nodes_expanded, 0u);
  EXPECT_GT(bb.lower_bound, 0.0);
  // Root bound is at least the load bound W / aggregate speed.
  EXPECT_GE(bb.lower_bound, g.total_weight() / p.aggregate_speed() - 1e-9);
}

/// Soundness over the seeded scenario rotation (ISSUE-10 satellite):
/// for every scenario, lower_bound <= the best makespan over ALL
/// registered heuristics under their respective models; on provably
/// closed small instances the brute-force oracle attains the bound.
void check_lb_soundness(const testsupport::Scenario& scenario) {
  BranchBoundOptions options;
  options.node_budget = 20'000;
  options.routing = scenario.routing_ptr();
  const BranchBoundResult bb =
      branch_bound_lower_bound(scenario.graph, scenario.platform, options);
  double best = std::numeric_limits<double>::infinity();
  const std::vector<SchedulerEntry> registry = builtin_schedulers(
      SchedulerConfig{.ilha_chunk_size = 5, .routing = scenario.routing_ptr()});
  for (const SchedulerEntry& entry : registry) {
    const Schedule schedule = entry.run(scenario.graph, scenario.platform);
    best = std::min(best, schedule.makespan());
    EXPECT_LE(bb.lower_bound, schedule.makespan() + 1e-7)
        << scenario.description << " scheduler=" << entry.name;
  }
  // proven => attainable: the independent oracle reaches the bound
  // exactly.  Only affordable where the unpruned enumeration is small.
  if (bb.proven_optimal && !scenario.routing &&
      scenario.graph.num_tasks() <= 6 &&
      scenario.platform.num_processors() <= 3) {
    const double brute =
        brute_force_md_optimum(scenario.graph, scenario.platform);
    EXPECT_NEAR(bb.lower_bound, brute, 1e-9) << scenario.description;
    EXPECT_LE(bb.lower_bound, best + 1e-7) << scenario.description;
  }
}

TEST(BranchBoundSoundness, LowerBoundsEveryHeuristicOnScenarioRotation) {
  for (const std::uint64_t base : {101ull, 307ull, 503ull}) {
    for (const testsupport::Scenario& scenario :
         testsupport::scenario_sweep(base, 6)) {
      SCOPED_TRACE(scenario.description);
      check_lb_soundness(scenario);
    }
  }
  for (const testsupport::Scenario& scenario :
       testsupport::edge_case_scenarios()) {
    SCOPED_TRACE(scenario.description);
    check_lb_soundness(scenario);
  }
}

TEST(BranchBoundSoundness, LowerBoundsHoldOnWorkloadFamilies) {
  for (const testsupport::Scenario& scenario :
       testsupport::workload_scenario_sweep(151, 8)) {
    SCOPED_TRACE(scenario.description);
    check_lb_soundness(scenario);
  }
}

TEST(BranchBoundSoundness, RoutedScenariosUseRoutedDistances) {
  // Sparse platforms: the bound must consult RoutingTable::distances()
  // (the link matrix holds +inf for non-adjacent pairs) and still floor
  // every heuristic's store-and-forward schedule.
  for (const testsupport::Scenario& scenario :
       testsupport::routed_scenario_sweep(131, 10)) {
    SCOPED_TRACE(scenario.description);
    check_lb_soundness(scenario);
  }
}

TEST(Theorem2, IffPropertyOnSmallInstances) {
  // Exhaustive check of the reduction on all multisets from a small pool:
  // optimum == 2S iff 2-PARTITION has a solution.
  const std::vector<std::vector<std::int64_t>> instances = {
      {1, 1},       {1, 2},       {2, 2, 4},    {1, 2, 3},
      {1, 1, 1, 1}, {5, 4, 3, 2}, {3, 3, 3, 1}, {2, 4, 6, 8, 10},
  };
  for (const auto& values : instances) {
    const CommSchedInstance inst = make_comm_sched_instance(values);
    const double opt = solve_comm_sched_optimal(inst, values);
    const bool feasible = two_partition(values).has_value();
    if (feasible) {
      EXPECT_NEAR(opt, inst.time_bound, 1e-9);
    } else {
      EXPECT_GT(opt, inst.time_bound + 1e-9);
    }
  }
}

}  // namespace
}  // namespace oneport::exact
