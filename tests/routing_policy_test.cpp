// Heterogeneous per-link costs + pluggable routing policies (ISSUE-5).
//
// Covers the three layers of the tentpole: the seeded link-cost
// generators (linkcost::jitter/hotspot/anisotropy and custom LinkCostFn
// injection), the RoutingPolicy axis (dimension-ordered XY, alternating
// XY-YX load spreading, cost-aware shortest-weighted-path), and the
// ':'-suffix topology-name grammar that makes both sweep axes --
// including the shared_topology_platform cache keys that must never
// alias across policy/heterogeneity suffixes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "platform/routing.hpp"
#include "sched/timeline.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

std::vector<double> unit_cycles(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

// ---------------------------------------------------------------------
// Link-cost generators.

TEST(LinkCostGenerators, JitterIsDeterministicSymmetricAndBounded) {
  const LinkCostFn jitter = linkcost::jitter(0.5, 42);
  const RoutedPlatform a = make_mesh2d_platform(unit_cycles(9), 3, 3,
                                                /*wrap=*/false, 1.0, jitter);
  const RoutedPlatform b = make_mesh2d_platform(unit_cycles(9), 3, 3,
                                                /*wrap=*/false, 1.0, jitter);
  bool saw_non_unit = false;
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      const double l = a.platform.link(q, r);
      // Same seed => bit-identical matrix; symmetric because the draw
      // hashes the canonical (min, max) endpoint pair.
      EXPECT_EQ(l, b.platform.link(q, r));
      EXPECT_EQ(l, a.platform.link(r, q));
      if (q != r && std::isfinite(l)) {
        EXPECT_GE(l, 0.5);
        EXPECT_LT(l, 1.5);
        if (l != 1.0) saw_non_unit = true;
      }
    }
  }
  EXPECT_TRUE(saw_non_unit) << "jitter left every link at the base cost";

  // A different seed draws a different network.
  const RoutedPlatform c = make_mesh2d_platform(
      unit_cycles(9), 3, 3, /*wrap=*/false, 1.0, linkcost::jitter(0.5, 43));
  bool differs = false;
  for (ProcId q = 0; q < 9 && !differs; ++q) {
    for (ProcId r = 0; r < 9 && !differs; ++r) {
      differs = a.platform.link(q, r) != c.platform.link(q, r);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(LinkCostGenerators, HotspotScalesSelectedLinks) {
  // Probability 1 makes every physical link hot: cost = base * factor.
  const RoutedPlatform hot = make_mesh2d_platform(
      unit_cycles(4), 2, 2, /*wrap=*/false, 1.0,
      linkcost::hotspot(/*probability=*/1.0, /*factor=*/8.0, 7));
  for (ProcId q = 0; q < 4; ++q) {
    for (ProcId r = 0; r < 4; ++r) {
      if (q != r && std::isfinite(hot.platform.link(q, r))) {
        EXPECT_DOUBLE_EQ(hot.platform.link(q, r), 8.0);
      }
    }
  }
}

TEST(LinkCostGenerators, AnisotropyPricesColumnLinks) {
  // 3x3 mesh, row-major ids: 0-1 is a row (dimension-0) link, 0-3 a
  // column (dimension-1) link.
  const RoutedPlatform mesh = make_mesh2d_platform(
      unit_cycles(9), 3, 3, /*wrap=*/false, 1.0, linkcost::anisotropy(3.0));
  EXPECT_DOUBLE_EQ(mesh.platform.link(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(mesh.platform.link(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(mesh.platform.link(4, 5), 1.0);
  EXPECT_DOUBLE_EQ(mesh.platform.link(4, 7), 3.0);
  // XY distances walk the actual link costs: 0 -> 4 is one row link plus
  // one column link whatever the order.
  EXPECT_DOUBLE_EQ(mesh.routing.distance(0, 4), 4.0);
}

TEST(LinkCostGenerators, ComposeAppliesLeftToRight) {
  std::vector<LinkCostFn> fns;
  fns.push_back(linkcost::anisotropy(3.0));
  fns.push_back(linkcost::hotspot(1.0, 8.0, 1));
  const RoutedPlatform mesh =
      make_mesh2d_platform(unit_cycles(4), 2, 2, /*wrap=*/false, 1.0,
                           linkcost::compose(std::move(fns)));
  EXPECT_DOUBLE_EQ(mesh.platform.link(0, 1), 8.0);   // row: 1 * 8
  EXPECT_DOUBLE_EQ(mesh.platform.link(0, 2), 24.0);  // column: 3 * 8
}

TEST(LinkCostGenerators, GeneratorMustReturnPositiveFiniteCosts) {
  const LinkCostFn zero = [](ProcId, ProcId, int, double) { return 0.0; };
  EXPECT_THROW(make_mesh2d_platform(unit_cycles(4), 2, 2, false, 1.0, zero),
               std::invalid_argument);
  const LinkCostFn inf = [](ProcId, ProcId, int, double) { return kNoLink; };
  EXPECT_THROW(
      make_fat_tree_platform(unit_cycles(3), 1, 2, 2.0, 1.0, inf),
      std::invalid_argument);
}

// ---------------------------------------------------------------------
// Routing policies.  Golden hop sequences on hand-buildable networks.

TEST(RoutingPolicies, WeightedShortestRoutesAroundExpensiveLink) {
  // 3x3 mesh where only the 1 <-> 2 link costs 10 (everything else 1):
  // XY insists on the dimension-ordered walk through it, swp provably
  // deviates around it.  Same physical platform in both cases.
  const LinkCostFn expensive = [](ProcId u, ProcId v, int, double base) {
    return (u == 1 && v == 2) ? 10.0 : base;
  };
  const RoutedPlatform xy =
      make_mesh2d_platform(unit_cycles(9), 3, 3, /*wrap=*/false, 1.0,
                           expensive, RoutingPolicy::kDimensionOrdered);
  const RoutedPlatform swp =
      make_mesh2d_platform(unit_cycles(9), 3, 3, /*wrap=*/false, 1.0,
                           expensive, RoutingPolicy::kWeightedShortest);
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      EXPECT_EQ(xy.platform.link(q, r), swp.platform.link(q, r));
    }
  }
  EXPECT_EQ(xy.routing.path(0, 2), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(xy.routing.distance(0, 2), 11.0);
  // The cheap detour: ties broken fewer-hops-then-smallest-next-hop.
  EXPECT_EQ(swp.routing.path(0, 2), (std::vector<ProcId>{0, 1, 4, 5, 2}));
  EXPECT_DOUBLE_EQ(swp.routing.distance(0, 2), 4.0);
  EXPECT_EQ(swp.routing.path(1, 2), (std::vector<ProcId>{1, 4, 5, 2}));
  EXPECT_DOUBLE_EQ(swp.routing.distance(1, 2), 3.0);
  // swp never pays more than the dimension-ordered walk.
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      EXPECT_LE(swp.routing.distance(q, r), xy.routing.distance(q, r));
    }
  }
}

TEST(RoutingPolicies, AlternatingSpreadsDimensionOrderByParity) {
  // Each forwarding node picks its own dimension order: even id =
  // column first (XY), odd id = row first (YX).  Every hop still
  // shortens the Manhattan distance, so paths stay hop-minimal.
  const RoutedPlatform alt =
      make_mesh2d_platform(unit_cycles(9), 3, 3, /*wrap=*/false, 1.0, {},
                           RoutingPolicy::kAlternating);
  // 0 (even, column first) -> 1 (odd, row first) -> 4 (even) -> 5 -> 8:
  // the staircase, where pure XY walks {0, 1, 2, 5, 8}.
  EXPECT_EQ(alt.routing.path(0, 8), (std::vector<ProcId>{0, 1, 4, 5, 8}));
  // Odd source goes row-first where XY would go column-first via 4.
  EXPECT_EQ(alt.routing.path(3, 1), (std::vector<ProcId>{3, 0, 1}));
  EXPECT_EQ(alt.routing.path(7, 2), (std::vector<ProcId>{7, 4, 5, 2}));
  EXPECT_EQ(alt.routing.path(8, 0), (std::vector<ProcId>{8, 7, 4, 3, 0}));
  // Hop-minimality: |path| - 1 == Manhattan distance for every pair.
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      const int manhattan =
          std::abs(q / 3 - r / 3) + std::abs(q % 3 - r % 3);
      EXPECT_EQ(alt.routing.path(q, r).size(),
                static_cast<std::size_t>(manhattan) + 1u)
          << "P" << q << " -> P" << r;
      EXPECT_DOUBLE_EQ(alt.routing.distance(q, r),
                       static_cast<double>(manhattan));
    }
  }
}

TEST(RoutingPolicies, AlternatingOnTorusStaysLoopFreeAndMinimal) {
  const RoutedPlatform alt = make_topology_platform(
      "torus3x3:alt", unit_cycles(9), 1.0);
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      // Each 3-ring dimension is one hop either way, so every pair is
      // at most 2 hops; path_into would throw on a routing loop.
      const std::vector<ProcId> path = alt.routing.path(q, r);
      EXPECT_LE(path.size(), 3u) << "P" << q << " -> P" << r;
    }
  }
}

TEST(RoutingPolicies, PolicyShapeMismatchesAreRejected) {
  EXPECT_THROW(make_mesh2d_platform(unit_cycles(4), 2, 2, false, 1.0, {},
                                    RoutingPolicy::kUpDown),
               std::invalid_argument);
  EXPECT_THROW(make_fat_tree_platform(unit_cycles(3), 1, 2, 2.0, 1.0, {},
                                      RoutingPolicy::kDimensionOrdered),
               std::invalid_argument);
  EXPECT_THROW(make_fat_tree_platform(unit_cycles(3), 1, 2, 2.0, 1.0, {},
                                      RoutingPolicy::kAlternating),
               std::invalid_argument);
}

TEST(RoutingPolicies, SwpOnFatTreeMatchesUpDownPaths) {
  // A tree has one simple path per pair: the cost-aware table must pick
  // exactly the up-down hops (with bit-equal walked distances), just
  // through the Floyd-Warshall construction.
  const RoutedPlatform updown =
      make_fat_tree_platform(unit_cycles(7), 2, 2, 2.0, 1.0);
  const RoutedPlatform swp =
      make_fat_tree_platform(unit_cycles(7), 2, 2, 2.0, 1.0, {},
                             RoutingPolicy::kWeightedShortest);
  for (ProcId q = 0; q < 7; ++q) {
    for (ProcId r = 0; r < 7; ++r) {
      EXPECT_EQ(updown.routing.path(q, r), swp.routing.path(q, r));
      EXPECT_EQ(updown.routing.distance(q, r), swp.routing.distance(q, r));
    }
  }
}

TEST(RoutingPolicies, PolicyNamesAreStable) {
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kDimensionOrdered), "xy");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kAlternating), "alt");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kUpDown), "updown");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kWeightedShortest), "swp");
}

// ---------------------------------------------------------------------
// Topology-name suffix grammar.

TEST(TopologyNameGrammar, AcceptsTheNewAxes) {
  for (const char* name :
       {"mesh3x3:het0.5", "mesh4x4:het0.5:swp", "mesh3x3:hot0.2",
        "mesh3x3:aniso2", "mesh3x3:het0.25:hot0.5:aniso0.5:alt",
        "torus2x5:alt", "torus3x3:swp", "torus2x2:xy", "fattree2x2:swp",
        "fattree2x2:updown", "fattree2x3:het0.75"}) {
    SCOPED_TRACE(name);
    EXPECT_NO_THROW(validate_topology_name(name));
    EXPECT_NO_THROW(make_topology_platform(name, unit_cycles(4), 1.0, 3));
  }
}

TEST(TopologyNameGrammar, RejectsMalformedAndIncompatibleSuffixes) {
  const std::vector<double> cycles = unit_cycles(4);
  for (const char* name :
       {"ring:swp",            // unstructured names take no suffixes
        "random:het0.5",       // ditto
        "mesh3x3:updown",      // up-down needs a tree
        "fattree2x2:xy",       // xy/alt need a mesh
        "fattree2x2:alt",      //
        "fattree2x2:aniso2",   // no second dimension on a tree
        "mesh3x3:het",         // missing value
        "mesh3x3:het1.5",      // amplitude must stay below 1
        "mesh3x3:het0",        // and above 0
        "mesh3x3:hot1.5",      // probability above 1
        "mesh3x3:aniso0",      // factor must be positive
        "mesh3x3:aniso-2",     //
        "mesh3x3:swp:xy",      // one policy only
        "mesh3x3:het0.5:het0.25",  // duplicate cost suffix
        "mesh3x3:aniso1:aniso8",   // duplicate even when the first value
                                   // equals the neutral factor 1
        "mesh3x3:",            // empty suffix
        "mesh3x3:turbo"}) {    // unknown suffix
    SCOPED_TRACE(name);
    EXPECT_THROW(validate_topology_name(name), std::invalid_argument);
    // The builder and the cheap gate share one parser: same verdicts.
    EXPECT_THROW(make_topology_platform(name, cycles), std::invalid_argument);
  }
}

TEST(TopologyNameGrammar, SeedDistinguishesHeterogeneousInstances) {
  const std::vector<double> cycles = unit_cycles(9);
  const RoutedPlatform a =
      make_topology_platform("mesh3x3:het0.5", cycles, 1.0, 1);
  const RoutedPlatform b =
      make_topology_platform("mesh3x3:het0.5", cycles, 1.0, 1);
  const RoutedPlatform c =
      make_topology_platform("mesh3x3:het0.5", cycles, 1.0, 2);
  bool differs = false;
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      EXPECT_EQ(a.platform.link(q, r), b.platform.link(q, r));
      differs = differs || a.platform.link(q, r) != c.platform.link(q, r);
    }
  }
  EXPECT_TRUE(differs) << "seed must reshuffle the ':het' draws";
}

// Golden-route regression (ISSUE-5): on the seeded heterogeneous mesh
// the cost-aware policy provably deviates from XY -- pinned hop
// sequences and distances, and the same physical platform under both
// policies.
TEST(TopologyNameGrammar, GoldenHetMeshSwpDeviatesFromXY) {
  const std::vector<double> cycles = unit_cycles(9);
  const RoutedPlatform xy =
      make_topology_platform("mesh3x3:het0.75", cycles, 1.0, 1);
  const RoutedPlatform swp =
      make_topology_platform("mesh3x3:het0.75:swp", cycles, 1.0, 1);
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      EXPECT_EQ(xy.platform.link(q, r), swp.platform.link(q, r));
      EXPECT_LE(swp.routing.distance(q, r),
                xy.routing.distance(q, r) + 1e-12);
    }
  }
  // XY walks the dimension-ordered staircase; swp takes the column
  // first because this seed priced link 0-1 high and 0-3 low.
  EXPECT_EQ(xy.routing.path(0, 4), (std::vector<ProcId>{0, 1, 4}));
  EXPECT_EQ(swp.routing.path(0, 4), (std::vector<ProcId>{0, 3, 4}));
  EXPECT_NEAR(xy.routing.distance(0, 4), 2.8480863420577505, 1e-9);
  EXPECT_NEAR(swp.routing.distance(0, 4), 0.61125481827767802, 1e-9);
  EXPECT_EQ(xy.routing.path(3, 1), (std::vector<ProcId>{3, 4, 1}));
  EXPECT_EQ(swp.routing.path(3, 1), (std::vector<ProcId>{3, 0, 1}));
  EXPECT_NEAR(swp.routing.distance(3, 1), 1.5819345773807185, 1e-9);
}

// ---------------------------------------------------------------------
// Cache-key correctness: policy/heterogeneity suffixes (and the seed
// behind ':het') must never alias in the process-wide sweep cache.

TEST(SharedTopologyCache, PolicyAndHetKeysNeverAlias) {
  const std::vector<double> cycles{1.0, 2.0, 1.0, 2.0, 3.0};
  const auto base = analysis::shared_topology_platform("mesh3x3", cycles);
  const auto swp = analysis::shared_topology_platform("mesh3x3:swp", cycles);
  const auto alt = analysis::shared_topology_platform("mesh3x3:alt", cycles);
  const auto het =
      analysis::shared_topology_platform("mesh3x3:het0.5", cycles);
  const auto het_swp =
      analysis::shared_topology_platform("mesh3x3:het0.5:swp", cycles);
  const auto het_seed2 =
      analysis::shared_topology_platform("mesh3x3:het0.5", cycles, 1.0, 2);
  const std::vector<const void*> instances{
      base.get(), swp.get(), alt.get(), het.get(), het_swp.get(),
      het_seed2.get()};
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (std::size_t j = i + 1; j < instances.size(); ++j) {
      EXPECT_NE(instances[i], instances[j])
          << "cache keys " << i << " and " << j << " alias";
    }
  }
  // Same suffixed name + seed still hits the cache ...
  EXPECT_EQ(het_swp.get(),
            analysis::shared_topology_platform("mesh3x3:het0.5:swp", cycles)
                .get());
  // ... and the cached instance is bit-equal to a fresh build.
  const RoutedPlatform fresh =
      make_topology_platform("mesh3x3:het0.5:swp", cycles, 1.0, 1);
  for (ProcId q = 0; q < 9; ++q) {
    for (ProcId r = 0; r < 9; ++r) {
      EXPECT_EQ(het_swp->platform.link(q, r), fresh.platform.link(q, r));
      EXPECT_EQ(het_swp->routing.path(q, r), fresh.routing.path(q, r));
      EXPECT_EQ(het_swp->routing.distance(q, r),
                fresh.routing.distance(q, r));
    }
  }
}

// ---------------------------------------------------------------------
// End to end: heterogeneous costs and non-default policies schedule,
// validate under the one-port rules, and stay bit-identical across the
// two timeline implementations.

TEST(HeterogeneousRoutedScheduling, SchedulesValidateAndStayDifferential) {
  const TaskGraph g = testbeds::make_stencil(8, 4.0);
  for (const char* name : {"mesh3x3:het0.5:swp", "mesh3x3:het0.5:hot0.25",
                           "torus2x4:alt", "fattree2x2:swp",
                           "mesh2x3:aniso2.5"}) {
    SCOPED_TRACE(name);
    const RoutedPlatform routed = make_topology_platform(
        name, {1.0, 1.0, 2.0, 2.0, 3.0, 3.0}, 1.0, 5);
    Schedule gap;
    Schedule reference;
    {
      ScopedTimelineImpl guard(TimelineImpl::kGapIndexed);
      gap = heft(g, routed.platform, {.model = EftEngine::Model::kOnePort,
                                      .routing = &routed.routing});
    }
    {
      ScopedTimelineImpl guard(TimelineImpl::kReference);
      reference = heft(g, routed.platform,
                       {.model = EftEngine::Model::kOnePort,
                        .routing = &routed.routing});
    }
    const ValidationResult check =
        validate_one_port(gap, g, routed.platform);
    EXPECT_TRUE(check.ok()) << check.message();
    EXPECT_TRUE(gap.tasks() == reference.tasks());
    EXPECT_TRUE(gap.comms() == reference.comms());
    EXPECT_EQ(gap.makespan(), reference.makespan());

    const Schedule is = ilha(g, routed.platform,
                             {.model = EftEngine::Model::kOnePort,
                              .chunk_size = 8,
                              .routing = &routed.routing});
    const ValidationResult ic = validate_one_port(is, g, routed.platform);
    EXPECT_TRUE(ic.ok()) << ic.message();
  }
}

}  // namespace
}  // namespace oneport
