// Direct tests of the EFT engine -- the machinery every heuristic shares.
#include <gtest/gtest.h>

#include "core/eft_engine.hpp"
#include "sched/validate.hpp"

namespace oneport {
namespace {

/// Fork 0 -> {1, 2}; data 2 each; three unit processors.
struct Fixture {
  Fixture() {
    graph.add_task(1.0);
    graph.add_task(1.0);
    graph.add_task(1.0);
    graph.add_edge(0, 1, 2.0);
    graph.add_edge(0, 2, 2.0);
    graph.finalize();
  }
  TaskGraph graph;
  Platform platform{{1.0, 1.0, 1.0}, 1.0};
};

TEST(EftEngine, EvaluateDoesNotMutate) {
  Fixture f;
  EftEngine engine(f.graph, f.platform, EftEngine::Model::kOnePort);
  engine.commit(engine.evaluate(0, 0));
  const Evaluation once = engine.evaluate(1, 1);
  const Evaluation twice = engine.evaluate(1, 1);
  EXPECT_DOUBLE_EQ(once.start, twice.start);
  EXPECT_DOUBLE_EQ(once.finish, twice.finish);
  ASSERT_EQ(once.comms.size(), twice.comms.size());
  for (std::size_t i = 0; i < once.comms.size(); ++i) {
    EXPECT_DOUBLE_EQ(once.comms[i].start, twice.comms[i].start);
  }
}

TEST(EftEngine, SameProcessorNeedsNoMessage) {
  Fixture f;
  EftEngine engine(f.graph, f.platform, EftEngine::Model::kOnePort);
  engine.commit(engine.evaluate(0, 0));
  const Evaluation eval = engine.evaluate(1, 0);
  EXPECT_TRUE(eval.comms.empty());
  EXPECT_DOUBLE_EQ(eval.start, 1.0);  // right after the parent
}

TEST(EftEngine, OnePortMessagesWithinOneEvaluationSerialize) {
  // Join {0, 1} -> 2: evaluating 2 on a third processor schedules two
  // incoming messages that share 2's receive port.
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  const Platform p({1.0, 1.0, 1.0}, 1.0);
  EftEngine engine(g, p, EftEngine::Model::kOnePort);
  engine.commit(engine.evaluate(0, 0));
  engine.commit(engine.evaluate(1, 1));
  const Evaluation eval = engine.evaluate(2, 2);
  ASSERT_EQ(eval.comms.size(), 2u);
  // Distinct senders, same receiver: the receive port serializes them.
  EXPECT_GE(eval.comms[1].start, eval.comms[0].finish - kTimeEps);
  EXPECT_DOUBLE_EQ(eval.start, 5.0);  // 1 + 2 + 2
}

TEST(EftEngine, MacroMessagesWithinOneEvaluationOverlap) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  const Platform p({1.0, 1.0, 1.0}, 1.0);
  EftEngine engine(g, p, EftEngine::Model::kMacroDataflow);
  engine.commit(engine.evaluate(0, 0));
  engine.commit(engine.evaluate(1, 1));
  const Evaluation eval = engine.evaluate(2, 2);
  EXPECT_DOUBLE_EQ(eval.start, 3.0);  // both messages fly concurrently
}

TEST(EftEngine, CommitReservesPorts) {
  Fixture f;
  EftEngine engine(f.graph, f.platform, EftEngine::Model::kOnePort);
  engine.commit(engine.evaluate(0, 0));
  engine.commit(engine.evaluate(1, 1));  // message on P0.send during [1,3)
  // Task 2 on P2 must wait for P0's send port.
  const Evaluation eval = engine.evaluate(2, 2);
  ASSERT_EQ(eval.comms.size(), 1u);
  EXPECT_DOUBLE_EQ(eval.comms[0].start, 3.0);
  EXPECT_DOUBLE_EQ(eval.start, 5.0);
}

TEST(EftEngine, GuardsAgainstMisuse) {
  Fixture f;
  EftEngine engine(f.graph, f.platform, EftEngine::Model::kOnePort);
  EXPECT_THROW(engine.evaluate(0, 99), std::invalid_argument);
  EXPECT_THROW(engine.evaluate(1, 0), std::invalid_argument);  // parent not
                                                               // scheduled
  engine.commit(engine.evaluate(0, 0));
  EXPECT_THROW(engine.commit(engine.evaluate(0, 1)), std::invalid_argument);
  EXPECT_THROW(engine.build_schedule(), std::invalid_argument);  // incomplete
  EXPECT_THROW(engine.commit(Evaluation{}), std::invalid_argument);
}

TEST(EftEngine, ReadyTracksPredecessors) {
  Fixture f;
  EftEngine engine(f.graph, f.platform, EftEngine::Model::kOnePort);
  EXPECT_TRUE(engine.ready(0));
  EXPECT_FALSE(engine.ready(1));
  engine.commit(engine.evaluate(0, 0));
  EXPECT_TRUE(engine.ready(1));
}

TEST(EftEngine, BuildScheduleIsValid) {
  Fixture f;
  EftEngine engine(f.graph, f.platform, EftEngine::Model::kOnePort);
  for (TaskId v = 0; v < 3; ++v) engine.commit(engine.evaluate_best(v));
  const Schedule s = engine.build_schedule();
  EXPECT_TRUE(validate_one_port(s, f.graph, f.platform).ok());
}

TEST(EftEngine, RejectsMismatchedRoutingTable) {
  Fixture f;
  const RoutedPlatform ring = make_ring_platform({1, 1, 1, 1}, 1.0);  // p=4
  EXPECT_THROW(
      EftEngine(f.graph, f.platform, EftEngine::Model::kOnePort,
                &ring.routing),
      std::invalid_argument);
}

}  // namespace
}  // namespace oneport
