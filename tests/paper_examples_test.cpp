// End-to-end regeneration of every number the paper states outside its
// figures: the §2.3 worked example, the §4.4 toy example, the §5.2
// platform bounds, and the FORK-JOIN analytic speedup cap of §5.3.
#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "exact/fork_optimal.hpp"
#include "platform/load_balance.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

// ------------------------------------------------------------- §2.3

class Section23Example : public ::testing::Test {
 protected:
  const TaskGraph graph = testbeds::make_fork(
      1.0, std::vector<double>(6, 1.0), std::vector<double>(6, 1.0));
  const Platform platform = make_homogeneous_platform(5, 1.0, 1.0);
};

TEST_F(Section23Example, MacroDataflowMakespanIsThree) {
  const Schedule s =
      heft(graph, platform, {.model = EftEngine::Model::kMacroDataflow});
  EXPECT_TRUE(validate_macro_dataflow(s, graph, platform).ok());
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST_F(Section23Example, MacroAllocationCostsSixUnderOnePort) {
  const Schedule macro =
      heft(graph, platform, {.model = EftEngine::Model::kMacroDataflow});
  const Schedule replayed =
      asap_replay(macro, graph, platform, CommModel::kOnePort);
  EXPECT_TRUE(validate_one_port(replayed, graph, platform).ok());
  EXPECT_DOUBLE_EQ(replayed.makespan(), 6.0);
}

TEST_F(Section23Example, OnePortOptimumIsFive) {
  const exact::ForkInstance inst{1.0, std::vector<double>(6, 1.0),
                                 std::vector<double>(6, 1.0), 1.0, 1.0};
  EXPECT_DOUBLE_EQ(exact::solve_fork_one_port_optimal(inst).makespan, 5.0);
}

TEST_F(Section23Example, OnePortHeuristicsReachTheOptimum) {
  const Schedule h =
      heft(graph, platform, {.model = EftEngine::Model::kOnePort});
  EXPECT_DOUBLE_EQ(h.makespan(), 5.0);
  const Schedule i = ilha(graph, platform,
                          {.model = EftEngine::Model::kOnePort,
                           .chunk_size = 8});
  EXPECT_DOUBLE_EQ(i.makespan(), 5.0);
}

// ------------------------------------------------------------- §4.4 toy

TEST(Section44Toy, IlhaHalvesMessagesAtEqualOrBetterMakespan) {
  TaskGraph g;
  const TaskId a0 = g.add_task(1.0);
  const TaskId b0 = g.add_task(1.0);
  std::vector<TaskId> a_kids, b_kids, shared;
  for (int i = 0; i < 3; ++i) a_kids.push_back(g.add_task(1.0));
  for (int i = 0; i < 2; ++i) shared.push_back(g.add_task(1.0));
  for (int i = 0; i < 3; ++i) b_kids.push_back(g.add_task(1.0));
  for (const TaskId c : a_kids) g.add_edge(a0, c, 1.0);
  for (const TaskId c : shared) {
    g.add_edge(a0, c, 1.0);
    g.add_edge(b0, c, 1.0);
  }
  for (const TaskId c : b_kids) g.add_edge(b0, c, 1.0);
  g.finalize();
  const Platform p = make_homogeneous_platform(2, 1.0, 1.0);

  const Schedule hs = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule is = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                  .chunk_size = 8});
  EXPECT_LE(is.makespan(), hs.makespan() + 1e-9);
  EXPECT_LT(is.num_comms(), hs.num_comms());
}

// ------------------------------------------------------------- §5.2

TEST(Section52, PlatformBounds) {
  const Platform p = make_paper_platform();
  EXPECT_EQ(perfect_balance_chunk(p), 38);
  EXPECT_NEAR(speedup_upper_bound(p), 7.6, 1e-12);
  const std::vector<int> dist = optimal_distribution(p, 38);
  EXPECT_DOUBLE_EQ(distribution_makespan(p, dist), 30.0);
}

// ------------------------------------------------------------- §5.3

TEST(Section53, ForkJoinRatioApproachesItsCap) {
  // s <= w*t/c + 1 = 1.6 for t=6, c=10, w=1; the paper measures
  // 1.53-1.58 and argues that is near-optimal.
  const Platform p = make_paper_platform();
  const TaskGraph g = testbeds::make_fork_join(150, 10.0);
  const Schedule h = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule i = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                 .chunk_size = 38});
  const double cap = 1.0 * 6.0 / 10.0 + 1.0;
  for (const Schedule* s : {&h, &i}) {
    const double ratio = analysis::speedup(g, p, *s);
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, cap + 0.05);
  }
  // HEFT and ILHA coincide on this kernel (Figure 7).
  EXPECT_DOUBLE_EQ(h.makespan(), i.makespan());
}

TEST(Section53, LinearAlgebraKernelsLandInThePaperBand) {
  // Small-instance smoke check that the one-port ratios live in the right
  // neighbourhood (full sweeps are in bench/).
  const Platform p = make_paper_platform();
  const TaskGraph lu = testbeds::make_lu(100, 10.0);
  const double r = analysis::speedup(
      lu, p, ilha(lu, p, {.model = EftEngine::Model::kOnePort,
                          .chunk_size = 4}));
  EXPECT_GT(r, 3.5);
  EXPECT_LT(r, 6.5);
}

TEST(Section53, StencilIsCommBound) {
  const Platform p = make_paper_platform();
  const TaskGraph st = testbeds::make_stencil(60, 10.0);
  const double r = analysis::speedup(
      st, p, ilha(st, p, {.model = EftEngine::Model::kOnePort,
                          .chunk_size = 38}));
  EXPECT_GT(r, 1.8);
  EXPECT_LT(r, 3.5);
}

}  // namespace
}  // namespace oneport
