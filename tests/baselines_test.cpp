// Tests for the extra baselines (min-min / max-min / GDL) and the ILHA
// chunk-size autotuner.
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "core/gdl.hpp"
#include "core/heft.hpp"
#include "core/minmin.hpp"
#include "platform/routing.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(MinMin, SingleTaskOnFastest) {
  TaskGraph g;
  g.add_task(3.0);
  g.finalize();
  const Platform p({2.0, 1.0}, 1.0);
  const Schedule s = min_min(g, p, {});
  EXPECT_EQ(s.task(0).proc, 1);
}

TEST(MinMin, PrefersShortTasksFirst) {
  // Independent tasks of very different sizes on one processor: min-min
  // commits the small ones first, max-min the big one.
  TaskGraph g;
  const TaskId small = g.add_task(1.0);
  const TaskId big = g.add_task(10.0);
  g.finalize();
  const Platform p({1.0}, 1.0);
  const Schedule mm = min_min(g, p, {});
  EXPECT_LT(mm.task(small).start, mm.task(big).start);
  const Schedule xm = min_min(g, p, {.max_min = true});
  EXPECT_LT(xm.task(big).start, xm.task(small).start);
}

TEST(MinMin, ValidOnTestbedsBothModels) {
  const Platform p = make_paper_platform();
  const TaskGraph g = testbeds::make_lu(12, 10.0);
  const Schedule one = min_min(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(one, g, p).ok());
  const Schedule macro =
      min_min(g, p, {.model = EftEngine::Model::kMacroDataflow});
  EXPECT_TRUE(validate_macro_dataflow(macro, g, p).ok());
  const Schedule max = min_min(g, p, {.model = EftEngine::Model::kOnePort,
                                      .max_min = true});
  EXPECT_TRUE(validate_one_port(max, g, p).ok());
}

TEST(MinMin, SupportsRouting) {
  const TaskGraph g = testbeds::make_stencil(6, 4.0);
  const RoutedPlatform ring = make_ring_platform({1, 1, 2, 2}, 1.0);
  const Schedule s = min_min(g, ring.platform,
                             {.model = EftEngine::Model::kOnePort,
                              .routing = &ring.routing});
  EXPECT_TRUE(validate_one_port(s, g, ring.platform).ok());
}

TEST(Gdl, FavorsFasterProcessors) {
  // Equal EFT choices resolved by the Delta(v, p) speed bonus.
  TaskGraph g;
  g.add_task(4.0);
  g.finalize();
  const Platform p({3.0, 1.0, 2.0}, 1.0);
  const Schedule s = gdl(g, p, {});
  EXPECT_EQ(s.task(0).proc, 1);
}

TEST(Gdl, ValidOnTestbedsBothModels) {
  const Platform p = make_paper_platform();
  const TaskGraph g = testbeds::make_doolittle(12, 10.0);
  const Schedule one = gdl(g, p, {.model = EftEngine::Model::kOnePort});
  EXPECT_TRUE(validate_one_port(one, g, p).ok());
  const Schedule macro =
      gdl(g, p, {.model = EftEngine::Model::kMacroDataflow});
  EXPECT_TRUE(validate_macro_dataflow(macro, g, p).ok());
}

TEST(Gdl, Deterministic) {
  const TaskGraph g = testbeds::make_laplace(8, 10.0);
  const Platform p = make_paper_platform();
  const Schedule a = gdl(g, p, {});
  const Schedule b = gdl(g, p, {});
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(a.task(v).proc, b.task(v).proc);
  }
}

TEST(Autotune, PicksTheBestCandidate) {
  const TaskGraph g = testbeds::make_lu(20, 10.0);
  const Platform p = make_paper_platform();
  const IlhaAutotuneResult result = ilha_autotune(
      g, p, {.model = EftEngine::Model::kOnePort}, {10, 20, 38});
  ASSERT_EQ(result.trials.size(), 3u);
  for (const auto& [b, makespan] : result.trials) {
    EXPECT_GE(makespan, result.makespan - 1e-9)
        << "B=" << b << " beat the reported winner";
  }
  EXPECT_DOUBLE_EQ(result.schedule.makespan(), result.makespan);
  EXPECT_TRUE(validate_one_port(result.schedule, g, p).ok());
}

TEST(Autotune, DefaultCandidatesSpanTheRange) {
  const TaskGraph g = testbeds::make_laplace(10, 10.0);
  const Platform p = make_paper_platform();
  const IlhaAutotuneResult result = ilha_autotune(g, p);
  // Defaults for the paper platform: {10, 24, 38, 76}.
  ASSERT_EQ(result.trials.size(), 4u);
  EXPECT_EQ(result.trials.front().first, 10);
  EXPECT_EQ(result.trials.back().first, 76);
}

TEST(Autotune, DeduplicatesCandidates) {
  const TaskGraph g = testbeds::make_laplace(6, 10.0);
  const Platform p = make_paper_platform();
  const IlhaAutotuneResult result =
      ilha_autotune(g, p, {}, {20, 20, 10, 10});
  EXPECT_EQ(result.trials.size(), 2u);
  EXPECT_EQ(result.trials.front().first, 10);
}

}  // namespace
}  // namespace oneport
