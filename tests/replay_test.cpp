#include <gtest/gtest.h>

#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport {
namespace {

TEST(Replay, IdentityOnTightSchedule) {
  // A hand-built already-ASAP schedule replays to itself.
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 2.0);
  g.finalize();
  const Platform p({1.0, 1.0}, 1.0);
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 3.0});
  s.place_task(1, 1, 3.0, 4.0);

  const Schedule r = asap_replay(s, g, p, CommModel::kOnePort);
  EXPECT_DOUBLE_EQ(r.makespan(), 4.0);
  EXPECT_DOUBLE_EQ(r.task(1).start, 3.0);
}

TEST(Replay, TightensPaddedSchedule) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const Platform p({1.0, 1.0}, 1.0);
  Schedule s(2);
  // Gratuitous idle time everywhere.
  s.place_task(0, 0, 5.0, 6.0);
  s.add_comm({0, 1, 0, 1, 10.0, 11.0});
  s.place_task(1, 1, 20.0, 21.0);

  const Schedule r = asap_replay(s, g, p, CommModel::kOnePort);
  EXPECT_DOUBLE_EQ(r.task(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan(), 3.0);
  EXPECT_TRUE(validate_one_port(r, g, p).ok());
}

TEST(Replay, NeverIncreasesValidOnePortMakespan) {
  const TaskGraph g = testbeds::make_lu(20, 10.0);
  const Platform p = make_paper_platform();
  const Schedule s = heft(g, p, {.model = EftEngine::Model::kOnePort});
  const Schedule r = asap_replay(s, g, p, CommModel::kOnePort);
  EXPECT_LE(r.makespan(), s.makespan() + 1e-6);
  EXPECT_TRUE(validate_one_port(r, g, p).ok());
}

TEST(Replay, MacroScheduleUnderOnePortSerializesPorts) {
  // The section-2.3 fork: macro HEFT achieves 3, but its allocation costs
  // >= 6 once the four messages serialize on P0's send port.
  const TaskGraph g = testbeds::make_fork(1.0, std::vector<double>(6, 1.0),
                                          std::vector<double>(6, 1.0));
  const Platform p = make_homogeneous_platform(5, 1.0, 1.0);
  const Schedule macro = heft(g, p, {.model = EftEngine::Model::kMacroDataflow});
  EXPECT_DOUBLE_EQ(macro.makespan(), 3.0);

  const Schedule replayed = asap_replay(macro, g, p, CommModel::kOnePort);
  EXPECT_TRUE(validate_one_port(replayed, g, p).ok());
  EXPECT_DOUBLE_EQ(replayed.makespan(), 6.0);

  // Replaying under the macro rules keeps the contention-free makespan.
  const Schedule macro_again =
      asap_replay(macro, g, p, CommModel::kMacroDataflow);
  EXPECT_DOUBLE_EQ(macro_again.makespan(), 3.0);
}

TEST(Replay, PreservesAllocationAndOrders) {
  const TaskGraph g = testbeds::make_stencil(8, 5.0);
  const Platform p({1.0, 2.0, 3.0}, 1.0);
  const Schedule s = ilha(g, p, {.model = EftEngine::Model::kOnePort,
                                 .chunk_size = 6});
  const Schedule r = asap_replay(s, g, p, CommModel::kOnePort);
  ASSERT_EQ(r.num_tasks(), s.num_tasks());
  for (TaskId v = 0; v < s.num_tasks(); ++v) {
    EXPECT_EQ(r.task(v).proc, s.task(v).proc);
  }
  EXPECT_EQ(r.num_comms(), s.num_comms());
}

TEST(Replay, RequiresCompleteSchedule) {
  TaskGraph g;
  g.add_task(1.0);
  g.finalize();
  const Platform p({1.0}, 1.0);
  const Schedule s(1);  // unplaced
  EXPECT_THROW(asap_replay(s, g, p, CommModel::kOnePort),
               std::invalid_argument);
}

TEST(Replay, MissingMessageIsRejected) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const Platform p({1.0, 1.0}, 1.0);
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 1, 2.0, 3.0);  // cross-proc edge but no message recorded
  EXPECT_THROW(asap_replay(s, g, p, CommModel::kOnePort),
               std::invalid_argument);
}

}  // namespace
}  // namespace oneport
