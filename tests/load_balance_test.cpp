// Hardened load_balance numerics: regression tests for the silent int64
// LCM overflow in perfect_balance_chunk (now checked 128-bit
// arithmetic), the degenerate-input guards on the distribution helpers,
// and the new imbalance metric + iterative skew-reduction rebalancer.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "platform/load_balance.hpp"
#include "platform/platform.hpp"

namespace oneport {
namespace {

__extension__ using u128 = unsigned __int128;

// ------------------------------------ perfect_balance_chunk regressions

// Four coprime cycle times near 1e5: their LCM is the full product,
// ~1.0006e20 -- far past int64 -- while the chunk (the LCM divided back
// down by each cycle time) is only ~4e15.  The old std::lcm<int64> loop
// wrapped silently and returned garbage here; the checked 128-bit path
// must return the exact value, computed independently below.
TEST(PerfectBalanceChunk, SurvivesAnLcmPastInt64WhenTheChunkStillFits) {
  const std::vector<std::int64_t> times = {99991, 100003, 100019, 100043};
  const Platform p({99991.0, 100003.0, 100019.0, 100043.0}, 1.0);

  u128 lcm = 1;
  for (const std::int64_t t : times) lcm *= static_cast<u128>(t);
  ASSERT_GT(lcm, static_cast<u128>(std::numeric_limits<std::int64_t>::max()))
      << "the regression needs an LCM that overflows int64";

  u128 expected = 0;
  for (const std::int64_t t : times) expected += lcm / static_cast<u128>(t);
  ASSERT_LE(expected,
            static_cast<u128>(std::numeric_limits<std::int64_t>::max()));

  EXPECT_EQ(perfect_balance_chunk(p),
            static_cast<std::int64_t>(expected));
}

// Five coprime cycle times push the chunk itself (~5e20) past int64:
// the old code wrapped silently, the fix must refuse loudly.
TEST(PerfectBalanceChunk, ThrowsWhenTheChunkOverflowsInt64) {
  const Platform p({99991.0, 100003.0, 100019.0, 100043.0, 100057.0}, 1.0);
  EXPECT_THROW((void)perfect_balance_chunk(p), std::overflow_error);
}

// Eight coprime cycle times overflow even the 128-bit LCM (~1e40): the
// checked multiply must catch it mid-accumulation.
TEST(PerfectBalanceChunk, ThrowsWhenEvenTheLcmLeaves128Bits) {
  const Platform p({99991.0, 100003.0, 100019.0, 100043.0, 100057.0,
                    100069.0, 100103.0, 100109.0},
                   1.0);
  EXPECT_THROW((void)perfect_balance_chunk(p), std::overflow_error);
}

// The paper's platform keeps its exact answer through the rewrite.
TEST(PerfectBalanceChunk, PaperPlatformStaysAt38) {
  EXPECT_EQ(perfect_balance_chunk(make_paper_platform()), 38);
}

// Non-coprime times exercise the gcd reduction: lcm(6, 10, 15) = 30,
// chunk = 5 + 3 + 2.
TEST(PerfectBalanceChunk, GcdReductionKeepsSmallSetsSmall) {
  EXPECT_EQ(perfect_balance_chunk(Platform({6.0, 10.0, 15.0}, 1.0)), 10);
}

// --------------------------------------------- degenerate-input guards

TEST(DistributionGuards, RejectsNonPositiveTaskCounts) {
  const Platform p({1.0, 2.0}, 1.0);
  EXPECT_THROW((void)optimal_distribution(p, 0), std::invalid_argument);
  EXPECT_THROW((void)optimal_distribution(p, -5), std::invalid_argument);
  EXPECT_EQ(optimal_distribution(p, 1), (std::vector<int>{1, 0}));
}

TEST(DistributionGuards, MakespanRejectsArityMismatchAndNegativeCounts) {
  const Platform p({1.0, 2.0}, 1.0);
  EXPECT_THROW((void)distribution_makespan(p, {1}), std::invalid_argument);
  EXPECT_THROW((void)distribution_makespan(p, {1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)distribution_makespan(p, {1, -1}),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(distribution_makespan(p, {0, 0}), 0.0);
}

// Degenerate *platforms* (no processors, non-positive cycle times) are
// rejected at construction, so the load_balance guards can only be
// reached through a valid Platform -- pin that the constructor really is
// the gate.
TEST(DistributionGuards, DegeneratePlatformsNeverReachTheAlgorithms) {
  EXPECT_THROW(Platform({}, 1.0), std::invalid_argument);
  EXPECT_THROW(Platform({0.0, 1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Platform({-2.0}, 1.0), std::invalid_argument);
}

// ------------------------------------------- fractional load imbalance

TEST(LoadImbalance, ZeroForPerfectlyBalancedLoads) {
  // Finishes 2 and 2; ideal (2+1)/(1 + 1/2) = 2.
  const Platform p({1.0, 2.0}, 1.0);
  EXPECT_NEAR(fractional_load_imbalance(p, {2.0, 1.0}), 0.0, 1e-12);
}

TEST(LoadImbalance, MeasuresRelativeExcessOverTheIdeal) {
  const Platform p({1.0, 2.0}, 1.0);
  // Everything on the fast processor: worst finish 3, ideal 2.
  EXPECT_NEAR(fractional_load_imbalance(p, {3.0, 0.0}), 0.5, 1e-12);
  // Everything on the slow one: worst finish 6, ideal 2.
  EXPECT_NEAR(fractional_load_imbalance(p, {0.0, 3.0}), 2.0, 1e-12);
}

TEST(LoadImbalance, ZeroTotalLoadIsBalancedByConvention) {
  const Platform p({1.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(fractional_load_imbalance(p, {0.0, 0.0}), 0.0);
}

TEST(LoadImbalance, RejectsArityMismatchAndNegativeLoads) {
  const Platform p({1.0, 2.0}, 1.0);
  EXPECT_THROW((void)fractional_load_imbalance(p, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fractional_load_imbalance(p, {1.0, -1.0}),
               std::invalid_argument);
}

// --------------------------------------------------- skew rebalancing

TEST(Rebalance, SpreadsAFullyStackedAssignment) {
  const Platform p({1.0, 1.0, 1.0, 1.0}, 1.0);
  const std::vector<double> weights(8, 1.0);
  std::vector<ProcId> assignment(8, 0);
  const RebalanceStats stats = rebalance_assignment(p, weights, assignment);
  EXPECT_NEAR(stats.imbalance_before, 3.0, 1e-12);
  EXPECT_NEAR(stats.imbalance_after, 0.0, 1e-12);
  EXPECT_GE(stats.moves, 6);
  std::vector<int> per_proc(4, 0);
  for (const ProcId q : assignment) {
    ASSERT_GE(q, 0);
    ASSERT_LT(q, 4);
    ++per_proc[static_cast<std::size_t>(q)];
  }
  EXPECT_EQ(per_proc, (std::vector<int>{2, 2, 2, 2}));
}

TEST(Rebalance, NeverIncreasesTheImbalance) {
  const Platform p({1.0, 2.0, 3.0}, 1.0);
  // A deterministic pseudo-random-ish pile of weights and placements.
  std::vector<double> weights;
  std::vector<ProcId> assignment;
  for (int i = 0; i < 20; ++i) {
    weights.push_back(1.0 + (i * 7) % 5);
    assignment.push_back(static_cast<ProcId>((i * 13) % 3));
  }
  const double before = [&] {
    std::vector<double> loads(3, 0.0);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      loads[static_cast<std::size_t>(assignment[i])] += weights[i];
    }
    return fractional_load_imbalance(p, loads);
  }();
  const RebalanceStats stats = rebalance_assignment(p, weights, assignment);
  EXPECT_NEAR(stats.imbalance_before, before, 1e-12);
  EXPECT_LE(stats.imbalance_after, stats.imbalance_before + 1e-9);
}

TEST(Rebalance, IsDeterministic) {
  const Platform p({1.0, 2.0, 4.0}, 1.0);
  std::vector<double> weights = {5.0, 3.0, 3.0, 2.0, 2.0, 1.0, 1.0};
  std::vector<ProcId> a(weights.size(), 0);
  std::vector<ProcId> b(weights.size(), 0);
  const RebalanceStats sa = rebalance_assignment(p, weights, a);
  const RebalanceStats sb = rebalance_assignment(p, weights, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.moves, sb.moves);
  EXPECT_DOUBLE_EQ(sa.imbalance_after, sb.imbalance_after);
}

TEST(Rebalance, LeavesABalancedAssignmentAlone) {
  const Platform p({1.0, 1.0}, 1.0);
  const std::vector<double> weights = {2.0, 2.0};
  std::vector<ProcId> assignment = {0, 1};
  const RebalanceStats stats = rebalance_assignment(p, weights, assignment);
  EXPECT_EQ(stats.moves, 0);
  EXPECT_EQ(assignment, (std::vector<ProcId>{0, 1}));
  EXPECT_DOUBLE_EQ(stats.imbalance_after, stats.imbalance_before);
}

TEST(Rebalance, RespectsTheMoveBudget) {
  const Platform p({1.0, 1.0, 1.0, 1.0}, 1.0);
  const std::vector<double> weights(8, 1.0);
  std::vector<ProcId> assignment(8, 0);
  const RebalanceStats stats =
      rebalance_assignment(p, weights, assignment, /*max_moves=*/2);
  EXPECT_EQ(stats.moves, 2);
  EXPECT_LE(stats.imbalance_after, stats.imbalance_before);
  EXPECT_GT(stats.imbalance_after, 0.0);
}

TEST(Rebalance, RejectsMalformedInputs) {
  const Platform p({1.0, 2.0}, 1.0);
  std::vector<ProcId> assignment = {0, 1};
  EXPECT_THROW((void)rebalance_assignment(p, {1.0}, assignment),
               std::invalid_argument);
  std::vector<ProcId> bad_proc = {0, 7};
  EXPECT_THROW((void)rebalance_assignment(p, {1.0, 1.0}, bad_proc),
               std::invalid_argument);
  std::vector<ProcId> ok = {0, 1};
  EXPECT_THROW((void)rebalance_assignment(p, {1.0, -1.0}, ok),
               std::invalid_argument);
}

}  // namespace
}  // namespace oneport
