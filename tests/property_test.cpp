// Randomized property tests: random layered DAGs on random heterogeneous
// platforms, plus fault injection against the validators.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sched/interval.hpp"
#include "sched/replay.hpp"
#include "sched/validate.hpp"
#include "testbeds/testbeds.hpp"
#include "util/rng.hpp"

namespace oneport {
namespace {

/// Deterministic random platform: 2-6 processors, cycle times in [1,4),
/// possibly non-uniform links in [0.5, 3).
Platform make_random_platform(std::uint64_t seed) {
  SplitMix64 rng(seed);
  const int p = 2 + static_cast<int>(rng.below(5));
  std::vector<double> cycle(static_cast<std::size_t>(p));
  for (double& t : cycle) t = rng.uniform(1.0, 4.0);
  Matrix<double> link(static_cast<std::size_t>(p), static_cast<std::size_t>(p),
                      0.0);
  for (int q = 0; q < p; ++q) {
    for (int r = 0; r < p; ++r) {
      if (q != r) {
        link(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) =
            rng.uniform(0.5, 3.0);
      }
    }
  }
  return Platform(std::move(cycle), std::move(link));
}

TaskGraph make_random_graph(std::uint64_t seed) {
  testbeds::RandomDagOptions options;
  options.seed = seed;
  options.layers = 6 + static_cast<int>(seed % 5);
  options.max_width = 5;
  options.max_in_degree = 3;
  options.comm_ratio = 1.0 + static_cast<double>(seed % 7);
  return testbeds::make_random_layered(options);
}

class RandomWorkloadTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkloadTest, AllSchedulersProduceValidSchedules) {
  const std::uint64_t seed = GetParam();
  const TaskGraph graph = make_random_graph(seed);
  const Platform platform = make_random_platform(seed * 7 + 1);
  for (const SchedulerEntry& entry : builtin_schedulers(/*chunk=*/9)) {
    const Schedule schedule = entry.run(graph, platform);
    ASSERT_TRUE(schedule.complete()) << entry.name;
    const bool one_port = entry.name.find("oneport") != std::string::npos;
    const ValidationResult check =
        one_port ? validate_one_port(schedule, graph, platform)
                 : validate_macro_dataflow(schedule, graph, platform);
    ASSERT_TRUE(check.ok()) << entry.name << " seed=" << seed << "\n"
                            << check.message();
  }
}

TEST_P(RandomWorkloadTest, ReplayIsIdempotentAndNonWorsening) {
  const std::uint64_t seed = GetParam();
  const TaskGraph graph = make_random_graph(seed);
  const Platform platform = make_random_platform(seed * 13 + 5);
  const Schedule schedule =
      find_scheduler("heft-oneport").run(graph, platform);
  const Schedule once =
      asap_replay(schedule, graph, platform, CommModel::kOnePort);
  EXPECT_LE(once.makespan(), schedule.makespan() + 1e-6);
  const Schedule twice =
      asap_replay(once, graph, platform, CommModel::kOnePort);
  // A second replay is a fixpoint.
  EXPECT_NEAR(twice.makespan(), once.makespan(), 1e-6);
  EXPECT_TRUE(validate_one_port(twice, graph, platform).ok());
}

TEST_P(RandomWorkloadTest, FaultInjectionTripsTheValidator) {
  const std::uint64_t seed = GetParam();
  const TaskGraph graph = make_random_graph(seed);
  const Platform platform = make_random_platform(seed * 3 + 2);
  const Schedule good = find_scheduler("heft-oneport").run(graph, platform);
  ASSERT_TRUE(validate_one_port(good, graph, platform).ok());

  // Corrupt one task: pull its start before a predecessor's finish (or
  // shift it onto a colleague if it has no predecessor).
  SplitMix64 rng(seed + 99);
  Schedule bad(graph.num_tasks());
  const TaskId victim =
      static_cast<TaskId>(rng.below(graph.num_tasks()));
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    const TaskPlacement& t = good.task(v);
    if (v == victim) {
      const double shift = t.start + 1.0;  // guaranteed earlier than legal
      bad.place_task(v, t.proc, t.start - shift, t.finish - shift);
    } else {
      bad.place_task(v, t.proc, t.start, t.finish);
    }
  }
  for (const CommPlacement& c : good.comms()) bad.add_comm(c);
  EXPECT_FALSE(validate_one_port(bad, graph, platform).ok());
}

TEST_P(RandomWorkloadTest, PortOverlapInjectionIsCaught) {
  const std::uint64_t seed = GetParam();
  const TaskGraph graph = make_random_graph(seed);
  const Platform platform = make_random_platform(seed * 11 + 4);
  const Schedule good = find_scheduler("heft-oneport").run(graph, platform);
  if (good.num_comms() < 2) GTEST_SKIP() << "not enough messages";

  // Find two messages leaving the same processor and slam the second onto
  // the first's interval.  (Messages keep legal durations so only the
  // port rules O1/O2 -- and possibly arrival precedence -- can trip.)
  const auto& comms = good.comms();
  for (std::size_t i = 0; i < comms.size(); ++i) {
    for (std::size_t j = i + 1; j < comms.size(); ++j) {
      const bool same_send = comms[i].from == comms[j].from;
      const bool same_recv = comms[i].to == comms[j].to;
      if (!same_send && !same_recv) continue;
      if (Interval{comms[i].start, comms[i].finish}.degenerate()) continue;
      if (Interval{comms[j].start, comms[j].finish}.degenerate()) continue;
      Schedule bad(graph.num_tasks());
      for (TaskId v = 0; v < graph.num_tasks(); ++v) {
        const TaskPlacement& t = good.task(v);
        bad.place_task(v, t.proc, t.start, t.finish);
      }
      for (std::size_t k = 0; k < comms.size(); ++k) {
        CommPlacement c = comms[k];
        if (k == j) {
          const double duration = c.finish - c.start;
          c.start = comms[i].start;
          c.finish = c.start + duration;
        }
        bad.add_comm(c);
      }
      EXPECT_FALSE(validate_one_port(bad, graph, platform).ok());
      return;
    }
  }
  GTEST_SKIP() << "no port-sharing message pair";
}

TEST_P(RandomWorkloadTest, SchedulersAreDeterministic) {
  const std::uint64_t seed = GetParam();
  const TaskGraph graph = make_random_graph(seed);
  const Platform platform = make_random_platform(seed + 21);
  for (const char* name : {"heft-oneport", "ilha-oneport"}) {
    const Schedule a = find_scheduler(name).run(graph, platform);
    const Schedule b = find_scheduler(name).run(graph, platform);
    for (TaskId v = 0; v < graph.num_tasks(); ++v) {
      ASSERT_EQ(a.task(v).proc, b.task(v).proc) << name;
      ASSERT_DOUBLE_EQ(a.task(v).start, b.task(v).start) << name;
    }
  }
}

TEST_P(RandomWorkloadTest, MakespanRespectsLowerBounds) {
  const std::uint64_t seed = GetParam();
  const TaskGraph graph = make_random_graph(seed);
  const Platform platform = make_random_platform(seed + 77);
  const Schedule s = find_scheduler("ilha-oneport").run(graph, platform);
  // Area bound.
  EXPECT_GE(s.makespan(),
            graph.total_weight() / platform.aggregate_speed() - 1e-6);
  // Pure-computation critical path on the fastest processor.
  const double t_min = platform.cycle_time(platform.fastest_processor());
  double cp = 0.0;
  {
    std::vector<double> bl(graph.num_tasks(), 0.0);
    const auto order = graph.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      double best = 0.0;
      for (const EdgeRef& e : graph.successors(*it)) {
        best = std::max(best, bl[e.task]);
      }
      bl[*it] = graph.weight(*it) * t_min + best;
      cp = std::max(cp, bl[*it]);
    }
  }
  EXPECT_GE(s.makespan(), cp - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace oneport
