#include <gtest/gtest.h>

#include "graph/dot_import.hpp"
#include "graph/graph_algorithms.hpp"
#include "testbeds/registry.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport::testbeds {
namespace {

TEST(ForkJoin, Structure) {
  const TaskGraph g = make_fork_join(5, 10.0);
  EXPECT_EQ(g.num_tasks(), 7u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 7.0);
  // data = c * w(src) = 10 on every edge.
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const EdgeRef& e : g.successors(u)) {
      EXPECT_DOUBLE_EQ(e.data, 10.0);
    }
  }
}

TEST(Fork, CustomWeightsAndData) {
  const TaskGraph g = make_fork(2.0, {1.0, 3.0}, {4.0, 5.0});
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_DOUBLE_EQ(g.weight(0), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_data(0, 2), 5.0);
  EXPECT_THROW(make_fork(1.0, {1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Lu, StructureAndWeights) {
  const int n = 6;
  const TaskGraph g = make_lu(n, 10.0);
  // n(n-1)/2 tasks.
  EXPECT_EQ(g.num_tasks(), static_cast<std::size_t>(n * (n - 1) / 2));
  // Level k has n-k tasks of weight n-k; entries are exactly level 1.
  const auto levels = iso_levels(g);
  std::vector<int> level_count(static_cast<std::size_t>(n), 0);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const int k = levels[v] + 1;  // iso level 0 == paper level 1
    ++level_count[static_cast<std::size_t>(k)];
    EXPECT_DOUBLE_EQ(g.weight(v), n - k) << "task " << v;
  }
  for (int k = 1; k < n; ++k) {
    EXPECT_EQ(level_count[static_cast<std::size_t>(k)], n - k);
  }
  // Bounded degrees: the one-port-friendly reconstruction (see lu.cpp).
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_LE(g.out_degree(v), 2u);
    EXPECT_LE(g.in_degree(v), 2u);
  }
}

TEST(Lu, EdgeDataProportionalToSourceWeight) {
  const TaskGraph g = make_lu(5, 10.0);
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const EdgeRef& e : g.successors(u)) {
      EXPECT_DOUBLE_EQ(e.data, 10.0 * g.weight(u));
    }
  }
}

TEST(Doolittle, WeightsGrowWithLevel) {
  const int n = 6;
  const TaskGraph g = make_doolittle(n, 10.0);
  EXPECT_EQ(g.num_tasks(), static_cast<std::size_t>(n * (n - 1) / 2));
  const auto levels = iso_levels(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(g.weight(v), levels[v] + 1);
  }
}

TEST(Ldmt, TwoCoupledMeshes) {
  const int n = 6;
  const TaskGraph g = make_ldmt(n, 10.0);
  EXPECT_EQ(g.num_tasks(), static_cast<std::size_t>(n * (n - 1)));
  const auto levels = iso_levels(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(g.weight(v), levels[v] + 1);
    EXPECT_LE(g.out_degree(v), 3u);  // mesh edges + diagonal coupling
  }
  // The coupling makes the two sweeps depend on each other: a single
  // connected component (checked via one entry level of 2(n-1) tasks).
  EXPECT_EQ(g.entry_tasks().size(), static_cast<std::size_t>(2 * (n - 1)));
}

TEST(Laplace, DiamondStructure) {
  const int n = 5;
  const TaskGraph g = make_laplace(n, 10.0);
  EXPECT_EQ(g.num_tasks(), static_cast<std::size_t>(n * n));
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(2 * n * (n - 1)));
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Laplace, EveryNodeOnACriticalPath) {
  // The paper: "all nodes are on a critical path" for LAPLACE.
  const int n = 6;
  const TaskGraph g = make_laplace(n, 10.0);
  const auto bl = bottom_levels(g, 1.0, 1.0);
  const auto tl = top_levels(g, 1.0, 1.0);
  const double cp = bl[g.entry_tasks().front()];
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_NEAR(tl[v] + bl[v], cp, 1e-9) << "task " << v;
  }
}

TEST(Stencil, ThreePointDependences) {
  const int n = 5;
  const TaskGraph g = make_stencil(n, 10.0);
  EXPECT_EQ(g.num_tasks(), static_cast<std::size_t>(n * n));
  // Interior tasks have 3 parents, border tasks 2; row 0 none.
  for (int j = 0; j < n; ++j) {
    EXPECT_EQ(g.in_degree(static_cast<TaskId>(j)), 0u);
  }
  EXPECT_EQ(g.in_degree(static_cast<TaskId>(n + 2)), 3u);  // (1,2) interior
  EXPECT_EQ(g.in_degree(static_cast<TaskId>(n)), 2u);      // (1,0) border
  EXPECT_EQ(g.entry_tasks().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(g.exit_tasks().size(), static_cast<std::size_t>(n));
}

TEST(Generators, RejectDegenerateSizes) {
  EXPECT_THROW(make_fork_join(0), std::invalid_argument);
  EXPECT_THROW(make_lu(1), std::invalid_argument);
  EXPECT_THROW(make_ldmt(1), std::invalid_argument);
  EXPECT_THROW(make_laplace(0), std::invalid_argument);
  EXPECT_THROW(make_stencil(0), std::invalid_argument);
  EXPECT_THROW(make_lu(5, -1.0), std::invalid_argument);
}

TEST(RandomDag, DeterministicPerSeed) {
  RandomDagOptions options;
  options.seed = 11;
  const TaskGraph a = make_random_layered(options);
  const TaskGraph b = make_random_layered(options);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(a.weight(v), b.weight(v));
  }
  options.seed = 12;
  const TaskGraph c = make_random_layered(options);
  EXPECT_TRUE(c.num_tasks() != a.num_tasks() ||
              c.num_edges() != a.num_edges());
}

TEST(RandomDag, RespectsBounds) {
  RandomDagOptions options;
  options.layers = 12;
  options.max_width = 4;
  options.max_in_degree = 2;
  options.seed = 3;
  const TaskGraph g = make_random_layered(options);
  EXPECT_LE(g.num_tasks(), 12u * 4u);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_LE(g.in_degree(v), 2u);
    EXPECT_GE(g.weight(v), options.w_lo);
    EXPECT_LT(g.weight(v), options.w_hi);
  }
}

TEST(Registry, FindsAllSixKernels) {
  const auto all = paper_testbeds();
  ASSERT_EQ(all.size(), 6u);
  for (const auto& entry : all) {
    const TaskGraph g = entry.make(6, 10.0);
    EXPECT_GT(g.num_tasks(), 0u) << entry.name;
    EXPECT_GT(entry.paper_best_b, 0) << entry.name;
  }
  EXPECT_EQ(find_testbed("LU").paper_best_b, 4);
  EXPECT_EQ(find_testbed("STENCIL").paper_best_b, 38);
  EXPECT_THROW(find_testbed("NOPE"), std::invalid_argument);
}

TEST(Mltrain, Structure) {
  const int n = 5;
  const TaskGraph g = make_mltrain(n, 10.0);
  // 4 replicas x (n fwd + n bwd) + n allreduce + 4n updates = 13n.
  EXPECT_EQ(g.num_tasks(), static_cast<std::size_t>(13 * n));
  // Entries are the four f(r, 0) tasks; exits the 4n weight updates.
  EXPECT_EQ(g.entry_tasks().size(), static_cast<std::size_t>(kMltrainReplicas));
  EXPECT_EQ(g.exit_tasks().size(),
            static_cast<std::size_t>(kMltrainReplicas * n));
  // Replica r, layer l: forward task 2(rn + l), backward right after it,
  // and backward costs exactly twice its forward counterpart (the jitter
  // is drawn once per layer and shared).
  for (int r = 0; r < kMltrainReplicas; ++r) {
    for (int l = 0; l < n; ++l) {
      const auto f = static_cast<TaskId>(2 * (r * n + l));
      EXPECT_DOUBLE_EQ(g.weight(f + 1), 2.0 * g.weight(f))
          << "replica " << r << " layer " << l;
    }
  }
  // Every allreduce fans in from all replicas and out to all replicas.
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    if (!g.name(v).empty() && g.name(v)[0] == 'g') {
      EXPECT_EQ(g.in_degree(v), static_cast<std::size_t>(kMltrainReplicas));
      EXPECT_EQ(g.out_degree(v), static_cast<std::size_t>(kMltrainReplicas));
      EXPECT_DOUBLE_EQ(g.weight(v), 0.5);
    }
  }
}

TEST(Mltrain, DeterministicAndJitterBounded) {
  const TaskGraph a = make_mltrain(4);
  const TaskGraph b = make_mltrain(4);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(a.weight(v), b.weight(v));
    // Forward weights: parabola in [1, 3] x jitter in [0.9, 1.1); the
    // backward/update/allreduce tasks stay within 2x of that envelope.
    EXPECT_GE(a.weight(v), 0.25);
    EXPECT_LT(a.weight(v), 2.0 * 3.0 * 1.1);
  }
}

TEST(Microsvc, Structure) {
  const int n = 8;
  const TaskGraph g = make_microsvc(n, 10.0);
  // Root + aggregate + n services + 0..3n backends.
  EXPECT_GE(g.num_tasks(), static_cast<std::size_t>(2 + n));
  EXPECT_LE(g.num_tasks(), static_cast<std::size_t>(2 + 4 * n));
  EXPECT_EQ(g.name(0), "request");
  EXPECT_EQ(g.name(1), "aggregate");
  ASSERT_EQ(g.entry_tasks().size(), 1u);
  ASSERT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(g.entry_tasks()[0], 0u);
  EXPECT_EQ(g.exit_tasks()[0], 1u);
  EXPECT_EQ(g.out_degree(0), static_cast<std::size_t>(n));
  // Heavy-tailed but bounded service times; data = c * w(src).
  for (TaskId v = 2; v < g.num_tasks(); ++v) {
    EXPECT_GE(g.weight(v), 0.5) << g.name(v);
    EXPECT_LE(g.weight(v), 25.0) << g.name(v);
  }
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const EdgeRef& e : g.successors(u)) {
      EXPECT_DOUBLE_EQ(e.data, 10.0 * g.weight(u));
    }
  }
}

TEST(Microsvc, DeterministicPerSize) {
  const TaskGraph a = make_microsvc(6);
  const TaskGraph b = make_microsvc(6);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(a.weight(v), b.weight(v));
    EXPECT_EQ(a.name(v), b.name(v));
  }
}

TEST(GeneratedRegistry, ExposesWorkloadFamiliesAndTraces) {
  const auto generated = generated_testbeds();
  ASSERT_EQ(generated.size(), 2u);
  EXPECT_EQ(generated[0].name, "MLTRAIN");
  EXPECT_EQ(generated[1].name, "MICROSVC");
  EXPECT_EQ(all_testbeds().size(), paper_testbeds().size() + 2u);
  EXPECT_EQ(find_testbed("MLTRAIN").make(2, 10.0).num_tasks(), 26u);
  // trace:<path> resolves lazily: the lookup succeeds, materializing the
  // graph reads the file (and reports a typed error when it is absent).
  EXPECT_THROW(find_testbed("trace:"), std::invalid_argument);
  const TestbedEntry trace = find_testbed("trace:/nonexistent/graph.dot");
  EXPECT_THROW(trace.make(1, 10.0), ImportError);
}

}  // namespace
}  // namespace oneport::testbeds
