// Concurrency stress for the repo's three load-bearing shared-state
// sites: the thread pool (contended submit/drain, exceptions inside
// tasks), the sharded routed-platform cache behind the
// shared_topology_platform shim, and the profiler's per-thread slab
// registry.  (The scheduler service built on top of all three has its
// own battery in tests/service_test.cpp.)
//
// These suites are the dynamic half of the static correctness layer:
// Clang -Wthread-safety proves lock discipline over the
// OP_GUARDED_BY-annotated members at compile time, and this binary runs
// under BOTH sanitizer CI legs (label `pool`: the ASan+UBSan job's full
// battery and the TSan job's pool slice) to catch what annotations
// cannot -- ordering bugs, missed notifications, racy initialization.
// Worker counts are forced >= 4 so the pool really spawns threads even
// on single-core runners (ThreadPool(0) would collapse to inline mode
// there and test nothing).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/topology_cache.hpp"
#include "platform/routing.hpp"
#include "util/profiler.hpp"
#include "util/thread_pool.hpp"

namespace oneport {
namespace {

constexpr unsigned kWorkers = 4;

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolStress, ContendedSubmitDrainCycles) {
  ThreadPool pool(kWorkers);
  ASSERT_EQ(pool.size(), kWorkers);
  std::atomic<std::uint64_t> sum{0};
  // Many fork/join rounds of many tiny jobs: maximal contention on the
  // queue mutex and the pending-counter/idle-condvar handshake.
  constexpr int kRounds = 50;
  constexpr int kJobsPerRound = 64;
  for (int round = 0; round < kRounds; ++round) {
    for (int job = 0; job < kJobsPerRound; ++job) {
      pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kRounds * kJobsPerRound));
}

TEST(ThreadPoolStress, ParallelForWritesEverySlotExactlyOnce) {
  ThreadPool pool(kWorkers);
  constexpr std::size_t kCount = 10'000;
  std::vector<int> hits(kCount, 0);
  pool.parallel_for(kCount, [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kCount));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPoolStress, FirstTaskExceptionRethrownPoolStaysUsable) {
  ThreadPool pool(kWorkers);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 10 == 3) {
        throw std::runtime_error("task " + std::to_string(i) + " failed");
      }
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Every job still ran (a throwing job must not wedge the drain)...
  EXPECT_EQ(ran.load(), 100);
  // ...the error slot was consumed by the rethrow...
  pool.wait_idle();
  // ...and the pool accepts and completes new work afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(32, [&after](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 32);
}

TEST(ThreadPoolStress, ParallelForRethrowsFromWorker) {
  ThreadPool pool(kWorkers);
  EXPECT_THROW(
      pool.parallel_for(1'000,
                        [](std::size_t i) {
                          if (i == 777) throw std::logic_error("boom");
                        }),
      std::logic_error);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(kWorkers);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle(): destruction must still run every queued job before
    // joining (workers drain the queue after stop).
  }
  EXPECT_EQ(ran.load(), 200);
}

// --------------------------------------- shared_topology_platform cache

// Regression shape for the satellite audit of the cache's locking: many
// workers demanding the same small key set concurrently.  The contract
// is that every caller receives the SAME RoutedPlatform instance per
// key -- a racy first build is allowed to construct twice, but
// map::emplace keeps the first insert and hands the winner to every
// caller, losers included.  Run under TSan this also proves the
// build-outside-the-lock window touches no shared mutable state.
// Since the scheduler-service PR the shim hash-routes every call into
// the process-wide ShardedTopologyCache, so this same test now pins the
// contract across shard boundaries too (the key set below spans
// multiple shards).
TEST(TopologyCacheStress, ConcurrentHitsShareOneInstancePerKey) {
  const std::vector<double> cycles{4.0, 5.0, 6.0, 10.0};
  const std::vector<std::string> names{"ring", "star", "mesh2x2",
                                       "mesh2x2:het0.5:swp"};
  constexpr std::size_t kLookups = 256;
  std::vector<std::shared_ptr<const RoutedPlatform>> got(kLookups);
  ThreadPool pool(kWorkers);
  pool.parallel_for(kLookups, [&](std::size_t i) {
    // Distinct seeds multiply the key space; i % 2 seeds collide across
    // workers so both the build path and the hit path stay contended.
    got[i] = analysis::shared_topology_platform(
        names[i % names.size()], cycles, /*link=*/1.0, /*seed=*/i % 2);
  });
  for (std::size_t i = 0; i < kLookups; ++i) {
    ASSERT_NE(got[i], nullptr);
    for (std::size_t j = i + 1; j < kLookups; ++j) {
      if (i % names.size() == j % names.size() && i % 2 == j % 2) {
        EXPECT_EQ(got[i].get(), got[j].get())
            << "cache returned two instances for one key (" << i << ", " << j
            << ")";
      }
    }
  }
}

// The sharded cache singleton under a wide key set: distinct keys land
// in distinct shards (distinct locks), and re-demanding the whole set
// concurrently must neither rebuild nor cross wires between shards.
TEST(TopologyCacheStress, ShardedSingletonHoldsAcrossWideKeySet) {
  analysis::ShardedTopologyCache& cache = analysis::process_topology_cache();
  const std::vector<double> cycles{3.0, 7.0, 9.0};
  const std::vector<std::string> names{"ring", "star", "line", "mesh2x2",
                                       "torus2x2", "fattree1x2"};
  constexpr std::size_t kLookups = 240;
  std::vector<std::shared_ptr<const RoutedPlatform>> got(kLookups);
  ThreadPool pool(kWorkers);
  pool.parallel_for(kLookups, [&](std::size_t i) {
    got[i] = cache.get(names[i % names.size()], cycles, /*link=*/1.0,
                       /*seed=*/7 + i % 4);
  });
  for (std::size_t i = 0; i < kLookups; ++i) {
    ASSERT_NE(got[i], nullptr);
    // Same key (name, seed) => same instance, even when routed through
    // different submitting threads and resolved in different orders.
    const std::size_t peer = i + names.size() * 4;
    if (peer < kLookups) {
      EXPECT_EQ(got[i].get(), got[peer].get())
          << "sharded cache returned two instances for one key (" << i
          << ", " << peer << ")";
    }
  }
}

// ------------------------------------------------ profiler slab registry

TEST(ProfilerStress, ConcurrentBumpsAggregateExactly) {
  if (!prof::compiled_in()) GTEST_SKIP() << "profiler compiled out";
  const prof::Counts before = prof::aggregate();
  {
    prof::ScopedProfiler scoped(true);
    ThreadPool pool(kWorkers);
    constexpr std::size_t kBumps = 20'000;
    pool.parallel_for(kBumps, [](std::size_t) {
      prof::bump(prof::Counter::kOverlayResets);
    });
    const prof::Counts totals = prof::aggregate();
    const auto overlay =
        static_cast<std::size_t>(prof::Counter::kOverlayResets);
    EXPECT_EQ(totals[overlay] - before[overlay], kBumps)
        << "per-thread slabs lost or double-counted bumps under contention";
    // Aggregation while workers are live must also be race-free; TSan
    // checks that here (values are only asserted at quiescence above).
    pool.parallel_for(1'000, [](std::size_t) {
      prof::bump(prof::Counter::kPruneEvals);
      (void)prof::aggregate();
    });
  }
}

}  // namespace
}  // namespace oneport
