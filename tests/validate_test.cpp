// The validators are the library's ground truth, so they get adversarial
// tests: hand-built schedules with exactly one rule violated each, and
// checks that the error messages point at the right rule.
#include <gtest/gtest.h>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/validate.hpp"

namespace oneport {
namespace {

/// Two-task chain u -> v, data 2; two unit-speed processors, link 1.
struct ChainFixture {
  ChainFixture() {
    graph.add_task(1.0);
    graph.add_task(1.0);
    graph.add_edge(0, 1, 2.0);
    graph.finalize();
  }
  TaskGraph graph;
  Platform platform{{1.0, 1.0}, 1.0};
};

TEST(ValidateMacro, AcceptsSameProcChain) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 0, 1.0, 2.0);
  EXPECT_TRUE(validate_macro_dataflow(s, f.graph, f.platform).ok());
  EXPECT_TRUE(validate_one_port(s, f.graph, f.platform).ok());
}

TEST(ValidateMacro, AcceptsCrossProcWithMessage) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 3.0});
  s.place_task(1, 1, 3.0, 4.0);
  EXPECT_TRUE(validate_macro_dataflow(s, f.graph, f.platform).ok());
  EXPECT_TRUE(validate_one_port(s, f.graph, f.platform).ok());
}

TEST(ValidateMacro, MissingPlacement) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("M1"), std::string::npos);
}

TEST(ValidateMacro, WrongDuration) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 2.5);  // w*t = 1
  s.place_task(1, 0, 2.5, 3.5);
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("M2"), std::string::npos);
}

TEST(ValidateMacro, ComputeOverlap) {
  TaskGraph g;
  g.add_task(2.0);
  g.add_task(2.0);
  g.finalize();
  const Platform p({1.0}, 1.0);
  Schedule s(2);
  s.place_task(0, 0, 0.0, 2.0);
  s.place_task(1, 0, 1.0, 3.0);
  const ValidationResult r = validate_macro_dataflow(s, g, p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("M3"), std::string::npos);
}

TEST(ValidateMacro, PrecedenceViolationSameProc) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 0, 0.5, 1.5);  // starts before parent ends
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("M3"), std::string::npos);  // also overlaps
}

TEST(ValidateMacro, MissingMessage) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 1, 3.0, 4.0);
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("found none"), std::string::npos);
}

TEST(ValidateMacro, MessageTooShort) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 2.0});  // needs duration 2
  s.place_task(1, 1, 2.0, 3.0);
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("duration"), std::string::npos);
}

TEST(ValidateMacro, MessageBeforeSourceFinishes) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 0.5, 2.5});
  s.place_task(1, 1, 2.5, 3.5);
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("before source finishes"), std::string::npos);
}

TEST(ValidateMacro, SuccessorBeforeMessageArrives) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 3.0});
  s.place_task(1, 1, 2.0, 3.0);
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("before the last hop arrives"), std::string::npos);
}

TEST(ValidateMacro, SpuriousMessages) {
  ChainFixture f;
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 0, 1.0, 2.0);
  s.add_comm({0, 1, 0, 1, 1.0, 3.0});  // same-proc edge with a message
  const ValidationResult r = validate_macro_dataflow(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("M5"), std::string::npos);
}

TEST(ValidateMacro, MessageOnWrongProcessors) {
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const Platform p({1.0, 1.0, 1.0}, 1.0);
  Schedule s(2);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 2, 1, 1.0, 2.0});  // claims to leave from P2
  s.place_task(1, 1, 2.0, 3.0);
  const ValidationResult r = validate_macro_dataflow(s, g, p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("hop"), std::string::npos);
}

// ------------------------------------------------------------- one-port

/// Fork 0 -> {1, 2} on three processors; both messages leave P0.
struct ForkFixture {
  ForkFixture() {
    graph.add_task(1.0);
    graph.add_task(1.0);
    graph.add_task(1.0);
    graph.add_edge(0, 1, 2.0);
    graph.add_edge(0, 2, 2.0);
    graph.finalize();
  }
  TaskGraph graph;
  Platform platform{{1.0, 1.0, 1.0}, 1.0};
};

TEST(ValidateOnePort, RejectsOverlappingSends) {
  ForkFixture f;
  Schedule s(3);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 3.0});
  s.add_comm({0, 2, 0, 2, 1.0, 3.0});  // same send port, same interval
  s.place_task(1, 1, 3.0, 4.0);
  s.place_task(2, 2, 3.0, 4.0);
  // The macro validator is fine with it ...
  EXPECT_TRUE(validate_macro_dataflow(s, f.graph, f.platform).ok());
  // ... the one-port validator is not.
  const ValidationResult r = validate_one_port(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("O1"), std::string::npos);
}

TEST(ValidateOnePort, AcceptsSerializedSends) {
  ForkFixture f;
  Schedule s(3);
  s.place_task(0, 0, 0.0, 1.0);
  s.add_comm({0, 1, 0, 1, 1.0, 3.0});
  s.add_comm({0, 2, 0, 2, 3.0, 5.0});
  s.place_task(1, 1, 3.0, 4.0);
  s.place_task(2, 2, 5.0, 6.0);
  EXPECT_TRUE(validate_one_port(s, f.graph, f.platform).ok());
}

TEST(ValidateOnePort, RejectsOverlappingReceives) {
  // Join {0, 1} -> 2: both messages arrive at task 2's processor.
  TaskGraph g;
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_task(1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  const Platform p({1.0, 1.0, 1.0}, 1.0);
  Schedule s(3);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 1, 0.0, 1.0);
  s.add_comm({0, 2, 0, 2, 1.0, 3.0});
  s.add_comm({1, 2, 1, 2, 1.0, 3.0});  // same receive port
  s.place_task(2, 2, 3.0, 4.0);
  const ValidationResult r = validate_one_port(s, g, p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("O2"), std::string::npos);
}

TEST(ValidateOnePort, SendAndReceiveMayOverlapOnOneProcessor) {
  // 0 on P0 sends to 2 on P1 while P0 receives 1's output from P2:
  // bi-directional ports are independent.
  TaskGraph g;
  g.add_task(1.0);  // 0 on P0
  g.add_task(1.0);  // 1 on P2
  g.add_task(1.0);  // 2 on P1, child of 0
  g.add_task(1.0);  // 3 on P0, child of 1
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 3, 2.0);
  g.finalize();
  const Platform p({1.0, 1.0, 1.0}, 1.0);
  Schedule s(4);
  s.place_task(0, 0, 0.0, 1.0);
  s.place_task(1, 2, 0.0, 1.0);
  s.add_comm({0, 2, 0, 1, 1.0, 3.0});  // P0 sending
  s.add_comm({1, 3, 2, 0, 1.0, 3.0});  // P0 receiving, same interval
  s.place_task(2, 1, 3.0, 4.0);
  s.place_task(3, 0, 3.0, 4.0);
  EXPECT_TRUE(validate_one_port(s, g, p).ok());
}

TEST(ValidateOnePort, DegenerateMessagesNeverConflict) {
  ForkFixture f;
  // Data 0 edges: rebuild the graph with zero volumes.
  TaskGraph g;
  g.add_task(0.0);
  g.add_task(0.0);
  g.add_task(0.0);
  g.add_edge(0, 1, 0.0);
  g.add_edge(0, 2, 0.0);
  g.finalize();
  Schedule s(3);
  s.place_task(0, 0, 0.0, 0.0);
  s.add_comm({0, 1, 0, 1, 0.0, 0.0});
  s.add_comm({0, 2, 0, 2, 0.0, 0.0});
  s.place_task(1, 1, 0.0, 0.0);
  s.place_task(2, 2, 0.0, 0.0);
  EXPECT_TRUE(validate_one_port(s, g, f.platform).ok());
}

TEST(Validate, CollectsMultipleErrors) {
  ForkFixture f;
  Schedule s(3);
  s.place_task(0, 0, 0.0, 2.0);  // M2: wrong duration
  s.place_task(1, 1, 0.0, 1.0);  // M4: no message, starts too early
  s.place_task(2, 2, 0.0, 1.0);  // M4 again
  const ValidationResult r = validate_one_port(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.errors.size(), 3u);
}

TEST(Validate, SizeMismatchIsReported) {
  ForkFixture f;
  const Schedule s(1);
  const ValidationResult r = validate_one_port(s, f.graph, f.platform);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("graph has"), std::string::npos);
}

}  // namespace
}  // namespace oneport
