#!/usr/bin/env python3
"""Fail on dead intra-repo links in markdown files (the CI docs job).

Usage: check_markdown_links.py FILE.md [FILE.md ...]

Checks every inline markdown link [text](target) whose target is a
repo-relative or file path (external schemes -- http/https/mailto -- and
pure #anchors are skipped).  A path target must exist relative to the
linking file's directory (or the repo root as a fallback); a trailing
#anchor is stripped before the check.  Exit code 1 lists every dead link
as file:line: target.
"""
import os
import re
import sys

# Inline links only; reference-style links are not used in this repo.
# [text](target) with no nested parens in the target.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, mailto:, ...
# Repo root derived from this script's location (tools/..), so the
# repo-root fallback for link targets works from any working directory.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def check_file(path: str) -> list[str]:
    errors = []
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as handle:
        in_code_fence = False
        for lineno, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for match in LINK.finditer(line):
                target = match.group(1)
                if EXTERNAL.match(target) or target.startswith("#"):
                    continue
                # Badge/workflow URLs written relative to the GitHub UI
                # ("../../actions/...") resolve outside the checkout.
                if target.startswith("../../actions/"):
                    continue
                plain = target.split("#", 1)[0]
                if not plain:
                    continue
                candidates = [os.path.normpath(os.path.join(base, plain)),
                              os.path.normpath(os.path.join(REPO_ROOT,
                                                            plain))]
                if not any(os.path.exists(c) for c in candidates):
                    errors.append(f"{path}:{lineno}: dead link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error)
    if all_errors:
        print(f"{len(all_errors)} dead intra-repo link(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(argv) - 1} file(s), no dead intra-repo links")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
