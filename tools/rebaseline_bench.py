#!/usr/bin/env python3
"""Refresh bench/baseline.json from a CI bench artifact.

Usage:
    rebaseline_bench.py BENCH_<sha>.json [--baseline=bench/baseline.json]
        [--prefixes=routed/,scale/,timeline/,reschedule/,service/] [--check]

The bench-trajectory CI job uploads one ``BENCH_<sha>.json`` google
benchmark artifact per commit.  This tool rewrites the committed
baseline from such an artifact so the trajectory gate keeps comparing
against recent reality instead of an ever-staler snapshot:

  * aggregate rows (mean/median/stddev of ``--benchmark_repetitions``
    runs) are dropped -- the gate only reads plain iteration rows and
    keeps the per-name minimum, so the baseline stores exactly what the
    gate consumes;
  * rows not matching ``--prefixes`` are dropped (figure benches and
    other untracked executables never belong in the baseline);
  * the context block is kept verbatim, so a future reader can see what
    machine the baseline came from;
  * the output is stable-sorted by name, so rebaselining commits diff
    minimally.

``--check`` validates without writing: exits non-zero when the artifact
is missing a benchmark the current baseline tracks (a rename that must
be handled by hand), so the scheduled workflow fails loudly instead of
silently shrinking the gate.
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def filtered_rows(doc, prefixes):
    rows = []
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name", "")
        if not any(name.startswith(p) for p in prefixes):
            continue
        rows.append(entry)
    rows.sort(key=lambda e: (e.get("name", ""), e.get("repetition_index", 0)))
    return rows


def main(argv):
    baseline_path = "bench/baseline.json"
    prefixes = ["routed/", "scale/", "timeline/", "reschedule/", "service/"]
    check_only = False
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline_path = arg.split("=", 1)[1]
        elif arg.startswith("--prefixes="):
            prefixes = [p for p in arg.split("=", 1)[1].split(",") if p]
        elif arg == "--check":
            check_only = True
        else:
            positional.append(arg)
    if len(positional) != 1:
        sys.exit(__doc__)
    artifact_path = positional[0]

    artifact = load(artifact_path)
    rows = filtered_rows(artifact, prefixes)
    if not rows:
        sys.exit(f"no benchmarks matching {prefixes} in {artifact_path}")
    new_names = {e["name"] for e in rows}

    try:
        old_names = {
            e["name"] for e in filtered_rows(load(baseline_path), prefixes)
        }
    except FileNotFoundError:
        old_names = set()

    lost = sorted(old_names - new_names)
    gained = sorted(new_names - old_names)
    print(f"{len(new_names)} benchmark names in artifact "
          f"({len(rows)} rows after dropping aggregates)")
    for name in gained:
        print(f"  new: {name}")
    if lost:
        print("FAIL: artifact is missing baseline benchmarks (renames must "
              "be rebaselined by hand): " + ", ".join(lost))
        return 1
    if check_only:
        print("OK: artifact covers every tracked benchmark")
        return 0

    out = {"context": artifact.get("context", {}), "benchmarks": rows}
    with open(baseline_path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
