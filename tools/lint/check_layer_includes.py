#!/usr/bin/env python3
"""Architecture lint: enforce the src/ layer DAG on intra-repo includes.

Reads tools/lint/layer_manifest.json (layer -> direct dependencies),
closes the relation transitively, then scans every C++ file under src/
for `#include "layer/..."` directives.  A file in layer L may include
only L itself and L's (transitive) dependencies; anything else is an
upward or sideways edge that breaks the architecture documented in
docs/ARCHITECTURE.md, and fails the build here instead of surfacing as
an unbuildable refactor three PRs later.

Usage:
  tools/lint/check_layer_includes.py              # lint the repo
  tools/lint/check_layer_includes.py --self-test  # prove the lint can fail

The self-test materializes a synthetic violation (a util/ file including
core/) in a temp tree and asserts this script reports it -- CI runs it
so the gate cannot rot into a green no-op.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}


def load_manifest(path: pathlib.Path) -> tuple[str, dict[str, set[str]]]:
    data = json.loads(path.read_text())
    layers = {name: set(deps) for name, deps in data["layers"].items()}
    for name, deps in layers.items():
        unknown = deps - layers.keys()
        if unknown:
            raise SystemExit(
                f"manifest error: layer '{name}' depends on unknown "
                f"layer(s) {sorted(unknown)}"
            )
    # Transitive closure: a layer sees its dependencies' dependencies.
    closed: dict[str, set[str]] = {}

    def close(name: str, stack: tuple[str, ...] = ()) -> set[str]:
        if name in stack:
            cycle = " -> ".join(stack + (name,))
            raise SystemExit(f"manifest error: dependency cycle {cycle}")
        if name not in closed:
            deps = set(layers[name])
            for dep in layers[name]:
                deps |= close(dep, stack + (name,))
            closed[name] = deps
        return closed[name]

    for name in layers:
        close(name)
    return data["root"], closed


def lint_tree(repo: pathlib.Path) -> list[str]:
    root_name, allowed = load_manifest(repo / "tools/lint/layer_manifest.json")
    root = repo / root_name
    errors: list[str] = []
    for path in sorted(root.rglob("*")):
        if path.suffix not in SUFFIXES:
            continue
        rel = path.relative_to(root)
        layer = rel.parts[0]
        if layer not in allowed:
            errors.append(f"{root_name}/{rel}: not in a manifest layer")
            continue
        for lineno, line in enumerate(
            path.read_text(errors="replace").splitlines(), start=1
        ):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            target = match.group(1).split("/")[0]
            if target not in allowed:
                continue  # not an intra-repo layer include (e.g. gtest)
            if target == layer or target in allowed[layer]:
                continue
            errors.append(
                f"{root_name}/{rel}:{lineno}: layer '{layer}' may not "
                f"include '{match.group(1)}' (allowed: "
                f"{', '.join(sorted(allowed[layer] | {layer}))})"
            )
    return errors


def self_test() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        repo = pathlib.Path(tmp)
        (repo / "tools/lint").mkdir(parents=True)
        (repo / "tools/lint/layer_manifest.json").write_text(
            json.dumps(
                {"root": "src", "layers": {"util": [], "core": ["util"]}}
            )
        )
        (repo / "src/util").mkdir(parents=True)
        (repo / "src/core").mkdir(parents=True)
        # Legal tree first: core -> util is allowed.
        (repo / "src/core/a.cpp").write_text('#include "util/b.hpp"\n')
        (repo / "src/util/b.hpp").write_text("#pragma once\n")
        if lint_tree(repo):
            print("self-test FAILED: clean tree reported errors")
            return 1
        # Inject the violation: util reaching up into core.
        (repo / "src/util/b.hpp").write_text(
            '#pragma once\n#include "core/a.hpp"\n'
        )
        errors = lint_tree(repo)
        if not errors or "util" not in errors[0]:
            print("self-test FAILED: injected upward include not caught")
            return 1
    print("check_layer_includes self-test OK (injected violation caught)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    errors = lint_tree(args.repo)
    for error in errors:
        print(error)
    if errors:
        print(f"check_layer_includes: {len(errors)} violation(s)")
        return 1
    print("check_layer_includes: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
