#!/usr/bin/env python3
"""Env-knob lint: every ONEPORT_* getenv goes through the central registry.

Three checks, all driven by the catalog table in src/util/env_knobs.cpp
(the single getenv call site the first check enforces):

  1. getenv confinement -- no file under src/, tests/, bench/ or
     examples/ may call getenv except src/util/env_knobs.cpp.  New knobs
     are added to the registry's Knob enum + catalog, never read ad hoc.
  2. catalog <-> docs/KNOBS.md -- the doc must have one table row per
     registered knob (name, default and consumer all present on the
     row), and must not document knobs the registry doesn't have.
  3. catalog <-> enum -- env_knobs.hpp's Knob enum and the .cpp catalog
     must be the same size (a new enum entry without a catalog row would
     otherwise read a neighbours' metadata).

Usage:
  tools/lint/check_env_knobs.py              # lint the repo
  tools/lint/check_env_knobs.py --self-test  # prove the lint can fail
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import sys
import tempfile

GETENV_RE = re.compile(r"\bgetenv\s*\(")
CATALOG_ROW_RE = re.compile(
    r'^\s*\{"(ONEPORT_[A-Z_]+)",\s*"([^"]*)",\s*"([^"]+)",\s*"([^"]*)"\},'
)
ENUM_ENTRY_RE = re.compile(r"^\s*k[A-Z]\w*\s*[,=]")
SCAN_DIRS = ("src", "tests", "bench", "examples")
SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}
REGISTRY_CPP = "src/util/env_knobs.cpp"
REGISTRY_HPP = "src/util/env_knobs.hpp"
KNOBS_DOC = "docs/KNOBS.md"


def parse_catalog(repo: pathlib.Path) -> dict[str, tuple[str, str]]:
    """Knob name -> (default, consumer) parsed from the rigid table."""
    catalog: dict[str, tuple[str, str]] = {}
    for line in (repo / REGISTRY_CPP).read_text().splitlines():
        match = CATALOG_ROW_RE.match(line)
        if match:
            catalog[match.group(1)] = (match.group(2), match.group(3))
    return catalog


def count_enum_entries(repo: pathlib.Path) -> int:
    text = (repo / REGISTRY_HPP).read_text()
    enum_match = re.search(r"enum class Knob[^{]*\{(.*?)\};", text, re.S)
    if not enum_match:
        raise SystemExit(f"{REGISTRY_HPP}: Knob enum not found")
    entries = [
        line
        for line in enum_match.group(1).splitlines()
        if ENUM_ENTRY_RE.match(line)
    ]
    # kCount is the sentinel, not a knob.
    return sum(1 for e in entries if "kCount" not in e)


def lint_tree(repo: pathlib.Path) -> list[str]:
    errors: list[str] = []

    # 1. getenv confinement.
    for dirname in SCAN_DIRS:
        base = repo / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            rel = path.relative_to(repo)
            if str(rel) == REGISTRY_CPP:
                continue
            for lineno, line in enumerate(
                path.read_text(errors="replace").splitlines(), start=1
            ):
                if GETENV_RE.search(line):
                    errors.append(
                        f"{rel}:{lineno}: getenv outside the registry -- "
                        f"route this knob through env::Knob "
                        f"({REGISTRY_CPP} is the only allowed call site)"
                    )

    # 2/3. catalog sanity + docs cross-check.
    catalog = parse_catalog(repo)
    if not catalog:
        errors.append(f"{REGISTRY_CPP}: could not parse any catalog row "
                      f"(table format drifted?)")
        return errors
    enum_count = count_enum_entries(repo)
    if enum_count != len(catalog):
        errors.append(
            f"{REGISTRY_HPP}: Knob enum has {enum_count} entries but the "
            f"catalog has {len(catalog)} rows -- keep them in sync"
        )

    doc_path = repo / KNOBS_DOC
    if not doc_path.is_file():
        errors.append(f"{KNOBS_DOC}: missing (documents the knob catalog)")
        return errors
    doc_lines = doc_path.read_text().splitlines()
    documented: set[str] = set()
    for name in re.findall(r"`(ONEPORT_[A-Z_]+)`", doc_path.read_text()):
        documented.add(name)
    for name, (default, consumer) in sorted(catalog.items()):
        rows = [l for l in doc_lines if f"`{name}`" in l and l.startswith("|")]
        if not rows:
            errors.append(f"{KNOBS_DOC}: no table row for {name}")
            continue
        if not any(default in row and consumer in row for row in rows):
            errors.append(
                f"{KNOBS_DOC}: row for {name} must state default "
                f"'{default}' and consumer '{consumer}' (regenerate from "
                f"the catalog in {REGISTRY_CPP})"
            )
    ghost = {
        name
        for name in documented
        if name not in catalog
        and any(f"`{name}`" in l and l.startswith("|") for l in doc_lines)
    }
    for name in sorted(ghost):
        errors.append(
            f"{KNOBS_DOC}: documents {name} which is not in the registry "
            f"catalog ({REGISTRY_CPP})"
        )
    return errors


def self_test(repo: pathlib.Path) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        fake = pathlib.Path(tmp)
        for rel in (REGISTRY_CPP, REGISTRY_HPP, KNOBS_DOC):
            (fake / rel).parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(repo / rel, fake / rel)
        if lint_tree(fake):
            print("self-test FAILED: clean tree reported errors")
            return 1
        # Violation A: a stray getenv outside the registry.
        (fake / "src/core").mkdir(parents=True)
        (fake / "src/core/sneaky.cpp").write_text(
            '#include <cstdlib>\n'
            'bool on() { return std::getenv("ONEPORT_SNEAKY") != nullptr; }\n'
        )
        errors = lint_tree(fake)
        if not any("sneaky.cpp" in e for e in errors):
            print("self-test FAILED: stray getenv not caught")
            return 1
        (fake / "src/core/sneaky.cpp").unlink()
        # Violation B: a registered knob vanishes from the doc.
        doc = fake / KNOBS_DOC
        doc.write_text(
            "\n".join(
                l
                for l in doc.read_text().splitlines()
                if "ONEPORT_PROFILE" not in l
            )
        )
        errors = lint_tree(fake)
        if not any("ONEPORT_PROFILE" in e for e in errors):
            print("self-test FAILED: undocumented knob not caught")
            return 1
    print("check_env_knobs self-test OK (both injected violations caught)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test(args.repo)
    errors = lint_tree(args.repo)
    for error in errors:
        print(error)
    if errors:
        print(f"check_env_knobs: {len(errors)} violation(s)")
        return 1
    print(f"check_env_knobs: OK ({len(parse_catalog(args.repo))} knobs, "
          f"getenv confined to {REGISTRY_CPP})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
