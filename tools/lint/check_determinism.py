#!/usr/bin/env python3
"""Determinism lint for the scheduling kernel (src/core + src/sched).

Schedules must be bit-identical across timeline implementations, graph
paths, worker counts and reruns -- the differential pins in
tests/property_sweep_test.cpp and CI's extended-sweep job depend on it.
This lint statically rejects the constructs that silently break that
property inside the kernel layers:

  * C PRNGs and nondeterministic seeds: rand(), srand(),
    std::random_device (seeded determinism lives in util/rng.hpp);
  * wall-clock reads: std::chrono::system_clock, time(), gettimeofday,
    clock() -- schedule *values* may never depend on when they were
    computed (steady_clock is fine for profiling, which never feeds
    back into decisions);
  * address-keyed ordered containers: std::map/std::set keyed on a
    pointer iterate in allocation order, which varies run to run.

A line may opt out with `// NOLINT(oneport-determinism)` plus a reason;
there are currently zero opt-outs in the tree.

Usage:
  tools/lint/check_determinism.py              # lint the repo
  tools/lint/check_determinism.py --self-test  # prove the lint can fail
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

SCAN_DIRS = ("src/core", "src/sched")
SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}
SUPPRESS = "NOLINT(oneport-determinism)"

RULES: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("),
     "C PRNG (use the seeded SplitMix64 in util/rng.hpp)"),
    (re.compile(r"\bstd::random_device\b"),
     "nondeterministic seed source (use an explicit seed)"),
    (re.compile(r"\bsystem_clock\b"),
     "wall-clock read (schedule values may not depend on real time)"),
    (re.compile(r"\bgettimeofday\s*\("),
     "wall-clock read (schedule values may not depend on real time)"),
    (re.compile(r"\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock read (schedule values may not depend on real time)"),
    (re.compile(r"\b(?:std::)?clock\s*\(\s*\)"),
     "process-clock read (timing may not steer scheduling decisions)"),
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<\s*[\w:]+(?:\s+const)?"
                r"\s*\*"),
     "pointer-keyed ordered container (iteration order = allocation "
     "order; key on an index or id instead)"),
]


def lint_tree(repo: pathlib.Path) -> list[str]:
    errors: list[str] = []
    for dirname in SCAN_DIRS:
        base = repo / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            rel = path.relative_to(repo)
            for lineno, line in enumerate(
                path.read_text(errors="replace").splitlines(), start=1
            ):
                if SUPPRESS in line:
                    continue
                code = line.split("//", 1)[0]  # ignore pure comments
                for pattern, why in RULES:
                    if pattern.search(code):
                        errors.append(f"{rel}:{lineno}: {why}\n    {line.strip()}")
    return errors


def self_test() -> int:
    violations = {
        "rand.cpp": "int f() { return rand() % 7; }\n",
        "wall.cpp": "#include <chrono>\n"
                    "auto f() { return std::chrono::system_clock::now(); }\n",
        "ptrmap.cpp": "#include <map>\nstruct T;\n"
                      "std::map<T*, int> order;\n",
    }
    with tempfile.TemporaryDirectory() as tmp:
        repo = pathlib.Path(tmp)
        core = repo / "src/core"
        core.mkdir(parents=True)
        (core / "ok.cpp").write_text(
            "// rand() in a comment is fine\n"
            "#include <chrono>\n"
            "auto t() { return std::chrono::steady_clock::now(); }\n"
            "int suppressed() { return rand(); }"
            "  // NOLINT(oneport-determinism) self-test opt-out\n"
        )
        if lint_tree(repo):
            print("self-test FAILED: clean tree reported errors")
            return 1
        for name, text in violations.items():
            (core / name).write_text(text)
        errors = lint_tree(repo)
        missing = [n for n in violations if not any(n in e for e in errors)]
        if missing:
            print(f"self-test FAILED: injected violation(s) not caught: "
                  f"{missing}")
            return 1
    print("check_determinism self-test OK (all injected violations caught)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    errors = lint_tree(args.repo)
    for error in errors:
        print(error)
    if errors:
        print(f"check_determinism: {len(errors)} violation(s)")
        return 1
    print("check_determinism: OK (src/core + src/sched clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
