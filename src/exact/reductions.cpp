#include "exact/reductions.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "exact/two_partition.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace oneport::exact {

namespace {

struct PartitionStats {
  std::int64_t sum = 0;   // 2S
  std::int64_t max = 0;   // M
  std::int64_t min = 0;   // m
};

PartitionStats stats_of(const std::vector<std::int64_t>& values) {
  OP_REQUIRE(!values.empty(), "2-PARTITION instance must be non-empty");
  PartitionStats s;
  s.min = values.front();
  for (const std::int64_t a : values) {
    OP_REQUIRE(a > 0, "2-PARTITION values must be positive");
    s.sum += a;
    s.max = std::max(s.max, a);
    s.min = std::min(s.min, a);
  }
  return s;
}

}  // namespace

ForkSchedInstance make_fork_sched_instance(
    const std::vector<std::int64_t>& values) {
  const PartitionStats s = stats_of(values);
  const std::size_t n = values.size();

  // NOTE: shifting each value by a constant (to push the child weights
  // into the [w_min, 2 w_min] window the hardness argument needs) makes
  // subset sums depend on subset *cardinality*, so a naive shift encodes
  // balanced 2-PARTITION, not the plain problem: {1, 1, 2} splits as
  // {1, 1} | {2} but no shifted subset hits half the shifted total.  We
  // therefore pad first: with K > sum(a_i), the 2n-element instance
  // {a_i + K} u {K x n} has a half-total subset iff the original has an
  // equal-sum split (the K-multiples force exactly n elements, and the
  // residue must then be sum/2), and all padded values already lie in
  // [K, 2K).  Scaled by 10 they become the fork's 2n value children.
  const std::int64_t pad = s.sum + 1;  // K

  ForkSchedInstance inst;
  inst.fork.parent_weight = 0.0;  // w_0 = 0
  inst.fork.cycle_time = 1.0;
  inst.fork.link = 1.0;
  inst.w_min = 10.0 * static_cast<double>(pad);

  double half_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 10.0 * static_cast<double>(pad + values[i]);
    inst.fork.child_weights.push_back(w);
    half_sum += w;
  }
  for (std::size_t i = 0; i < n; ++i) {  // the n balancing dummies
    inst.fork.child_weights.push_back(inst.w_min);
    half_sum += inst.w_min;
  }
  half_sum /= 2.0;
  for (int extra = 0; extra < 3; ++extra) {
    inst.fork.child_weights.push_back(inst.w_min);
  }
  // d_i = w_i for every child.
  inst.fork.child_data = inst.fork.child_weights;
  inst.time_bound = half_sum + 2.0 * inst.w_min;
  return inst;
}

RealizedFork realize_theorem1_schedule(
    const std::vector<std::int64_t>& values,
    const std::vector<std::size_t>& half_indices) {
  const ForkSchedInstance inst = make_fork_sched_instance(values);
  const std::size_t n = values.size();

  // P0 keeps v0, the A1 children, enough balancing dummies to complete a
  // half of the padded instance (n - |A1| of them), and the first two
  // w_min children; every other child gets its own processor, messages by
  // increasing index (so the last message goes to the third w_min child,
  // as in the proof).
  std::vector<bool> local(2 * n + 3, false);
  for (const std::size_t i : half_indices) {
    OP_REQUIRE(i < n, "certificate index out of range");
    OP_REQUIRE(!local[i], "certificate index repeated");
    local[i] = true;
  }
  for (std::size_t i = n; i < 2 * n - half_indices.size(); ++i) {
    local[i] = true;
  }
  local[2 * n] = local[2 * n + 1] = true;

  ForkOptimum plan;
  for (std::size_t i = 0; i < 2 * n + 3; ++i) {
    if (local[i]) {
      plan.local_children.push_back(i);
    } else {
      plan.send_order.push_back(i);
    }
  }
  RealizedFork realized = realize_fork_schedule(inst.fork, plan);
  plan.makespan = realized.schedule.makespan();
  return realized;
}

CommSchedInstance make_comm_sched_instance(
    const std::vector<std::int64_t>& values) {
  const PartitionStats st = stats_of(values);
  const std::size_t n = values.size();
  const double s = static_cast<double>(st.sum) / 2.0;

  TaskGraph g;
  const TaskId v0 = g.add_task(0.0, "v0");
  for (std::size_t i = 1; i <= 3 * n; ++i) {
    g.add_task(0.0, indexed_name("v", i));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    g.add_edge(v0, static_cast<TaskId>(i),
               static_cast<double>(values[i - 1]));
    g.add_edge(static_cast<TaskId>(2 * n + i), static_cast<TaskId>(n + i), s);
  }
  g.finalize();

  const int procs = static_cast<int>(2 * n + 1);
  std::vector<ProcId> alloc(3 * n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    alloc[i] = static_cast<ProcId>(i);          // v_i on P_i
    alloc[n + i] = static_cast<ProcId>(i);      // v_{n+i} on P_i
    alloc[2 * n + i] = static_cast<ProcId>(n + i);  // v_{2n+i} on P_{n+i}
  }

  // NOTE: the proceedings text prints the bound as "T = S", but P0's send
  // port alone needs sum(a_i) = 2S time, so no schedule can finish before
  // 2S; the construction (and its iff argument, which pivots on whether
  // P0 is mid-emission at time S, the midpoint of its 2S-long send
  // sequence) only works with T = 2S.  We use 2S and verify the iff
  // property exhaustively in the tests.
  return {std::move(g), make_homogeneous_platform(procs, 1.0, 1.0),
          std::move(alloc), 2.0 * s};
}

Schedule realize_theorem2_schedule(const CommSchedInstance& instance,
                                   const std::vector<std::int64_t>& values,
                                   const std::vector<std::size_t>& half_indices) {
  const std::size_t n = values.size();
  OP_REQUIRE(instance.graph.num_tasks() == 3 * n + 1,
             "instance/values arity mismatch");
  const double s = instance.time_bound / 2.0;

  std::vector<bool> in_a1(n, false);
  for (const std::size_t i : half_indices) {
    OP_REQUIRE(i < n, "certificate index out of range");
    in_a1[i] = true;
  }

  Schedule sched(instance.graph.num_tasks());
  sched.place_task(0, instance.allocation[0], 0.0, 0.0);  // v0, w = 0

  // Fork messages: A1 children back-to-back from 0, A2 children from S,
  // both by increasing index.
  double cursor_a1 = 0.0;
  double cursor_a2 = s;
  std::vector<double> fork_start(n), fork_end(n);
  for (std::size_t i = 0; i < n; ++i) {
    double& cursor = in_a1[i] ? cursor_a1 : cursor_a2;
    fork_start[i] = cursor;
    cursor += static_cast<double>(values[i]);
    fork_end[i] = cursor;
  }
  OP_ASSERT(cursor_a1 <= s + 1e-9 && cursor_a2 <= 2.0 * s + 1e-9,
            "certificate is not a valid half");

  for (std::size_t i = 0; i < n; ++i) {
    const auto vi = static_cast<TaskId>(i + 1);
    const auto vni = static_cast<TaskId>(n + i + 1);
    const auto v2ni = static_cast<TaskId>(2 * n + i + 1);
    const ProcId pi = instance.allocation[vi];
    const ProcId pni = instance.allocation[v2ni];

    sched.add_comm({0, vi, instance.allocation[0], pi, fork_start[i],
                    fork_end[i]});
    sched.place_task(vi, pi, fork_end[i], fork_end[i]);

    // Pair message v_{2n+i} -> v_{n+i}: before the fork message for A2
    // children (their fork message only arrives after S), after it for A1
    // children.
    const double pair_start = in_a1[i] ? fork_end[i] : 0.0;
    sched.place_task(v2ni, pni, 0.0, 0.0);
    sched.add_comm({v2ni, vni, pni, pi, pair_start, pair_start + s});
    sched.place_task(vni, pi, pair_start + s, pair_start + s);
  }
  return sched;
}

double solve_comm_sched_optimal(const CommSchedInstance& instance,
                                const std::vector<std::int64_t>& values) {
  const std::size_t n = values.size();
  OP_REQUIRE(n >= 1 && n <= 9, "permutation enumeration supports 1..9 values");
  const double s = instance.time_bound / 2.0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  double best = -1.0;
  do {
    // P0 emits the fork messages back-to-back in `order` (idle time never
    // helps), then each P_i fits its S-long pair message either entirely
    // before its fork message or right after it.
    double cursor = 0.0;
    double makespan = 0.0;
    for (const std::size_t i : order) {
      const double start = cursor;
      cursor += static_cast<double>(values[i]);
      const double pair_finish =
          start >= s - 1e-12 ? std::max(cursor, s) : cursor + s;
      makespan = std::max(makespan, std::max(cursor, pair_finish));
    }
    if (best < 0.0 || makespan < best) best = makespan;
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace oneport::exact
