#include "exact/fork_optimal.hpp"

#include <algorithm>
#include <numeric>

#include "testbeds/testbeds.hpp"
#include "util/error.hpp"

namespace oneport::exact {

TaskGraph fork_instance_graph(const ForkInstance& instance) {
  return testbeds::make_fork(instance.parent_weight, instance.child_weights,
                             instance.child_data);
}

ForkOptimum solve_fork_one_port_optimal(const ForkInstance& instance) {
  const std::size_t n = instance.child_weights.size();
  OP_REQUIRE(n == instance.child_data.size(), "weights/data arity mismatch");
  OP_REQUIRE(n >= 1 && n <= 24, "subset enumeration supports 1..24 children");
  OP_REQUIRE(instance.cycle_time > 0.0 && instance.link >= 0.0,
             "invalid platform parameters");
  const double t = instance.cycle_time;
  const double l = instance.link;

  // Children sorted by decreasing weight: the optimal send order for any
  // remote set is this order restricted to the set.
  std::vector<std::size_t> by_weight(n);
  std::iota(by_weight.begin(), by_weight.end(), std::size_t{0});
  std::sort(by_weight.begin(), by_weight.end(),
            [&](std::size_t a, std::size_t b) {
              if (instance.child_weights[a] != instance.child_weights[b])
                return instance.child_weights[a] > instance.child_weights[b];
              return a < b;
            });

  const double parent_finish = instance.parent_weight * t;
  ForkOptimum best;
  best.makespan = -1.0;

  // Bit b of `mask` set <=> by_weight[b] stays local on P0.
  const std::size_t num_masks = std::size_t{1} << n;
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    double local_work = 0.0;
    double makespan = parent_finish;
    double send_cursor = parent_finish;
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t child = by_weight[b];
      if (mask & (std::size_t{1} << b)) {
        local_work += instance.child_weights[child] * t;
      } else {
        send_cursor += instance.child_data[child] * l;
        makespan = std::max(makespan,
                            send_cursor + instance.child_weights[child] * t);
      }
    }
    makespan = std::max(makespan, parent_finish + local_work);
    if (best.makespan < 0.0 || makespan < best.makespan - 1e-12) {
      best.makespan = makespan;
      best.local_children.clear();
      best.send_order.clear();
      for (std::size_t b = 0; b < n; ++b) {
        const std::size_t child = by_weight[b];
        if (mask & (std::size_t{1} << b)) {
          best.local_children.push_back(child);
        } else {
          best.send_order.push_back(child);
        }
      }
    }
  }
  std::sort(best.local_children.begin(), best.local_children.end());
  return best;
}

RealizedFork realize_fork_schedule(const ForkInstance& instance,
                                   const ForkOptimum& optimum) {
  const std::size_t n = instance.child_weights.size();
  OP_REQUIRE(optimum.local_children.size() + optimum.send_order.size() == n,
             "optimum does not cover all children");
  const double t = instance.cycle_time;
  const double l = instance.link;
  const int procs = 1 + static_cast<int>(optimum.send_order.size());

  RealizedFork out{
      fork_instance_graph(instance),
      make_homogeneous_platform(std::max(procs, 2), instance.link, t),
      Schedule(n + 1)};

  const double parent_finish = instance.parent_weight * t;
  out.schedule.place_task(0, 0, 0.0, parent_finish);

  double local_cursor = parent_finish;
  for (const std::size_t child : optimum.local_children) {
    const double w = instance.child_weights[child] * t;
    out.schedule.place_task(static_cast<TaskId>(child + 1), 0, local_cursor,
                            local_cursor + w);
    local_cursor += w;
  }

  double send_cursor = parent_finish;
  ProcId proc = 1;
  for (const std::size_t child : optimum.send_order) {
    const double d = instance.child_data[child] * l;
    out.schedule.add_comm({0, static_cast<TaskId>(child + 1), 0, proc,
                           send_cursor, send_cursor + d});
    send_cursor += d;
    const double w = instance.child_weights[child] * t;
    out.schedule.place_task(static_cast<TaskId>(child + 1), proc, send_cursor,
                            send_cursor + w);
    ++proc;
  }
  return out;
}

}  // namespace oneport::exact
