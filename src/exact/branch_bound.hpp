// Anytime branch-and-bound lower bound on the one-port makespan.
//
// The search solves the *macro-dataflow relaxation* exactly: processors
// execute their tasks sequentially, but communications contend for
// nothing (no send/receive ports, no link serialization) and cost
// data * link(q, r) end to end.  Every one-port schedule is MD-feasible,
// so the MD optimum is a sound lower bound for the one-port optimum --
// and a *calibrated* one: the gap a heuristic shows against it bounds
// the heuristic's true distance from one-port optimal.
//
// Enumeration is over semi-active schedules: a DFS over (ready task,
// processor) dispatch choices with earliest-start timing.  For a regular
// objective some semi-active schedule is optimal, so the tree covers an
// MD optimum.  Each node carries an optimistic bound
//   max( current max finish,
//        load bound   (remaining work over aggregate speed, offset by
//                      per-processor availability),
//        critical path  max over unscheduled v of
//                       release(v) + bottom_level(v; t_min, comm = 0) )
// and is pruned against the incumbent.  Children are explored
// cheapest-bound-first so good incumbents appear early.
//
// Anytime contract: the search stops after `node_budget` expansions (or
// the optional wall-clock deadline).  Nodes never expanded contribute
// their optimistic bound to `min_open_bound`;
//   lower_bound = max(root bound, min(incumbent, min_open_bound))
// is sound regardless of where the budget ran out, and
// `proven_optimal` is true iff no open node could beat the incumbent --
// then lower_bound IS the MD optimum.  With the default
// `deadline_seconds = 0` the result is a pure function of the inputs
// (node budget only), which the sweep audit and tests rely on.
#pragma once

#include <cstdint>
#include <limits>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"

namespace oneport::exact {

struct BranchBoundOptions {
  /// DFS nodes to expand before declaring the rest open.  The default
  /// proves optimality on the small instances the audit targets
  /// (<= ~12 tasks exhaustively; much larger when pruning bites).
  std::uint64_t node_budget = 200'000;
  /// Wall-clock cutoff in seconds; 0 disables it (keeps the result
  /// deterministic).  Checked every few hundred expansions.
  double deadline_seconds = 0.0;
  /// Above this many tasks the search is not attempted at all: the
  /// result is the root bound with proven_optimal = false.  Guards
  /// sweeps against accidentally pointing the audit at a 100k-task
  /// instance.
  int max_search_tasks = 64;
  /// For sparse platforms: end-to-end per-item costs come from
  /// routing->distances() instead of Platform::link, whose off-diagonal
  /// entries are kNoLink (+inf) for non-adjacent pairs.  The routed
  /// distance is the sum of hop costs, a lower bound on the actual
  /// store-and-forward chain time -- still sound.
  const RoutingTable* routing = nullptr;
};

struct BranchBoundResult {
  /// Sound lower bound on the one-port (and MD) optimal makespan.
  double lower_bound = 0.0;
  /// True iff lower_bound is exactly the MD optimal makespan.
  bool proven_optimal = false;
  /// Best complete MD schedule found (inf if none was reached within
  /// the budget).  incumbent == lower_bound when proven_optimal.
  double incumbent = std::numeric_limits<double>::infinity();
  /// Search effort actually spent, for bench/diagnostic output.
  std::uint64_t nodes_expanded = 0;
};

/// Runs the search on a finalized graph.  Throws std::invalid_argument
/// if the graph is not finalized or `routing` disagrees with the
/// platform's processor count.
[[nodiscard]] BranchBoundResult branch_bound_lower_bound(
    const TaskGraph& g, const Platform& platform,
    const BranchBoundOptions& options = {});

}  // namespace oneport::exact
