#include "exact/branch_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "graph/graph_algorithms.hpp"
#include "util/error.hpp"

namespace oneport::exact {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mutable DFS state plus everything precomputed at the root.
struct Search {
  const TaskGraph& g;
  const Platform& platform;
  const BranchBoundOptions& options;
  const Matrix<double>* dist;  ///< routed distances, or the link matrix

  int num_procs;
  double aggregate_speed;
  bool symmetric;  ///< identical cycle times AND uniform finite links
  std::vector<double> blev;  ///< bottom levels at t_min, zero comm

  // Per-task: assigned processor (-1 = unscheduled) and finish time.
  std::vector<int> proc;
  std::vector<double> finish;
  // Per-task count of unscheduled predecessors; 0 => ready.
  std::vector<int> missing_preds;
  // Per-processor availability (finish of its last task) and task count.
  std::vector<double> avail;
  std::vector<int> proc_load;

  std::size_t num_scheduled = 0;
  double cur_max_finish = 0.0;
  double remaining_weight = 0.0;
  double avail_over_t = 0.0;  ///< sum over p of avail[p] / t_p

  double incumbent = kInf;
  double min_open_bound = kInf;
  std::uint64_t nodes_expanded = 0;
  bool budget_hit = false;
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;

  [[nodiscard]] double link_cost(int from, int to) const {
    return (*dist)(static_cast<std::size_t>(from),
                   static_cast<std::size_t>(to));
  }

  /// Optimistic completion bound for the current partial schedule.
  [[nodiscard]] double node_bound() const {
    double bound = cur_max_finish;
    // Load: the remaining work, spread over every processor's leftover
    // capacity.  Valid because any completion time T satisfies
    // T >= avail[p] for all p (avail entries are finish times).
    const double load =
        (remaining_weight + avail_over_t) / aggregate_speed;
    bound = std::max(bound, load);
    // Critical path: an unscheduled task cannot start before its
    // scheduled predecessors finish, and needs blev time after that
    // even on the fastest processors with free communication.
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      if (proc[v] >= 0) continue;
      double release = 0.0;
      for (const EdgeRef& e : g.predecessors(v)) {
        if (proc[e.task] >= 0) release = std::max(release, finish[e.task]);
      }
      bound = std::max(bound, release + blev[v]);
    }
    return bound;
  }

  [[nodiscard]] bool out_of_budget() {
    if (nodes_expanded >= options.node_budget) return true;
    if (has_deadline && (nodes_expanded & 0x1ffu) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      return true;
    }
    return false;
  }

  void place(TaskId v, int p, double start_time) {
    const double f = start_time + platform.exec_time(g.weight(v), p);
    proc[v] = p;
    finish[v] = f;
    for (const EdgeRef& e : g.successors(v)) --missing_preds[e.task];
    const auto pu = static_cast<std::size_t>(p);
    avail_over_t += (f - avail[pu]) / platform.cycle_time(p);
    avail[pu] = f;
    ++proc_load[pu];
    ++num_scheduled;
    cur_max_finish = std::max(cur_max_finish, f);
    remaining_weight -= g.weight(v);
  }

  void unplace(TaskId v, int p, double prev_avail, double prev_max) {
    const auto pu = static_cast<std::size_t>(p);
    avail_over_t -= (avail[pu] - prev_avail) / platform.cycle_time(p);
    avail[pu] = prev_avail;
    --proc_load[pu];
    --num_scheduled;
    cur_max_finish = prev_max;
    remaining_weight += g.weight(v);
    for (const EdgeRef& e : g.successors(v)) ++missing_preds[e.task];
    proc[v] = -1;
    finish[v] = 0.0;
  }

  /// Earliest MD start of ready task v on processor p: after the
  /// processor frees up and after every predecessor's data arrives.
  [[nodiscard]] double earliest_start(TaskId v, int p) const {
    double start = avail[static_cast<std::size_t>(p)];
    for (const EdgeRef& e : g.predecessors(v)) {
      const int q = proc[e.task];
      const double comm = (q == p) ? 0.0 : e.data * link_cost(q, p);
      start = std::max(start, finish[e.task] + comm);
    }
    return start;
  }

  void dfs() {
    if (num_scheduled == g.num_tasks()) {
      incumbent = std::min(incumbent, cur_max_finish);
      return;
    }
    if (out_of_budget()) {
      budget_hit = true;
      min_open_bound = std::min(min_open_bound, node_bound());
      return;
    }
    ++nodes_expanded;

    // Enumerate children: every (ready task, processor) dispatch.
    struct Child {
      TaskId task;
      int proc;
      double start;
      double bound;
    };
    std::vector<Child> children;
    children.reserve(g.num_tasks());
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      if (proc[v] >= 0 || missing_preds[v] != 0) continue;
      bool tried_fresh = false;
      for (int p = 0; p < num_procs; ++p) {
        if (symmetric && proc_load[static_cast<std::size_t>(p)] == 0) {
          // Unused processors of a fully symmetric platform are
          // interchangeable: trying one of them covers them all.
          if (tried_fresh) continue;
          tried_fresh = true;
        }
        const double start = earliest_start(v, p);
        const double f = start + platform.exec_time(g.weight(v), p);
        // Cheap per-child bound refinement: this dispatch forces
        // finish(v) = f, and v still needs its own bottom level.
        const double child_bound =
            std::max({cur_max_finish, f,
                      f - platform.exec_time(g.weight(v), p) + blev[v]});
        if (child_bound < incumbent) {
          children.push_back({v, p, start, child_bound});
        }
      }
    }
    std::stable_sort(children.begin(), children.end(),
                     [](const Child& a, const Child& b) {
                       return a.bound < b.bound;
                     });

    for (const Child& c : children) {
      // Re-test: the incumbent may have improved since enumeration.
      if (c.bound >= incumbent) continue;
      const double prev_avail = avail[static_cast<std::size_t>(c.proc)];
      const double prev_max = cur_max_finish;
      place(c.task, c.proc, c.start);
      const double bound = node_bound();
      if (bound < incumbent) {
        dfs();
      }
      unplace(c.task, c.proc, prev_avail, prev_max);
    }
  }
};

[[nodiscard]] bool is_symmetric_platform(const Platform& platform,
                                         const Matrix<double>& dist) {
  const int p = platform.num_processors();
  for (int i = 1; i < p; ++i) {
    if (platform.cycle_time(i) != platform.cycle_time(0)) return false;
  }
  double uniform = -1.0;
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      if (i == j) continue;
      const double d =
          dist(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      if (!std::isfinite(d)) return false;
      if (uniform < 0.0) {
        uniform = d;
      } else if (d != uniform) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

BranchBoundResult branch_bound_lower_bound(const TaskGraph& g,
                                           const Platform& platform,
                                           const BranchBoundOptions& options) {
  OP_REQUIRE(g.finalized(), "branch_bound needs a finalized graph");
  OP_REQUIRE(platform.num_processors() >= 1, "empty platform");
  if (options.routing != nullptr) {
    OP_REQUIRE(options.routing->num_processors() == platform.num_processors(),
               "routing table does not match the platform");
  }
  BranchBoundResult result;
  if (g.num_tasks() == 0) {
    result.proven_optimal = true;
    result.incumbent = 0.0;
    return result;
  }

  const Matrix<double>& dist = options.routing != nullptr
                                   ? options.routing->distances()
                                   : platform.link_matrix();
  const double t_min = platform.cycle_time(platform.fastest_processor());

  Search search{g, platform, options, &dist,
                platform.num_processors(), platform.aggregate_speed(),
                is_symmetric_platform(platform, dist),
                bottom_levels(g, t_min, 0.0),
                std::vector<int>(g.num_tasks(), -1),
                std::vector<double>(g.num_tasks(), 0.0),
                std::vector<int>(g.num_tasks(), 0),
                std::vector<double>(static_cast<std::size_t>(
                                        platform.num_processors()),
                                    0.0),
                std::vector<int>(static_cast<std::size_t>(
                                     platform.num_processors()),
                                 0)};
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    search.missing_preds[v] = static_cast<int>(g.in_degree(v));
  }
  search.remaining_weight = g.total_weight();
  if (options.deadline_seconds > 0.0) {
    search.has_deadline = true;
    search.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options.deadline_seconds));
  }

  const double root_bound = search.node_bound();
  if (static_cast<std::size_t>(options.max_search_tasks) < g.num_tasks()) {
    result.lower_bound = root_bound;
    return result;
  }

  search.dfs();

  result.nodes_expanded = search.nodes_expanded;
  result.incumbent = search.incumbent;
  // Sound anytime combination: every leaf is >= the true optimum's
  // bound chain, and every never-expanded node's optimistic bound
  // underestimates the best completion through it.
  const double unexplored = std::min(search.incumbent, search.min_open_bound);
  result.lower_bound = std::max(root_bound, unexplored);
  result.proven_optimal =
      std::isfinite(search.incumbent) &&
      (!search.budget_hit || search.min_open_bound >= search.incumbent);
  if (result.proven_optimal) result.lower_bound = search.incumbent;
  return result;
}

}  // namespace oneport::exact
