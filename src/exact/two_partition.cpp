#include "exact/two_partition.hpp"

#include "util/error.hpp"

namespace oneport::exact {

std::optional<std::vector<std::size_t>> two_partition(
    const std::vector<std::int64_t>& values) {
  std::int64_t total = 0;
  for (const std::int64_t a : values) {
    OP_REQUIRE(a > 0, "2-PARTITION values must be positive");
    total += a;
  }
  if (values.empty() || total % 2 != 0) return std::nullopt;
  const auto target = static_cast<std::size_t>(total / 2);

  // reach[s] = index of the last value used to first reach sum s (+1), or
  // 0 when unreachable; lets us backtrack the chosen subset.
  std::vector<std::size_t> reach(target + 1, 0);
  reach[0] = values.size() + 1;  // sentinel: sum 0 reachable with no items
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto a = static_cast<std::size_t>(values[i]);
    if (a > target) return std::nullopt;  // single value exceeds the half-sum
    for (std::size_t s = target; s + 1 > a; --s) {
      if (reach[s - a] != 0 && reach[s] == 0) reach[s] = i + 1;
    }
  }
  if (reach[target] == 0) return std::nullopt;

  std::vector<std::size_t> subset;
  std::size_t s = target;
  while (s > 0) {
    const std::size_t i = reach[s] - 1;
    OP_ASSERT(i < values.size(), "backtrack escaped the table");
    subset.push_back(i);
    s -= static_cast<std::size_t>(values[i]);
  }
  return subset;
}

}  // namespace oneport::exact
