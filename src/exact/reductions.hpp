// Constructions behind the paper's two NP-completeness results.
//
// Theorem 1 (FORK-SCHED): from a 2-PARTITION instance A = {a_1..a_n},
// build a fork graph of N = 2n+3 children on unlimited same-speed
// processors with a time bound T such that a schedule of makespan <= T
// exists iff A can be partitioned into equal-sum halves.  (The extra n
// children are balancing dummies: they let the construction keep every
// child weight inside the [w_min, 2 w_min] window the hardness argument
// needs without quietly changing the problem to balanced-cardinality
// 2-PARTITION -- see the note in make_fork_sched_instance.)
//
// Theorem 2 (COMM-SCHED, Appendix): from the same A, build a bipartite
// instance whose *allocation is already fixed* -- only the messages remain
// to be scheduled -- with time bound T = S; again feasibility iff the
// 2-PARTITION is solvable.  This is the result motivating why ILHA's
// optional third step (rescheduling communications for a fixed
// allocation) must be heuristic.
//
// Both builders come with proof-following schedule constructors (turning a
// 2-PARTITION certificate into a schedule meeting the bound) and, for
// Theorem 2, an exhaustive solver over the n! send orders of P0 so that
// small no-instances can be checked to exceed the bound.
#pragma once

#include <cstdint>
#include <vector>

#include "exact/fork_optimal.hpp"
#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport::exact {

// ----------------------------------------------------------------- Thm 1

struct ForkSchedInstance {
  ForkInstance fork;    ///< w_0 = 0; children per the construction
  double time_bound;    ///< T = (1/2) sum w_i + 2 w_min (sum over the 2n
                        ///< value+dummy children)
  double w_min;         ///< weight of the dummies and the last three children
};

/// The Theorem-1 construction.  `values` are the 2-PARTITION integers.
[[nodiscard]] ForkSchedInstance make_fork_sched_instance(
    const std::vector<std::int64_t>& values);

/// Turns a 2-PARTITION certificate (indices of one half, 0-based into
/// `values`) into a schedule matching the bound, exactly as in the proof:
/// P0 runs v0, the A1 children and children n+1, n+2; everything else goes
/// to a distinct processor; messages leave P0 by increasing child index.
[[nodiscard]] RealizedFork realize_theorem1_schedule(
    const std::vector<std::int64_t>& values,
    const std::vector<std::size_t>& half_indices);

// ----------------------------------------------------------------- Thm 2

struct CommSchedInstance {
  TaskGraph graph;                ///< 3n+1 zero-weight tasks
  Platform platform;              ///< 2n+1 same-speed processors
  std::vector<ProcId> allocation; ///< fixed task -> processor map
  double time_bound;              ///< T = S
};

/// The Theorem-2 construction (see Figure 13 of the paper): a fork from
/// v0 to v_1..v_n with data a_i, plus n independent pairs
/// v_{2n+i} -> v_{n+i} with data S, allocated so that P_i hosts both v_i
/// and v_{n+i}.
[[nodiscard]] CommSchedInstance make_comm_sched_instance(
    const std::vector<std::int64_t>& values);

/// Proof-following schedule for a yes-instance certificate.
[[nodiscard]] Schedule realize_theorem2_schedule(
    const CommSchedInstance& instance,
    const std::vector<std::int64_t>& values,
    const std::vector<std::size_t>& half_indices);

/// Exhaustive optimum over all n! orders in which P0 can emit its
/// messages (each P_i places its pair message greedily around the fork
/// message).  n is capped at 9.
[[nodiscard]] double solve_comm_sched_optimal(
    const CommSchedInstance& instance,
    const std::vector<std::int64_t>& values);

}  // namespace oneport::exact
