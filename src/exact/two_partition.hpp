// Pseudo-polynomial 2-PARTITION solver -- the NP-complete problem both of
// the paper's reductions start from: partition {a_1..a_n} into two subsets
// of equal sum.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace oneport::exact {

/// Returns the indices of one half when {a_i} can be split into two
/// equal-sum subsets, std::nullopt otherwise.  Classic subset-sum dynamic
/// program: O(n * S) time and space with S = sum/2.
[[nodiscard]] std::optional<std::vector<std::size_t>> two_partition(
    const std::vector<std::int64_t>& values);

}  // namespace oneport::exact
