// Exact one-port scheduling of fork graphs on an unlimited pool of
// same-speed processors -- the setting of the paper's Theorem 1.
//
// Observations that make exhaustive search tractable:
//   * with unlimited identical processors, giving each remote child its
//     own processor (weakly) dominates co-locating remote children, so the
//     only real decision is the subset A of children co-located with the
//     parent on P0;
//   * the parent's send port serializes the remote messages; for a fixed
//     remote set, sending in order of *decreasing child weight* minimizes
//     the latest remote completion (exchange argument on
//     max_j(prefix(d) + w_j));
//   * P0 computes the parent then its local children back-to-back while
//     its send port streams the messages (computation/communication
//     overlap).
// The solver therefore enumerates the 2^N subsets, which is exact -- and
// exponential, as Theorem 1 says it must be (unless P = NP).
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport::exact {

struct ForkInstance {
  double parent_weight = 0.0;
  std::vector<double> child_weights;
  std::vector<double> child_data;
  double cycle_time = 1.0;  ///< same-speed processors
  double link = 1.0;        ///< fully homogeneous network
};

struct ForkOptimum {
  double makespan = 0.0;
  /// children co-located with the parent on processor 0 (indices into
  /// child_weights)
  std::vector<std::size_t> local_children;
  /// remote children in the order their messages leave P0
  std::vector<std::size_t> send_order;
};

/// Exhaustive optimum; `child_weights.size()` is capped at 24 (16M
/// subsets) -- beyond that the instance is declared out of reach and the
/// solver throws std::invalid_argument.
[[nodiscard]] ForkOptimum solve_fork_one_port_optimal(
    const ForkInstance& instance);

/// A concrete, validator-ready realization of a fork optimum: one
/// processor per remote child plus P0.
struct RealizedFork {
  TaskGraph graph;    ///< parent = task 0, child i = task i+1
  Platform platform;  ///< 1 + #remote processors
  Schedule schedule;
};
[[nodiscard]] RealizedFork realize_fork_schedule(const ForkInstance& instance,
                                                 const ForkOptimum& optimum);

/// The TaskGraph of an instance alone (parent = task 0, child i = i+1).
[[nodiscard]] TaskGraph fork_instance_graph(const ForkInstance& instance);

}  // namespace oneport::exact
