// HEFT -- Heterogeneous Earliest Finish Time (Topcuoglu, Hariri, Wu) --
// for both communication models.
//
// Macro-dataflow HEFT (§4.1): rank tasks by averaged bottom level; at each
// step pick the ready task of highest priority and place it on the
// processor minimizing its finish time, with insertion-based gap search.
//
// One-port HEFT (§4.3): identical control flow, but evaluating a candidate
// processor also greedily reserves a send-port/receive-port slot for every
// incoming message, so the chosen finish time accounts for communication
// contention.
#pragma once

#include "core/eft_engine.hpp"
#include "sched/schedule.hpp"

namespace oneport {

struct HeftOptions {
  EftEngine::Model model = EftEngine::Model::kOnePort;
  /// Optional routing table for sparse networks (must outlive the call).
  const RoutingTable* routing = nullptr;
};

/// Runs HEFT and returns a complete schedule.
[[nodiscard]] Schedule heft(const TaskGraph& graph, const Platform& platform,
                            const HeftOptions& options = {});

}  // namespace oneport
