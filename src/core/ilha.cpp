#include "core/ilha.hpp"

#include <algorithm>
#include <vector>

#include "core/priorities.hpp"
#include "platform/load_balance.hpp"
#include "util/error.hpp"

namespace oneport {

namespace {

/// If every predecessor of `v` lives on one single processor, returns it;
/// otherwise (or when v is an entry task) returns -1.
ProcId common_parent_processor(const TaskGraph& graph, const EftEngine& engine,
                               TaskId v) {
  ProcId common = -1;
  for (const EdgeRef& e : graph.predecessors(v)) {
    const ProcId p = engine.placement(e.task).proc;
    if (common == -1) {
      common = p;
    } else if (common != p) {
      return -1;
    }
  }
  return common;
}

/// Distinct processors hosting predecessors of `v` (size <= 3 needed).
std::vector<ProcId> parent_processors(const TaskGraph& graph,
                                      const EftEngine& engine, TaskId v) {
  std::vector<ProcId> procs;
  for (const EdgeRef& e : graph.predecessors(v)) {
    const ProcId p = engine.placement(e.task).proc;
    if (std::find(procs.begin(), procs.end(), p) == procs.end()) {
      procs.push_back(p);
    }
  }
  return procs;
}

}  // namespace

Schedule ilha(const TaskGraph& graph, const Platform& platform,
              const IlhaOptions& options) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  OP_REQUIRE(options.chunk_size > 0, "chunk size must be positive");
  // "B must be at least equal to the number of processors, otherwise some
  // processors would be kept idle."
  const std::size_t chunk_size = static_cast<std::size_t>(
      std::max(options.chunk_size, platform.num_processors()));

  const std::vector<double> bl = averaged_bottom_levels(graph, platform);
  const PriorityOrder higher_priority{&bl};
  const auto lower_priority = [&higher_priority](TaskId a, TaskId b) {
    return higher_priority(b, a);
  };
  EftEngine engine(graph, platform, options.model, options.routing);

  const std::vector<double> fractions = balanced_fractions(platform);

  // The ready list is kept sorted with the *highest* priority at the
  // back, so carving off a chunk is a suffix copy plus an O(1) resize
  // instead of an O(n) front erase per chunk.
  std::vector<TaskId> ready;
  std::vector<std::size_t> waiting(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    waiting[v] = graph.in_degree(v);
    if (waiting[v] == 0) ready.push_back(v);
  }
  std::sort(ready.begin(), ready.end(), lower_priority);

  std::vector<TaskId> newly_ready;
  std::size_t scheduled_total = 0;

  const auto nproc = static_cast<std::size_t>(platform.num_processors());
  std::vector<double> load(nproc);
  std::vector<double> quota(nproc);
  // Hoisted per-chunk scratch: the evaluation recycles its comms
  // capacity across commits, the vectors theirs across chunks.
  Evaluation scratch;
  std::vector<TaskId> chunk;
  std::vector<TaskId> merged;
  std::vector<bool> assigned;

  while (!ready.empty()) {
    const std::size_t take = std::min(chunk_size, ready.size());
    chunk.assign(ready.rbegin(), ready.rbegin() + static_cast<long>(take));
    ready.resize(ready.size() - take);

    // Load-balancing quota for this chunk: processor i may take up to
    // c_i * W of the chunk's total weight W.
    double chunk_weight = 0.0;
    for (const TaskId v : chunk) chunk_weight += graph.weight(v);
    for (std::size_t p = 0; p < nproc; ++p) {
      quota[p] = fractions[p] * chunk_weight;
      load[p] = 0.0;
    }
    auto fits_quota = [&](ProcId p, TaskId v) {
      const std::size_t i = static_cast<std::size_t>(p);
      return load[i] + graph.weight(v) <= quota[i] + 1e-9 * (1.0 + quota[i]);
    };

    assigned.assign(chunk.size(), false);
    auto commit_on = [&](std::size_t idx, ProcId p) {
      const TaskId v = chunk[idx];
      engine.evaluate_into(v, p, scratch);
      engine.commit(scratch);
      load[static_cast<std::size_t>(p)] += graph.weight(v);
      assigned[idx] = true;
      ++scheduled_total;
    };

    // Step 1: communication-free assignments under the quota.
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const TaskId v = chunk[i];
      const ProcId p = common_parent_processor(graph, engine, v);
      if (p >= 0 && fits_quota(p, v)) commit_on(i, p);
    }

    // Optional scan: tasks costing exactly one message.  Candidate target
    // processors are those already hosting parents; a task whose parents
    // span at most two processors can run on either of them with a single
    // message.  Pick the candidate with the earliest finish time.
    if (options.single_comm_scan) {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (assigned[i]) continue;
        const TaskId v = chunk[i];
        const std::vector<ProcId> procs = parent_processors(graph, engine, v);
        if (procs.empty() || procs.size() > 2) continue;
        Evaluation best;
        for (const ProcId p : procs) {
          if (!fits_quota(p, v)) continue;
          engine.evaluate_into(v, p, scratch);
          if (best.proc < 0 || scratch.finish < best.finish - kTimeEps ||
              (scratch.finish < best.finish + kTimeEps && p < best.proc)) {
            std::swap(best, scratch);
          }
        }
        if (best.proc >= 0) {
          engine.commit(best);
          load[static_cast<std::size_t>(best.proc)] += graph.weight(v);
          assigned[i] = true;
          ++scheduled_total;
        }
      }
    }

    // Step 2: HEFT-style earliest finish time for the remainder.
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      if (assigned[i]) continue;
      const TaskId v = chunk[i];
      if (!options.quota_in_step2) {
        engine.commit(engine.evaluate_best(v));
        load[static_cast<std::size_t>(engine.placement(v).proc)] +=
            graph.weight(v);
      } else {
        Evaluation best;
        for (ProcId p = 0; p < platform.num_processors(); ++p) {
          if (!fits_quota(p, v)) continue;
          engine.evaluate_into(v, p, scratch);
          if (best.proc < 0 || scratch.finish < best.finish - kTimeEps) {
            std::swap(best, scratch);
          }
        }
        // All processors saturated: fall back to the unrestricted rule so
        // the schedule always completes.
        if (best.proc < 0) best = engine.evaluate_best(v);
        load[static_cast<std::size_t>(best.proc)] += graph.weight(v);
        engine.commit(best);
      }
      assigned[i] = true;
      ++scheduled_total;
    }

    // Refresh the ready list with tasks released by this chunk.
    newly_ready.clear();
    for (const TaskId v : chunk) {
      for (const EdgeRef& e : graph.successors(v)) {
        if (--waiting[e.task] == 0) newly_ready.push_back(e.task);
      }
    }
    std::sort(newly_ready.begin(), newly_ready.end(), lower_priority);
    merged.clear();
    merged.reserve(ready.size() + newly_ready.size());
    std::merge(ready.begin(), ready.end(), newly_ready.begin(),
               newly_ready.end(), std::back_inserter(merged),
               lower_priority);
    std::swap(ready, merged);
  }

  OP_ASSERT(scheduled_total == graph.num_tasks(),
            "ILHA scheduled " << scheduled_total << " of "
                              << graph.num_tasks() << " tasks");
  Schedule schedule = engine.build_schedule();

  if (options.reschedule_comms) {
    std::vector<ProcId> allocation(graph.num_tasks());
    for (TaskId v = 0; v < graph.num_tasks(); ++v) {
      allocation[v] = schedule.task(v).proc;
    }
    Schedule rebuilt = reschedule_fixed_allocation(
        graph, platform, allocation, options.model, options.routing);
    // The greedy rebuild is a heuristic for an NP-complete problem
    // (Theorem 2); keep it only when it actually helps.
    if (rebuilt.makespan() < schedule.makespan()) return rebuilt;
  }
  return schedule;
}

Schedule reschedule_fixed_allocation(const TaskGraph& graph,
                                     const Platform& platform,
                                     const std::vector<ProcId>& allocation,
                                     EftEngine::Model model,
                                     const RoutingTable* routing) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  OP_REQUIRE(allocation.size() == graph.num_tasks(),
             "allocation arity mismatch");
  const std::vector<double> bl = averaged_bottom_levels(graph, platform);
  const PriorityOrder higher_priority{&bl};
  EftEngine engine(graph, platform, model, routing);

  std::vector<TaskId> ready;
  std::vector<std::size_t> waiting(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    waiting[v] = graph.in_degree(v);
    if (waiting[v] == 0) ready.push_back(v);
  }
  std::sort(ready.begin(), ready.end(), higher_priority);

  // Consume through a cursor instead of erasing the front (that memmove
  // turns the loop quadratic); released tasks insert by priority into the
  // unconsumed suffix, which holds exactly the tasks a front-erasing list
  // would hold, so the commit order is identical.
  Evaluation scratch;
  std::size_t cursor = 0;
  while (cursor < ready.size()) {
    const TaskId v = ready[cursor++];
    engine.evaluate_into(v, allocation[v], scratch);
    engine.commit(scratch);
    for (const EdgeRef& e : graph.successors(v)) {
      if (--waiting[e.task] == 0) {
        const auto pos = std::lower_bound(
            ready.begin() + static_cast<std::ptrdiff_t>(cursor), ready.end(),
            e.task, higher_priority);
        ready.insert(pos, e.task);
      }
    }
  }
  return engine.build_schedule();
}

}  // namespace oneport
