#include "core/cpop.hpp"

#include <algorithm>
#include <vector>

#include "core/priorities.hpp"
#include "util/error.hpp"

namespace oneport {

Schedule cpop(const TaskGraph& graph, const Platform& platform,
              const CpopOptions& options) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  const std::vector<double> bl = averaged_bottom_levels(graph, platform);
  const std::vector<double> tl = averaged_top_levels(graph, platform);

  // rank(v) = top + bottom level; critical tasks realize the maximum rank.
  std::vector<double> rank(graph.num_tasks());
  double cp_length = 0.0;
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    rank[v] = tl[v] + bl[v];
    cp_length = std::max(cp_length, rank[v]);
  }
  const double tolerance = 1e-9 * (1.0 + cp_length);
  std::vector<bool> critical(graph.num_tasks(), false);
  double critical_weight = 0.0;
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    if (rank[v] >= cp_length - tolerance) {
      critical[v] = true;
      critical_weight += graph.weight(v);
    }
  }
  // The critical-path processor minimizes the execution time of all
  // critical tasks (smallest index on ties) -- i.e. the fastest processor.
  ProcId cp_proc = 0;
  for (ProcId p = 1; p < platform.num_processors(); ++p) {
    if (platform.exec_time(critical_weight, p) <
        platform.exec_time(critical_weight, cp_proc)) {
      cp_proc = p;
    }
  }

  const PriorityOrder higher_priority{&bl};
  EftEngine engine(graph, platform, options.model, options.routing);

  std::vector<TaskId> ready;
  std::vector<std::size_t> waiting(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    waiting[v] = graph.in_degree(v);
    if (waiting[v] == 0) ready.push_back(v);
  }
  std::sort(ready.begin(), ready.end(), higher_priority);

  while (!ready.empty()) {
    const TaskId v = ready.front();
    ready.erase(ready.begin());
    if (critical[v]) {
      engine.commit(engine.evaluate(v, cp_proc));
    } else {
      engine.commit(engine.evaluate_best(v));
    }
    for (const EdgeRef& e : graph.successors(v)) {
      if (--waiting[e.task] == 0) {
        const auto pos = std::lower_bound(ready.begin(), ready.end(), e.task,
                                          higher_priority);
        ready.insert(pos, e.task);
      }
    }
  }
  return engine.build_schedule();
}

}  // namespace oneport
