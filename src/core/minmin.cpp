#include "core/minmin.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace oneport {

Schedule min_min(const TaskGraph& graph, const Platform& platform,
                 const MinMinOptions& options) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  EftEngine engine(graph, platform, options.model, options.routing);

  std::vector<TaskId> ready;
  std::vector<std::size_t> waiting(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    waiting[v] = graph.in_degree(v);
    if (waiting[v] == 0) ready.push_back(v);
  }

  while (!ready.empty()) {
    // Evaluate the best placement of every ready task, then commit the
    // min-min (or max-min) choice.  Ties break toward the smaller task id
    // (ready is kept id-sorted).
    std::size_t chosen = 0;
    Evaluation chosen_eval;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      Evaluation eval = engine.evaluate_best(ready[i]);
      const bool better =
          chosen_eval.proc < 0 ||
          (options.max_min ? eval.finish > chosen_eval.finish + kTimeEps
                           : eval.finish < chosen_eval.finish - kTimeEps);
      if (better) {
        chosen = i;
        chosen_eval = std::move(eval);
      }
    }
    // The committed reservations invalidate the other evaluations; they
    // are recomputed next round (that is the price of batch matching).
    engine.commit(chosen_eval);
    const TaskId done = ready[chosen];
    ready.erase(ready.begin() + static_cast<long>(chosen));
    for (const EdgeRef& e : graph.successors(done)) {
      if (--waiting[e.task] == 0) {
        const auto pos = std::lower_bound(ready.begin(), ready.end(), e.task);
        ready.insert(pos, e.task);
      }
    }
  }
  return engine.build_schedule();
}

}  // namespace oneport
