#include "core/registry.hpp"

#include "core/cpop.hpp"
#include "core/gdl.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "core/minmin.hpp"
#include "util/error.hpp"

namespace oneport {

std::vector<SchedulerEntry> builtin_schedulers(int ilha_chunk_size) {
  using Model = EftEngine::Model;
  std::vector<SchedulerEntry> entries;
  entries.push_back(
      {"heft-macro", "HEFT under the macro-dataflow model (unlimited ports)",
       [](const TaskGraph& g, const Platform& p) {
         return heft(g, p, {.model = Model::kMacroDataflow});
       }});
  entries.push_back(
      {"heft-oneport", "HEFT adapted to the bi-directional one-port model",
       [](const TaskGraph& g, const Platform& p) {
         return heft(g, p, {.model = Model::kOnePort});
       }});
  entries.push_back(
      {"ilha-macro", "ILHA under the macro-dataflow model",
       [ilha_chunk_size](const TaskGraph& g, const Platform& p) {
         return ilha(g, p, {.model = Model::kMacroDataflow,
                            .chunk_size = ilha_chunk_size});
       }});
  entries.push_back(
      {"ilha-oneport", "ILHA adapted to the bi-directional one-port model",
       [ilha_chunk_size](const TaskGraph& g, const Platform& p) {
         return ilha(g, p, {.model = Model::kOnePort,
                            .chunk_size = ilha_chunk_size});
       }});
  entries.push_back(
      {"minmin-macro", "min-min batch matching, macro-dataflow model",
       [](const TaskGraph& g, const Platform& p) {
         return min_min(g, p, {.model = Model::kMacroDataflow});
       }});
  entries.push_back(
      {"minmin-oneport", "min-min batch matching, one-port model",
       [](const TaskGraph& g, const Platform& p) {
         return min_min(g, p, {.model = Model::kOnePort});
       }});
  entries.push_back(
      {"maxmin-oneport", "max-min batch matching, one-port model",
       [](const TaskGraph& g, const Platform& p) {
         return min_min(g, p, {.model = Model::kOnePort, .max_min = true});
       }});
  entries.push_back(
      {"gdl-macro", "Generalized Dynamic Level (Sih-Lee), macro model",
       [](const TaskGraph& g, const Platform& p) {
         return gdl(g, p, {.model = Model::kMacroDataflow});
       }});
  entries.push_back(
      {"gdl-oneport", "Generalized Dynamic Level (Sih-Lee), one-port model",
       [](const TaskGraph& g, const Platform& p) {
         return gdl(g, p, {.model = Model::kOnePort});
       }});
  entries.push_back(
      {"cpop-macro", "CPOP baseline under the macro-dataflow model",
       [](const TaskGraph& g, const Platform& p) {
         return cpop(g, p, {.model = Model::kMacroDataflow});
       }});
  entries.push_back(
      {"cpop-oneport", "CPOP baseline adapted to the one-port model",
       [](const TaskGraph& g, const Platform& p) {
         return cpop(g, p, {.model = Model::kOnePort});
       }});
  return entries;
}

SchedulerEntry find_scheduler(const std::string& name, int ilha_chunk_size) {
  std::vector<SchedulerEntry> entries = builtin_schedulers(ilha_chunk_size);
  std::string known;
  for (auto& entry : entries) {
    if (entry.name == name) return std::move(entry);
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown scheduler '" + name +
                              "'; known: " + known);
}

}  // namespace oneport
