#include "core/registry.hpp"

#include "core/cpop.hpp"
#include "core/gdl.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "core/minmin.hpp"
#include "util/error.hpp"

namespace oneport {

std::vector<SchedulerEntry> builtin_schedulers(const SchedulerConfig& config) {
  using Model = EftEngine::Model;
  std::vector<SchedulerEntry> entries;
  entries.push_back(
      {"heft-macro", "HEFT under the macro-dataflow model (unlimited ports)",
       [config](const TaskGraph& g, const Platform& p) {
         return heft(g, p, {.model = Model::kMacroDataflow,
                            .routing = config.routing});
       }});
  entries.push_back(
      {"heft-oneport", "HEFT adapted to the bi-directional one-port model",
       [config](const TaskGraph& g, const Platform& p) {
         return heft(g, p, {.model = Model::kOnePort,
                            .routing = config.routing});
       }});
  entries.push_back(
      {"ilha-macro", "ILHA under the macro-dataflow model",
       [config](const TaskGraph& g, const Platform& p) {
         return ilha(g, p, {.model = Model::kMacroDataflow,
                            .chunk_size = config.ilha_chunk_size,
                            .routing = config.routing});
       }});
  entries.push_back(
      {"ilha-oneport", "ILHA adapted to the bi-directional one-port model",
       [config](const TaskGraph& g, const Platform& p) {
         return ilha(g, p, {.model = Model::kOnePort,
                            .chunk_size = config.ilha_chunk_size,
                            .routing = config.routing});
       }});
  entries.push_back(
      {"minmin-macro", "min-min batch matching, macro-dataflow model",
       [config](const TaskGraph& g, const Platform& p) {
         return min_min(g, p, {.model = Model::kMacroDataflow,
                               .routing = config.routing});
       }});
  entries.push_back(
      {"minmin-oneport", "min-min batch matching, one-port model",
       [config](const TaskGraph& g, const Platform& p) {
         return min_min(g, p, {.model = Model::kOnePort,
                               .routing = config.routing});
       }});
  entries.push_back(
      {"maxmin-oneport", "max-min batch matching, one-port model",
       [config](const TaskGraph& g, const Platform& p) {
         return min_min(g, p, {.model = Model::kOnePort, .max_min = true,
                               .routing = config.routing});
       }});
  entries.push_back(
      {"gdl-macro", "Generalized Dynamic Level (Sih-Lee), macro model",
       [config](const TaskGraph& g, const Platform& p) {
         return gdl(g, p, {.model = Model::kMacroDataflow,
                           .routing = config.routing});
       }});
  entries.push_back(
      {"gdl-oneport", "Generalized Dynamic Level (Sih-Lee), one-port model",
       [config](const TaskGraph& g, const Platform& p) {
         return gdl(g, p, {.model = Model::kOnePort,
                           .routing = config.routing});
       }});
  entries.push_back(
      {"cpop-macro", "CPOP baseline under the macro-dataflow model",
       [config](const TaskGraph& g, const Platform& p) {
         return cpop(g, p, {.model = Model::kMacroDataflow,
                            .routing = config.routing});
       }});
  entries.push_back(
      {"cpop-oneport", "CPOP baseline adapted to the one-port model",
       [config](const TaskGraph& g, const Platform& p) {
         return cpop(g, p, {.model = Model::kOnePort,
                            .routing = config.routing});
       }});
  return entries;
}

std::vector<SchedulerEntry> builtin_schedulers(int ilha_chunk_size) {
  return builtin_schedulers(
      SchedulerConfig{.ilha_chunk_size = ilha_chunk_size});
}

SchedulerEntry find_scheduler(const std::string& name,
                              const SchedulerConfig& config) {
  std::vector<SchedulerEntry> entries = builtin_schedulers(config);
  std::string known;
  for (auto& entry : entries) {
    if (entry.name == name) return std::move(entry);
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown scheduler '" + name +
                              "'; known: " + known);
}

SchedulerEntry find_scheduler(const std::string& name, int ilha_chunk_size) {
  return find_scheduler(name,
                        SchedulerConfig{.ilha_chunk_size = ilha_chunk_size});
}

}  // namespace oneport
