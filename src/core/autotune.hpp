// Automatic selection of ILHA's chunk parameter B.
//
// §5.3: "we have not found any systematic technique to predict the
// optimal value of B. Note however that the range of B is limited: with
// equal-size tasks and p processors ... we can sample the interval
// [1..M]" with M the perfect-balance chunk.  This helper does exactly
// that: run ILHA for a small candidate set spanning [p .. 2M] and keep
// the best schedule.  Costs one full ILHA run per candidate.
#pragma once

#include <vector>

#include "core/ilha.hpp"

namespace oneport {

struct IlhaAutotuneResult {
  Schedule schedule;
  int chunk_size = 0;   ///< the winning B
  double makespan = 0.0;
  /// (B, makespan) for every candidate tried, in candidate order.
  std::vector<std::pair<int, double>> trials;
};

/// Runs ILHA for every candidate chunk size and returns the best
/// schedule.  `base.chunk_size` is ignored.  An empty `candidates` list
/// defaults to {p, (p+M)/2, M, 2M} (deduplicated, ascending), where M is
/// the perfect-balance chunk when cycle times are integral, else 4p.
[[nodiscard]] IlhaAutotuneResult ilha_autotune(
    const TaskGraph& graph, const Platform& platform,
    const IlhaOptions& base = {}, std::vector<int> candidates = {});

}  // namespace oneport
