#include "core/heft.hpp"

#include <algorithm>
#include <vector>

#include "core/priorities.hpp"
#include "util/error.hpp"

namespace oneport {

Schedule heft(const TaskGraph& graph, const Platform& platform,
              const HeftOptions& options) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  const std::vector<double> bl = averaged_bottom_levels(graph, platform);
  EftEngine engine(graph, platform, options.model, options.routing);

  // Ready list kept sorted by priority with the highest bottom level at
  // the *back*, so dequeuing is an O(1) pop instead of an O(n) front
  // erase.  A sorted vector beats a heap here: insertions are rare
  // relative to the scans the engine performs, and determinism is
  // trivial to audit.
  const PriorityOrder higher_priority{&bl};
  const auto lower_priority = [&higher_priority](TaskId a, TaskId b) {
    return higher_priority(b, a);
  };
  std::vector<TaskId> ready;
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    if (engine.ready(v)) ready.push_back(v);
  }
  std::sort(ready.begin(), ready.end(), lower_priority);

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const TaskId v = ready.back();
    ready.pop_back();
    engine.commit(engine.evaluate_best(v));
    ++scheduled;
    // commit() maintains the engine's indegree counters, so a successor
    // is ready exactly when its last predecessor was just committed.
    for (const EdgeRef& e : graph.successors(v)) {
      if (engine.ready(e.task)) {
        const auto pos = std::lower_bound(ready.begin(), ready.end(), e.task,
                                          lower_priority);
        ready.insert(pos, e.task);
      }
    }
  }
  OP_ASSERT(scheduled == graph.num_tasks(),
            "HEFT scheduled " << scheduled << " of " << graph.num_tasks()
                              << " tasks");
  return engine.build_schedule();
}

}  // namespace oneport
