#include "core/heft.hpp"

#include <algorithm>
#include <vector>

#include "core/priorities.hpp"
#include "util/error.hpp"

namespace oneport {

Schedule heft(const TaskGraph& graph, const Platform& platform,
              const HeftOptions& options) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  const std::vector<double> bl = averaged_bottom_levels(graph, platform);
  EftEngine engine(graph, platform, options.model, options.routing);

  // Ready queue as a binary max-heap on the priority order.  The order
  // is strict and total (bottom level, then task id), so every structure
  // that extracts the current maximum dequeues the exact same sequence;
  // the heap just does it in O(log n) instead of the O(n) memmove a
  // sorted vector pays per insertion.
  const PriorityOrder higher_priority{&bl};
  const auto lower_priority = [&higher_priority](TaskId a, TaskId b) {
    return higher_priority(b, a);
  };
  std::vector<TaskId> ready;
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    if (engine.ready(v)) ready.push_back(v);
  }
  std::make_heap(ready.begin(), ready.end(), lower_priority);

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), lower_priority);
    const TaskId v = ready.back();
    ready.pop_back();
    engine.commit(engine.evaluate_best(v));
    ++scheduled;
    // commit() maintains the engine's indegree counters, so a successor
    // is ready exactly when its last predecessor was just committed.
    for (const EdgeRef& e : graph.successors(v)) {
      if (engine.ready(e.task)) {
        ready.push_back(e.task);
        std::push_heap(ready.begin(), ready.end(), lower_priority);
      }
    }
  }
  OP_ASSERT(scheduled == graph.num_tasks(),
            "HEFT scheduled " << scheduled << " of " << graph.num_tasks()
                              << " tasks");
  return engine.build_schedule();
}

}  // namespace oneport
