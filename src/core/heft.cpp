#include "core/heft.hpp"

#include <algorithm>
#include <vector>

#include "core/priorities.hpp"
#include "util/error.hpp"

namespace oneport {

Schedule heft(const TaskGraph& graph, const Platform& platform,
              const HeftOptions& options) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  const std::vector<double> bl = averaged_bottom_levels(graph, platform);
  EftEngine engine(graph, platform, options.model, options.routing);

  // Ready list kept sorted by priority (highest bottom level first).  A
  // sorted vector beats a heap here: insertions are rare relative to the
  // scans the engine performs, and determinism is trivial to audit.
  const PriorityOrder higher_priority{&bl};
  std::vector<TaskId> ready;
  std::vector<std::size_t> waiting(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    waiting[v] = graph.in_degree(v);
    if (waiting[v] == 0) ready.push_back(v);
  }
  std::sort(ready.begin(), ready.end(), higher_priority);

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const TaskId v = ready.front();
    ready.erase(ready.begin());
    engine.commit(engine.evaluate_best(v));
    ++scheduled;
    for (const EdgeRef& e : graph.successors(v)) {
      if (--waiting[e.task] == 0) {
        const auto pos = std::lower_bound(ready.begin(), ready.end(), e.task,
                                          higher_priority);
        ready.insert(pos, e.task);
      }
    }
  }
  OP_ASSERT(scheduled == graph.num_tasks(),
            "HEFT scheduled " << scheduled << " of " << graph.num_tasks()
                              << " tasks");
  return engine.build_schedule();
}

}  // namespace oneport
