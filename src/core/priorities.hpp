// Task priorities for list scheduling on heterogeneous platforms (§4.1).
//
// HEFT and ILHA both rank tasks by *bottom level*: the length of the
// longest path to an exit node.  With different-speed processors the paper
// averages costs: one weight unit counts as the harmonic mean of the cycle
// times, one data unit as the harmonic mean of the off-diagonal link
// entries.  Communications are charged on every edge (conservatively, as
// if endpoints never co-locate).
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"

namespace oneport {

/// Averaged bottom levels per §4.1.
[[nodiscard]] std::vector<double> averaged_bottom_levels(
    const TaskGraph& graph, const Platform& platform);

/// Averaged top levels (used by CPOP's upward+downward rank).
[[nodiscard]] std::vector<double> averaged_top_levels(const TaskGraph& graph,
                                                      const Platform& platform);

/// Deterministic priority comparison: higher bottom level first, smaller
/// task id on ties (the tie-breaking rule spelled out for the paper's toy
/// example).
struct PriorityOrder {
  const std::vector<double>* bottom_level;

  [[nodiscard]] bool operator()(TaskId a, TaskId b) const {
    const double la = (*bottom_level)[a];
    const double lb = (*bottom_level)[b];
    if (la != lb) return la > lb;
    return a < b;
  }
};

}  // namespace oneport
