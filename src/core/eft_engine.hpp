// Earliest-finish-time machinery shared by all list-scheduling heuristics.
//
// The engine owns the running state of a schedule under construction:
// committed task placements plus, per processor, a compute timeline and --
// in one-port mode -- a send-port and a receive-port timeline.
//
// The central operation is evaluate(v, proc): tentatively place task v on
// `proc`, which entails scheduling one incoming message per predecessor
// that sits on another processor.  Under the one-port model (§4.3) each
// message needs a joint free slot on the sender's send port and on
// `proc`'s receive port; messages reserved earlier *within the same
// evaluation* are tracked in overlays so they cannot collide with each
// other.  Under the macro-dataflow model messages simply travel during
// [finish(u), finish(u) + data*link).  Nothing is mutated until commit().
//
// Incoming messages are ordered by predecessor data-ready time (earliest
// finish first, task id on ties); the paper leaves this order open and
// "assigns the new communications as early as possible, in a greedy
// fashion", which this policy implements deterministically.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "sched/schedule.hpp"
#include "sched/timeline.hpp"

namespace oneport {

/// One tentatively scheduled incoming message (one hop of a routed
/// transfer; `to` is the candidate processor itself for direct links).
struct CommDecision {
  TaskId src = kInvalidTask;
  ProcId from = -1;
  ProcId to = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Result of evaluating a (task, processor) pair.
struct Evaluation {
  TaskId task = kInvalidTask;
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
  std::vector<CommDecision> comms;
};

class EftEngine {
 public:
  enum class Model { kMacroDataflow, kOnePort };

  /// `routing` is optional (may be null): when provided, transfers between
  /// non-adjacent processors become store-and-forward chains along the
  /// routed path, each hop occupying its own pair of ports (the §4.3
  /// extension).  The table must outlive the engine.
  EftEngine(const TaskGraph& graph, const Platform& platform, Model model,
            const RoutingTable* routing = nullptr);

  /// Tentative placement of `v` on `proc`; requires all predecessors of
  /// `v` to be committed already.
  [[nodiscard]] Evaluation evaluate(TaskId v, ProcId proc) const;

  /// Evaluates every processor and returns the one with the earliest
  /// finish time (smallest processor id on ties).
  [[nodiscard]] Evaluation evaluate_best(TaskId v) const;

  /// Makes an evaluation permanent: reserves timelines and records the
  /// placement.
  void commit(const Evaluation& eval);

  [[nodiscard]] bool scheduled(TaskId v) const {
    return placements_[v].placed();
  }
  [[nodiscard]] const TaskPlacement& placement(TaskId v) const {
    return placements_[v];
  }
  /// True when every predecessor of `v` has been committed.
  [[nodiscard]] bool ready(TaskId v) const;

  /// Extracts the finished schedule; requires all tasks committed.
  [[nodiscard]] Schedule build_schedule() const;

  [[nodiscard]] const TaskGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] Model model() const noexcept { return model_; }

 private:
  const TaskGraph& graph_;
  const Platform& platform_;
  Model model_;
  const RoutingTable* routing_;
  std::vector<TaskPlacement> placements_;
  std::vector<CommPlacement> comms_;
  std::vector<Timeline> compute_;  // per processor
  std::vector<Timeline> send_;     // per processor (one-port only)
  std::vector<Timeline> recv_;     // per processor (one-port only)
};

}  // namespace oneport
