// Earliest-finish-time machinery shared by all list-scheduling heuristics.
//
// The engine owns the running state of a schedule under construction:
// committed task placements plus, per processor, a compute timeline and --
// in one-port mode -- a send-port and a receive-port timeline.
//
// The central operation is evaluate(v, proc): tentatively place task v on
// `proc`, which entails scheduling one incoming message per predecessor
// that sits on another processor.  Under the one-port model (§4.3) each
// message needs a joint free slot on the sender's send port and on
// `proc`'s receive port; messages reserved earlier *within the same
// evaluation* are tracked in overlays so they cannot collide with each
// other.  Under the macro-dataflow model messages simply travel during
// [finish(u), finish(u) + data*link).  Nothing is mutated until commit().
//
// Incoming messages are ordered by predecessor data-ready time (earliest
// finish first, task id on ties); the paper leaves this order open and
// "assigns the new communications as early as possible, in a greedy
// fashion", which this policy implements deterministically.
//
// Evaluation is allocation-free after warm-up: the engine keeps one
// reusable overlay per processor and port direction, invalidated lazily
// by an epoch counter bumped at the start of every evaluation, plus
// scratch vectors for the predecessor ordering and routed paths.  The
// scratch makes evaluate() non-reentrant: use one engine per thread.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "sched/schedule.hpp"
#include "sched/timeline.hpp"

namespace oneport {

/// One tentatively scheduled incoming message (one hop of a routed
/// transfer; `to` is the candidate processor itself for direct links).
struct CommDecision {
  TaskId src = kInvalidTask;
  ProcId from = -1;
  ProcId to = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Result of evaluating a (task, processor) pair.
struct Evaluation {
  TaskId task = kInvalidTask;
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
  std::vector<CommDecision> comms;
};

class EftEngine {
 public:
  enum class Model { kMacroDataflow, kOnePort };

  /// `routing` is optional (may be null): when provided, transfers between
  /// non-adjacent processors become store-and-forward chains along the
  /// routed path, each hop occupying its own pair of ports (the §4.3
  /// extension).  The table must outlive the engine.
  EftEngine(const TaskGraph& graph, const Platform& platform, Model model,
            const RoutingTable* routing = nullptr);

  /// Tentative placement of `v` on `proc`; requires all predecessors of
  /// `v` to be committed already.
  [[nodiscard]] Evaluation evaluate(TaskId v, ProcId proc) const;

  /// Same as evaluate(), writing into `out` so hot loops can recycle the
  /// comms vector's capacity across calls.
  void evaluate_into(TaskId v, ProcId proc, Evaluation& out) const;

  /// Evaluates every processor and returns the one with the earliest
  /// finish time (smallest processor id on ties).
  [[nodiscard]] Evaluation evaluate_best(TaskId v) const;

  /// Makes an evaluation permanent: reserves timelines and records the
  /// placement.
  void commit(const Evaluation& eval);

  [[nodiscard]] bool scheduled(TaskId v) const {
    return placements_[v].placed();
  }
  [[nodiscard]] const TaskPlacement& placement(TaskId v) const {
    return placements_[v];
  }
  /// True when every predecessor of `v` has been committed.  O(1): backed
  /// by an indegree counter decremented on commit, not a predecessor
  /// rescan.
  [[nodiscard]] bool ready(TaskId v) const {
    return pending_preds_[v] == 0;
  }

  /// Extracts the finished schedule; requires all tasks committed.
  [[nodiscard]] Schedule build_schedule() const;

  [[nodiscard]] const TaskGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] Model model() const noexcept { return model_; }

 private:
  /// Cheap lower bound on evaluate(v, proc).finish: predecessor finish
  /// plus minimum (routed) transfer time plus execution time, ignoring
  /// port contention and compute gaps.  Used to prune dominated
  /// candidates in evaluate_best without changing its result.
  [[nodiscard]] double finish_lower_bound(TaskId v, ProcId proc) const;

  /// Predecessors of `v` ordered by (finish asc, id asc), cached per
  /// task: predecessor placements are immutable once committed, so the
  /// order is shared across the whole candidate-processor scan.
  const std::vector<const EdgeRef*>& sorted_preds(TaskId v) const;

  /// Returns the per-processor scratch overlay for the current epoch,
  /// resetting it on first touch within this evaluation.
  TimelineOverlay& overlay_of(std::vector<TimelineOverlay>& overlays,
                              std::vector<std::uint64_t>& epochs,
                              const std::vector<TimelineIndex>& base,
                              ProcId p) const;

  const TaskGraph& graph_;
  const Platform& platform_;
  Model model_;
  const RoutingTable* routing_;
  std::vector<TaskPlacement> placements_;
  std::vector<CommPlacement> comms_;
  std::vector<TimelineIndex> compute_;  // per processor
  std::vector<TimelineIndex> send_;     // per processor (one-port only)
  std::vector<TimelineIndex> recv_;     // per processor (one-port only)
  std::vector<std::uint32_t> pending_preds_;  // uncommitted preds per task

  // Reusable evaluation scratch (see the header comment): overlays are
  // valid for the evaluation whose epoch stamp they carry; stale ones are
  // reset on first use instead of being reallocated.
  mutable std::uint64_t epoch_ = 0;
  mutable std::vector<TimelineOverlay> send_overlays_;
  mutable std::vector<TimelineOverlay> recv_overlays_;
  mutable std::vector<std::uint64_t> send_epochs_;
  mutable std::vector<std::uint64_t> recv_epochs_;
  mutable std::vector<const EdgeRef*> preds_scratch_;
  mutable TaskId preds_task_ = kInvalidTask;  ///< task preds_scratch_ is for
  /// Earliest send-port fit per entry of preds_scratch_ (one-port without
  /// routing only); see sorted_preds().
  mutable std::vector<double> releases_scratch_;
  mutable std::vector<ProcId> path_scratch_;
  mutable std::vector<std::pair<double, ProcId>> bounds_scratch_;
  std::vector<double> min_out_link_;  ///< per proc: min outgoing link cost
};

}  // namespace oneport
