// Earliest-finish-time machinery shared by all list-scheduling heuristics.
//
// The engine owns the running state of a schedule under construction:
// committed task placements plus, per processor, a compute timeline and --
// in one-port mode -- a send-port and a receive-port timeline.
//
// The central operation is evaluate(v, proc): tentatively place task v on
// `proc`, which entails scheduling one incoming message per predecessor
// that sits on another processor.  Under the one-port model (§4.3) each
// message needs a joint free slot on the sender's send port and on
// `proc`'s receive port; messages reserved earlier *within the same
// evaluation* are tracked in overlays so they cannot collide with each
// other.  Under the macro-dataflow model messages simply travel during
// [finish(u), finish(u) + data*link).  Nothing is mutated until commit().
//
// Incoming messages are ordered by predecessor data-ready time (earliest
// finish first, task id on ties); the paper leaves this order open and
// "assigns the new communications as early as possible, in a greedy
// fashion", which this policy implements deterministically.
//
// Hot-path layout: the engine walks either the TaskGraph's pointer layout
// or a TaskGraphSoA CSR view (graph/soa_view.hpp, selected by
// default_graph_path() at construction), caches the raw link/cycle-time/
// routing-distance arrays once, and folds each task's predecessors into
// contiguous PredRec lanes -- (finish, data, release, task, proc) sorted
// by data-ready time -- shared by every candidate-processor scan.  The
// finish lower bounds for *all* processors are produced in one pass over
// those lanes (per predecessor, one dense sweep across the processor
// lanes followed by an exact restore of the predecessor's own lane),
// which is bit-identical to the per-processor scalar recurrence because
// each lane sees the same operations in the same order.
//
// Evaluation is allocation-free after warm-up: the engine keeps one
// reusable overlay per processor and port direction, invalidated lazily
// by an epoch counter bumped at the start of every evaluation, plus
// scratch for the predecessor lanes, routed paths, candidate bounds and
// the evaluate_best result itself (returned by reference).  The scratch
// makes evaluate()/evaluate_best() non-reentrant: use one engine per
// thread.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/soa_view.hpp"
#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "sched/schedule.hpp"
#include "sched/timeline.hpp"

namespace oneport {

/// One tentatively scheduled incoming message (one hop of a routed
/// transfer; `to` is the candidate processor itself for direct links).
struct CommDecision {
  TaskId src = kInvalidTask;
  ProcId from = -1;
  ProcId to = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Result of evaluating a (task, processor) pair.
struct Evaluation {
  TaskId task = kInvalidTask;
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
  std::vector<CommDecision> comms;
};

class EftEngine {
 public:
  enum class Model { kMacroDataflow, kOnePort };

  /// `routing` is optional (may be null): when provided, transfers between
  /// non-adjacent processors become store-and-forward chains along the
  /// routed path, each hop occupying its own pair of ports (the §4.3
  /// extension).  The table must outlive the engine, as must the graph
  /// and the platform.
  EftEngine(const TaskGraph& graph, const Platform& platform, Model model,
            const RoutingTable* routing = nullptr);

  /// Tentative placement of `v` on `proc`; requires all predecessors of
  /// `v` to be committed already.
  [[nodiscard]] Evaluation evaluate(TaskId v, ProcId proc) const;

  /// Same as evaluate(), writing into `out` so hot loops can recycle the
  /// comms vector's capacity across calls.
  void evaluate_into(TaskId v, ProcId proc, Evaluation& out) const;

  /// Evaluates every processor and returns the one with the earliest
  /// finish time (smallest processor id on ties).  The reference points
  /// into engine-owned scratch: it is valid until the next
  /// evaluate_best() call on this engine (copy it to keep it longer).
  [[nodiscard]] const Evaluation& evaluate_best(TaskId v) const;

  /// Makes an evaluation permanent: reserves timelines and records the
  /// placement.
  void commit(const Evaluation& eval);

  [[nodiscard]] bool scheduled(TaskId v) const {
    return placements_[v].placed();
  }
  [[nodiscard]] const TaskPlacement& placement(TaskId v) const {
    return placements_[v];
  }
  /// True when every predecessor of `v` has been committed.  O(1): backed
  /// by an indegree counter decremented on commit, not a predecessor
  /// rescan.
  [[nodiscard]] bool ready(TaskId v) const {
    return pending_preds_[v] == 0;
  }

  /// Extracts the finished schedule; requires all tasks committed.
  /// Bulk-exports the engine's arena-backed placement and comm records
  /// through Schedule's vector constructor (no per-record push_back).
  [[nodiscard]] Schedule build_schedule() const;

  [[nodiscard]] const TaskGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] Model model() const noexcept { return model_; }
  /// Which adjacency layout this engine's hot loops traverse (fixed at
  /// construction from default_graph_path()).
  [[nodiscard]] GraphPath graph_path() const noexcept {
    return soa_.has_value() ? GraphPath::kSoa : GraphPath::kPointer;
  }

 private:
  /// One predecessor of the task under evaluation, flattened into the
  /// lane layout the hot loops consume: committed finish time, edge data
  /// volume, send-port release bound (one-port without routing only),
  /// and the predecessor's identity.
  struct PredRec {
    double finish = 0.0;
    double data = 0.0;
    double release = 0.0;
    TaskId task = kInvalidTask;
    ProcId proc = -1;
  };

  // Layout-dispatched adjacency reads (one predictable branch; the SoA
  // lanes additionally skip TaskGraph's per-call bounds checks).
  [[nodiscard]] std::span<const EdgeRef> preds_of(TaskId v) const {
    return soa_ ? soa_->predecessors(v) : graph_.predecessors(v);
  }
  [[nodiscard]] std::span<const EdgeRef> succs_of(TaskId v) const {
    return soa_ ? soa_->successors(v) : graph_.successors(v);
  }
  [[nodiscard]] double weight_of(TaskId v) const {
    return soa_ ? soa_->weight(v) : graph_.weight(v);
  }

  /// Fills bounds_scratch_ with (finish lower bound, proc) for every
  /// processor in one pass over the predecessor lanes; see the header
  /// comment for the exactness argument.  Sound lower bounds on
  /// evaluate(v, p).finish, used to prune dominated candidates in
  /// evaluate_best without changing its result.  Leaves arr_scratch_
  /// holding the per-processor arrival bounds so evaluate_best can
  /// tighten individual keys through the compute timeline on demand.
  void fill_bounds(TaskId v) const;

  /// evaluate_into with an abandon threshold: once the partial message
  /// arrival proves finish > cutoff, the scan stops early with `out`
  /// holding only a (finish lower bound > cutoff, partial comms) stub.
  /// Exact for pruning: such a candidate can neither win nor eps-tie.
  /// Pass +inf (the public entry points do) to force a full evaluation.
  void evaluate_into(TaskId v, ProcId proc, Evaluation& out,
                     double cutoff) const;

  /// Predecessor lanes of `v` ordered by (finish asc, id asc), cached per
  /// task: predecessor placements are immutable once committed, so the
  /// order is shared across the whole candidate-processor scan.
  const std::vector<PredRec>& sorted_preds(TaskId v) const;

  /// Returns the per-processor scratch overlay for the current epoch,
  /// resetting it on first touch within this evaluation.
  TimelineOverlay& overlay_of(std::vector<TimelineOverlay>& overlays,
                              std::vector<std::uint64_t>& epochs,
                              const std::vector<TimelineIndex>& base,
                              ProcId p) const;

  const TaskGraph& graph_;
  const Platform& platform_;
  Model model_;
  const RoutingTable* routing_;
  std::optional<TaskGraphSoA> soa_;  ///< built when the SoA path is active
  std::size_t np_ = 0;               ///< processor count
  const double* link_data_ = nullptr;   ///< row-major p x p link matrix
  const double* cycle_data_ = nullptr;  ///< per-proc cycle times
  const double* dist_data_ = nullptr;   ///< routed distances (null if none)
  std::vector<TaskPlacement> placements_;
  std::vector<CommPlacement> comms_;
  std::vector<TimelineIndex> compute_;  // per processor
  std::vector<TimelineIndex> send_;     // per processor (one-port only)
  std::vector<TimelineIndex> recv_;     // per processor (one-port only)
  std::vector<std::uint32_t> pending_preds_;  // uncommitted preds per task

  // Reusable evaluation scratch (see the header comment): overlays are
  // valid for the evaluation whose epoch stamp they carry; stale ones are
  // reset on first use instead of being reallocated.
  mutable std::uint64_t epoch_ = 0;
  mutable std::vector<TimelineOverlay> send_overlays_;
  mutable std::vector<TimelineOverlay> recv_overlays_;
  mutable std::vector<std::uint64_t> send_epochs_;
  mutable std::vector<std::uint64_t> recv_epochs_;
  mutable std::vector<PredRec> preds_;
  mutable TaskId preds_task_ = kInvalidTask;  ///< task preds_ is for
  mutable std::vector<ProcId> path_scratch_;
  mutable std::vector<std::pair<double, ProcId>> bounds_scratch_;
  /// Probed (timeline-tightened) candidate keys, descending, so the
  /// current global minimum sits at the back; see evaluate_best.
  mutable std::vector<std::pair<double, ProcId>> tight_scratch_;
  mutable std::vector<double> chain_scratch_;  ///< per-proc ERD chain lane
  mutable std::vector<double> arr_scratch_;    ///< per-proc arrival lane
  mutable Evaluation best_scratch_;  ///< evaluate_best result storage
  mutable Evaluation cand_scratch_;
  /// Tentative receive-port reservations for the overlay-free fast path
  /// in evaluate_into, kept sorted by start exactly like the extras of a
  /// TimelineOverlay over the candidate processor's receive port.
  mutable std::vector<Interval> recv_extras_;
  std::vector<double> min_out_link_;  ///< per proc: min outgoing link cost
};

}  // namespace oneport
