// GDL -- Generalized Dynamic Level scheduling (Sih & Lee), adapted to the
// one-port model.  Another baseline from the comparison set of the
// paper's predecessor study [3].
//
// The dynamic level of a ready task v on processor p is
//     DL(v, p) = SL(v) - max(DA(v, p), TF(p)) + Delta(v, p)
// where SL is the static level (bottom level without communication
// charges, computed with the harmonic-mean cycle time), DA the time v's
// data is available on p, TF the time p finishes its committed work, and
// Delta(v, p) = w(v) * (H(t) - t_p) rewards placing v on faster-than-
// average machines.  Each step commits the (ready task, processor) pair
// of maximum dynamic level.  The one-port adaptation computes DA and the
// start time with the same greedy port-reservation evaluation HEFT uses.
#pragma once

#include "core/eft_engine.hpp"
#include "sched/schedule.hpp"

namespace oneport {

struct GdlOptions {
  EftEngine::Model model = EftEngine::Model::kOnePort;
  const RoutingTable* routing = nullptr;
};

/// Runs GDL and returns a complete schedule.
[[nodiscard]] Schedule gdl(const TaskGraph& graph, const Platform& platform,
                           const GdlOptions& options = {});

}  // namespace oneport
