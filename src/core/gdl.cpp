#include "core/gdl.hpp"

#include <algorithm>
#include <vector>

#include "graph/graph_algorithms.hpp"
#include "util/error.hpp"

namespace oneport {

Schedule gdl(const TaskGraph& graph, const Platform& platform,
             const GdlOptions& options) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  // Static levels: computation only (GDL charges communications through
  // the DA term, not the level).
  const std::vector<double> sl =
      bottom_levels(graph, platform.harmonic_mean_cycle_time(), 0.0);
  const double mean_cycle = platform.harmonic_mean_cycle_time();

  EftEngine engine(graph, platform, options.model, options.routing);

  std::vector<TaskId> ready;
  std::vector<std::size_t> waiting(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    waiting[v] = graph.in_degree(v);
    if (waiting[v] == 0) ready.push_back(v);
  }

  while (!ready.empty()) {
    std::size_t chosen = 0;
    Evaluation chosen_eval;
    double chosen_dl = 0.0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const TaskId v = ready[i];
      for (ProcId p = 0; p < platform.num_processors(); ++p) {
        Evaluation eval = engine.evaluate(v, p);
        // eval.start already is max(DA, TF) after gap search.
        const double delta =
            graph.weight(v) * (mean_cycle - platform.cycle_time(p));
        const double dl = sl[v] - eval.start + delta;
        if (chosen_eval.proc < 0 || dl > chosen_dl + kTimeEps) {
          chosen = i;
          chosen_dl = dl;
          chosen_eval = std::move(eval);
        }
      }
    }
    engine.commit(chosen_eval);
    const TaskId done = ready[chosen];
    ready.erase(ready.begin() + static_cast<long>(chosen));
    for (const EdgeRef& e : graph.successors(done)) {
      if (--waiting[e.task] == 0) {
        const auto pos = std::lower_bound(ready.begin(), ready.end(), e.task);
        ready.insert(pos, e.task);
      }
    }
  }
  return engine.build_schedule();
}

}  // namespace oneport
