// Name-based scheduler registry so that examples and benchmark harnesses
// can select heuristics from the command line.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport {

using SchedulerFn =
    std::function<Schedule(const TaskGraph&, const Platform&)>;

struct SchedulerEntry {
  std::string name;         ///< e.g. "ilha-oneport"
  std::string description;  ///< one-line human description
  SchedulerFn run;
};

/// All built-in schedulers.  `ilha_chunk_size` parameterizes the two ILHA
/// entries (the paper tunes B per testbed).
[[nodiscard]] std::vector<SchedulerEntry> builtin_schedulers(
    int ilha_chunk_size = 38);

/// Looks a scheduler up by name; throws std::invalid_argument with the
/// list of known names when absent.
[[nodiscard]] SchedulerEntry find_scheduler(const std::string& name,
                                            int ilha_chunk_size = 38);

}  // namespace oneport
