// Name-based scheduler registry so that examples and benchmark harnesses
// can select heuristics from the command line.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "sched/schedule.hpp"

namespace oneport {

using SchedulerFn =
    std::function<Schedule(const TaskGraph&, const Platform&)>;

struct SchedulerEntry {
  std::string name;         ///< e.g. "ilha-oneport"
  std::string description;  ///< one-line human description
  SchedulerFn run;
};

/// Shared knobs threaded to every registered heuristic.
struct SchedulerConfig {
  /// Parameterizes the two ILHA entries (the paper tunes B per testbed).
  int ilha_chunk_size = 38;
  /// Optional routing table for sparse networks: when set, every entry
  /// schedules store-and-forward chains along the routed paths.  Captured
  /// by pointer -- the table must outlive the returned entries.
  const RoutingTable* routing = nullptr;
};

/// All built-in schedulers under `config`.
[[nodiscard]] std::vector<SchedulerEntry> builtin_schedulers(
    const SchedulerConfig& config);

/// Convenience overload for fully-connected platforms.
[[nodiscard]] std::vector<SchedulerEntry> builtin_schedulers(
    int ilha_chunk_size = 38);

/// Looks a scheduler up by name; throws std::invalid_argument with the
/// list of known names when absent.
[[nodiscard]] SchedulerEntry find_scheduler(const std::string& name,
                                            const SchedulerConfig& config);
[[nodiscard]] SchedulerEntry find_scheduler(const std::string& name,
                                            int ilha_chunk_size = 38);

}  // namespace oneport
