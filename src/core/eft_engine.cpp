#include "core/eft_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace oneport {

EftEngine::EftEngine(const TaskGraph& graph, const Platform& platform,
                     Model model, const RoutingTable* routing)
    : graph_(graph),
      platform_(platform),
      model_(model),
      routing_(routing),
      placements_(graph.num_tasks()),
      compute_(static_cast<std::size_t>(platform.num_processors())),
      send_(static_cast<std::size_t>(platform.num_processors())),
      recv_(static_cast<std::size_t>(platform.num_processors())),
      pending_preds_(graph.num_tasks()),
      send_overlays_(static_cast<std::size_t>(platform.num_processors())),
      recv_overlays_(static_cast<std::size_t>(platform.num_processors())),
      send_epochs_(static_cast<std::size_t>(platform.num_processors()), 0),
      recv_epochs_(static_cast<std::size_t>(platform.num_processors()), 0) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  OP_REQUIRE(routing == nullptr ||
                 routing->num_processors() == platform.num_processors(),
             "routing table does not match the platform");
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    pending_preds_[v] = static_cast<std::uint32_t>(graph.in_degree(v));
  }
  // Smallest outgoing link cost per processor, for the send-port release
  // bound (a message leaving q occupies its send port for at least
  // data * min_out_link_[q], whatever the destination).
  min_out_link_.assign(static_cast<std::size_t>(platform.num_processors()),
                       0.0);
  for (ProcId q = 0; q < platform.num_processors(); ++q) {
    double lo = std::numeric_limits<double>::infinity();
    for (ProcId r = 0; r < platform.num_processors(); ++r) {
      if (r != q) lo = std::min(lo, platform.link(q, r));
    }
    min_out_link_[static_cast<std::size_t>(q)] =
        std::isfinite(lo) ? lo : 0.0;
  }
}

TimelineOverlay& EftEngine::overlay_of(
    std::vector<TimelineOverlay>& overlays, std::vector<std::uint64_t>& epochs,
    const std::vector<TimelineIndex>& base, ProcId p) const {
  const auto i = static_cast<std::size_t>(p);
  if (epochs[i] != epoch_) {
    overlays[i].reset(base[i]);
    epochs[i] = epoch_;
  }
  return overlays[i];
}

const std::vector<const EdgeRef*>& EftEngine::sorted_preds(TaskId v) const {
  // Predecessors ordered by data-ready time (finish asc, id asc).  The
  // order only depends on committed placements of v's predecessors,
  // which are immutable once placed, so it is computed once per task and
  // shared by every candidate-processor evaluation and lower bound.
  if (preds_task_ == v) return preds_scratch_;
  preds_task_ = kInvalidTask;  // invalidate first: the fill below can throw
  preds_scratch_.clear();
  for (const EdgeRef& e : graph_.predecessors(v)) {
    OP_REQUIRE(placements_[e.task].placed(),
               "predecessor " << e.task << " of " << v << " not scheduled");
    preds_scratch_.push_back(&e);
  }
  std::sort(preds_scratch_.begin(), preds_scratch_.end(),
            [this](const EdgeRef* a, const EdgeRef* b) {
              const double fa = placements_[a->task].finish;
              const double fb = placements_[b->task].finish;
              if (fa != fb) return fa < fb;
              return a->task < b->task;
            });
  // Per-predecessor message release times for the one-port lower bound:
  // a message from q can leave no earlier than the first slot on q's
  // committed send port that fits the smallest possible transfer.  Port
  // reservations only grow, so a release computed now stays a valid
  // lower bound even if other commits land before the next evaluation.
  if (model_ == Model::kOnePort && routing_ == nullptr) {
    releases_scratch_.clear();
    for (const EdgeRef* e : preds_scratch_) {
      const TaskPlacement& src = placements_[e->task];
      const auto q = static_cast<std::size_t>(src.proc);
      const double min_duration = e->data * min_out_link_[q];
      releases_scratch_.push_back(
          min_duration <= kTimeEps
              ? src.finish
              : send_[q].next_fit(src.finish, min_duration));
    }
  }
  preds_task_ = v;
  return preds_scratch_;
}

void EftEngine::evaluate_into(TaskId v, ProcId proc, Evaluation& out) const {
  OP_REQUIRE(proc >= 0 && proc < platform_.num_processors(),
             "processor out of range");
  OP_REQUIRE(!scheduled(v), "task " << v << " already scheduled");

  out.task = v;
  out.proc = proc;
  out.comms.clear();

  const std::vector<const EdgeRef*>& preds = sorted_preds(v);

  // A new epoch lazily invalidates every scratch overlay from the
  // previous evaluation.
  ++epoch_;
  double arrival = 0.0;
  for (const EdgeRef* e : preds) {
    const TaskPlacement& src = placements_[e->task];
    if (src.proc == proc) {
      arrival = std::max(arrival, src.finish);
      continue;
    }
    // Routed path (direct {q, proc} when no routing table is set); each
    // hop is a store-and-forward message.
    path_scratch_.clear();
    if (routing_ != nullptr) {
      routing_->path_into(src.proc, proc, path_scratch_);
    } else {
      path_scratch_.push_back(src.proc);
      path_scratch_.push_back(proc);
    }
    double cursor = src.finish;
    for (std::size_t h = 0; h + 1 < path_scratch_.size(); ++h) {
      const ProcId a = path_scratch_[h];
      const ProcId b = path_scratch_[h + 1];
      const double duration = platform_.comm_time(e->data, a, b);
      OP_REQUIRE(std::isfinite(duration),
                 "no direct link P" << a << "->P" << b
                                    << " and no routing table provided");
      double start = cursor;
      if (model_ == Model::kOnePort) {
        TimelineOverlay& send_ov =
            overlay_of(send_overlays_, send_epochs_, send_, a);
        TimelineOverlay& recv_ov =
            overlay_of(recv_overlays_, recv_epochs_, recv_, b);
        start = earliest_joint_fit(send_ov, recv_ov, cursor, duration);
        send_ov.add(start, start + duration);
        recv_ov.add(start, start + duration);
      }
      out.comms.push_back({e->task, a, b, start, start + duration});
      cursor = start + duration;
    }
    arrival = std::max(arrival, cursor);
  }

  const double exec = platform_.exec_time(graph_.weight(v), proc);
  out.start =
      compute_[static_cast<std::size_t>(proc)].next_fit(arrival, exec);
  out.finish = out.start + exec;
}

Evaluation EftEngine::evaluate(TaskId v, ProcId proc) const {
  Evaluation eval;
  evaluate_into(v, proc, eval);
  return eval;
}

double EftEngine::finish_lower_bound(TaskId v, ProcId proc) const {
  // Every incoming message needs at least its (routed) transfer time
  // after the predecessor finishes, and the task itself needs its
  // execution time; port contention and compute gaps only push the real
  // finish later.  Sound, so pruning on it cannot change evaluate_best's
  // answer.
  //
  // Under the one-port model with direct links the bound is tightened by
  // the receive port: all incoming messages occupy proc's receive port
  // disjointly, each releasable only once its source finished, so the
  // earliest-release-date chain over the (finish-sorted) predecessors
  // lower-bounds the last message arrival -- any feasible disjoint
  // placement finishes no earlier than the ERD sequence.
  double arrival = 0.0;
  if (model_ == Model::kOnePort && routing_ == nullptr) {
    // The ERD chain must walk nondecreasing release dates to stay a
    // lower bound; predecessor finishes are already finish-sorted, so
    // the chain uses them, while the (possibly unsorted) send-port
    // releases contribute per-message bounds release + duration.
    double chain = 0.0;
    const std::vector<const EdgeRef*>& preds = sorted_preds(v);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const EdgeRef* e = preds[i];
      const TaskPlacement& src = placements_[e->task];
      if (src.proc == proc) {
        arrival = std::max(arrival, src.finish);
      } else {
        const double duration =
            platform_.comm_time(e->data, src.proc, proc);
        chain = std::max(chain, src.finish) + duration;
        arrival = std::max(arrival, releases_scratch_[i] + duration);
      }
    }
    arrival = std::max(arrival, chain);
  } else {
    for (const EdgeRef& e : graph_.predecessors(v)) {
      const TaskPlacement& src = placements_[e.task];
      double ready = src.finish;
      if (src.proc != proc) {
        ready += routing_ != nullptr
                     ? e.data * routing_->distance(src.proc, proc)
                     : platform_.comm_time(e.data, src.proc, proc);
      }
      arrival = std::max(arrival, ready);
    }
  }
  // Tighten through the compute timeline: the task cannot start before
  // the earliest compute slot at or after the arrival bound (next_fit is
  // monotone in `ready`, so a lower bound on arrival gives a lower bound
  // on the start).
  const double exec = platform_.exec_time(graph_.weight(v), proc);
  const double start =
      compute_[static_cast<std::size_t>(proc)].next_fit(arrival, exec);
  return start + exec;
}

Evaluation EftEngine::evaluate_best(TaskId v) const {
  // Evaluate candidates in ascending lower-bound order: the first
  // evaluation is then almost always the eventual winner, and every
  // candidate whose bound lies strictly beyond the winner's tolerance
  // band is pruned without scheduling a single tentative message.  The
  // winner minimizes (finish, processor id) under the usual kTimeEps
  // tolerance -- the documented contract; pruning uses the strict
  // `bound > best.finish + kTimeEps` test so a candidate eps-tied with
  // the current best is never pruned away from the id tie-break.
  // Caveat: the eps tolerance is not transitive, so in a chain of
  // pairwise-within-eps finishes (differences below 1e-7, never
  // observed from real inputs) the pick can depend on the bound order.
  bounds_scratch_.clear();
  for (ProcId p = 0; p < platform_.num_processors(); ++p) {
    bounds_scratch_.emplace_back(finish_lower_bound(v, p), p);
  }
  std::sort(bounds_scratch_.begin(), bounds_scratch_.end());

  Evaluation best;
  Evaluation candidate;
  for (const auto& [bound, p] : bounds_scratch_) {
    // A non-finite bound means a missing link: fall through so
    // evaluate_into reports it exactly as an exhaustive scan would.
    if (best.proc >= 0 && std::isfinite(bound) &&
        bound > best.finish + kTimeEps) {
      continue;
    }
    evaluate_into(v, p, candidate);
    if (best.proc < 0 || candidate.finish < best.finish - kTimeEps ||
        (candidate.finish <= best.finish + kTimeEps &&
         candidate.proc < best.proc)) {
      std::swap(best, candidate);
    }
  }
  return best;
}

void EftEngine::commit(const Evaluation& eval) {
  OP_REQUIRE(eval.task != kInvalidTask && eval.proc >= 0,
             "cannot commit an empty evaluation");
  OP_REQUIRE(!scheduled(eval.task),
             "task " << eval.task << " already scheduled");
  for (const CommDecision& c : eval.comms) {
    if (model_ == Model::kOnePort) {
      send_[static_cast<std::size_t>(c.from)].reserve(c.start, c.finish);
      recv_[static_cast<std::size_t>(c.to)].reserve(c.start, c.finish);
    }
    comms_.push_back({c.src, eval.task, c.from, c.to, c.start, c.finish});
  }
  compute_[static_cast<std::size_t>(eval.proc)].reserve(eval.start,
                                                        eval.finish);
  placements_[eval.task] = TaskPlacement{eval.proc, eval.start, eval.finish};
  for (const EdgeRef& e : graph_.successors(eval.task)) {
    OP_ASSERT(pending_preds_[e.task] > 0,
              "indegree counter underflow at task " << e.task);
    --pending_preds_[e.task];
  }
}

Schedule EftEngine::build_schedule() const {
  Schedule schedule(graph_.num_tasks());
  for (TaskId v = 0; v < graph_.num_tasks(); ++v) {
    OP_REQUIRE(placements_[v].placed(), "task " << v << " never scheduled");
    schedule.place_task(v, placements_[v].proc, placements_[v].start,
                        placements_[v].finish);
  }
  for (const CommPlacement& c : comms_) schedule.add_comm(c);
  return schedule;
}

}  // namespace oneport
