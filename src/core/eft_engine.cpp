#include "core/eft_engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/error.hpp"

namespace oneport {

EftEngine::EftEngine(const TaskGraph& graph, const Platform& platform,
                     Model model, const RoutingTable* routing)
    : graph_(graph),
      platform_(platform),
      model_(model),
      routing_(routing),
      placements_(graph.num_tasks()),
      compute_(static_cast<std::size_t>(platform.num_processors())),
      send_(static_cast<std::size_t>(platform.num_processors())),
      recv_(static_cast<std::size_t>(platform.num_processors())) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  OP_REQUIRE(routing == nullptr ||
                 routing->num_processors() == platform.num_processors(),
             "routing table does not match the platform");
}

bool EftEngine::ready(TaskId v) const {
  for (const EdgeRef& e : graph_.predecessors(v)) {
    if (!placements_[e.task].placed()) return false;
  }
  return true;
}

namespace {

/// Lazily created per-processor overlays so that hops reserved within one
/// evaluation cannot collide with each other.
class OverlaySet {
 public:
  explicit OverlaySet(const std::vector<Timeline>& base) : base_(base) {
    overlays_.resize(base.size());
  }

  TimelineOverlay& of(ProcId p) {
    auto& slot = overlays_[static_cast<std::size_t>(p)];
    if (!slot) {
      slot = std::make_unique<TimelineOverlay>(
          base_[static_cast<std::size_t>(p)]);
    }
    return *slot;
  }

 private:
  const std::vector<Timeline>& base_;
  std::vector<std::unique_ptr<TimelineOverlay>> overlays_;
};

}  // namespace

Evaluation EftEngine::evaluate(TaskId v, ProcId proc) const {
  OP_REQUIRE(proc >= 0 && proc < platform_.num_processors(),
             "processor out of range");
  OP_REQUIRE(!scheduled(v), "task " << v << " already scheduled");

  Evaluation eval;
  eval.task = v;
  eval.proc = proc;

  // Predecessors ordered by data-ready time (finish asc, id asc).
  std::vector<const EdgeRef*> preds;
  preds.reserve(graph_.in_degree(v));
  for (const EdgeRef& e : graph_.predecessors(v)) {
    OP_REQUIRE(placements_[e.task].placed(),
               "predecessor " << e.task << " of " << v << " not scheduled");
    preds.push_back(&e);
  }
  std::sort(preds.begin(), preds.end(),
            [this](const EdgeRef* a, const EdgeRef* b) {
              const double fa = placements_[a->task].finish;
              const double fb = placements_[b->task].finish;
              if (fa != fb) return fa < fb;
              return a->task < b->task;
            });

  double arrival = 0.0;
  OverlaySet sends(send_);
  OverlaySet recvs(recv_);
  for (const EdgeRef* e : preds) {
    const TaskPlacement& src = placements_[e->task];
    if (src.proc == proc) {
      arrival = std::max(arrival, src.finish);
      continue;
    }
    // Routed path (direct {q, proc} when no routing table is set); each
    // hop is a store-and-forward message.
    std::vector<ProcId> path;
    if (routing_ != nullptr) {
      path = routing_->path(src.proc, proc);
    } else {
      path = {src.proc, proc};
    }
    double cursor = src.finish;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const ProcId a = path[h];
      const ProcId b = path[h + 1];
      const double duration = platform_.comm_time(e->data, a, b);
      OP_REQUIRE(std::isfinite(duration),
                 "no direct link P" << a << "->P" << b
                                    << " and no routing table provided");
      double start = cursor;
      if (model_ == Model::kOnePort) {
        start = earliest_joint_fit(sends.of(a), recvs.of(b), cursor,
                                   duration);
        sends.of(a).add(start, start + duration);
        recvs.of(b).add(start, start + duration);
      }
      eval.comms.push_back({e->task, a, b, start, start + duration});
      cursor = start + duration;
    }
    arrival = std::max(arrival, cursor);
  }

  const double exec = platform_.exec_time(graph_.weight(v), proc);
  eval.start =
      compute_[static_cast<std::size_t>(proc)].next_fit(arrival, exec);
  eval.finish = eval.start + exec;
  return eval;
}

Evaluation EftEngine::evaluate_best(TaskId v) const {
  Evaluation best;
  for (ProcId p = 0; p < platform_.num_processors(); ++p) {
    Evaluation candidate = evaluate(v, p);
    if (best.proc < 0 || candidate.finish < best.finish - kTimeEps) {
      best = std::move(candidate);
    }
  }
  return best;
}

void EftEngine::commit(const Evaluation& eval) {
  OP_REQUIRE(eval.task != kInvalidTask && eval.proc >= 0,
             "cannot commit an empty evaluation");
  OP_REQUIRE(!scheduled(eval.task),
             "task " << eval.task << " already scheduled");
  for (const CommDecision& c : eval.comms) {
    if (model_ == Model::kOnePort) {
      send_[static_cast<std::size_t>(c.from)].reserve(c.start, c.finish);
      recv_[static_cast<std::size_t>(c.to)].reserve(c.start, c.finish);
    }
    comms_.push_back({c.src, eval.task, c.from, c.to, c.start, c.finish});
  }
  compute_[static_cast<std::size_t>(eval.proc)].reserve(eval.start,
                                                        eval.finish);
  placements_[eval.task] = TaskPlacement{eval.proc, eval.start, eval.finish};
}

Schedule EftEngine::build_schedule() const {
  Schedule schedule(graph_.num_tasks());
  for (TaskId v = 0; v < graph_.num_tasks(); ++v) {
    OP_REQUIRE(placements_[v].placed(), "task " << v << " never scheduled");
    schedule.place_task(v, placements_[v].proc, placements_[v].start,
                        placements_[v].finish);
  }
  for (const CommPlacement& c : comms_) schedule.add_comm(c);
  return schedule;
}

}  // namespace oneport
