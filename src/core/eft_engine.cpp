#include "core/eft_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/profiler.hpp"

namespace oneport {

EftEngine::EftEngine(const TaskGraph& graph, const Platform& platform,
                     Model model, const RoutingTable* routing)
    : graph_(graph),
      platform_(platform),
      model_(model),
      routing_(routing),
      np_(static_cast<std::size_t>(platform.num_processors())),
      link_data_(platform.link_matrix().data()),
      cycle_data_(platform.cycle_times().data()),
      dist_data_(routing != nullptr ? routing->distances().data() : nullptr),
      placements_(graph.num_tasks()),
      compute_(static_cast<std::size_t>(platform.num_processors())),
      send_(static_cast<std::size_t>(platform.num_processors())),
      recv_(static_cast<std::size_t>(platform.num_processors())),
      pending_preds_(graph.num_tasks()),
      send_overlays_(static_cast<std::size_t>(platform.num_processors())),
      recv_overlays_(static_cast<std::size_t>(platform.num_processors())),
      send_epochs_(static_cast<std::size_t>(platform.num_processors()), 0),
      recv_epochs_(static_cast<std::size_t>(platform.num_processors()), 0) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  OP_REQUIRE(routing == nullptr ||
                 routing->num_processors() == platform.num_processors(),
             "routing table does not match the platform");
  if (default_graph_path() == GraphPath::kSoa) soa_.emplace(graph);
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    pending_preds_[v] = static_cast<std::uint32_t>(graph.in_degree(v));
  }
  // Smallest outgoing link cost per processor, for the send-port release
  // bound (a message leaving q occupies its send port for at least
  // data * min_out_link_[q], whatever the destination).
  min_out_link_.assign(static_cast<std::size_t>(platform.num_processors()),
                       0.0);
  for (ProcId q = 0; q < platform.num_processors(); ++q) {
    double lo = std::numeric_limits<double>::infinity();
    for (ProcId r = 0; r < platform.num_processors(); ++r) {
      if (r != q) lo = std::min(lo, platform.link(q, r));
    }
    min_out_link_[static_cast<std::size_t>(q)] =
        std::isfinite(lo) ? lo : 0.0;
  }
}

TimelineOverlay& EftEngine::overlay_of(
    std::vector<TimelineOverlay>& overlays, std::vector<std::uint64_t>& epochs,
    const std::vector<TimelineIndex>& base, ProcId p) const {
  const auto i = static_cast<std::size_t>(p);
  if (epochs[i] != epoch_) {
    prof::bump(prof::Counter::kOverlayResets);
    overlays[i].reset(base[i]);
    epochs[i] = epoch_;
  }
  return overlays[i];
}

const std::vector<EftEngine::PredRec>& EftEngine::sorted_preds(
    TaskId v) const {
  // Predecessor lanes ordered by data-ready time (finish asc, id asc).
  // The order only depends on committed placements of v's predecessors,
  // which are immutable once placed, so it is computed once per task and
  // shared by every candidate-processor evaluation and lower bound.
  if (preds_task_ == v) return preds_;
  preds_task_ = kInvalidTask;  // invalidate first: the fill below can throw
  preds_.clear();
  for (const EdgeRef& e : preds_of(v)) {
    const TaskPlacement& src = placements_[e.task];
    OP_REQUIRE(src.placed(),
               "predecessor " << e.task << " of " << v << " not scheduled");
    preds_.push_back({src.finish, e.data, 0.0, e.task, src.proc});
  }
  // The sort key (finish, task) is a strict total order (ids are unique),
  // so any correct sort yields the same permutation; small fan-ins take
  // the branch-light insertion sort.
  const auto before = [](const PredRec& a, const PredRec& b) {
    if (a.finish != b.finish) return a.finish < b.finish;
    return a.task < b.task;
  };
  if (preds_.size() <= 16) {
    for (std::size_t i = 1; i < preds_.size(); ++i) {
      const PredRec key = preds_[i];
      std::size_t j = i;
      for (; j > 0 && before(key, preds_[j - 1]); --j) preds_[j] = preds_[j - 1];
      preds_[j] = key;
    }
  } else {
    std::sort(preds_.begin(), preds_.end(), before);
  }
  // Per-predecessor message release times for the one-port lower bound:
  // a message from q can leave no earlier than the first slot on q's
  // committed send port that fits the smallest possible transfer.  Port
  // reservations only grow, so a release computed now stays a valid
  // lower bound even if other commits land before the next evaluation.
  if (model_ == Model::kOnePort && routing_ == nullptr) {
    for (PredRec& r : preds_) {
      const auto q = static_cast<std::size_t>(r.proc);
      const double min_duration = r.data * min_out_link_[q];
      r.release = min_duration <= kTimeEps
                      ? r.finish
                      : send_[q].next_fit(r.finish, min_duration);
    }
  }
  preds_task_ = v;
  return preds_;
}

void EftEngine::evaluate_into(TaskId v, ProcId proc, Evaluation& out) const {
  evaluate_into(v, proc, out, std::numeric_limits<double>::infinity());
}

void EftEngine::evaluate_into(TaskId v, ProcId proc, Evaluation& out,
                              double cutoff) const {
  OP_REQUIRE(proc >= 0 && proc < platform_.num_processors(),
             "processor out of range");
  OP_REQUIRE(!scheduled(v), "task " << v << " already scheduled");

  out.task = v;
  out.proc = proc;
  out.comms.clear();

  const std::vector<PredRec>& preds = sorted_preds(v);
  const double exec = weight_of(v) * cycle_data_[proc];

  // Overlay-free fast path (one-port, direct links): when every cross
  // predecessor sits on a *distinct* sender, no send port ever carries
  // more than one tentative message within this evaluation, so the
  // committed send timelines can be probed directly -- a sender overlay
  // with no extras forwards every probe to its base verbatim.  Only the
  // receive port of `proc` accumulates tentative reservations; they live
  // in a start-sorted scratch whose probe below mirrors
  // TimelineOverlay::next_fit operation for operation (horizon shortcut,
  // base probe, ordered absorb pass to a fixpoint), so the resulting
  // evaluation is bit-identical to the general path's.  Overlays are
  // never touched here, which makes skipping the epoch bump safe: every
  // general evaluation still bumps before reading one.
  if (model_ == Model::kOnePort && routing_ == nullptr && np_ <= 64) {
    std::uint64_t seen = 0;
    bool distinct = true;
    for (const PredRec& r : preds) {
      if (r.proc == proc) continue;
      const std::uint64_t bit = std::uint64_t{1}
                                << static_cast<unsigned>(r.proc);
      if ((seen & bit) != 0) {
        distinct = false;
        break;
      }
      seen |= bit;
    }
    if (distinct) {
      recv_extras_.clear();
      double extras_horizon = 0.0;
      const TimelineIndex& rcv = recv_[static_cast<std::size_t>(proc)];
      // The committed base never changes during one evaluation, matching
      // the horizon an overlay would have cached at reset.
      const double rcv_horizon = rcv.horizon();
      double arrival = 0.0;
      for (const PredRec& r : preds) {
        if (arrival + exec > cutoff) {
          out.start = arrival;
          out.finish = arrival + exec;
          return;
        }
        if (r.proc == proc) {
          arrival = std::max(arrival, r.finish);
          continue;
        }
        const double duration =
            r.data * link_data_[static_cast<std::size_t>(r.proc) * np_ +
                                static_cast<std::size_t>(proc)];
        OP_REQUIRE(std::isfinite(duration),
                   "no direct link P" << r.proc << "->P" << proc
                                      << " and no routing table provided");
        double start = r.finish;
        if (duration > kTimeEps) {
          const TimelineIndex& snd = send_[static_cast<std::size_t>(r.proc)];
          const auto recv_fit = [&](double ready) {
            if (ready >= rcv_horizon - kTimeEps &&
                ready >= extras_horizon - kTimeEps) {
              return ready;
            }
            if (recv_extras_.empty()) return rcv.next_fit(ready, duration);
            double c = ready;
            while (true) {
              c = rcv.next_fit(c, duration);
              bool moved = false;
              for (const Interval& extra : recv_extras_) {
                if (extra.start >= c + duration - kTimeEps) break;
                if (overlaps(extra, {c, c + duration})) {
                  c = extra.end;
                  moved = true;
                }
              }
              if (!moved) return c;
            }
          };
          double candidate = r.finish;
          while (true) {
            const double ca = snd.next_fit(candidate, duration);
            const double cb = recv_fit(ca);
            if (cb <= ca + kTimeEps) {
              start = ca;
              break;
            }
            candidate = cb;
          }
          const double stop = start + duration;
          if (stop > extras_horizon) extras_horizon = stop;
          recv_extras_.insert(
              std::partition_point(
                  recv_extras_.begin(), recv_extras_.end(),
                  [start](const Interval& e) { return e.start < start; }),
              Interval{start, stop});
        }
        out.comms.push_back({r.task, r.proc, proc, start, start + duration});
        arrival = std::max(arrival, start + duration);
      }
      out.start =
          compute_[static_cast<std::size_t>(proc)].next_fit(arrival, exec);
      out.finish = out.start + exec;
      return;
    }
  }

  // A new epoch lazily invalidates every scratch overlay from the
  // previous evaluation.
  ++epoch_;
  double arrival = 0.0;
  for (const PredRec& r : preds) {
    // Message arrivals only push `arrival` up, so once even the partial
    // arrival makes finish overshoot the cutoff the candidate is dead:
    // report the (still sound) lower bound and skip the remaining
    // tentative messages.  Overlay state needs no cleanup -- the next
    // evaluation's epoch bump invalidates it wholesale.
    if (arrival + exec > cutoff) {
      out.start = arrival;
      out.finish = arrival + exec;
      return;
    }
    if (r.proc == proc) {
      arrival = std::max(arrival, r.finish);
      continue;
    }
    if (routing_ == nullptr) {
      // Direct link: one message, no path materialization.
      const double duration =
          r.data * link_data_[static_cast<std::size_t>(r.proc) * np_ +
                              static_cast<std::size_t>(proc)];
      OP_REQUIRE(std::isfinite(duration),
                 "no direct link P" << r.proc << "->P" << proc
                                    << " and no routing table provided");
      double start = r.finish;
      if (model_ == Model::kOnePort) {
        TimelineOverlay& send_ov =
            overlay_of(send_overlays_, send_epochs_, send_, r.proc);
        TimelineOverlay& recv_ov =
            overlay_of(recv_overlays_, recv_epochs_, recv_, proc);
        start = earliest_joint_fit(send_ov, recv_ov, r.finish, duration);
        send_ov.add(start, start + duration);
        recv_ov.add(start, start + duration);
      }
      out.comms.push_back({r.task, r.proc, proc, start, start + duration});
      arrival = std::max(arrival, start + duration);
      continue;
    }
    // Routed path; each hop is a store-and-forward message.
    path_scratch_.clear();
    routing_->path_into(r.proc, proc, path_scratch_);
    double cursor = r.finish;
    for (std::size_t h = 0; h + 1 < path_scratch_.size(); ++h) {
      const ProcId a = path_scratch_[h];
      const ProcId b = path_scratch_[h + 1];
      const double duration =
          r.data * link_data_[static_cast<std::size_t>(a) * np_ +
                              static_cast<std::size_t>(b)];
      OP_REQUIRE(std::isfinite(duration),
                 "no direct link P" << a << "->P" << b
                                    << " and no routing table provided");
      double start = cursor;
      if (model_ == Model::kOnePort) {
        TimelineOverlay& send_ov =
            overlay_of(send_overlays_, send_epochs_, send_, a);
        TimelineOverlay& recv_ov =
            overlay_of(recv_overlays_, recv_epochs_, recv_, b);
        start = earliest_joint_fit(send_ov, recv_ov, cursor, duration);
        send_ov.add(start, start + duration);
        recv_ov.add(start, start + duration);
      }
      out.comms.push_back({r.task, a, b, start, start + duration});
      cursor = start + duration;
    }
    arrival = std::max(arrival, cursor);
  }

  out.start =
      compute_[static_cast<std::size_t>(proc)].next_fit(arrival, exec);
  out.finish = out.start + exec;
}

Evaluation EftEngine::evaluate(TaskId v, ProcId proc) const {
  Evaluation eval;
  evaluate_into(v, proc, eval);
  return eval;
}

void EftEngine::fill_bounds(TaskId v) const {
  // Every incoming message needs at least its (routed) transfer time
  // after the predecessor finishes, and the task itself needs its
  // execution time; port contention and compute gaps only push the real
  // finish later.  Sound, so pruning on it cannot change evaluate_best's
  // answer.
  //
  // Under the one-port model with direct links the bound is tightened by
  // the receive port: all incoming messages occupy proc's receive port
  // disjointly, each releasable only once its source finished, so the
  // earliest-release-date chain over the (finish-sorted) predecessors
  // lower-bounds the last message arrival -- any feasible disjoint
  // placement finishes no earlier than the ERD sequence.
  //
  // All processor lanes advance together in one pass over the
  // predecessor lanes: each predecessor updates every lane with the
  // dense row of its link/distance costs, then restores its own lane to
  // the same-processor recurrence.  Per lane this replays exactly the
  // scalar per-processor recurrence (same operations, same order), so
  // the bounds are bit-identical to evaluating one processor at a time.
  const std::vector<PredRec>& preds = sorted_preds(v);
  const std::size_t np = np_;
  arr_scratch_.assign(np, 0.0);
  double* const arr = arr_scratch_.data();
  if (model_ == Model::kOnePort && routing_ == nullptr) {
    chain_scratch_.assign(np, 0.0);
    double* const chain = chain_scratch_.data();
    for (const PredRec& r : preds) {
      const auto q = static_cast<std::size_t>(r.proc);
      const double* const row = link_data_ + q * np;
      const double f = r.finish;
      const double rel = r.release;
      const double saved_chain = chain[q];
      const double saved_arr = arr[q];
      for (std::size_t p = 0; p < np; ++p) {
        const double d = r.data * row[p];
        chain[p] = std::max(chain[p], f) + d;
        arr[p] = std::max(arr[p], rel + d);
      }
      chain[q] = saved_chain;
      arr[q] = std::max(saved_arr, f);
    }
    for (std::size_t p = 0; p < np; ++p) {
      arr[p] = std::max(arr[p], chain[p]);
    }
  } else {
    const double* const table = routing_ != nullptr ? dist_data_ : link_data_;
    for (const PredRec& r : preds) {
      const auto q = static_cast<std::size_t>(r.proc);
      const double* const row = table + q * np;
      const double f = r.finish;
      const double saved = arr[q];
      for (std::size_t p = 0; p < np; ++p) {
        arr[p] = std::max(arr[p], f + r.data * row[p]);
      }
      arr[q] = std::max(saved, f);
    }
  }
  // Keys are arrival + execution only; the compute-timeline tightening
  // (next_fit on the arrival bound) is deferred to evaluate_best, which
  // probes a candidate only when it actually reaches the front of the
  // scan -- candidates pruned on the cheap key never pay for a probe.
  const double w = weight_of(v);
  bounds_scratch_.clear();
  for (std::size_t p = 0; p < np; ++p) {
    bounds_scratch_.emplace_back(arr[p] + w * cycle_data_[p],
                                 static_cast<ProcId>(p));
  }
}

const Evaluation& EftEngine::evaluate_best(TaskId v) const {
  // Evaluate candidates in ascending lower-bound order: the first
  // evaluation is then almost always the eventual winner, and every
  // candidate whose bound lies strictly beyond the winner's tolerance
  // band is pruned without scheduling a single tentative message.  The
  // winner minimizes (finish, processor id) under the usual kTimeEps
  // tolerance -- the documented contract; pruning uses the strict
  // `bound > best.finish + kTimeEps` test so a candidate eps-tied with
  // the current best is never pruned away from the id tie-break.
  // Caveat: the eps tolerance is not transitive, so in a chain of
  // pairwise-within-eps finishes (differences below 1e-7, never
  // observed from real inputs) the pick can depend on the bound order.
  //
  // The order is the one an upfront-tightened scan would use -- keys
  // tightened through the compute timeline (next_fit is monotone in
  // `ready`, so tightening only raises a key) -- but tightening runs
  // lazily.  Candidates sit in two pools: bounds_scratch_, sorted on the
  // cheap arrival+exec key, and tight_scratch_, holding already-probed
  // keys.  Whichever pool fronts the smaller (key, proc) pair acts: a
  // cheap front is probed and moved to the tight pool (its cheap key
  // lower-bounds every un-probed tight key, so nothing can precede it),
  // a tight front is pruned or evaluated.  Tight pops therefore happen
  // in exactly the upfront scan's order, and a candidate pruned on its
  // cheap key alone (still a sound finish bound) never pays for a probe.
  fill_bounds(v);
  std::sort(bounds_scratch_.begin(), bounds_scratch_.end());
  tight_scratch_.clear();
  const double w = weight_of(v);
  const double inf = std::numeric_limits<double>::infinity();

  Evaluation& best = best_scratch_;
  Evaluation& candidate = cand_scratch_;
  best.task = kInvalidTask;
  best.proc = -1;
  best.start = 0.0;
  best.finish = 0.0;
  best.comms.clear();
  std::size_t i = 0;
  const std::size_t n = bounds_scratch_.size();
  while (i < n || !tight_scratch_.empty()) {
    const bool take_cheap =
        i < n &&
        (tight_scratch_.empty() || bounds_scratch_[i] < tight_scratch_.back());
    const auto [bound, p] =
        take_cheap ? bounds_scratch_[i] : tight_scratch_.back();
    // A non-finite bound means a missing link: fall through so
    // evaluate_into reports it exactly as an exhaustive scan would.
    //
    // Two exact prune tests, both on sound lower bounds (true finish f
    // >= bound).  Beyond the tolerance band (bound > best.finish + eps)
    // the candidate can neither win nor eps-tie.  *Inside* the band a
    // higher-id candidate is equally dead: f >= bound >= best.finish -
    // eps rules out a strict win, and the eps-tie break needs the
    // *smaller* id.  Either way the outcome equals evaluating the
    // candidate and watching it lose, so the scan's result is unchanged.
    if (best.proc >= 0 && std::isfinite(bound) &&
        (bound > best.finish + kTimeEps ||
         (p > best.proc && bound >= best.finish - kTimeEps))) {
      prof::bump(prof::Counter::kPruneSkips);
      if (take_cheap) {
        ++i;
      } else {
        tight_scratch_.pop_back();
      }
      continue;
    }
    if (take_cheap) {
      ++i;
      // Probe from the raw arrival lane, not `bound - exec`: the
      // round-trip through the sum is not bit-exact.
      const double exec = w * cycle_data_[static_cast<std::size_t>(p)];
      const double start = compute_[static_cast<std::size_t>(p)].next_fit(
          arr_scratch_[static_cast<std::size_t>(p)], exec);
      const std::pair<double, ProcId> key(start + exec, p);
      tight_scratch_.insert(
          std::upper_bound(tight_scratch_.begin(), tight_scratch_.end(), key,
                           [](const std::pair<double, ProcId>& a,
                              const std::pair<double, ProcId>& b) {
                             return b < a;
                           }),
          key);
      continue;
    }
    tight_scratch_.pop_back();
    prof::bump(prof::Counter::kPruneEvals);
    // Abandon the evaluation as soon as it provably cannot reach the
    // (finish, proc) win test: a higher-id candidate must finish
    // strictly below the band to win, a lower-id one may still take the
    // eps-tie.  +inf (full evaluation) for the first candidate and for
    // missing-link reporting.
    evaluate_into(v, p, candidate,
                  best.proc >= 0 && std::isfinite(bound)
                      ? (p > best.proc ? best.finish - kTimeEps
                                       : best.finish + kTimeEps)
                      : inf);
    if (best.proc < 0 || candidate.finish < best.finish - kTimeEps ||
        (candidate.finish <= best.finish + kTimeEps &&
         candidate.proc < best.proc)) {
      std::swap(best, candidate);
    }
  }
  return best;
}

void EftEngine::commit(const Evaluation& eval) {
  OP_REQUIRE(eval.task != kInvalidTask && eval.proc >= 0,
             "cannot commit an empty evaluation");
  OP_REQUIRE(!scheduled(eval.task),
             "task " << eval.task << " already scheduled");
  prof::bump(prof::Counter::kEngineCommits);
  for (const CommDecision& c : eval.comms) {
    if (model_ == Model::kOnePort) {
      send_[static_cast<std::size_t>(c.from)].reserve(c.start, c.finish);
      recv_[static_cast<std::size_t>(c.to)].reserve(c.start, c.finish);
    }
    comms_.push_back({c.src, eval.task, c.from, c.to, c.start, c.finish});
  }
  compute_[static_cast<std::size_t>(eval.proc)].reserve(eval.start,
                                                        eval.finish);
  placements_[eval.task] = TaskPlacement{eval.proc, eval.start, eval.finish};
  for (const EdgeRef& e : succs_of(eval.task)) {
    OP_ASSERT(pending_preds_[e.task] > 0,
              "indegree counter underflow at task " << e.task);
    --pending_preds_[e.task];
  }
}

Schedule EftEngine::build_schedule() const {
  for (TaskId v = 0; v < graph_.num_tasks(); ++v) {
    OP_REQUIRE(placements_[v].placed(), "task " << v << " never scheduled");
  }
  // Bulk export through Schedule's arena constructor: one validated pass
  // over each record store instead of a checked push_back per record.
  return Schedule(placements_, comms_);
}

}  // namespace oneport
