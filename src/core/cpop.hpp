// CPOP -- Critical Path On a Processor (Topcuoglu, Hariri, Wu) -- adapted
// to the one-port model as an extra baseline (the paper compared ILHA
// against CPOP in the macro-dataflow study it builds on [3]).
//
// CPOP ranks tasks by top level + bottom level; tasks whose rank equals
// the critical-path length are all pinned to the single processor that
// executes the whole critical path fastest.  Every other task is placed by
// earliest finish time, exactly like HEFT.  The one-port adaptation reuses
// the same greedy port-reservation machinery (§4.3).
#pragma once

#include "core/eft_engine.hpp"
#include "sched/schedule.hpp"

namespace oneport {

struct CpopOptions {
  EftEngine::Model model = EftEngine::Model::kOnePort;
  /// Optional routing table for sparse networks (must outlive the call).
  const RoutingTable* routing = nullptr;
};

/// Runs CPOP and returns a complete schedule.
[[nodiscard]] Schedule cpop(const TaskGraph& graph, const Platform& platform,
                            const CpopOptions& options = {});

}  // namespace oneport
