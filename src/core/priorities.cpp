#include "core/priorities.hpp"

#include "graph/graph_algorithms.hpp"

namespace oneport {

std::vector<double> averaged_bottom_levels(const TaskGraph& graph,
                                           const Platform& platform) {
  return bottom_levels(graph, platform.harmonic_mean_cycle_time(),
                       platform.harmonic_mean_link());
}

std::vector<double> averaged_top_levels(const TaskGraph& graph,
                                        const Platform& platform) {
  return top_levels(graph, platform.harmonic_mean_cycle_time(),
                    platform.harmonic_mean_link());
}

}  // namespace oneport
