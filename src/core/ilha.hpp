// ILHA -- Iso-Level Heterogeneous Allocation (Boudet & Robert) -- for both
// communication models.
//
// ILHA processes *chunks* of B ready tasks at once (B >= number of
// processors), which gives it a global view of the potential
// communications:
//
//   step 0  sort ready tasks by averaged bottom level, take the first B;
//   step 1  scan the chunk in priority order and assign every task whose
//           predecessors all live on one processor P_i to P_i -- i.e.
//           generate *no* communication -- provided P_i's share of the
//           chunk does not exceed its load-balancing quota c_i * W
//           (weights, §4.4) / its optimal-distribution count (§4.2);
//   step 2  place the remaining tasks HEFT-style on the processor with the
//           earliest finish time (one-port: including greedy port
//           reservations);
//   repeat  with the updated ready list.
//
// Options cover the variants the paper sketches at the end of §4.4:
//   * single_comm_scan -- an extra scan between steps 1 and 2 assigning
//     tasks that cost exactly one message;
//   * reschedule_comms -- "third step": keep only the allocation and
//     rebuild all dates/messages with a fixed-allocation list scheduler
//     (see reschedule_fixed_allocation).
#pragma once

#include "core/eft_engine.hpp"
#include "sched/schedule.hpp"

namespace oneport {

struct IlhaOptions {
  EftEngine::Model model = EftEngine::Model::kOnePort;
  /// Chunk size; clamped below to the processor count (the paper: "B must
  /// be at least equal to the number of processors").  The paper's
  /// experiments use B = 38 (perfect balance), 20, or 4 depending on the
  /// testbed.
  int chunk_size = 38;
  /// Enforce the load-balancing quota during step 2 as well (ablation; the
  /// paper's step 2 is pure earliest-finish-time).
  bool quota_in_step2 = false;
  /// Extra scan for tasks schedulable at the price of one message (§4.4,
  /// "we could add another scan ...").
  bool single_comm_scan = false;
  /// Keep only the allocation and rebuild all dates with the
  /// fixed-allocation greedy scheduler (§4.4, "re-schedule the whole set").
  bool reschedule_comms = false;
  /// Optional routing table for sparse networks (must outlive the call).
  const RoutingTable* routing = nullptr;
};

/// Runs ILHA and returns a complete schedule.
[[nodiscard]] Schedule ilha(const TaskGraph& graph, const Platform& platform,
                            const IlhaOptions& options = {});

/// Greedy list scheduler for a *fixed* allocation: tasks keep their
/// assigned processors, all dates and messages are rebuilt in priority
/// order with earliest-fit port reservations.  (Scheduling communications
/// optimally for a fixed allocation is NP-complete -- Theorem 2 -- hence
/// greedy.)  Useful on its own for replaying external allocations.
[[nodiscard]] Schedule reschedule_fixed_allocation(
    const TaskGraph& graph, const Platform& platform,
    const std::vector<ProcId>& allocation, EftEngine::Model model,
    const RoutingTable* routing = nullptr);

}  // namespace oneport
