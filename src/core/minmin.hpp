// Min-min / max-min batch scheduling (Ibarra-Kim lineage; the PCT
// heuristic the paper's predecessor study [3] compares against is a
// min-min-style dynamic matcher).  Extra baselines beyond the paper's own
// HEFT/ILHA pair.
//
// At every step the heuristic evaluates the earliest finish time of every
// *ready* task on every processor (one-port: with greedy port
// reservations, exactly like HEFT's evaluation):
//   * min-min commits the (task, processor) pair with the smallest finish
//     time -- it keeps machines streaming short work;
//   * max-min commits the ready task whose *best* finish time is largest
//     -- it fronts the long poles.
// Cost: O(ready * p) evaluations per commit, noticeably slower than HEFT
// on wide graphs; fine at the paper's scales.
#pragma once

#include "core/eft_engine.hpp"
#include "sched/schedule.hpp"

namespace oneport {

struct MinMinOptions {
  EftEngine::Model model = EftEngine::Model::kOnePort;
  /// false: min-min; true: max-min.
  bool max_min = false;
  const RoutingTable* routing = nullptr;
};

/// Runs min-min (or max-min) and returns a complete schedule.
[[nodiscard]] Schedule min_min(const TaskGraph& graph,
                               const Platform& platform,
                               const MinMinOptions& options = {});

}  // namespace oneport
