#include "core/autotune.hpp"

#include <algorithm>

#include "platform/load_balance.hpp"
#include "util/error.hpp"

namespace oneport {

IlhaAutotuneResult ilha_autotune(const TaskGraph& graph,
                                 const Platform& platform,
                                 const IlhaOptions& base,
                                 std::vector<int> candidates) {
  if (candidates.empty()) {
    const int p = platform.num_processors();
    int m = 4 * p;
    try {
      m = static_cast<int>(perfect_balance_chunk(platform));
    } catch (const std::invalid_argument&) {
      // Non-integer cycle times: fall back to the 4p span.
    }
    candidates = {p, (p + m) / 2, m, 2 * m};
  }
  for (int& b : candidates) b = std::max(b, 1);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  IlhaAutotuneResult result;
  for (const int b : candidates) {
    IlhaOptions options = base;
    options.chunk_size = b;
    Schedule schedule = ilha(graph, platform, options);
    const double makespan = schedule.makespan();
    result.trials.emplace_back(b, makespan);
    if (result.chunk_size == 0 || makespan < result.makespan - kTimeEps) {
      result.schedule = std::move(schedule);
      result.chunk_size = b;
      result.makespan = makespan;
    }
  }
  OP_ASSERT(result.chunk_size > 0, "no candidate chunk size tried");
  return result;
}

}  // namespace oneport
