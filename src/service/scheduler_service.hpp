// Scheduler-as-a-service: a long-running batched request server over the
// thread pool (the ISSUE-9 tentpole; the full design narrative lives in
// docs/SERVICE.md).
//
// Shape, in the nfos data-plane idiom:
//
//   clients --submit()--> [ bounded MPMC queue ] --batched drain--> shard 0
//                              |  (depth D,           (<= K per wake) shard 1
//                         backpressure when full)                     ...
//                                                                     shard N-1
//
//   * the request queue is bounded (`queue_depth`); a full queue engages
//     the selected backpressure policy -- kBlock parks the submitter on
//     a not-full condvar, kReject returns an unaccepted ticket with a
//     retry-after hint and bumps the reject counter;
//   * N shard workers (threads of a util/thread_pool.hpp pool owned by
//     the service) drain up to `batch_size` requests per wake -- one
//     lock acquisition admits a whole batch, so queue-mutex traffic
//     scales with batches, not requests;
//   * each worker OWNS one TopologyCacheShard (analysis/topology_cache):
//     routed platform lookups never contend across workers, which is the
//     sharding that replaced the old process-wide single-mutex cache;
//   * every request runs through analysis::run_sweep_point -- the exact
//     executor run_sweep farms over the pool -- so a service schedule is
//     bit-identical to the same job run through the batch path
//     (tests/service_test.cpp pins this);
//   * per-request latency (enqueue -> completion) lands in the response,
//     in the service's own stats, and -- when the profiler is on -- in
//     the kService* counters of util/profiler.
//
// Defaults resolve from the ONEPORT_SERVICE_* env knobs (docs/KNOBS.md);
// explicit ServiceOptions fields win over the environment.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/topology_cache.hpp"
#include "platform/platform.hpp"
#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

namespace oneport::service {

/// Full-queue policy.  kDefault resolves ONEPORT_SERVICE_BACKPRESSURE
/// ("block" unless overridden) at service construction.
enum class Backpressure { kDefault, kBlock, kReject };

/// Parses "block"/"reject" (throws std::invalid_argument otherwise).
[[nodiscard]] Backpressure parse_backpressure(std::string_view name);
[[nodiscard]] const char* backpressure_name(Backpressure mode) noexcept;

struct ServiceOptions {
  /// Shard workers; 0 = ONEPORT_SERVICE_SHARDS, then hardware
  /// concurrency (min 1).
  unsigned shards = 0;
  /// Request-queue bound; 0 = ONEPORT_SERVICE_QUEUE_DEPTH, then 256.
  std::size_t queue_depth = 0;
  /// Max requests drained per worker wake; 0 = ONEPORT_SERVICE_BATCH,
  /// then 8.
  std::size_t batch_size = 0;
  /// Full-queue policy; kDefault = ONEPORT_SERVICE_BACKPRESSURE.
  Backpressure backpressure = Backpressure::kDefault;
  /// Validate every static schedule (same meaning as SweepOptions).
  bool validate = true;
  /// Retry-after hint handed back on kReject, in milliseconds.
  int retry_after_ms = 1;
};

/// One completed request.
struct Response {
  std::uint64_t id = 0;            ///< ticket id, in submission order
  analysis::SweepResult result;    ///< identical to run_sweep's row
  std::uint64_t queue_ns = 0;      ///< enqueue -> admission
  std::uint64_t service_ns = 0;    ///< admission -> completion
  std::uint64_t latency_ns = 0;    ///< enqueue -> completion
  unsigned shard = 0;              ///< worker that served the request
};

/// submit()'s result.  When `accepted`, `response` resolves once a shard
/// worker completes (or faults) the request; when rejected (kReject
/// backpressure on a full queue, or submit after stop), `response` is
/// invalid and `retry_after_ms` hints when to try again.
struct Ticket {
  bool accepted = false;
  int retry_after_ms = 0;
  std::uint64_t id = 0;
  std::future<Response> response;
};

/// Aggregate counters + latency percentiles, readable any time (values
/// are exact at quiescence -- after drain() or stop()).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::size_t peak_queue_depth = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
};

class SchedulerService {
 public:
  /// Copies `platform` (requests may outlive the caller's copy) and
  /// starts the shard workers immediately.
  explicit SchedulerService(const Platform& platform,
                            const ServiceOptions& options = {});
  /// stop()s if the caller has not.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Enqueues one job.  Under kBlock this waits for queue space (so a
  /// closed-loop client is throttled to service speed); under kReject a
  /// full queue returns an unaccepted ticket immediately.
  [[nodiscard]] Ticket submit(analysis::SweepPoint point);

  /// Blocks until the queue is empty and no request is in flight.
  void drain();

  /// Stops accepting work, drains what was accepted, joins the workers.
  /// Idempotent.
  void stop();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_; }
  [[nodiscard]] Backpressure backpressure() const noexcept { return mode_; }

  /// Completed-request latencies in nanoseconds, submission-completion
  /// order unspecified.  Meaningful at quiescence.
  [[nodiscard]] std::vector<std::uint64_t> latencies_ns() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::uint64_t id = 0;
    analysis::SweepPoint point;
    std::promise<Response> promise;
    Clock::time_point enqueued;
  };

  void worker_loop(unsigned shard);

  Platform platform_;
  unsigned shards_;
  std::size_t depth_;
  std::size_t batch_;
  Backpressure mode_;
  analysis::SweepOptions sweep_options_;
  int retry_after_ms_;
  analysis::ShardedTopologyCache cache_;

  mutable util::Mutex mutex_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  util::CondVar idle_;
  std::deque<Job> queue_ OP_GUARDED_BY(mutex_);
  std::size_t in_flight_ OP_GUARDED_BY(mutex_) = 0;
  bool stopping_ OP_GUARDED_BY(mutex_) = false;
  std::uint64_t next_id_ OP_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ OP_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ OP_GUARDED_BY(mutex_) = 0;
  std::uint64_t batches_ OP_GUARDED_BY(mutex_) = 0;
  std::size_t peak_depth_ OP_GUARDED_BY(mutex_) = 0;
  std::vector<std::uint64_t> latencies_ OP_GUARDED_BY(mutex_);

  // Declared last so the worker threads die before any state they touch.
  // The pool is sized max(2, shards): a 1-thread ThreadPool runs jobs
  // inline on the submitting thread, which would turn the first
  // worker-loop submission into a deadlock in the constructor.
  std::unique_ptr<ThreadPool> pool_;
};

/// Sorted-vector percentile in milliseconds (q in [0, 1], nearest-rank);
/// shared by stats(), service_cli, and the service benches so every
/// reported p50/p99 means the same thing.
[[nodiscard]] double latency_percentile_ms(
    std::vector<std::uint64_t> latencies_ns, double q);

}  // namespace oneport::service
