#include "service/scheduler_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/env_knobs.hpp"
#include "util/profiler.hpp"

namespace oneport::service {

namespace {

unsigned resolve_shards(unsigned requested) {
  if (requested > 0) return requested;
  const long knob = env::integer(env::Knob::kServiceShards, 0);
  if (knob > 0) return static_cast<unsigned>(knob);
  return ThreadPool::default_workers();
}

std::size_t resolve_size(std::size_t requested, env::Knob knob,
                         long fallback) {
  if (requested > 0) return requested;
  const long value = env::integer(knob, fallback);
  return value > 0 ? static_cast<std::size_t>(value)
                   : static_cast<std::size_t>(fallback);
}

Backpressure resolve_backpressure(Backpressure requested) {
  if (requested != Backpressure::kDefault) return requested;
  return parse_backpressure(
      env::text(env::Knob::kServiceBackpressure, "block"));
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

Backpressure parse_backpressure(std::string_view name) {
  if (name == "block") return Backpressure::kBlock;
  if (name == "reject") return Backpressure::kReject;
  throw std::invalid_argument("unknown backpressure mode '" +
                              std::string(name) +
                              "' (expected block or reject)");
}

const char* backpressure_name(Backpressure mode) noexcept {
  switch (mode) {
    case Backpressure::kBlock: return "block";
    case Backpressure::kReject: return "reject";
    case Backpressure::kDefault: break;
  }
  return "default";
}

SchedulerService::SchedulerService(const Platform& platform,
                                   const ServiceOptions& options)
    : platform_(platform),
      shards_(resolve_shards(options.shards)),
      depth_(resolve_size(options.queue_depth,
                          env::Knob::kServiceQueueDepth, 256)),
      batch_(resolve_size(options.batch_size, env::Knob::kServiceBatch, 8)),
      mode_(resolve_backpressure(options.backpressure)),
      sweep_options_{.workers = 1, .validate = options.validate},
      retry_after_ms_(options.retry_after_ms),
      cache_(shards_) {
  pool_ = std::make_unique<ThreadPool>(std::max(2u, shards_));
  for (unsigned shard = 0; shard < shards_; ++shard) {
    pool_->submit([this, shard] { worker_loop(shard); });
  }
}

SchedulerService::~SchedulerService() { stop(); }

Ticket SchedulerService::submit(analysis::SweepPoint point) {
  Ticket ticket;
  Job job;
  job.point = std::move(point);
  job.enqueued = Clock::now();
  std::future<Response> response = job.promise.get_future();
  {
    util::MutexLock lock(mutex_);
    if (mode_ == Backpressure::kReject) {
      if (queue_.size() >= depth_ || stopping_) {
        ++rejected_;
        prof::bump(prof::Counter::kServiceRejects);
        ticket.retry_after_ms = retry_after_ms_;
        return ticket;
      }
    } else {
      while (queue_.size() >= depth_ && !stopping_) not_full_.wait(lock);
      if (stopping_) {
        ++rejected_;
        prof::bump(prof::Counter::kServiceRejects);
        ticket.retry_after_ms = retry_after_ms_;
        return ticket;
      }
    }
    job.id = next_id_++;
    ticket.id = job.id;
    queue_.push_back(std::move(job));
    peak_depth_ = std::max(peak_depth_, queue_.size());
  }
  not_empty_.notify_one();
  ticket.accepted = true;
  ticket.response = std::move(response);
  return ticket;
}

void SchedulerService::worker_loop(unsigned shard) {
  analysis::TopologyCacheShard& cache = cache_.shard(shard);
  std::vector<Job> batch;
  while (true) {
    batch.clear();
    {
      util::MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) not_empty_.wait(lock);
      if (queue_.empty()) return;  // stopping_ set and nothing left
      const std::size_t take = std::min(batch_, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += take;
      ++batches_;
    }
    // A whole batch freed up to `batch_` queue slots: wake every parked
    // submitter, not just one.
    not_full_.notify_all();
    prof::bump(prof::Counter::kServiceBatches);

    std::vector<std::uint64_t> batch_latencies;
    batch_latencies.reserve(batch.size());
    for (Job& job : batch) {
      const Clock::time_point admitted = Clock::now();
      Response response;
      response.id = job.id;
      response.shard = shard;
      response.queue_ns = elapsed_ns(job.enqueued, admitted);
      try {
        response.result =
            analysis::run_sweep_point(job.point, platform_, sweep_options_,
                                      &cache);
        const Clock::time_point done = Clock::now();
        response.service_ns = elapsed_ns(admitted, done);
        response.latency_ns = elapsed_ns(job.enqueued, done);
        batch_latencies.push_back(response.latency_ns);
        prof::bump(prof::Counter::kServiceRequests);
        prof::bump(prof::Counter::kServiceLatencyNanos,
                   response.latency_ns);
        job.promise.set_value(std::move(response));
      } catch (...) {
        // A faulting request (unknown testbed, failed validation, ...)
        // resolves its own future with the exception and must never
        // take the worker -- or the other requests in the batch -- down.
        job.promise.set_exception(std::current_exception());
      }
    }

    {
      util::MutexLock lock(mutex_);
      in_flight_ -= batch.size();
      completed_ += batch.size();
      latencies_.insert(latencies_.end(), batch_latencies.begin(),
                        batch_latencies.end());
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void SchedulerService::drain() {
  util::MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) idle_.wait(lock);
}

void SchedulerService::stop() {
  {
    util::MutexLock lock(mutex_);
    if (stopping_ && pool_ == nullptr) return;
    stopping_ = true;
  }
  // Wake the workers (to drain and exit) and any parked submitters (to
  // return rejected tickets).
  not_empty_.notify_all();
  not_full_.notify_all();
  if (pool_ != nullptr) {
    pool_->wait_idle();  // worker loops return once the queue is drained
    pool_.reset();
  }
}

ServiceStats SchedulerService::stats() const {
  ServiceStats out;
  std::vector<std::uint64_t> latencies;
  {
    util::MutexLock lock(mutex_);
    out.submitted = next_id_;
    out.completed = completed_;
    out.rejected = rejected_;
    out.batches = batches_;
    out.peak_queue_depth = peak_depth_;
    latencies = latencies_;
  }
  out.latency_p50_ms = latency_percentile_ms(latencies, 0.50);
  out.latency_p99_ms = latency_percentile_ms(std::move(latencies), 0.99);
  return out;
}

std::vector<std::uint64_t> SchedulerService::latencies_ns() const {
  util::MutexLock lock(mutex_);
  return latencies_;
}

double latency_percentile_ms(std::vector<std::uint64_t> latencies_ns,
                             double q) {
  if (latencies_ns.empty()) return 0.0;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: ceil(q * n) in 1-based rank terms.
  const auto rank = static_cast<std::size_t>(std::ceil(
      clamped * static_cast<double>(latencies_ns.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return static_cast<double>(latencies_ns[index]) / 1e6;
}

}  // namespace oneport::service
