#include "util/csv.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace oneport::csv {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OP_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void Table::add_row(std::vector<std::string> row) {
  OP_REQUIRE(row.size() == header_.size(),
             "row arity " << row.size() << " != header arity "
                          << header_.size());
  rows_.push_back(std::move(row));
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t i = 0; i < header_.size(); ++i)
    rule += std::string(width[i], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string format_number(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  std::string s = oss.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace oneport::csv
