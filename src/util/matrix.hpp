// Minimal dense row-major matrix used for link matrices and tables.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace oneport {

/// Dense row-major matrix with bounds-checked access.
/// Value-semantic; cheap enough for the small (p x p) link matrices the
/// scheduler manipulates.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    OP_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    OP_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage for hot loops that have already validated
  /// their indices; element (r, c) lives at data()[r * cols() + c].
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace oneport
