// Tiny command-line parser for the examples and benchmark harnesses.
// Accepts "--key=value" and "--flag"; anything else is a positional.
#pragma once

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace oneport {

class Args {
 public:
  Args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.starts_with("--")) {
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          options_[arg.substr(2)] = "";
        } else {
          options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return options_.contains(key);
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : std::atoi(it->second.c_str());
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace oneport
