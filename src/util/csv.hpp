// Small CSV / aligned-table emitters used by the benchmark harnesses and
// examples to print the series behind each figure of the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace oneport::csv {

/// Accumulates rows of stringly-typed cells and renders them either as CSV
/// or as an aligned, human-readable table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Renders `name,value,...` comma-separated lines (header first).
  void write_csv(std::ostream& os) const;

  /// Renders a column-aligned table suitable for terminal output.
  void write_pretty(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("3.50" -> "3.5", "4.00" -> "4").
[[nodiscard]] std::string format_number(double value, int digits = 3);

}  // namespace oneport::csv
