// Per-thread scalability profiler: cache-line-padded counter slabs in
// the style of nfos' scalability-profiler, wired into the scheduling hot
// path (timeline probes, prune hits/misses, overlay resets, pool task
// latencies).
//
// Design constraints, in order:
//   1. *Provably* zero overhead when compiled out: configuring with
//      -DONEPORT_PROFILER=OFF defines ONEPORT_NO_PROFILER and every
//      bump() collapses to an empty inline function.
//   2. Near-zero overhead when compiled in but disabled (the default):
//      one relaxed atomic-bool load and a predictable branch per probe.
//      No slab is ever allocated while disabled -- which is what the
//      profiler-off pin test and the bench OP_ASSERT check, since "no
//      counter ever moved and no slab ever existed" is a property a test
//      can prove, unlike a wall-clock delta.
//   3. Scalable when enabled: each thread bumps its own alignas(64) slab
//      (no false sharing, no locks on the hot path); slabs register once
//      under a mutex and are aggregated only at quiescence points
//      (bench teardown, sweep end).
//
// Enabling: set the ONEPORT_PROFILE environment variable to a non-empty
// value other than "0" before the process starts, or call
// prof::set_enabled(true) / use prof::ScopedProfiler in tests.  Counters
// surface as "prof_<name>" entries in bench_scale's benchmark JSON and
// in sweep_cli --json's "profile" context block (see docs/PROFILING.md).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace oneport::prof {

/// The counter catalog.  Keep counter_names() in sync.
enum class Counter : std::uint32_t {
  kTimelineNextFit = 0,    ///< TimelineIndex::next_fit probes
  kTimelineHorizonHits,    ///< probes answered by the O(1) horizon fast path
  kTimelineReserves,       ///< TimelineIndex::reserve commits
  kOverlayResets,          ///< evaluation-epoch overlay invalidations
  kPruneEvals,             ///< candidate processors actually evaluated
  kPruneSkips,             ///< candidates pruned by the finish lower bound
  kEngineCommits,          ///< EftEngine::commit calls
  kGapDeferredInserts,     ///< GapTimeline middle inserts buffered
  kGapFlushes,             ///< GapTimeline deferred-buffer compactions
  kCalendarRebuilds,       ///< CalendarTimeline bucket-array rebuilds
  kCalendarShifts,         ///< CalendarTimeline in-bucket segment shifts
  kPoolTasks,              ///< thread-pool jobs executed
  kPoolTaskNanos,          ///< total wall nanoseconds inside pool jobs
  kServiceRequests,        ///< scheduler-service requests completed
  kServiceBatches,         ///< scheduler-service admission batches drained
  kServiceRejects,         ///< requests rejected by backpressure
  kServiceLatencyNanos,    ///< total enqueue-to-completion nanoseconds
  kCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name ("timeline_next_fit", ...) used as the JSON
/// counter key (prefixed with "prof_" by the emitters).
[[nodiscard]] const char* counter_name(Counter c) noexcept;

/// One aggregated (or per-thread) counter vector.
using Counts = std::array<std::uint64_t, kNumCounters>;

#if defined(ONEPORT_NO_PROFILER)

[[nodiscard]] inline bool compiled_in() noexcept { return false; }
[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline void bump(Counter, std::uint64_t = 1) noexcept {}
[[nodiscard]] inline std::size_t slab_count() noexcept { return 0; }
[[nodiscard]] inline std::vector<Counts> per_thread() { return {}; }
[[nodiscard]] inline Counts aggregate() noexcept { return Counts{}; }
inline void reset() noexcept {}

#else

namespace detail {

/// One cache line per slab start so two threads' hot counters never share
/// a line.  Counters are relaxed atomics written only by the owning
/// thread: the load+add+store pair is a plain add on x86, and the atomic
/// type makes concurrent aggregation well-defined (though snapshots are
/// only meaningful at quiescence).
struct alignas(64) Slab {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counts{};
};

extern std::atomic<bool> g_enabled;

/// Out-of-line: finds (or registers) the calling thread's slab and adds.
void bump_slow(Counter c, std::uint64_t n) noexcept;

}  // namespace detail

[[nodiscard]] inline bool compiled_in() noexcept { return true; }

[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// Adds `n` to the calling thread's counter; a relaxed load + untaken
/// branch when the profiler is disabled.
inline void bump(Counter c, std::uint64_t n = 1) noexcept {
  if (!enabled()) return;
  detail::bump_slow(c, n);
}

/// Number of registered per-thread slabs (0 until some thread bumps a
/// counter while enabled; slabs persist for the process lifetime).
[[nodiscard]] std::size_t slab_count() noexcept;

/// Snapshot of every registered slab, one Counts per thread, in
/// registration order.  Meaningful at quiescence (no worker mid-bump).
[[nodiscard]] std::vector<Counts> per_thread();

/// Sum of per_thread().
[[nodiscard]] Counts aggregate() noexcept;

/// Zeroes every registered slab (the slabs stay registered).
void reset() noexcept;

#endif  // ONEPORT_NO_PROFILER

/// RAII enable/disable for tests and benches; restores the previous
/// state and resets the counters it produced on destruction when asked.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(bool on, bool reset_on_exit = true)
      : previous_(enabled()), reset_on_exit_(reset_on_exit) {
    set_enabled(on);
  }
  ~ScopedProfiler() {
    set_enabled(previous_);
    if (reset_on_exit_) reset();
  }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  bool previous_;
  bool reset_on_exit_;
};

}  // namespace oneport::prof
