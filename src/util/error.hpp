// Error-handling helpers shared across the library.
//
// Construction-time misuse (bad arguments, malformed graphs, ...) throws
// std::invalid_argument / std::logic_error via OP_REQUIRE; internal
// invariants are checked with OP_ASSERT, which is compiled in all build
// types because scheduling bugs silently corrupt experiment data.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace oneport {

/// Throws std::invalid_argument with `message` when `condition` is false.
/// Used to validate public-API arguments.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Throws std::logic_error: used for violated internal invariants whose
/// failure indicates a library bug rather than user error.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) throw std::logic_error(message);
}

}  // namespace oneport

#define OP_REQUIRE(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << __func__ << ": " << msg;                               \
      throw std::invalid_argument(oss_.str());                       \
    }                                                                \
  } while (0)

#define OP_ASSERT(cond, msg)                                         \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << __FILE__ << ":" << __LINE__ << ": invariant failed: "  \
           << msg;                                                   \
      throw std::logic_error(oss_.str());                            \
    }                                                                \
  } while (0)
