// A small fixed-size worker pool for farming independent experiment
// points (scheduler runs are pure functions of graph x platform, so the
// only shared state a job needs is read-only).
//
// Design notes:
//   * submit() enqueues a job; wait_idle() blocks until the queue is
//     drained AND every worker finished -- together they give a simple
//     fork/join.  parallel_for() wraps the pair with an atomic index so
//     results land in caller-owned slots, which keeps output ordering
//     deterministic regardless of which worker finishes first.
//   * exceptions thrown by jobs are captured; the first one is rethrown
//     from wait_idle()/parallel_for() on the calling thread, so a failed
//     validation inside a worker still fails the sweep loudly.
//   * a pool of size 1 never spawns threads: jobs run inline on the
//     caller, which keeps single-core machines and ONEPORT_WORKERS=1
//     runs free of threading overhead (and trivially deterministic).
//   * all cross-thread state is OP_GUARDED_BY(mutex_); Clang's
//     -Wthread-safety proves every access takes the lock (see
//     src/util/annotations.hpp), and the TSan CI leg checks the same
//     dynamically under contention (tests/concurrency_stress_test.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/annotations.hpp"
#include "util/env_knobs.hpp"
#include "util/profiler.hpp"

namespace oneport {

class ThreadPool {
 public:
  /// `workers` == 0 picks ONEPORT_WORKERS, falling back to the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(unsigned workers = 0) {
    if (workers == 0) workers = default_workers();
    workers_count_ = workers;
    if (workers < 2) return;  // inline mode, no threads
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      util::MutexLock lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return workers_count_; }

  [[nodiscard]] static unsigned default_workers() noexcept {
    const long knob = env::integer(env::Knob::kWorkers, 0);
    if (knob > 0) return static_cast<unsigned>(knob);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// Enqueues `job`; runs it inline when the pool has no threads.
  void submit(std::function<void()> job) {
    if (threads_.empty()) {
      run_job(job);
      return;
    }
    {
      util::MutexLock lock(mutex_);
      queue_.push_back(std::move(job));
      ++pending_;
    }
    work_cv_.notify_one();
  }

  /// Blocks until every submitted job has finished, then rethrows the
  /// first captured job exception (if any).
  void wait_idle() {
    util::MutexLock lock(mutex_);
    while (pending_ != 0) idle_cv_.wait(lock);
    if (first_error_) {
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

  /// Runs fn(i) for every i in [0, count) across the pool and blocks
  /// until all complete; rethrows the first job exception.
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    if (threads_.empty()) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto body = std::make_shared<std::decay_t<Fn>>(std::forward<Fn>(fn));
    const std::size_t lanes =
        std::min<std::size_t>(count, workers_count_);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      submit([next, body, count] {
        for (std::size_t i = next->fetch_add(1); i < count;
             i = next->fetch_add(1)) {
          (*body)(i);
        }
      });
    }
    wait_idle();
  }

 private:
  void run_job(std::function<void()>& job) {
    try {
      // Profiler wiring: completed jobs count toward kPoolTasks and
      // their wall time toward kPoolTaskNanos, each on the worker's own
      // slab.  The clock is read only while the profiler is enabled, so
      // the disabled path stays a relaxed load + untaken branch.
      if (prof::enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        job();
        const auto dt = std::chrono::steady_clock::now() - t0;
        prof::bump(prof::Counter::kPoolTasks);
        prof::bump(
            prof::Counter::kPoolTaskNanos,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()));
      } else {
        job();
      }
    } catch (...) {
      util::MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (!threads_.empty()) {
      util::MutexLock lock(mutex_);
      if (--pending_ == 0) idle_cv_.notify_all();
    } else {
      // Inline mode: surface the failure immediately, like wait_idle().
      // The lock is uncontended (no threads exist) but keeps the
      // guarded-member access pattern uniform for the static analysis.
      std::exception_ptr error;
      {
        util::MutexLock lock(mutex_);
        error = first_error_;
        first_error_ = nullptr;
      }
      if (error) std::rethrow_exception(error);
    }
  }

  void worker_loop() {
    while (true) {
      std::function<void()> job;
      {
        util::MutexLock lock(mutex_);
        while (!stop_ && queue_.empty()) work_cv_.wait(lock);
        if (queue_.empty()) return;  // stop_ set and nothing left to run
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      run_job(job);
    }
  }

  unsigned workers_count_ = 1;
  std::vector<std::thread> threads_;  // written once, before workers run
  util::Mutex mutex_;
  util::CondVar work_cv_;
  util::CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ OP_GUARDED_BY(mutex_);
  std::size_t pending_ OP_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ OP_GUARDED_BY(mutex_);
  bool stop_ OP_GUARDED_BY(mutex_) = false;
};

}  // namespace oneport
