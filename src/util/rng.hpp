// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (random DAG generator, fault
// injectors in tests) takes an explicit seed so that experiments and test
// failures reproduce bit-identically across runs and machines.  We use
// SplitMix64 (Steele et al.) -- tiny, fast, and statistically adequate for
// workload generation.
#pragma once

#include <cstdint>

namespace oneport {

/// SplitMix64 generator; satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Simple modulo mapping; the bias is negligible for the small bounds
    // used in workload generation (bound << 2^64).
    return operator()() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

 private:
  std::uint64_t state_;
};

}  // namespace oneport
