#include "util/env_knobs.hpp"

#include <array>
#include <cstdlib>
#include <cstring>

namespace oneport::env {

namespace {

// The knob catalog.  tools/lint/check_env_knobs.py parses this table
// (rigid one-row-per-line format) and cross-checks it against
// docs/KNOBS.md, so keep each entry on its own line:
//   {"NAME", "default", "consumer", "summary"},
constexpr std::array<KnobInfo, kNumKnobs> kCatalog = {{
    {"ONEPORT_PROFILE", "0", "src/util/profiler.cpp", "enable the per-thread scalability profiler (counters surface in bench JSON and sweep_cli --json)"},
    {"ONEPORT_TIMELINE", "gap", "src/sched/timeline.cpp", "timeline implementation: reference | gap | calendar"},
    {"ONEPORT_GRAPH", "soa", "src/graph/soa_view.cpp", "task-graph iteration path: soa | pointer"},
    {"ONEPORT_WORKERS", "hardware", "src/util/thread_pool.hpp", "default thread-pool width for run_figure/run_sweep (0 or unset = hardware concurrency)"},
    {"ONEPORT_SWEEP_SEEDS", "0", "tests/property_sweep_test.cpp", "extra seeded property-sweep repetitions for CI/nightly deepening"},
    {"ONEPORT_SERVICE_SHARDS", "hardware", "src/service/scheduler_service.cpp", "scheduler-service shard workers, each owning a routed-platform cache shard (0 or unset = hardware concurrency)"},
    {"ONEPORT_SERVICE_QUEUE_DEPTH", "256", "src/service/scheduler_service.cpp", "bound on the scheduler-service request queue; a full queue engages the backpressure policy"},
    {"ONEPORT_SERVICE_BATCH", "8", "src/service/scheduler_service.cpp", "max requests a service worker drains per wake (batched admission)"},
    {"ONEPORT_SERVICE_BACKPRESSURE", "block", "src/service/scheduler_service.cpp", "full-queue policy: block submitters | reject with a retry-after hint"},
}};

}  // namespace

std::span<const KnobInfo, kNumKnobs> catalog() noexcept { return kCatalog; }

const KnobInfo& info(Knob knob) noexcept {
  return kCatalog[static_cast<std::size_t>(knob)];
}

const char* raw(Knob knob) noexcept {
  // The single getenv call site in the tree (lint-enforced).  All knobs
  // are read-only configuration set before the process starts, so the
  // thread-unsafety of getenv (vs. concurrent setenv) cannot bite here.
  return std::getenv(info(knob).name);  // NOLINT(concurrency-mt-unsafe)
}

bool flag(Knob knob) noexcept {
  const char* value = raw(knob);
  return value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0;
}

std::string_view text(Knob knob, std::string_view fallback) noexcept {
  const char* value = raw(knob);
  return value != nullptr ? std::string_view(value) : fallback;
}

long integer(Knob knob, long fallback) noexcept {
  const char* value = raw(knob);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  return end == value ? fallback : parsed;
}

}  // namespace oneport::env
