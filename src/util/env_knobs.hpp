// Central registry for every ONEPORT_* runtime environment knob.
//
// The repo's rule (enforced by tools/lint/check_env_knobs.py): this
// registry's .cpp file is the ONLY place in src/, tests/, bench/ and
// examples/ allowed to call getenv.  Everything else names its knob
// through the `Knob` enum, which buys three properties:
//   * one catalog -- name, default, consumer and one-line summary live
//     in a single table, and docs/KNOBS.md is cross-checked against it
//     by the lint, so an undocumented or ghost knob fails CI;
//   * consistent parsing -- "set, non-empty, not 0" boolean semantics
//     and integer parsing are implemented once;
//   * greppability -- every consumer of a knob is a reference to
//     env::Knob::k<Name>, not a scattered string literal.
//
// Knob values are read from the process environment; reads are
// thread-safe as long as nothing calls setenv after threads start
// (tests that need to flip behavior mid-process use the programmatic
// setters on the subsystem, e.g. prof::set_enabled, never setenv).
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace oneport::env {

/// Every runtime ONEPORT_* knob.  Keep the catalog table in
/// env_knobs.cpp and docs/KNOBS.md in sync (the lint checks both).
enum class Knob : std::size_t {
  kProfile = 0,         ///< ONEPORT_PROFILE: enable the per-thread profiler
  kTimeline,            ///< ONEPORT_TIMELINE: timeline implementation
  kGraph,               ///< ONEPORT_GRAPH: task-graph iteration path
  kWorkers,             ///< ONEPORT_WORKERS: default thread-pool width
  kSweepSeeds,          ///< ONEPORT_SWEEP_SEEDS: extra property-sweep seeds
  kServiceShards,       ///< ONEPORT_SERVICE_SHARDS: scheduler-service workers
  kServiceQueueDepth,   ///< ONEPORT_SERVICE_QUEUE_DEPTH: bounded queue size
  kServiceBatch,        ///< ONEPORT_SERVICE_BATCH: admission batch size K
  kServiceBackpressure, ///< ONEPORT_SERVICE_BACKPRESSURE: block | reject
  kCount,
};

inline constexpr std::size_t kNumKnobs = static_cast<std::size_t>(Knob::kCount);

/// One catalog row.  `fallback` is the documented default as a string
/// (what docs/KNOBS.md shows), `consumer` the file that acts on it.
struct KnobInfo {
  const char* name;
  const char* fallback;
  const char* consumer;
  const char* summary;
};

/// The full catalog, indexed by Knob, for docs and lint tooling.
[[nodiscard]] std::span<const KnobInfo, kNumKnobs> catalog() noexcept;

/// Catalog row for one knob.
[[nodiscard]] const KnobInfo& info(Knob knob) noexcept;

/// Raw environment value: nullptr when unset.  Prefer the typed
/// accessors below.
[[nodiscard]] const char* raw(Knob knob) noexcept;

/// True when the knob is set to a non-empty value other than "0"
/// (the repo-wide boolean convention, e.g. ONEPORT_PROFILE=1).
[[nodiscard]] bool flag(Knob knob) noexcept;

/// String value, or `fallback` when unset (empty counts as set).
[[nodiscard]] std::string_view text(Knob knob,
                                    std::string_view fallback) noexcept;

/// Integer value, or `fallback` when unset/unparsable.
[[nodiscard]] long integer(Knob knob, long fallback) noexcept;

}  // namespace oneport::env
