#include "util/profiler.hpp"

#include <memory>

#include "util/annotations.hpp"
#include "util/env_knobs.hpp"

namespace oneport::prof {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kTimelineNextFit: return "timeline_next_fit";
    case Counter::kTimelineHorizonHits: return "timeline_horizon_hits";
    case Counter::kTimelineReserves: return "timeline_reserves";
    case Counter::kOverlayResets: return "overlay_resets";
    case Counter::kPruneEvals: return "prune_evals";
    case Counter::kPruneSkips: return "prune_skips";
    case Counter::kEngineCommits: return "engine_commits";
    case Counter::kGapDeferredInserts: return "gap_deferred_inserts";
    case Counter::kGapFlushes: return "gap_flushes";
    case Counter::kCalendarRebuilds: return "calendar_rebuilds";
    case Counter::kCalendarShifts: return "calendar_shifts";
    case Counter::kPoolTasks: return "pool_tasks";
    case Counter::kPoolTaskNanos: return "pool_task_nanos";
    case Counter::kServiceRequests: return "service_requests";
    case Counter::kServiceBatches: return "service_batches";
    case Counter::kServiceRejects: return "service_rejects";
    case Counter::kServiceLatencyNanos: return "service_latency_nanos";
    case Counter::kCount: break;
  }
  return "unknown";
}

#if !defined(ONEPORT_NO_PROFILER)

namespace detail {

namespace {

/// Slab registry: grows, never shrinks.  Threads die but their counters
/// keep counting toward the aggregate, which is exactly what a run-level
/// profile wants.  Leaked intentionally so worker threads racing process
/// teardown never touch a destroyed registry.  The slab list is guarded;
/// the counters inside each slab are relaxed atomics written only by the
/// owning thread, so aggregation never needs to stop the writers.
struct SlabRegistry {
  util::Mutex mutex;
  std::vector<std::unique_ptr<Slab>> slabs OP_GUARDED_BY(mutex);
};

SlabRegistry& registry() noexcept {
  static auto* r = new SlabRegistry();
  return *r;
}

}  // namespace

std::atomic<bool> g_enabled{env::flag(env::Knob::kProfile)};

void bump_slow(Counter c, std::uint64_t n) noexcept {
  thread_local Slab* slab = nullptr;
  if (slab == nullptr) {
    SlabRegistry& reg = registry();
    util::MutexLock lock(reg.mutex);
    reg.slabs.push_back(std::make_unique<Slab>());
    slab = reg.slabs.back().get();
  }
  auto& slot = slab->counts[static_cast<std::size_t>(c)];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t slab_count() noexcept {
  detail::SlabRegistry& reg = detail::registry();
  util::MutexLock lock(reg.mutex);
  return reg.slabs.size();
}

std::vector<Counts> per_thread() {
  detail::SlabRegistry& reg = detail::registry();
  util::MutexLock lock(reg.mutex);
  std::vector<Counts> out;
  out.reserve(reg.slabs.size());
  for (const auto& slab : reg.slabs) {
    Counts counts{};
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      counts[i] = slab->counts[i].load(std::memory_order_relaxed);
    }
    out.push_back(counts);
  }
  return out;
}

Counts aggregate() noexcept {
  Counts total{};
  detail::SlabRegistry& reg = detail::registry();
  util::MutexLock lock(reg.mutex);
  for (const auto& slab : reg.slabs) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      total[i] += slab->counts[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

void reset() noexcept {
  detail::SlabRegistry& reg = detail::registry();
  util::MutexLock lock(reg.mutex);
  for (const auto& slab : reg.slabs) {
    for (auto& slot : slab->counts) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
}

#endif  // !ONEPORT_NO_PROFILER

}  // namespace oneport::prof
