#include "util/profiler.hpp"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace oneport::prof {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kTimelineNextFit: return "timeline_next_fit";
    case Counter::kTimelineHorizonHits: return "timeline_horizon_hits";
    case Counter::kTimelineReserves: return "timeline_reserves";
    case Counter::kOverlayResets: return "overlay_resets";
    case Counter::kPruneEvals: return "prune_evals";
    case Counter::kPruneSkips: return "prune_skips";
    case Counter::kEngineCommits: return "engine_commits";
    case Counter::kGapDeferredInserts: return "gap_deferred_inserts";
    case Counter::kGapFlushes: return "gap_flushes";
    case Counter::kCalendarRebuilds: return "calendar_rebuilds";
    case Counter::kCalendarShifts: return "calendar_shifts";
    case Counter::kPoolTasks: return "pool_tasks";
    case Counter::kPoolTaskNanos: return "pool_task_nanos";
    case Counter::kCount: break;
  }
  return "unknown";
}

#if !defined(ONEPORT_NO_PROFILER)

namespace detail {

namespace {

bool env_enabled() noexcept {
  const char* env = std::getenv("ONEPORT_PROFILE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

/// Slab registry: grows, never shrinks.  Threads die but their counters
/// keep counting toward the aggregate, which is exactly what a run-level
/// profile wants.  Leaked intentionally so worker threads racing process
/// teardown never touch a destroyed registry.
std::mutex& registry_mutex() noexcept {
  static auto* m = new std::mutex();
  return *m;
}

std::vector<std::unique_ptr<Slab>>& registry() noexcept {
  static auto* slabs = new std::vector<std::unique_ptr<Slab>>();
  return *slabs;
}

}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

void bump_slow(Counter c, std::uint64_t n) noexcept {
  thread_local Slab* slab = nullptr;
  if (slab == nullptr) {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(std::make_unique<Slab>());
    slab = registry().back().get();
  }
  auto& slot = slab->counts[static_cast<std::size_t>(c)];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t slab_count() noexcept {
  const std::lock_guard<std::mutex> lock(detail::registry_mutex());
  return detail::registry().size();
}

std::vector<Counts> per_thread() {
  const std::lock_guard<std::mutex> lock(detail::registry_mutex());
  std::vector<Counts> out;
  out.reserve(detail::registry().size());
  for (const auto& slab : detail::registry()) {
    Counts counts{};
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      counts[i] = slab->counts[i].load(std::memory_order_relaxed);
    }
    out.push_back(counts);
  }
  return out;
}

Counts aggregate() noexcept {
  Counts total{};
  const std::lock_guard<std::mutex> lock(detail::registry_mutex());
  for (const auto& slab : detail::registry()) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      total[i] += slab->counts[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

void reset() noexcept {
  const std::lock_guard<std::mutex> lock(detail::registry_mutex());
  for (const auto& slab : detail::registry()) {
    for (auto& slot : slab->counts) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
}

#endif  // !ONEPORT_NO_PROFILER

}  // namespace oneport::prof
