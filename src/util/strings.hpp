// Small string helpers shared across the library.
#pragma once

#include <cstddef>
#include <string>

namespace oneport {

/// "P" + 3 -> "P3".  Built via += rather than operator+(const char*,
/// std::string&&) to sidestep a GCC 12 -Wrestrict false positive at -O2
/// (GCC PR 105329).
[[nodiscard]] inline std::string indexed_name(const char* prefix,
                                              std::size_t index) {
  std::string name = prefix;
  name += std::to_string(index);
  return name;
}

}  // namespace oneport
