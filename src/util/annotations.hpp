// Clang thread-safety capability annotations plus the annotated mutex
// wrappers the rest of the tree locks with.
//
// Clang's -Wthread-safety analysis statically proves that every access
// to an OP_GUARDED_BY member happens with its capability (mutex) held.
// std::mutex carries no capability attributes (libstdc++ never will), so
// the analyzable pattern is the usual wrapper pair: a `Mutex` that IS a
// capability and a scoped `MutexLock` that acquires it.  Under GCC (the
// local toolchain) every macro expands to nothing and `Mutex` is a plain
// std::mutex wrapper with zero overhead; the CI clang-tidy job builds
// with Clang and -DONEPORT_THREAD_SAFETY=ON, which promotes every
// thread-safety finding to an error (see docs/ARCHITECTURE.md, "Static
// guarantees").
//
// Annotation rules of thumb used in this repo:
//   * every mutable member shared across threads is OP_GUARDED_BY its
//     mutex -- if a member legitimately needs no guard (atomics,
//     write-once-before-threads state), say why in a comment instead;
//   * private helpers that expect the lock held are OP_REQUIRES;
//   * condition waits go through `CondVar` with an explicit while-loop
//     around `wait(lock)` -- no predicate lambdas, because the analysis
//     treats a lambda body as a separate unannotated function.
#pragma once

#include <condition_variable>
#include <mutex>

// Capability attributes exist on Clang (and are inert without
// -Wthread-safety); everything else sees empty macros.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef OP_THREAD_ANNOTATION
#define OP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define OP_CAPABILITY(name) OP_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define OP_SCOPED_CAPABILITY OP_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define OP_GUARDED_BY(x) OP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define OP_PT_GUARDED_BY(x) OP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held.
#define OP_REQUIRES(...) \
  OP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability (and returns holding it).
#define OP_ACQUIRE(...) \
  OP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define OP_RELEASE(...) \
  OP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that must NOT be called with the capability held
/// (deadlock-prevention annotation for functions that acquire it).
#define OP_EXCLUDES(...) OP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch; pair it with a comment explaining why the analysis is
/// wrong (e.g. single-threaded construction).
#define OP_NO_THREAD_SAFETY_ANALYSIS \
  OP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace oneport::util {

/// std::mutex as a Clang capability.  Same size, same codegen; the
/// attribute only feeds the static analysis.
class OP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OP_ACQUIRE() { mutex_.lock(); }
  void unlock() OP_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// Scoped acquisition of a `Mutex` (the annotated std::lock_guard).
/// Also a BasicLockable so `CondVar` can release/reacquire it around a
/// wait; the re-lock methods carry the matching annotations so an
/// explicit unlock()/lock() pair stays analyzable.
class OP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) OP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() OP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() OP_ACQUIRE() { mutex_.lock(); }
  void unlock() OP_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Condition variable over `Mutex`.  wait() drops and reacquires the
/// lock through MutexLock's annotated lock()/unlock(), so callers keep
/// the usual pattern:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);   // ready_ is OP_GUARDED_BY(mutex_)
class CondVar {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace oneport::util
