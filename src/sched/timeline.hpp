// Busy-interval timelines of a single exclusive resource (a processor's
// compute unit, send port, or receive port).
//
// Three interchangeable implementations sit behind the same
// next_fit/reserve/is_free contract:
//
//   * Timeline -- the reference implementation: a sorted vector of busy
//     intervals, scanned linearly from a binary-searched lower bound.
//     Simple to audit; every other implementation is differentially
//     tested against it.
//   * GapTimeline -- the scale implementation: a sorted *free-gap* list
//     (binary-searchable starts) plus a hinted cursor so the
//     back-to-back append pattern list scheduling produces costs O(1)
//     instead of a fresh binary search per reservation.
//   * CalendarTimeline (sched/calendar_timeline.hpp) -- the middle-insert
//     implementation: busy intervals clipped into equal-width time
//     buckets, so reservations landing far from the horizon touch one
//     bucket instead of shifting a flat vector.
//
// TimelineIndex wraps all three behind one concrete type (no virtual
// dispatch) and is what the EFT engine stores; the active implementation
// is chosen per instance, defaulting to a process-wide setting that can
// be overridden with set_default_timeline_impl() or the ONEPORT_TIMELINE
// environment variable ("reference", "gap" or "calendar").  The index
// additionally caches the busy horizon so the dominant append-style
// probe (`ready` at or beyond every reservation) is answered inline
// without entering the implementation at all.
//
// The operations supported are the two queries list scheduling needs:
//   * next_fit(ready, duration): earliest start >= ready of a free slot,
//     i.e. insertion-based gap search;
//   * reserve(start, end): mark a slot busy.
// plus a joint search over two timelines (sender port + receiver port) for
// scheduling one-port communications, and an overlay mechanism so that
// heuristics can *tentatively* reserve slots while evaluating a candidate
// processor without mutating the committed state.
#pragma once

#include <span>
#include <vector>

#include "sched/calendar_timeline.hpp"
#include "sched/interval.hpp"
#include "util/error.hpp"
#include "util/profiler.hpp"

namespace oneport {

// ------------------------------------------------- reference timeline

class Timeline {
 public:
  /// Earliest start >= `ready` such that [start, start+duration) is free.
  /// duration == 0 always fits at `ready`.
  [[nodiscard]] double next_fit(double ready, double duration) const;

  /// Marks [start, end) busy.  Throws std::logic_error when the slot
  /// conflicts with an existing reservation (library bug).  Degenerate
  /// intervals are ignored.
  void reserve(double start, double end);

  [[nodiscard]] bool is_free(double start, double end) const;

  /// End of the last busy interval (0 when empty).
  [[nodiscard]] double horizon() const noexcept {
    return busy_.empty() ? 0.0 : busy_.back().end;
  }

  [[nodiscard]] std::span<const Interval> busy() const noexcept {
    return busy_;
  }
  /// Materialized busy intervals -- the common accessor both timeline
  /// implementations share, so tests can compare them structurally.
  [[nodiscard]] std::vector<Interval> busy_intervals() const {
    return {busy_.begin(), busy_.end()};
  }
  [[nodiscard]] bool empty() const noexcept { return busy_.empty(); }
  void clear() noexcept { busy_.clear(); }

  /// Total busy time.
  [[nodiscard]] double busy_time() const noexcept;

 private:
  // Sorted by start; pairwise non-overlapping (touching allowed; adjacent
  // reservations are merged to keep the vector short).
  std::vector<Interval> busy_;
};

// ----------------------------------------------- gap-indexed timeline

/// Same contract as Timeline, but the state is the complement: the sorted
/// list of free gaps.  The first gap starts at -infinity and the last gap
/// ends at +infinity; consecutive gaps are separated by exactly one busy
/// interval, so `gaps_[i].end .. gaps_[i+1].start` *is* the i-th busy
/// interval.  next_fit/reserve locate the gap covering a time point by
/// first probing a cursor remembering where the previous reservation
/// landed (list scheduling reserves back-to-back slots, so the probe
/// almost always hits) and only then falling back to binary search.
///
/// Reservations that split a gap far from the back of the list are
/// *deferred*: instead of an O(n) vector middle-insert per reservation
/// (which turns the rescheduling workload's repeated prefix-freeze seeding
/// quadratic), they accumulate in a small sorted side buffer that every
/// query consults, and are folded into the gap list by a linear-merge
/// compaction once the buffer reaches ~sqrt(gaps).  That bounds the
/// amortized middle-insert cost at O(sqrt(n)) while keeping the hot
/// back-to-back append path exactly as before (the buffer stays empty).
///
/// Not thread-safe, not even for const queries: the cursor is updated
/// from next_fit.  Use one timeline (engine) per thread.
class GapTimeline {
 public:
  [[nodiscard]] double next_fit(double ready, double duration) const;
  void reserve(double start, double end);
  [[nodiscard]] bool is_free(double start, double end) const;

  // Deferred splits never land in the +inf sentinel gap, so the horizon
  // is always the last materialized busy end.
  [[nodiscard]] double horizon() const noexcept {
    return gap_starts_.size() < 2 ? 0.0 : gap_starts_.back();
  }
  [[nodiscard]] bool empty() const noexcept {
    return gap_starts_.size() < 2 && pending_.empty();
  }
  void clear() noexcept {
    gap_starts_.clear();
    gap_ends_.clear();
    pending_.clear();
    pending_min_start_ = 0.0;
    pending_max_end_ = 0.0;
    hint_ = 0;
    widest_interior_ = 0.0;
  }
  [[nodiscard]] double busy_time() const noexcept;
  [[nodiscard]] std::vector<Interval> busy_intervals() const;

  /// Cost counters for the deferred-compaction machinery, used by the
  /// scale benchmarks to pin the middle-insert complexity.
  struct Stats {
    std::size_t deferred_inserts = 0;  ///< reservations buffered instead
    std::size_t flushes = 0;           ///< linear-merge compactions run
    std::size_t moved_elements = 0;    ///< vector elements shifted/merged
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Index of the first gap whose end is after `t` (the gap in or after
  /// which a slot starting at or after `t` must begin).  Requires a
  /// non-empty gap list.
  [[nodiscard]] std::size_t gap_ending_after(double t) const;

  /// Folds pending_ into gaps_ with one linear merge.
  void flush_pending();

  // Free gaps as structure-of-arrays: gap i spans
  // [gap_starts_[i], gap_ends_[i]).  The ends get their own dense array
  // because locating a gap is a binary search over ends alone -- an
  // 8-byte stride touches half the cache lines a packed Interval pair
  // would.  Empty means "never reserved" == one gap (-inf, +inf);
  // materialized on the first reserve() so default-constructed timelines
  // stay allocation-free.
  std::vector<double> gap_starts_;
  std::vector<double> gap_ends_;
  // Deferred busy intervals: sorted by start, pairwise non-overlapping,
  // each strictly inside one gap of gaps_ at the time it was buffered.
  std::vector<Interval> pending_;
  // Envelope of the buffer (meaningful only while pending_ is non-empty):
  // a probe at or past every buffered end, or ending at or before every
  // buffered start, provably absorbs nothing, so the per-probe
  // partition_point over the buffer is skipped entirely.
  double pending_min_start_ = 0.0;
  double pending_max_end_ = 0.0;
  mutable std::size_t hint_ = 0;  ///< gap index probed before searching
  // Upper bound on the width of every materialized gap with two finite
  // endpoints (interior gaps; the -inf head and +inf sentinel are
  // excluded).  Reservations only shrink or split gaps, so the bound can
  // go stale high but never low; it is retightened exactly on every
  // flush_pending().  next_fit uses it to answer "no interior gap can
  // hold this duration" in O(1) and jump straight to the horizon, which
  // is the dominant outcome for interior probes on long timelines whose
  // surviving gaps are small.
  double widest_interior_ = 0.0;
  Stats stats_;
};

// -------------------------------------------- implementation selection

enum class TimelineImpl {
  kReference,   ///< sorted busy-interval vector (Timeline)
  kGapIndexed,  ///< free-gap list with hinted cursor (GapTimeline)
  kCalendar,    ///< bucketed calendar queue (CalendarTimeline)
};

/// Process-wide default used by TimelineIndex's default constructor.
/// Initialized once from the ONEPORT_TIMELINE environment variable
/// ("reference", "gap" or "calendar"); kGapIndexed when unset.
[[nodiscard]] TimelineImpl default_timeline_impl() noexcept;
void set_default_timeline_impl(TimelineImpl impl) noexcept;
[[nodiscard]] const char* timeline_impl_name(TimelineImpl impl) noexcept;

/// RAII override of the process-wide default, for differential tests and
/// benchmarks that run both implementations side by side.
class ScopedTimelineImpl {
 public:
  explicit ScopedTimelineImpl(TimelineImpl impl)
      : previous_(default_timeline_impl()) {
    set_default_timeline_impl(impl);
  }
  ~ScopedTimelineImpl() { set_default_timeline_impl(previous_); }
  ScopedTimelineImpl(const ScopedTimelineImpl&) = delete;
  ScopedTimelineImpl& operator=(const ScopedTimelineImpl&) = delete;

 private:
  TimelineImpl previous_;
};

/// The timeline abstraction the scheduling engine stores: one concrete
/// type dispatching to the implementation chosen at construction.  All
/// members are cheap empty vectors; only the active one ever grows.
///
/// The index caches the busy horizon itself: a probe at or beyond it
/// (within kTimeEps) provably returns `ready` under every
/// implementation (no stored interval ends after ready + kTimeEps, so
/// the reference scan finds no blocker), and list scheduling's dominant
/// append pattern therefore never pays the dispatch at all.
class TimelineIndex {
 public:
  TimelineIndex() : TimelineIndex(default_timeline_impl()) {}
  explicit TimelineIndex(TimelineImpl impl) : impl_(impl) {}

  [[nodiscard]] double next_fit(double ready, double duration) const {
    prof::bump(prof::Counter::kTimelineNextFit);
    OP_REQUIRE(duration >= 0.0, "duration must be non-negative");
    if (duration <= kTimeEps) return ready;
    if (ready >= horizon_ - kTimeEps) {
      prof::bump(prof::Counter::kTimelineHorizonHits);
      return ready;
    }
    switch (impl_) {
      case TimelineImpl::kReference: return ref_.next_fit(ready, duration);
      case TimelineImpl::kGapIndexed: return gap_.next_fit(ready, duration);
      case TimelineImpl::kCalendar: return cal_.next_fit(ready, duration);
    }
    return ready;  // unreachable
  }
  void reserve(double start, double end) {
    prof::bump(prof::Counter::kTimelineReserves);
    switch (impl_) {
      case TimelineImpl::kReference: ref_.reserve(start, end); break;
      case TimelineImpl::kGapIndexed: gap_.reserve(start, end); break;
      case TimelineImpl::kCalendar: cal_.reserve(start, end); break;
    }
    // Degenerate reservations are ignored by every implementation and
    // must not advance the cached horizon.
    if (end > horizon_ && !Interval{start, end}.degenerate()) horizon_ = end;
  }
  [[nodiscard]] bool is_free(double start, double end) const {
    switch (impl_) {
      case TimelineImpl::kReference: return ref_.is_free(start, end);
      case TimelineImpl::kGapIndexed: return gap_.is_free(start, end);
      case TimelineImpl::kCalendar: return cal_.is_free(start, end);
    }
    return true;  // unreachable
  }
  [[nodiscard]] double horizon() const noexcept { return horizon_; }
  [[nodiscard]] bool empty() const noexcept {
    switch (impl_) {
      case TimelineImpl::kReference: return ref_.empty();
      case TimelineImpl::kGapIndexed: return gap_.empty();
      case TimelineImpl::kCalendar: return cal_.empty();
    }
    return true;  // unreachable
  }
  void clear() noexcept {
    horizon_ = 0.0;
    switch (impl_) {
      case TimelineImpl::kReference: ref_.clear(); break;
      case TimelineImpl::kGapIndexed: gap_.clear(); break;
      case TimelineImpl::kCalendar: cal_.clear(); break;
    }
  }
  [[nodiscard]] double busy_time() const noexcept {
    switch (impl_) {
      case TimelineImpl::kReference: return ref_.busy_time();
      case TimelineImpl::kGapIndexed: return gap_.busy_time();
      case TimelineImpl::kCalendar: return cal_.busy_time();
    }
    return 0.0;  // unreachable
  }
  [[nodiscard]] std::vector<Interval> busy_intervals() const {
    switch (impl_) {
      case TimelineImpl::kReference: return ref_.busy_intervals();
      case TimelineImpl::kGapIndexed: return gap_.busy_intervals();
      case TimelineImpl::kCalendar: return cal_.busy_intervals();
    }
    return {};  // unreachable
  }
  [[nodiscard]] TimelineImpl impl() const noexcept { return impl_; }

 private:
  TimelineImpl impl_;
  double horizon_ = 0.0;  ///< end of the last non-degenerate reservation
  Timeline ref_;
  GapTimeline gap_;
  CalendarTimeline cal_;
};

// ---------------------------------------------------------- overlays

/// A read-only view of a TimelineIndex plus a small set of *pending*
/// extra reservations, used while evaluating candidate processors.  The
/// extras are typically the communications tentatively scheduled for
/// earlier parents of the same task.  Overlays are designed for reuse:
/// the EFT engine keeps one per processor and reset()s it instead of
/// reallocating (the extras vector keeps its capacity).
class TimelineOverlay {
 public:
  TimelineOverlay() = default;
  explicit TimelineOverlay(const TimelineIndex& base)
      : base_(&base), base_horizon_(base.horizon()) {}

  /// Re-points the overlay at `base` and drops the extras, keeping the
  /// allocated capacity.  The base horizon is cached here: during one
  /// evaluation the base is never mutated, so a probe at or beyond both
  /// the base horizon and every extra's end is answered inline.
  void reset(const TimelineIndex& base) {
    base_ = &base;
    base_horizon_ = base.horizon();
    extras_horizon_ = 0.0;
    extras_.clear();
  }

  [[nodiscard]] double next_fit(double ready, double duration) const;
  void add(double start, double end);
  [[nodiscard]] std::span<const Interval> extras() const noexcept {
    return extras_;
  }

 private:
  const TimelineIndex* base_ = nullptr;
  double base_horizon_ = 0.0;    ///< base->horizon() at reset time
  double extras_horizon_ = 0.0;  ///< max end over the extras
  std::vector<Interval> extras_;  // kept sorted by start
};

/// Earliest start >= `ready` at which BOTH overlays have [start,
/// start+duration) free -- the one-port constraint for a transfer that
/// occupies the sender's send port and the receiver's receive port
/// simultaneously.
[[nodiscard]] double earliest_joint_fit(const TimelineOverlay& a,
                                        const TimelineOverlay& b,
                                        double ready, double duration);

}  // namespace oneport
