// Busy-interval timeline of a single exclusive resource (a processor's
// compute unit, send port, or receive port).
//
// Supports the two queries list scheduling needs:
//   * next_fit(ready, duration): earliest start >= ready of a free slot,
//     i.e. insertion-based gap search;
//   * reserve(start, end): mark a slot busy.
// plus a joint search over two timelines (sender port + receiver port) for
// scheduling one-port communications, and an overlay mechanism so that
// heuristics can *tentatively* reserve slots while evaluating a candidate
// processor without mutating the committed state.
#pragma once

#include <span>
#include <vector>

#include "sched/interval.hpp"

namespace oneport {

class Timeline {
 public:
  /// Earliest start >= `ready` such that [start, start+duration) is free.
  /// duration == 0 always fits at `ready`.
  [[nodiscard]] double next_fit(double ready, double duration) const;

  /// Marks [start, end) busy.  Throws std::logic_error when the slot
  /// conflicts with an existing reservation (library bug).  Degenerate
  /// intervals are ignored.
  void reserve(double start, double end);

  [[nodiscard]] bool is_free(double start, double end) const;

  /// End of the last busy interval (0 when empty).
  [[nodiscard]] double horizon() const noexcept {
    return busy_.empty() ? 0.0 : busy_.back().end;
  }

  [[nodiscard]] std::span<const Interval> busy() const noexcept {
    return busy_;
  }
  [[nodiscard]] bool empty() const noexcept { return busy_.empty(); }
  void clear() noexcept { busy_.clear(); }

  /// Total busy time.
  [[nodiscard]] double busy_time() const noexcept;

 private:
  // Sorted by start; pairwise non-overlapping (touching allowed; adjacent
  // reservations are merged to keep the vector short).
  std::vector<Interval> busy_;
};

/// A read-only view of a Timeline plus a small set of *pending* extra
/// reservations, used while evaluating candidate processors.  The extras
/// are typically the communications tentatively scheduled for earlier
/// parents of the same task.
class TimelineOverlay {
 public:
  explicit TimelineOverlay(const Timeline& base) : base_(&base) {}

  [[nodiscard]] double next_fit(double ready, double duration) const;
  void add(double start, double end);
  [[nodiscard]] std::span<const Interval> extras() const noexcept {
    return extras_;
  }

 private:
  const Timeline* base_;
  std::vector<Interval> extras_;  // kept sorted by start
};

/// Earliest start >= `ready` at which BOTH overlays have [start,
/// start+duration) free -- the one-port constraint for a transfer that
/// occupies the sender's send port and the receiver's receive port
/// simultaneously.
[[nodiscard]] double earliest_joint_fit(const TimelineOverlay& a,
                                        const TimelineOverlay& b,
                                        double ready, double duration);

}  // namespace oneport
