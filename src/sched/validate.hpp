// Independent schedule checkers for the two communication models.
//
// Validators are written against the *rules* of §2.1/§2.3 only -- they
// share no code with the schedulers, so a bug in a heuristic cannot hide a
// matching bug in its own bookkeeping.  They collect every violation they
// find (not just the first) to make test failures actionable.
//
// Checked rules, macro-dataflow model (§2.1):
//   M1  every task is placed on a valid processor;
//   M2  task duration equals w(v) * t_alloc(v);
//   M3  a processor executes at most one task at a time;
//   M4  for every edge u->v: same processor  => start(v) >= finish(u);
//       different processors => exactly one matching message, whose
//       duration is data(u,v) * link(q,r), which starts no earlier than
//       finish(u) and ends no later than start(v);
//   M5  no spurious messages (no matching edge, same-processor transfer,
//       duplicated edge message, or endpoints placed elsewhere).
//
// One-port model (§2.3) adds:
//   O1  messages sent by a given processor are pairwise non-overlapping
//       (one send port);
//   O2  messages received by a given processor are pairwise
//       non-overlapping (one receive port).
// Send and receive may overlap on the same processor (bi-directional), and
// computation always overlaps communication.
#pragma once

#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport {

struct ValidationResult {
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  /// All violations joined with newlines ("" when valid).
  [[nodiscard]] std::string message() const;
};

/// Checks M1-M5.
[[nodiscard]] ValidationResult validate_macro_dataflow(
    const Schedule& schedule, const TaskGraph& graph,
    const Platform& platform);

/// Checks M1-M5 plus O1-O2.
[[nodiscard]] ValidationResult validate_one_port(const Schedule& schedule,
                                                 const TaskGraph& graph,
                                                 const Platform& platform);

}  // namespace oneport
