#include "sched/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "sched/interval.hpp"

namespace oneport {

std::string ValidationResult::message() const {
  std::string out;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i) out += '\n';
    out += errors[i];
  }
  return out;
}

namespace {

class Checker {
 public:
  Checker(const Schedule& s, const TaskGraph& g, const Platform& p)
      : sched_(s), graph_(g), platform_(p) {}

  ValidationResult run(bool one_port) {
    check_placements();
    // A size mismatch makes every further check index out of range.
    if (sched_.num_tasks() != graph_.num_tasks()) return std::move(result_);
    check_compute_exclusivity();
    check_edges_and_comms();
    if (one_port) check_ports();
    return std::move(result_);
  }

 private:
  template <typename... Parts>
  void fail(const Parts&... parts) {
    std::ostringstream oss;
    (oss << ... << parts);
    result_.errors.push_back(oss.str());
  }

  static bool close(double a, double b) { return std::abs(a - b) <= kTimeEps; }

  void check_placements() {
    if (sched_.num_tasks() != graph_.num_tasks()) {
      fail("schedule has ", sched_.num_tasks(), " tasks, graph has ",
           graph_.num_tasks());
      return;
    }
    for (TaskId v = 0; v < graph_.num_tasks(); ++v) {
      const TaskPlacement& t = sched_.task(v);
      if (!t.placed()) {
        fail("M1: task ", v, " not placed");
        continue;
      }
      if (t.proc >= platform_.num_processors()) {
        fail("M1: task ", v, " on invalid processor ", t.proc);
        continue;
      }
      if (t.start < -kTimeEps) fail("M1: task ", v, " starts before time 0");
      const double expected = platform_.exec_time(graph_.weight(v), t.proc);
      if (!close(t.finish - t.start, expected)) {
        fail("M2: task ", v, " duration ", t.finish - t.start, " != w*t = ",
             expected, " on P", t.proc);
      }
    }
  }

  void check_compute_exclusivity() {
    std::vector<std::vector<std::pair<Interval, TaskId>>> per_proc(
        static_cast<std::size_t>(platform_.num_processors()));
    for (TaskId v = 0; v < graph_.num_tasks(); ++v) {
      const TaskPlacement& t = sched_.task(v);
      if (!t.placed() || t.proc >= platform_.num_processors()) continue;
      per_proc[static_cast<std::size_t>(t.proc)].push_back(
          {{t.start, t.finish}, v});
    }
    for (std::size_t p = 0; p < per_proc.size(); ++p) {
      auto& items = per_proc[p];
      std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
        return a.first.start < b.first.start;
      });
      for (std::size_t i = 1; i < items.size(); ++i) {
        if (overlaps(items[i - 1].first, items[i].first)) {
          fail("M3: tasks ", items[i - 1].second, " and ", items[i].second,
               " overlap on P", p);
        }
      }
    }
  }

  void check_edges_and_comms() {
    // Group messages by edge for lookup and spurious-message detection.
    std::map<std::pair<TaskId, TaskId>, std::vector<const CommPlacement*>>
        by_edge;
    for (const CommPlacement& c : sched_.comms()) {
      by_edge[{c.src, c.dst}].push_back(&c);
    }

    for (TaskId u = 0; u < graph_.num_tasks(); ++u) {
      const TaskPlacement& tu = sched_.task(u);
      for (const EdgeRef& e : graph_.successors(u)) {
        const TaskId v = e.task;
        const TaskPlacement& tv = sched_.task(v);
        if (!tu.placed() || !tv.placed()) continue;
        const auto it = by_edge.find({u, v});
        const std::size_t n_msgs =
            it == by_edge.end() ? 0 : it->second.size();
        if (tu.proc == tv.proc) {
          if (tv.start < tu.finish - kTimeEps) {
            fail("M4: edge ", u, "->", v, ": successor starts at ", tv.start,
                 " before predecessor finishes at ", tu.finish);
          }
          if (n_msgs != 0) {
            fail("M5: edge ", u, "->", v,
                 ": message present although endpoints share P", tu.proc);
          }
          continue;
        }
        if (n_msgs == 0) {
          fail("M4: edge ", u, "->", v, ": expected a message, found none");
          continue;
        }
        // The messages must form a store-and-forward chain from the
        // source's processor to the sink's (one hop on fully connected
        // networks, several along a routed path -- the §4.3 extension).
        std::vector<const CommPlacement*> chain = it->second;
        std::sort(chain.begin(), chain.end(),
                  [](const CommPlacement* a, const CommPlacement* b) {
                    return a->start < b->start;
                  });
        if (chain.front()->from != tu.proc) {
          fail("M5: edge ", u, "->", v, ": first hop leaves P",
               chain.front()->from, " but the source sits on P", tu.proc);
        }
        if (chain.back()->to != tv.proc) {
          fail("M5: edge ", u, "->", v, ": last hop reaches P",
               chain.back()->to, " but the sink sits on P", tv.proc);
        }
        if (chain.front()->start < tu.finish - kTimeEps) {
          fail("M4: edge ", u, "->", v, ": first hop starts at ",
               chain.front()->start, " before source finishes at ",
               tu.finish);
        }
        if (tv.start < chain.back()->finish - kTimeEps) {
          fail("M4: edge ", u, "->", v, ": successor starts at ", tv.start,
               " before the last hop arrives at ", chain.back()->finish);
        }
        for (std::size_t h = 0; h < chain.size(); ++h) {
          const CommPlacement& c = *chain[h];
          const double expected = platform_.comm_time(e.data, c.from, c.to);
          if (!close(c.finish - c.start, expected)) {
            fail("M4: edge ", u, "->", v, " hop P", c.from, "->P", c.to,
                 ": duration ", c.finish - c.start, " != data*link = ",
                 expected);
          }
          if (h > 0) {
            const CommPlacement& prev = *chain[h - 1];
            if (c.from != prev.to) {
              fail("M5: edge ", u, "->", v, ": hop P", c.from, "->P", c.to,
                   " does not continue from P", prev.to);
            }
            if (c.start < prev.finish - kTimeEps) {
              fail("M4: edge ", u, "->", v, ": hop P", c.from, "->P", c.to,
                   " starts at ", c.start, " before the previous hop lands "
                   "at ", prev.finish);
            }
          }
        }
      }
    }

    // Spurious messages: every recorded message must match a graph edge.
    for (const auto& [key, msgs] : by_edge) {
      const auto [u, v] = key;
      const bool edge_exists = u < graph_.num_tasks() &&
                               v < graph_.num_tasks() && graph_.has_edge(u, v);
      if (!edge_exists) {
        fail("M5: message for non-existent edge ", u, "->", v);
      }
    }
  }

  void check_ports() {
    const auto p = static_cast<std::size_t>(platform_.num_processors());
    std::vector<std::vector<const CommPlacement*>> sends(p), recvs(p);
    for (const CommPlacement& c : sched_.comms()) {
      if (c.from >= 0 && static_cast<std::size_t>(c.from) < p)
        sends[static_cast<std::size_t>(c.from)].push_back(&c);
      if (c.to >= 0 && static_cast<std::size_t>(c.to) < p)
        recvs[static_cast<std::size_t>(c.to)].push_back(&c);
    }
    auto check_port = [this](std::vector<const CommPlacement*>& msgs,
                             const char* kind, std::size_t proc) {
      std::sort(msgs.begin(), msgs.end(),
                [](const CommPlacement* a, const CommPlacement* b) {
                  return a->start < b->start;
                });
      // Pairwise check against the running maximum end; O(n log n) total.
      const CommPlacement* prev = nullptr;
      for (const CommPlacement* c : msgs) {
        if (Interval{c->start, c->finish}.degenerate()) continue;
        if (prev != nullptr &&
            overlaps({prev->start, prev->finish}, {c->start, c->finish})) {
          fail(kind, " port of P", proc, ": messages ", prev->src, "->",
               prev->dst, " and ", c->src, "->", c->dst, " overlap");
        }
        if (prev == nullptr || c->finish > prev->finish) prev = c;
      }
    };
    for (std::size_t q = 0; q < p; ++q) {
      check_port(sends[q], "O1: send", q);
      check_port(recvs[q], "O2: receive", q);
    }
  }

  const Schedule& sched_;
  const TaskGraph& graph_;
  const Platform& platform_;
  ValidationResult result_;
};

}  // namespace

ValidationResult validate_macro_dataflow(const Schedule& schedule,
                                         const TaskGraph& graph,
                                         const Platform& platform) {
  return Checker(schedule, graph, platform).run(/*one_port=*/false);
}

ValidationResult validate_one_port(const Schedule& schedule,
                                   const TaskGraph& graph,
                                   const Platform& platform) {
  return Checker(schedule, graph, platform).run(/*one_port=*/true);
}

}  // namespace oneport
