// Calendar-queue timeline: the third ONEPORT_TIMELINE implementation.
//
// Timeline (reference) and GapTimeline both keep one flat sorted vector,
// so a reservation landing in the *middle* of the busy range pays a
// linear shift -- GapTimeline's deferred side buffer amortizes that to
// O(sqrt(n)), which still dominates the rescheduling workload's
// repeated prefix-freeze seeding at 100k+ reservations.  The calendar
// queue buckets the time axis instead: busy intervals are stored
// *clipped to equal-width buckets* ("days"), each bucket holding its
// few segments sorted by start.  A middle insert then touches one
// bucket (amortized O(1) for the uniform-ish workloads list scheduling
// produces), and the bucket array is rebuilt -- rescaled to the current
// span and density -- only when occupancy or range outgrows it, which
// amortizes to O(1) per reservation.
//
// Semantic equivalence with the reference implementation is structural:
//   * scanning the clipped segments in global start order visits exactly
//     the reference's merged busy intervals (a run's pieces are
//     back-to-back, so a sliding next_fit candidate crosses them exactly
//     as it crosses the merged interval, and no gap of width > kTimeEps
//     opens inside a run);
//   * reserve() snaps the new interval to any run ending/starting within
//     kTimeEps of it, mirroring the reference's touching-neighbor merge,
//     so distinct runs always stay separated by more than kTimeEps;
//   * the horizon fast path answers next_fit(ready >= horizon - eps)
//     with `ready`, the same O(1) short-cut the other implementations
//     take.
// The three-way differential sweep and the timeline fuzz test pin all of
// this bit-identically against Timeline and GapTimeline.
//
// Not thread-safe; use one timeline (engine) per thread.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/interval.hpp"

namespace oneport {

class CalendarTimeline {
 public:
  [[nodiscard]] double next_fit(double ready, double duration) const;
  void reserve(double start, double end);
  [[nodiscard]] bool is_free(double start, double end) const;

  [[nodiscard]] double horizon() const noexcept { return horizon_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  void clear() noexcept;
  [[nodiscard]] double busy_time() const noexcept;
  [[nodiscard]] std::vector<Interval> busy_intervals() const;

  /// Cost counters, used by the scale benchmarks to pin the
  /// middle-insert complexity and exported through the profiler.
  struct Stats {
    std::size_t rebuilds = 0;          ///< full bucket-array rebuilds
    std::size_t shifted_segments = 0;  ///< segments moved by inserts+rebuilds
    std::size_t inserts = 0;           ///< reservations stored
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Bucket index covering time `t`, clamped to the valid range.
  [[nodiscard]] std::size_t bucket_of(double t) const noexcept;
  [[nodiscard]] double top() const noexcept {
    return origin_ + width_ * static_cast<double>(buckets_.size());
  }

  /// Re-buckets every busy run so the array covers [lo, hi] with a
  /// density-matched bucket count.
  void rebuild(double lo, double hi);

  /// Inserts the already-snapped busy interval [ns, ne), splitting it at
  /// bucket boundaries; extends an exactly-touching predecessor segment
  /// in place (the back-to-back append fast path).
  void insert_run(double ns, double ne);

  // Segments clipped to buckets: buckets_[b] holds the pieces whose
  // clipped start lies in [origin_ + b*width_, origin_ + (b+1)*width_),
  // sorted by start, pairwise non-overlapping across the whole structure.
  std::vector<std::vector<Interval>> buckets_;
  double origin_ = 0.0;
  double width_ = 1.0;
  std::size_t count_ = 0;   ///< total stored segments
  double horizon_ = 0.0;    ///< end of the last busy run (0 when empty)
  double lowest_ = 0.0;     ///< start of the first busy run
  Stats stats_;
};

}  // namespace oneport
