#include "sched/replay.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace oneport {

namespace {

/// Longest-path computation over a DAG of events with per-source lags.
class EventGraph {
 public:
  explicit EventGraph(std::size_t num_events)
      : succ_(num_events), in_degree_(num_events, 0),
        start_(num_events, 0.0) {}

  void add_constraint(std::size_t before, std::size_t after, double lag) {
    succ_[before].push_back({after, lag});
    ++in_degree_[after];
  }

  /// Kahn longest path; returns earliest start times.  Throws when the
  /// constraint graph has a cycle.
  std::vector<double> solve() {
    std::vector<std::size_t> ready;
    for (std::size_t e = 0; e < succ_.size(); ++e) {
      if (in_degree_[e] == 0) ready.push_back(e);
    }
    std::size_t processed = 0;
    for (std::size_t head = 0; head < ready.size(); ++head, ++processed) {
      const std::size_t e = ready[head];
      for (const auto& [next, lag] : succ_[e]) {
        start_[next] = std::max(start_[next], start_[e] + lag);
        if (--in_degree_[next] == 0) ready.push_back(next);
      }
    }
    OP_REQUIRE(processed == succ_.size(),
               "schedule induces a cyclic event ordering");
    return std::move(start_);
  }

 private:
  std::vector<std::vector<std::pair<std::size_t, double>>> succ_;
  std::vector<std::size_t> in_degree_;
  std::vector<double> start_;
};

}  // namespace

namespace {

/// Shared replay core: recomputes all dates for given (possibly
/// perturbed) task durations.
Schedule replay_with_durations(const Schedule& schedule,
                               const TaskGraph& graph,
                               const Platform& platform, CommModel model,
                               const std::vector<double>& task_dur) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  OP_REQUIRE(schedule.num_tasks() == graph.num_tasks(),
             "schedule/graph size mismatch");
  OP_REQUIRE(schedule.complete(), "replay requires a complete schedule");

  const std::size_t n = graph.num_tasks();
  const auto& comms = schedule.comms();
  const std::size_t m = comms.size();
  // Event ids: [0, n) are tasks, [n, n+m) are messages.
  EventGraph events(n + m);

  std::vector<double> comm_dur(m);
  for (std::size_t c = 0; c < m; ++c) {
    comm_dur[c] = platform.comm_time(graph.edge_data(comms[c].src,
                                                     comms[c].dst),
                                     comms[c].from, comms[c].to);
  }

  // Data dependences.  Index messages by edge for the cross-processor
  // case; an edge may be carried by a chain of store-and-forward hops
  // when the schedule was built over a routed (sparse) network.
  std::vector<std::vector<std::size_t>> comms_of_src(n);
  for (std::size_t c = 0; c < m; ++c) {
    comms_of_src[comms[c].src].push_back(c);
  }
  auto chain_of = [&](TaskId u, TaskId v) {
    std::vector<std::size_t> chain;
    for (const std::size_t c : comms_of_src[u]) {
      if (comms[c].dst == v) chain.push_back(c);
    }
    OP_REQUIRE(!chain.empty(), "no message recorded for cross-processor "
                               "edge " << u << "->" << v);
    std::sort(chain.begin(), chain.end(), [&comms](std::size_t a,
                                                   std::size_t b) {
      return comms[a].start < comms[b].start;
    });
    return chain;
  };
  for (TaskId u = 0; u < n; ++u) {
    for (const EdgeRef& e : graph.successors(u)) {
      const TaskId v = e.task;
      if (schedule.task(u).proc == schedule.task(v).proc) {
        events.add_constraint(u, v, task_dur[u]);
      } else {
        const std::vector<std::size_t> chain = chain_of(u, v);
        events.add_constraint(u, n + chain.front(), task_dur[u]);
        for (std::size_t h = 0; h + 1 < chain.size(); ++h) {
          events.add_constraint(n + chain[h], n + chain[h + 1],
                                comm_dur[chain[h]]);
        }
        events.add_constraint(n + chain.back(), v, comm_dur[chain.back()]);
      }
    }
  }

  // Resource orders, extracted from the input dates (stable on ties).
  const auto p = static_cast<std::size_t>(platform.num_processors());
  std::vector<std::vector<TaskId>> compute_order(p);
  for (TaskId v = 0; v < n; ++v) {
    compute_order[static_cast<std::size_t>(schedule.task(v).proc)]
        .push_back(v);
  }
  for (auto& order : compute_order) {
    std::stable_sort(order.begin(), order.end(),
                     [&schedule](TaskId a, TaskId b) {
                       return schedule.task(a).start < schedule.task(b).start;
                     });
    for (std::size_t i = 1; i < order.size(); ++i) {
      events.add_constraint(order[i - 1], order[i], task_dur[order[i - 1]]);
    }
  }

  if (model == CommModel::kOnePort) {
    std::vector<std::vector<std::size_t>> send_order(p), recv_order(p);
    for (std::size_t c = 0; c < m; ++c) {
      send_order[static_cast<std::size_t>(comms[c].from)].push_back(c);
      recv_order[static_cast<std::size_t>(comms[c].to)].push_back(c);
    }
    auto chain = [&](std::vector<std::vector<std::size_t>>& orders) {
      for (auto& order : orders) {
        std::stable_sort(order.begin(), order.end(),
                         [&comms](std::size_t a, std::size_t b) {
                           return comms[a].start < comms[b].start;
                         });
        for (std::size_t i = 1; i < order.size(); ++i) {
          events.add_constraint(n + order[i - 1], n + order[i],
                                comm_dur[order[i - 1]]);
        }
      }
    };
    chain(send_order);
    chain(recv_order);
  }

  const std::vector<double> start = events.solve();

  Schedule out(n);
  for (TaskId v = 0; v < n; ++v) {
    out.place_task(v, schedule.task(v).proc, start[v], start[v] + task_dur[v]);
  }
  for (std::size_t c = 0; c < m; ++c) {
    CommPlacement placed = comms[c];
    placed.start = start[n + c];
    placed.finish = start[n + c] + comm_dur[c];
    out.add_comm(placed);
  }
  return out;
}

}  // namespace

Schedule asap_replay(const Schedule& schedule, const TaskGraph& graph,
                     const Platform& platform, CommModel model) {
  std::vector<double> task_dur(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    task_dur[v] = platform.exec_time(graph.weight(v), schedule.task(v).proc);
  }
  return replay_with_durations(schedule, graph, platform, model, task_dur);
}

Schedule perturbed_replay(const Schedule& schedule, const TaskGraph& graph,
                          const Platform& platform, CommModel model,
                          double noise, std::uint64_t seed) {
  OP_REQUIRE(noise >= 0.0 && noise < 1.0, "noise must be in [0, 1)");
  SplitMix64 rng(seed);
  std::vector<double> task_dur(graph.num_tasks());
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    const double factor = 1.0 + noise * (2.0 * rng.uniform01() - 1.0);
    task_dur[v] =
        platform.exec_time(graph.weight(v), schedule.task(v).proc) * factor;
  }
  return replay_with_durations(schedule, graph, platform, model, task_dur);
}

}  // namespace oneport
