#include "sched/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oneport {

namespace {

/// First busy interval whose end is after `t` (candidates that could block
/// a slot starting at or after `t`).
std::vector<Interval>::const_iterator first_blocking(
    const std::vector<Interval>& busy, double t) {
  return std::partition_point(
      busy.begin(), busy.end(),
      [t](const Interval& iv) { return iv.end <= t + kTimeEps; });
}

}  // namespace

double Timeline::next_fit(double ready, double duration) const {
  OP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  if (duration <= kTimeEps) return ready;
  double candidate = ready;
  for (auto it = first_blocking(busy_, candidate); it != busy_.end(); ++it) {
    if (candidate + duration <= it->start + kTimeEps) break;
    candidate = std::max(candidate, it->end);
  }
  return candidate;
}

void Timeline::reserve(double start, double end) {
  OP_REQUIRE(end >= start - kTimeEps, "interval end before start");
  const Interval iv{start, end};
  if (iv.degenerate()) return;
  const auto pos = std::partition_point(
      busy_.begin(), busy_.end(),
      [&iv](const Interval& b) { return b.start < iv.start; });
  // Conflict check against the neighbors.
  if (pos != busy_.begin()) {
    OP_ASSERT(!overlaps(*(pos - 1), iv),
              "reservation [" << start << "," << end << ") overlaps ["
                              << (pos - 1)->start << "," << (pos - 1)->end
                              << ")");
  }
  if (pos != busy_.end()) {
    OP_ASSERT(!overlaps(*pos, iv),
              "reservation [" << start << "," << end << ") overlaps ["
                              << pos->start << "," << pos->end << ")");
  }
  // Merge with touching neighbors to keep the vector compact; list
  // scheduling produces long runs of back-to-back reservations.
  auto inserted = busy_.insert(pos, iv);
  if (inserted != busy_.begin()) {
    auto prev = inserted - 1;
    if (inserted->start <= prev->end + kTimeEps) {
      prev->end = std::max(prev->end, inserted->end);
      inserted = busy_.erase(inserted) - 1;
    }
  }
  if (inserted + 1 != busy_.end()) {
    auto next = inserted + 1;
    if (next->start <= inserted->end + kTimeEps) {
      inserted->end = std::max(inserted->end, next->end);
      busy_.erase(next);
    }
  }
}

bool Timeline::is_free(double start, double end) const {
  const Interval iv{start, end};
  if (iv.degenerate()) return true;
  for (auto it = first_blocking(busy_, start); it != busy_.end(); ++it) {
    if (it->start >= end - kTimeEps) break;
    if (overlaps(*it, iv)) return false;
  }
  return true;
}

double Timeline::busy_time() const noexcept {
  double total = 0.0;
  for (const Interval& iv : busy_) total += iv.duration();
  return total;
}

double TimelineOverlay::next_fit(double ready, double duration) const {
  if (duration <= kTimeEps) return ready;
  double candidate = ready;
  while (true) {
    candidate = base_->next_fit(candidate, duration);
    bool moved = false;
    for (const Interval& extra : extras_) {
      if (extra.start >= candidate + duration - kTimeEps) break;
      if (overlaps(extra, {candidate, candidate + duration})) {
        candidate = extra.end;
        moved = true;
      }
    }
    if (!moved) return candidate;
  }
}

void TimelineOverlay::add(double start, double end) {
  const Interval iv{start, end};
  if (iv.degenerate()) return;
  const auto pos = std::partition_point(
      extras_.begin(), extras_.end(),
      [&iv](const Interval& e) { return e.start < iv.start; });
  extras_.insert(pos, iv);
}

double earliest_joint_fit(const TimelineOverlay& a, const TimelineOverlay& b,
                          double ready, double duration) {
  if (duration <= kTimeEps) return ready;
  double candidate = ready;
  while (true) {
    const double ca = a.next_fit(candidate, duration);
    const double cb = b.next_fit(ca, duration);
    if (cb <= ca + kTimeEps) return ca;
    candidate = cb;
  }
}

}  // namespace oneport
