#include "sched/timeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string_view>

#include "util/env_knobs.hpp"
#include "util/error.hpp"

namespace oneport {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// First busy interval whose end is after `t` (candidates that could block
/// a slot starting at or after `t`).
std::vector<Interval>::const_iterator first_blocking(
    const std::vector<Interval>& busy, double t) {
  return std::partition_point(
      busy.begin(), busy.end(),
      [t](const Interval& iv) { return iv.end <= t + kTimeEps; });
}

}  // namespace

// ------------------------------------------------- reference timeline

double Timeline::next_fit(double ready, double duration) const {
  OP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  if (duration <= kTimeEps) return ready;
  double candidate = ready;
  for (auto it = first_blocking(busy_, candidate); it != busy_.end(); ++it) {
    if (candidate + duration <= it->start + kTimeEps) break;
    candidate = std::max(candidate, it->end);
  }
  return candidate;
}

void Timeline::reserve(double start, double end) {
  OP_REQUIRE(end >= start - kTimeEps, "interval end before start");
  const Interval iv{start, end};
  if (iv.degenerate()) return;
  const auto pos = std::partition_point(
      busy_.begin(), busy_.end(),
      [&iv](const Interval& b) { return b.start < iv.start; });
  // Conflict check against the neighbors.
  if (pos != busy_.begin()) {
    OP_ASSERT(!overlaps(*(pos - 1), iv),
              "reservation [" << start << "," << end << ") overlaps ["
                              << (pos - 1)->start << "," << (pos - 1)->end
                              << ")");
  }
  if (pos != busy_.end()) {
    OP_ASSERT(!overlaps(*pos, iv),
              "reservation [" << start << "," << end << ") overlaps ["
                              << pos->start << "," << pos->end << ")");
  }
  // Merge with touching neighbors to keep the vector compact; list
  // scheduling produces long runs of back-to-back reservations.
  auto inserted = busy_.insert(pos, iv);
  if (inserted != busy_.begin()) {
    auto prev = inserted - 1;
    if (inserted->start <= prev->end + kTimeEps) {
      prev->end = std::max(prev->end, inserted->end);
      inserted = busy_.erase(inserted) - 1;
    }
  }
  if (inserted + 1 != busy_.end()) {
    auto next = inserted + 1;
    if (next->start <= inserted->end + kTimeEps) {
      inserted->end = std::max(inserted->end, next->end);
      busy_.erase(next);
    }
  }
}

bool Timeline::is_free(double start, double end) const {
  const Interval iv{start, end};
  if (iv.degenerate()) return true;
  for (auto it = first_blocking(busy_, start); it != busy_.end(); ++it) {
    if (it->start >= end - kTimeEps) break;
    if (overlaps(*it, iv)) return false;
  }
  return true;
}

double Timeline::busy_time() const noexcept {
  double total = 0.0;
  for (const Interval& iv : busy_) total += iv.duration();
  return total;
}

// ----------------------------------------------- gap-indexed timeline

std::size_t GapTimeline::gap_ending_after(double t) const {
  // The wanted index is the partition point of "gap end <= bound" (gap
  // ends are strictly increasing).  Successive probes of one timeline
  // cluster tightly -- list scheduling's next_fit/reserve pairs land in
  // the same gap, the joint-fit search advances gap by gap, and
  // consecutive tasks arrive near the same frontier -- so gallop
  // *outward from the hinted position* and pay O(log distance-from-hint)
  // cache-local probes (over the dense ends array) instead of restarting
  // from the sentinel end.
  const double bound = t + kTimeEps;
  const double* const ends = gap_ends_.data();
  const std::size_t n = gap_ends_.size();
  const std::size_t h = hint_ < n ? hint_ : n - 1;
  std::size_t lo;       // first index that might end after `bound`
  std::size_t up_incl;  // an index known to end after `bound`
  if (ends[h] > bound) {
    if (h == 0 || ends[h - 1] <= bound) return hint_ = h;
    // Target lies left of the hint.
    std::size_t w = 1;
    while (w <= h && ends[h - w] > bound) w <<= 1;
    lo = w <= h ? h - w + 1 : 0;
    up_incl = h - (w >> 1);
  } else {
    // Target lies right of the hint; the +inf sentinel bounds the
    // gallop, so the last probe always ends after `bound`.
    std::size_t w = 1;
    while (h + w < n - 1 && ends[h + w] <= bound) w <<= 1;
    lo = h + (w >> 1) + 1;
    up_incl = h + w < n - 1 ? h + w : n - 1;
  }
  const double* const it =
      std::partition_point(ends + lo, ends + up_incl + 1,
                           [bound](double e) { return e <= bound; });
  hint_ = static_cast<std::size_t>(it - ends);
  return hint_;
}

namespace {

/// A gap-splitting reservation closer than this to the back of the gap
/// list is always middle-inserted directly; the memmove is short and the
/// append-heavy list-scheduling path never touches the buffer.  Beyond
/// it, deferral kicks in once the tail outgrows ~8*sqrt(gaps) (see
/// reserve), keeping the amortized middle-insert cost O(sqrt(n)) while
/// long timelines -- whose interior splits cluster near the frontier --
/// still take the direct path almost always.
constexpr std::size_t kDeferTailMin = 32;
/// Minimum buffered count before a compaction is even considered: tiny
/// timelines gain nothing from deferral bookkeeping.
constexpr std::size_t kMinFlush = 16;

}  // namespace

double GapTimeline::next_fit(double ready, double duration) const {
  OP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  if (duration <= kTimeEps) return ready;
  if (gap_starts_.empty()) return ready;
  // O(1) fast path for the dominant list-scheduling pattern: a slot at or
  // beyond the horizon (within tolerance) always starts at `ready` inside
  // the +inf sentinel gap.  Deferred reservations always end strictly
  // before the horizon (they split interior gaps), so they cannot block
  // this path.
  if (ready >= gap_starts_.back() - kTimeEps) return ready;
  double candidate = ready;
  while (true) {
    // Walk the materialized gaps from the candidate.
    double fit = candidate;
    bool found = candidate >= gap_starts_.back() - kTimeEps;
    if (!found && duration > widest_interior_ + kTimeEps &&
        candidate >= gap_ends_.front() - kTimeEps) {
      // O(1) horizon jump, no gap search: the candidate lies past the
      // -inf head gap, so every gap it could use short of the +inf
      // sentinel has two finite endpoints and width at most
      // widest_interior_ < duration -- including the usable tail of the
      // gap holding the candidate itself.  The walk below would fall
      // through to the sentinel and return exactly the horizon.
      fit = gap_starts_.back();
      found = true;
    }
    if (!found) {
      std::size_t i = gap_ending_after(candidate);
      // `candidate` counts as inside the first gap when it is at most
      // kTimeEps before its start: the reference scan skips busy
      // intervals ending within kTimeEps after it, so both
      // implementations then return the candidate itself.
      const double start =
          gap_starts_[i] <= candidate + kTimeEps ? candidate : gap_starts_[i];
      if (start + duration <= gap_ends_[i] + kTimeEps) {
        fit = start;
        found = true;
      } else if (duration > widest_interior_ + kTimeEps) {
        // No later gap can hold the slot: every gap beyond the first has
        // two finite endpoints and a width bounded by widest_interior_,
        // and such a gap accepts the slot iff duration <= width +
        // kTimeEps.  The walk would fall through to the +inf sentinel,
        // whose start is past candidate + kTimeEps here, so the fit
        // starts exactly at the horizon.
        fit = gap_starts_.back();
        found = true;
      } else {
        // Later gaps always start after candidate + kTimeEps, so the
        // candidate never truncates them.
        for (++i; i < gap_starts_.size(); ++i) {
          if (gap_starts_[i] + duration <= gap_ends_[i] + kTimeEps) {
            fit = gap_starts_[i];
            found = true;
            break;
          }
        }
      }
    }
    OP_ASSERT(found, "gap list lost its +inf sentinel");
    candidate = fit;
    if (pending_.empty()) return candidate;
    // O(1) disjointness via the buffer envelope: nothing buffered ends
    // after the candidate, or nothing buffered starts before the slot's
    // end, so the ordered absorb pass below would touch nothing.
    if (candidate >= pending_max_end_ - kTimeEps ||
        pending_min_start_ >= candidate + duration - kTimeEps) {
      return candidate;
    }
    // Absorb deferred reservations the sliding candidate overlaps, then
    // re-walk the gaps -- the TimelineOverlay fixpoint pattern.  The
    // buffer is start-sorted and non-overlapping, so the scan starts at
    // the first buffered interval ending past the candidate (nothing
    // before it can overlap) and one ordered pass suffices per round.
    bool moved = false;
    for (auto p = std::partition_point(
             pending_.begin(), pending_.end(),
             [candidate](const Interval& b) {
               return b.end <= candidate + kTimeEps;
             });
         p != pending_.end() && p->start < candidate + duration - kTimeEps;
         ++p) {
      if (overlaps(*p, {candidate, candidate + duration})) {
        candidate = p->end;
        moved = true;
      }
    }
    if (!moved) return candidate;
  }
}

void GapTimeline::reserve(double start, double end) {
  OP_REQUIRE(end >= start - kTimeEps, "interval end before start");
  if (Interval{start, end}.degenerate()) return;
  if (gap_starts_.empty()) {
    gap_starts_.push_back(-kInf);
    gap_ends_.push_back(kInf);
  }
  // Append fast path: a slot at or past the horizon lives in the +inf
  // sentinel gap (its predecessor ends within kTimeEps of the horizon at
  // most), so the search is free.
  const std::size_t i = start >= gap_starts_.back() - kTimeEps
                            ? gap_starts_.size() - 1
                            : gap_ending_after(start);
  const Interval g{gap_starts_[i], gap_ends_[i]};
  // The slot must sit inside one free gap (modulo the usual tolerance for
  // touching); otherwise it overlaps the busy interval bounding the gap.
  OP_ASSERT(start >= g.start - kTimeEps,
            "reservation [" << start << "," << end << ") overlaps ["
                            << (i == 0 ? -kInf : gap_ends_[i - 1]) << ","
                            << g.start << ")");
  OP_ASSERT(end <= g.end + kTimeEps,
            "reservation [" << start << "," << end << ") overlaps ["
                            << g.end << ","
                            << (i + 1 < gap_starts_.size()
                                    ? gap_starts_[i + 1]
                                    : kInf)
                            << ")");
  // ...and must clear the deferred buffer too.  Only the first buffered
  // interval ending after `start` can overlap: the buffer is start-sorted
  // and non-overlapping, so if that one clears the slot, every later one
  // starts at or after the slot's end.
  if (!pending_.empty()) {
    const Interval iv{start, end};
    const auto p = std::partition_point(
        pending_.begin(), pending_.end(),
        [start](const Interval& b) { return b.end <= start + kTimeEps; });
    if (p != pending_.end()) {
      OP_ASSERT(!overlaps(*p, iv),
                "reservation [" << start << "," << end
                                << ") overlaps deferred [" << p->start << ","
                                << p->end << ")");
    }
  }
  // Remnants within kTimeEps of the gap boundary merge into the adjacent
  // busy interval, mirroring the reference's touching-neighbor merge.
  const bool keep_left = start > g.start + kTimeEps;
  const bool keep_right = g.end > end + kTimeEps;
  if (keep_left && keep_right) {
    const std::size_t tail = gap_starts_.size() - i;
    if (tail > kDeferTailMin && tail * tail > 64 * gap_starts_.size()) {
      // Deferred middle-insert: buffer the busy interval instead of
      // shifting `tail` gaps, merging with touching buffered neighbors
      // exactly like the reference merges touching busy intervals.
      const Interval iv{start, end};
      auto pos = std::partition_point(
          pending_.begin(), pending_.end(),
          [&iv](const Interval& b) { return b.start < iv.start; });
      pos = pending_.insert(pos, iv);
      stats_.moved_elements +=
          static_cast<std::size_t>(pending_.end() - pos) - 1;
      if (pos != pending_.begin()) {
        auto prev = pos - 1;
        if (pos->start <= prev->end + kTimeEps) {
          prev->end = std::max(prev->end, pos->end);
          pos = pending_.erase(pos) - 1;
        }
      }
      if (pos + 1 != pending_.end()) {
        auto next = pos + 1;
        if (next->start <= pos->end + kTimeEps) {
          pos->end = std::max(pos->end, next->end);
          pending_.erase(next);
        }
      }
      pending_min_start_ = pending_.front().start;
      pending_max_end_ = std::max(pending_max_end_, end);
      ++stats_.deferred_inserts;
      prof::bump(prof::Counter::kGapDeferredInserts);
      if (pending_.size() >= kMinFlush &&
          pending_.size() * pending_.size() >= gap_starts_.size()) {
        flush_pending();
      }
      return;
    }
    gap_ends_[i] = start;
    gap_starts_.insert(gap_starts_.begin() + static_cast<std::ptrdiff_t>(i + 1),
                       end);
    gap_ends_.insert(gap_ends_.begin() + static_cast<std::ptrdiff_t>(i + 1),
                     g.end);
    stats_.moved_elements += tail;
    hint_ = i + 1;
    // Splitting a gap with an infinite endpoint (the -inf head or the
    // +inf sentinel) mints a brand-new finite gap whose width is not
    // covered by the parent's; fold it into the interior-width bound.
    // Finite parents only shrink, so the max() is a no-op for them.
    if (std::isfinite(g.start)) {
      widest_interior_ = std::max(widest_interior_, start - g.start);
    }
    if (std::isfinite(g.end)) {
      widest_interior_ = std::max(widest_interior_, g.end - end);
    }
  } else if (keep_left) {
    gap_ends_[i] = start;
    hint_ = i + 1;  // the slot ran up to the next busy interval
  } else if (keep_right) {
    gap_starts_[i] = end;
    hint_ = i;
  } else {
    // The reservation bridges the two neighboring busy intervals; the
    // last gap ends at +inf and is therefore never erased.
    gap_starts_.erase(gap_starts_.begin() + static_cast<std::ptrdiff_t>(i));
    gap_ends_.erase(gap_ends_.begin() + static_cast<std::ptrdiff_t>(i));
    stats_.moved_elements += gap_starts_.size() - i;
    hint_ = i;
  }
}

bool GapTimeline::is_free(double start, double end) const {
  if (Interval{start, end}.degenerate()) return true;
  if (gap_starts_.empty()) return true;
  const std::size_t i = gap_ending_after(start);
  if (start < gap_starts_[i] - kTimeEps || end > gap_ends_[i] + kTimeEps) {
    return false;
  }
  if (pending_.empty()) return true;
  const Interval iv{start, end};
  for (auto p = std::partition_point(
           pending_.begin(), pending_.end(),
           [start](const Interval& b) { return b.end <= start + kTimeEps; });
       p != pending_.end() && p->start < end - kTimeEps; ++p) {
    if (overlaps(*p, iv)) return false;
  }
  return true;
}

double GapTimeline::busy_time() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < gap_starts_.size(); ++i) {
    total += gap_starts_[i + 1] - gap_ends_[i];
  }
  // Buffered intervals are disjoint from the materialized busy set, so
  // their durations add independently.
  for (const Interval& p : pending_) total += p.duration();
  return total;
}

std::vector<Interval> GapTimeline::busy_intervals() const {
  std::vector<Interval> busy;
  if (gap_starts_.size() < 2 && pending_.empty()) return busy;
  busy.reserve((gap_starts_.empty() ? 0 : gap_starts_.size() - 1) +
               pending_.size());
  const auto push = [&busy](const Interval& iv) {
    if (!busy.empty() && iv.start <= busy.back().end + kTimeEps) {
      busy.back().end = std::max(busy.back().end, iv.end);
    } else {
      busy.push_back(iv);
    }
  };
  // Linear merge of the two start-sorted busy streams (gap complements
  // and the deferred buffer), merging touching intervals exactly like the
  // reference's reserve does.
  std::size_t k = 0;  // busy interval between gap k and gap k + 1
  std::size_t p = 0;
  while (k + 1 < gap_starts_.size() || p < pending_.size()) {
    const bool take_gap =
        k + 1 < gap_starts_.size() &&
        (p >= pending_.size() || gap_ends_[k] <= pending_[p].start);
    if (take_gap) {
      push({gap_ends_[k], gap_starts_[k + 1]});
      ++k;
    } else {
      push(pending_[p]);
      ++p;
    }
  }
  return busy;
}

void GapTimeline::flush_pending() {
  if (pending_.empty()) return;
  ++stats_.flushes;
  prof::bump(prof::Counter::kGapFlushes);
  stats_.moved_elements += gap_starts_.size() + pending_.size();
  const std::vector<Interval> busy = busy_intervals();
  pending_min_start_ = 0.0;
  pending_max_end_ = 0.0;
  gap_starts_.clear();
  gap_ends_.clear();
  gap_starts_.reserve(busy.size() + 1);
  gap_ends_.reserve(busy.size() + 1);
  // The rebuild visits every gap anyway, so retighten the interior-width
  // bound exactly (reservations since the last flush can only have left
  // it stale high).
  widest_interior_ = 0.0;
  double free_from = -kInf;
  for (const Interval& iv : busy) {
    gap_starts_.push_back(free_from);
    gap_ends_.push_back(iv.start);
    if (std::isfinite(free_from)) {
      widest_interior_ = std::max(widest_interior_, iv.start - free_from);
    }
    free_from = iv.end;
  }
  gap_starts_.push_back(free_from);
  gap_ends_.push_back(kInf);
  pending_.clear();
  hint_ = 0;
}

// -------------------------------------------- implementation selection

namespace {

TimelineImpl impl_from_env() {
  const std::string_view env = env::text(env::Knob::kTimeline, "gap");
  if (env == "reference") return TimelineImpl::kReference;
  if (env == "gap" || env == "gap-indexed") return TimelineImpl::kGapIndexed;
  if (env == "calendar") return TimelineImpl::kCalendar;
  // A typo silently selecting the default would invalidate differential
  // runs; be loud (but do not throw from a static initializer).
  std::fprintf(stderr,
               "oneport: ignoring unknown ONEPORT_TIMELINE value '%.*s' "
               "(expected 'reference', 'gap' or 'calendar'); "
               "using gap-indexed\n",
               static_cast<int>(env.size()), env.data());
  return TimelineImpl::kGapIndexed;
}

std::atomic<TimelineImpl>& default_impl_slot() noexcept {
  static std::atomic<TimelineImpl> slot{impl_from_env()};
  return slot;
}

}  // namespace

TimelineImpl default_timeline_impl() noexcept {
  return default_impl_slot().load(std::memory_order_relaxed);
}

void set_default_timeline_impl(TimelineImpl impl) noexcept {
  default_impl_slot().store(impl, std::memory_order_relaxed);
}

const char* timeline_impl_name(TimelineImpl impl) noexcept {
  switch (impl) {
    case TimelineImpl::kReference: return "reference";
    case TimelineImpl::kGapIndexed: return "gap-indexed";
    case TimelineImpl::kCalendar: return "calendar";
  }
  return "unknown";
}

// ---------------------------------------------------------- overlays

double TimelineOverlay::next_fit(double ready, double duration) const {
  OP_ASSERT(base_ != nullptr, "overlay used before reset()");
  if (duration <= kTimeEps) return ready;
  // O(1) fast path: nothing -- base reservation or extra -- ends after
  // ready + kTimeEps, so no interval can block a slot at `ready`.  This
  // is exactly the answer the scan below would produce.
  if (ready >= base_horizon_ - kTimeEps && ready >= extras_horizon_ - kTimeEps) {
    return ready;
  }
  // Most evaluations add zero or one extras per port; skip the merge
  // machinery entirely while the overlay is still transparent.
  if (extras_.empty()) return base_->next_fit(ready, duration);
  double candidate = ready;
  while (true) {
    candidate = base_->next_fit(candidate, duration);
    // One ordered pass over the start-sorted extras, absorbing every
    // extra the sliding candidate still overlaps.  The pass starts from
    // the front on purpose: add() accepts arbitrary (even overlapping)
    // intervals, so ends are not sorted and passed extras cannot be
    // skipped by binary search.  Extras are bounded by the task's
    // in-degree, so the pass is short.
    bool moved = false;
    for (const Interval& extra : extras_) {
      if (extra.start >= candidate + duration - kTimeEps) break;
      if (overlaps(extra, {candidate, candidate + duration})) {
        candidate = extra.end;
        moved = true;
      }
    }
    if (!moved) return candidate;
  }
}

void TimelineOverlay::add(double start, double end) {
  const Interval iv{start, end};
  if (iv.degenerate()) return;
  if (end > extras_horizon_) extras_horizon_ = end;
  const auto pos = std::partition_point(
      extras_.begin(), extras_.end(),
      [&iv](const Interval& e) { return e.start < iv.start; });
  extras_.insert(pos, iv);
}

double earliest_joint_fit(const TimelineOverlay& a, const TimelineOverlay& b,
                          double ready, double duration) {
  if (duration <= kTimeEps) return ready;
  double candidate = ready;
  while (true) {
    const double ca = a.next_fit(candidate, duration);
    const double cb = b.next_fit(ca, duration);
    if (cb <= ca + kTimeEps) return ca;
    candidate = cb;
  }
}

}  // namespace oneport
