#include "sched/timeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/error.hpp"

namespace oneport {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// First busy interval whose end is after `t` (candidates that could block
/// a slot starting at or after `t`).
std::vector<Interval>::const_iterator first_blocking(
    const std::vector<Interval>& busy, double t) {
  return std::partition_point(
      busy.begin(), busy.end(),
      [t](const Interval& iv) { return iv.end <= t + kTimeEps; });
}

}  // namespace

// ------------------------------------------------- reference timeline

double Timeline::next_fit(double ready, double duration) const {
  OP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  if (duration <= kTimeEps) return ready;
  double candidate = ready;
  for (auto it = first_blocking(busy_, candidate); it != busy_.end(); ++it) {
    if (candidate + duration <= it->start + kTimeEps) break;
    candidate = std::max(candidate, it->end);
  }
  return candidate;
}

void Timeline::reserve(double start, double end) {
  OP_REQUIRE(end >= start - kTimeEps, "interval end before start");
  const Interval iv{start, end};
  if (iv.degenerate()) return;
  const auto pos = std::partition_point(
      busy_.begin(), busy_.end(),
      [&iv](const Interval& b) { return b.start < iv.start; });
  // Conflict check against the neighbors.
  if (pos != busy_.begin()) {
    OP_ASSERT(!overlaps(*(pos - 1), iv),
              "reservation [" << start << "," << end << ") overlaps ["
                              << (pos - 1)->start << "," << (pos - 1)->end
                              << ")");
  }
  if (pos != busy_.end()) {
    OP_ASSERT(!overlaps(*pos, iv),
              "reservation [" << start << "," << end << ") overlaps ["
                              << pos->start << "," << pos->end << ")");
  }
  // Merge with touching neighbors to keep the vector compact; list
  // scheduling produces long runs of back-to-back reservations.
  auto inserted = busy_.insert(pos, iv);
  if (inserted != busy_.begin()) {
    auto prev = inserted - 1;
    if (inserted->start <= prev->end + kTimeEps) {
      prev->end = std::max(prev->end, inserted->end);
      inserted = busy_.erase(inserted) - 1;
    }
  }
  if (inserted + 1 != busy_.end()) {
    auto next = inserted + 1;
    if (next->start <= inserted->end + kTimeEps) {
      inserted->end = std::max(inserted->end, next->end);
      busy_.erase(next);
    }
  }
}

bool Timeline::is_free(double start, double end) const {
  const Interval iv{start, end};
  if (iv.degenerate()) return true;
  for (auto it = first_blocking(busy_, start); it != busy_.end(); ++it) {
    if (it->start >= end - kTimeEps) break;
    if (overlaps(*it, iv)) return false;
  }
  return true;
}

double Timeline::busy_time() const noexcept {
  double total = 0.0;
  for (const Interval& iv : busy_) total += iv.duration();
  return total;
}

// ----------------------------------------------- gap-indexed timeline

std::size_t GapTimeline::gap_ending_after(double t) const {
  // Cursor probe: list scheduling's next_fit/reserve pairs keep landing
  // in the same gap, and the joint-fit search for one-port messages
  // advances gap by gap, so probing the hinted gap and its successor
  // makes both common cases O(1).  A probe at index i is valid when
  // gaps_[i] ends after `t` and its predecessor does not.
  if (hint_ < gaps_.size() && gaps_[hint_].end > t + kTimeEps) {
    if (hint_ == 0 || gaps_[hint_ - 1].end <= t + kTimeEps) return hint_;
  } else if (hint_ + 1 < gaps_.size() && gaps_[hint_ + 1].end > t + kTimeEps) {
    return ++hint_;  // the predecessor check is the branch we came from
  }
  // Gallop backwards from the +inf sentinel gap: list scheduling queries
  // cluster near the growing end of the timeline, so the boundary is
  // typically a handful of gaps from the back and the search costs
  // O(log distance-from-end) instead of O(log gaps).
  const double bound = t + kTimeEps;
  const std::size_t last = gaps_.size() - 1;  // always ends after t (+inf)
  std::size_t lo = 0;
  std::size_t w = 1;
  while (w <= last && gaps_[last - w].end > bound) w <<= 1;
  if (w <= last) lo = last - w + 1;
  const std::size_t up = last - (w >> 1);  // last failed probe, if any
  const auto it = std::partition_point(
      gaps_.begin() + static_cast<std::ptrdiff_t>(lo),
      gaps_.begin() + static_cast<std::ptrdiff_t>(up + 1),
      [bound](const Interval& g) { return g.end <= bound; });
  hint_ = static_cast<std::size_t>(it - gaps_.begin());
  return hint_;
}

namespace {

/// A gap-splitting reservation this far from the back of the gap list is
/// buffered instead of middle-inserted; near-back inserts are short
/// memmoves and stay direct so the append-heavy list-scheduling path
/// never touches the buffer.
constexpr std::size_t kDeferTail = 32;
/// Minimum buffered count before a compaction is even considered: tiny
/// timelines gain nothing from deferral bookkeeping.
constexpr std::size_t kMinFlush = 16;

}  // namespace

double GapTimeline::next_fit(double ready, double duration) const {
  OP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  if (duration <= kTimeEps) return ready;
  if (gaps_.empty()) return ready;
  // O(1) fast path for the dominant list-scheduling pattern: a slot at or
  // beyond the horizon (within tolerance) always starts at `ready` inside
  // the +inf sentinel gap.  Deferred reservations always end strictly
  // before the horizon (they split interior gaps), so they cannot block
  // this path.
  if (ready >= gaps_.back().start - kTimeEps) return ready;
  double candidate = ready;
  while (true) {
    // Walk the materialized gaps from the candidate.
    double fit = candidate;
    bool found = candidate >= gaps_.back().start - kTimeEps;
    if (!found) {
      for (std::size_t i = gap_ending_after(candidate); i < gaps_.size();
           ++i) {
        const Interval& g = gaps_[i];
        // `candidate` counts as inside the gap when it is at most kTimeEps
        // before its start: the reference scan skips busy intervals ending
        // within kTimeEps after it, so both implementations then return
        // the candidate itself.  Later gaps always start after
        // candidate + kTimeEps.
        const double start = g.start <= candidate + kTimeEps ? candidate
                                                             : g.start;
        if (start + duration <= g.end + kTimeEps) {
          fit = start;
          found = true;
          break;
        }
      }
    }
    OP_ASSERT(found, "gap list lost its +inf sentinel");
    candidate = fit;
    if (pending_.empty()) return candidate;
    // Absorb deferred reservations the sliding candidate overlaps, then
    // re-walk the gaps -- the TimelineOverlay fixpoint pattern.  The
    // buffer is start-sorted and non-overlapping, so one ordered pass
    // suffices per round and the buffer is at most ~sqrt(gaps) long.
    bool moved = false;
    for (const Interval& p : pending_) {
      if (p.start >= candidate + duration - kTimeEps) break;
      if (overlaps(p, {candidate, candidate + duration})) {
        candidate = p.end;
        moved = true;
      }
    }
    if (!moved) return candidate;
  }
}

void GapTimeline::reserve(double start, double end) {
  OP_REQUIRE(end >= start - kTimeEps, "interval end before start");
  if (Interval{start, end}.degenerate()) return;
  if (gaps_.empty()) gaps_.push_back({-kInf, kInf});
  const std::size_t i = gap_ending_after(start);
  const Interval g = gaps_[i];
  // The slot must sit inside one free gap (modulo the usual tolerance for
  // touching); otherwise it overlaps the busy interval bounding the gap.
  OP_ASSERT(start >= g.start - kTimeEps,
            "reservation [" << start << "," << end << ") overlaps ["
                            << (i == 0 ? -kInf : gaps_[i - 1].end) << ","
                            << g.start << ")");
  OP_ASSERT(end <= g.end + kTimeEps,
            "reservation [" << start << "," << end << ") overlaps ["
                            << g.end << ","
                            << (i + 1 < gaps_.size() ? gaps_[i + 1].start
                                                     : kInf)
                            << ")");
  // ...and must clear the deferred buffer too.  Only the first buffered
  // interval ending after `start` can overlap: the buffer is start-sorted
  // and non-overlapping, so if that one clears the slot, every later one
  // starts at or after the slot's end.
  if (!pending_.empty()) {
    const Interval iv{start, end};
    const auto p = std::partition_point(
        pending_.begin(), pending_.end(),
        [start](const Interval& b) { return b.end <= start + kTimeEps; });
    if (p != pending_.end()) {
      OP_ASSERT(!overlaps(*p, iv),
                "reservation [" << start << "," << end
                                << ") overlaps deferred [" << p->start << ","
                                << p->end << ")");
    }
  }
  // Remnants within kTimeEps of the gap boundary merge into the adjacent
  // busy interval, mirroring the reference's touching-neighbor merge.
  const bool keep_left = start > g.start + kTimeEps;
  const bool keep_right = g.end > end + kTimeEps;
  if (keep_left && keep_right) {
    const std::size_t tail = gaps_.size() - i;
    if (tail > kDeferTail) {
      // Deferred middle-insert: buffer the busy interval instead of
      // shifting `tail` gaps, merging with touching buffered neighbors
      // exactly like the reference merges touching busy intervals.
      const Interval iv{start, end};
      auto pos = std::partition_point(
          pending_.begin(), pending_.end(),
          [&iv](const Interval& b) { return b.start < iv.start; });
      pos = pending_.insert(pos, iv);
      stats_.moved_elements +=
          static_cast<std::size_t>(pending_.end() - pos) - 1;
      if (pos != pending_.begin()) {
        auto prev = pos - 1;
        if (pos->start <= prev->end + kTimeEps) {
          prev->end = std::max(prev->end, pos->end);
          pos = pending_.erase(pos) - 1;
        }
      }
      if (pos + 1 != pending_.end()) {
        auto next = pos + 1;
        if (next->start <= pos->end + kTimeEps) {
          pos->end = std::max(pos->end, next->end);
          pending_.erase(next);
        }
      }
      ++stats_.deferred_inserts;
      if (pending_.size() >= kMinFlush &&
          pending_.size() * pending_.size() >= gaps_.size()) {
        flush_pending();
      }
      return;
    }
    gaps_[i].end = start;
    gaps_.insert(gaps_.begin() + static_cast<std::ptrdiff_t>(i + 1),
                 Interval{end, g.end});
    stats_.moved_elements += tail;
    hint_ = i + 1;
  } else if (keep_left) {
    gaps_[i].end = start;
    hint_ = i + 1;  // the slot ran up to the next busy interval
  } else if (keep_right) {
    gaps_[i].start = end;
    hint_ = i;
  } else {
    // The reservation bridges the two neighboring busy intervals; the
    // last gap ends at +inf and is therefore never erased.
    gaps_.erase(gaps_.begin() + static_cast<std::ptrdiff_t>(i));
    stats_.moved_elements += gaps_.size() - i;
    hint_ = i;
  }
}

bool GapTimeline::is_free(double start, double end) const {
  if (Interval{start, end}.degenerate()) return true;
  if (gaps_.empty()) return true;
  const Interval& g = gaps_[gap_ending_after(start)];
  if (start < g.start - kTimeEps || end > g.end + kTimeEps) return false;
  if (pending_.empty()) return true;
  const Interval iv{start, end};
  for (auto p = std::partition_point(
           pending_.begin(), pending_.end(),
           [start](const Interval& b) { return b.end <= start + kTimeEps; });
       p != pending_.end() && p->start < end - kTimeEps; ++p) {
    if (overlaps(*p, iv)) return false;
  }
  return true;
}

double GapTimeline::busy_time() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < gaps_.size(); ++i) {
    total += gaps_[i + 1].start - gaps_[i].end;
  }
  // Buffered intervals are disjoint from the materialized busy set, so
  // their durations add independently.
  for (const Interval& p : pending_) total += p.duration();
  return total;
}

std::vector<Interval> GapTimeline::busy_intervals() const {
  std::vector<Interval> busy;
  if (gaps_.size() < 2 && pending_.empty()) return busy;
  busy.reserve((gaps_.empty() ? 0 : gaps_.size() - 1) + pending_.size());
  const auto push = [&busy](const Interval& iv) {
    if (!busy.empty() && iv.start <= busy.back().end + kTimeEps) {
      busy.back().end = std::max(busy.back().end, iv.end);
    } else {
      busy.push_back(iv);
    }
  };
  // Linear merge of the two start-sorted busy streams (gap complements
  // and the deferred buffer), merging touching intervals exactly like the
  // reference's reserve does.
  std::size_t k = 0;  // busy interval between gaps_[k] and gaps_[k + 1]
  std::size_t p = 0;
  while (k + 1 < gaps_.size() || p < pending_.size()) {
    const bool take_gap =
        k + 1 < gaps_.size() &&
        (p >= pending_.size() || gaps_[k].end <= pending_[p].start);
    if (take_gap) {
      push({gaps_[k].end, gaps_[k + 1].start});
      ++k;
    } else {
      push(pending_[p]);
      ++p;
    }
  }
  return busy;
}

void GapTimeline::flush_pending() {
  if (pending_.empty()) return;
  ++stats_.flushes;
  stats_.moved_elements += gaps_.size() + pending_.size();
  const std::vector<Interval> busy = busy_intervals();
  gaps_.clear();
  gaps_.reserve(busy.size() + 1);
  double free_from = -kInf;
  for (const Interval& iv : busy) {
    gaps_.push_back({free_from, iv.start});
    free_from = iv.end;
  }
  gaps_.push_back({free_from, kInf});
  pending_.clear();
  hint_ = 0;
}

// -------------------------------------------- implementation selection

namespace {

TimelineImpl impl_from_env() {
  const char* env = std::getenv("ONEPORT_TIMELINE");
  if (env != nullptr) {
    if (std::strcmp(env, "reference") == 0) return TimelineImpl::kReference;
    if (std::strcmp(env, "gap") == 0 || std::strcmp(env, "gap-indexed") == 0) {
      return TimelineImpl::kGapIndexed;
    }
    // A typo silently selecting the default would invalidate differential
    // runs; be loud (but do not throw from a static initializer).
    std::fprintf(stderr,
                 "oneport: ignoring unknown ONEPORT_TIMELINE value '%s' "
                 "(expected 'reference' or 'gap'); using gap-indexed\n",
                 env);
  }
  return TimelineImpl::kGapIndexed;
}

std::atomic<TimelineImpl>& default_impl_slot() noexcept {
  static std::atomic<TimelineImpl> slot{impl_from_env()};
  return slot;
}

}  // namespace

TimelineImpl default_timeline_impl() noexcept {
  return default_impl_slot().load(std::memory_order_relaxed);
}

void set_default_timeline_impl(TimelineImpl impl) noexcept {
  default_impl_slot().store(impl, std::memory_order_relaxed);
}

const char* timeline_impl_name(TimelineImpl impl) noexcept {
  return impl == TimelineImpl::kReference ? "reference" : "gap-indexed";
}

// ---------------------------------------------------------- overlays

double TimelineOverlay::next_fit(double ready, double duration) const {
  OP_ASSERT(base_ != nullptr, "overlay used before reset()");
  if (duration <= kTimeEps) return ready;
  // Most evaluations add zero or one extras per port; skip the merge
  // machinery entirely while the overlay is still transparent.
  if (extras_.empty()) return base_->next_fit(ready, duration);
  double candidate = ready;
  while (true) {
    candidate = base_->next_fit(candidate, duration);
    // One ordered pass over the start-sorted extras, absorbing every
    // extra the sliding candidate still overlaps.  The pass starts from
    // the front on purpose: add() accepts arbitrary (even overlapping)
    // intervals, so ends are not sorted and passed extras cannot be
    // skipped by binary search.  Extras are bounded by the task's
    // in-degree, so the pass is short.
    bool moved = false;
    for (const Interval& extra : extras_) {
      if (extra.start >= candidate + duration - kTimeEps) break;
      if (overlaps(extra, {candidate, candidate + duration})) {
        candidate = extra.end;
        moved = true;
      }
    }
    if (!moved) return candidate;
  }
}

void TimelineOverlay::add(double start, double end) {
  const Interval iv{start, end};
  if (iv.degenerate()) return;
  const auto pos = std::partition_point(
      extras_.begin(), extras_.end(),
      [&iv](const Interval& e) { return e.start < iv.start; });
  extras_.insert(pos, iv);
}

double earliest_joint_fit(const TimelineOverlay& a, const TimelineOverlay& b,
                          double ready, double duration) {
  if (duration <= kTimeEps) return ready;
  double candidate = ready;
  while (true) {
    const double ca = a.next_fit(candidate, duration);
    const double cb = b.next_fit(ca, duration);
    if (cb <= ca + kTimeEps) return ca;
    candidate = cb;
  }
}

}  // namespace oneport
