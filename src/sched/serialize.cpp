#include "sched/serialize.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace oneport {

namespace {

/// Reads lines, strips comments and blanks, and hands back one
/// whitespace-tokenized statement at a time.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty statement; false at EOF.
  bool next(std::istringstream& out) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      out = std::istringstream(line);
      return true;
    }
    return false;
  }

  [[nodiscard]] int line() const noexcept { return line_number_; }

 private:
  std::istream& is_;
  int line_number_ = 0;
};

std::ostream& full_precision(std::ostream& os) {
  return os << std::setprecision(std::numeric_limits<double>::max_digits10);
}

}  // namespace

void write_task_graph(std::ostream& os, const TaskGraph& graph) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  full_precision(os) << "taskgraph v1\n";
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    os << "task " << v << ' ' << graph.weight(v);
    if (!graph.name(v).empty()) os << ' ' << graph.name(v);
    os << '\n';
  }
  for (TaskId u = 0; u < graph.num_tasks(); ++u) {
    for (const EdgeRef& e : graph.successors(u)) {
      os << "edge " << u << ' ' << e.task << ' ' << e.data << '\n';
    }
  }
}

TaskGraph read_task_graph(std::istream& is) {
  LineReader reader(is);
  std::istringstream stmt;
  OP_REQUIRE(reader.next(stmt), "empty task-graph stream");
  std::string word, version;
  stmt >> word >> version;
  OP_REQUIRE(word == "taskgraph" && version == "v1",
             "expected 'taskgraph v1' header, got '" << word << ' '
                                                     << version << "'");
  TaskGraph graph;
  while (reader.next(stmt)) {
    std::string kind;
    stmt >> kind;
    if (kind == "task") {
      TaskId id = 0;
      double weight = 0.0;
      std::string name;
      stmt >> id >> weight;
      OP_REQUIRE(!stmt.fail(), "malformed task at line " << reader.line());
      stmt >> name;  // optional
      OP_REQUIRE(id == graph.num_tasks(),
                 "task ids must be dense and ordered (line " << reader.line()
                                                             << ")");
      graph.add_task(weight, name);
    } else if (kind == "edge") {
      TaskId src = 0, dst = 0;
      double data = 0.0;
      stmt >> src >> dst >> data;
      OP_REQUIRE(!stmt.fail(), "malformed edge at line " << reader.line());
      graph.add_edge(src, dst, data);
    } else {
      OP_REQUIRE(false, "unknown statement '" << kind << "' at line "
                                              << reader.line());
    }
  }
  graph.finalize();
  return graph;
}

void write_schedule(std::ostream& os, const Schedule& schedule) {
  full_precision(os) << "schedule v1\n";
  for (TaskId v = 0; v < schedule.num_tasks(); ++v) {
    const TaskPlacement& t = schedule.task(v);
    OP_REQUIRE(t.placed(), "cannot serialize an incomplete schedule");
    os << "task " << v << ' ' << t.proc << ' ' << t.start << ' ' << t.finish
       << '\n';
  }
  for (const CommPlacement& c : schedule.comms()) {
    os << "comm " << c.src << ' ' << c.dst << ' ' << c.from << ' ' << c.to
       << ' ' << c.start << ' ' << c.finish << '\n';
  }
}

Schedule read_schedule(std::istream& is) {
  LineReader reader(is);
  std::istringstream stmt;
  OP_REQUIRE(reader.next(stmt), "empty schedule stream");
  std::string word, version;
  stmt >> word >> version;
  OP_REQUIRE(word == "schedule" && version == "v1",
             "expected 'schedule v1' header");
  // Two passes over buffered statements: placements must exist before we
  // can size the Schedule, so collect first.
  struct TaskLine {
    TaskId id;
    ProcId proc;
    double start, finish;
  };
  std::vector<TaskLine> tasks;
  std::vector<CommPlacement> comms;
  while (reader.next(stmt)) {
    std::string kind;
    stmt >> kind;
    if (kind == "task") {
      TaskLine t{};
      stmt >> t.id >> t.proc >> t.start >> t.finish;
      OP_REQUIRE(!stmt.fail(), "malformed task at line " << reader.line());
      tasks.push_back(t);
    } else if (kind == "comm") {
      CommPlacement c;
      stmt >> c.src >> c.dst >> c.from >> c.to >> c.start >> c.finish;
      OP_REQUIRE(!stmt.fail(), "malformed comm at line " << reader.line());
      comms.push_back(c);
    } else {
      OP_REQUIRE(false, "unknown statement '" << kind << "' at line "
                                              << reader.line());
    }
  }
  Schedule schedule(tasks.size());
  for (const TaskLine& t : tasks) {
    schedule.place_task(t.id, t.proc, t.start, t.finish);
  }
  for (const CommPlacement& c : comms) schedule.add_comm(c);
  return schedule;
}

}  // namespace oneport
