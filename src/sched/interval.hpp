// Half-open time intervals [start, end) and the tolerance used for all
// floating-point time comparisons in the library.
#pragma once

namespace oneport {

/// All schedule times are doubles; two events closer than kTimeEps are
/// considered simultaneous.  The tolerance is absolute: schedule horizons
/// in the reproduced experiments are ~1e5-1e6 time units, far from the
/// resolution limit of doubles.
inline constexpr double kTimeEps = 1e-7;

struct Interval {
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double duration() const noexcept { return end - start; }
  /// Zero-length intervals never conflict with anything (the paper's
  /// Theorem-2 construction uses zero-weight tasks).
  [[nodiscard]] bool degenerate() const noexcept {
    return end - start <= kTimeEps;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Strict overlap test with tolerance: touching intervals ([a,b) then
/// [b,c)) do not overlap, nor do degenerate ones.
[[nodiscard]] inline bool overlaps(const Interval& a,
                                   const Interval& b) noexcept {
  if (a.degenerate() || b.degenerate()) return false;
  return a.start < b.end - kTimeEps && b.start < a.end - kTimeEps;
}

}  // namespace oneport
