// The output of a scheduler: where and when every task runs, plus when
// every inter-processor message travels.
//
// A Schedule is a passive value object; validity with respect to a graph,
// a platform, and a communication model is checked by sched/validate.hpp.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"

namespace oneport {

struct TaskPlacement {
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;

  [[nodiscard]] bool placed() const noexcept { return proc >= 0; }
  friend bool operator==(const TaskPlacement&, const TaskPlacement&) = default;
};

/// One message: the data of edge src->dst shipped from processor `from` to
/// processor `to` during [start, finish).
struct CommPlacement {
  TaskId src = kInvalidTask;
  TaskId dst = kInvalidTask;
  ProcId from = -1;
  ProcId to = -1;
  double start = 0.0;
  double finish = 0.0;

  friend bool operator==(const CommPlacement&, const CommPlacement&) = default;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t num_tasks) : tasks_(num_tasks) {}

  /// Bulk construction from an engine's arena-backed record store: adopts
  /// both vectors wholesale (no per-record push_back) and validates each
  /// record with the same rules place_task/add_comm enforce, in one pass.
  /// Unplaced tasks are allowed, as with the incremental path.
  Schedule(std::vector<TaskPlacement> tasks, std::vector<CommPlacement> comms);

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return tasks_.size();
  }

  void place_task(TaskId v, ProcId proc, double start, double finish);
  void add_comm(CommPlacement comm);

  [[nodiscard]] const TaskPlacement& task(TaskId v) const;
  [[nodiscard]] const std::vector<TaskPlacement>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const std::vector<CommPlacement>& comms() const noexcept {
    return comms_;
  }

  /// True when every task has been placed.
  [[nodiscard]] bool complete() const noexcept;

  /// Latest finish over all tasks and communications (0 for empty).
  [[nodiscard]] double makespan() const noexcept;

  /// Number of inter-processor messages.
  [[nodiscard]] std::size_t num_comms() const noexcept {
    return comms_.size();
  }

 private:
  std::vector<TaskPlacement> tasks_;
  std::vector<CommPlacement> comms_;
};

}  // namespace oneport
