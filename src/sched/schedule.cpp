#include "sched/schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oneport {

Schedule::Schedule(std::vector<TaskPlacement> tasks,
                   std::vector<CommPlacement> comms)
    : tasks_(std::move(tasks)), comms_(std::move(comms)) {
  for (const TaskPlacement& t : tasks_) {
    if (!t.placed()) continue;
    OP_REQUIRE(t.finish >= t.start, "task finish before start");
  }
  for (const CommPlacement& c : comms_) {
    OP_REQUIRE(c.src < tasks_.size() && c.dst < tasks_.size(),
               "comm endpoints out of range");
    OP_REQUIRE(c.from >= 0 && c.to >= 0 && c.from != c.to,
               "comm must connect two distinct processors");
    OP_REQUIRE(c.finish >= c.start, "comm finish before start");
  }
}

void Schedule::place_task(TaskId v, ProcId proc, double start, double finish) {
  OP_REQUIRE(v < tasks_.size(), "task id out of range");
  OP_REQUIRE(proc >= 0, "processor id must be non-negative");
  OP_REQUIRE(finish >= start, "task finish before start");
  OP_REQUIRE(!tasks_[v].placed(), "task " << v << " placed twice");
  tasks_[v] = TaskPlacement{proc, start, finish};
}

void Schedule::add_comm(CommPlacement comm) {
  OP_REQUIRE(comm.src < tasks_.size() && comm.dst < tasks_.size(),
             "comm endpoints out of range");
  OP_REQUIRE(comm.from >= 0 && comm.to >= 0 && comm.from != comm.to,
             "comm must connect two distinct processors");
  OP_REQUIRE(comm.finish >= comm.start, "comm finish before start");
  comms_.push_back(comm);
}

const TaskPlacement& Schedule::task(TaskId v) const {
  OP_REQUIRE(v < tasks_.size(), "task id out of range");
  return tasks_[v];
}

bool Schedule::complete() const noexcept {
  return std::all_of(tasks_.begin(), tasks_.end(),
                     [](const TaskPlacement& t) { return t.placed(); });
}

double Schedule::makespan() const noexcept {
  double m = 0.0;
  for (const TaskPlacement& t : tasks_) m = std::max(m, t.finish);
  for (const CommPlacement& c : comms_) m = std::max(m, c.finish);
  return m;
}

}  // namespace oneport
