#include "sched/calendar_timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/profiler.hpp"

namespace oneport {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Buckets narrower than this would make the eps-overhang bookkeeping
/// meaningless (and explode the bucket count); rebuilds clamp to it.
constexpr double kMinWidth = 16.0 * kTimeEps;

/// Initial bucket count for a fresh timeline.
constexpr std::size_t kInitialBuckets = 64;

}  // namespace

std::size_t CalendarTimeline::bucket_of(double t) const noexcept {
  if (t <= origin_) return 0;
  const double idx = (t - origin_) / width_;
  const auto last = buckets_.size() - 1;
  if (idx >= static_cast<double>(last)) return last;
  return static_cast<std::size_t>(idx);
}

void CalendarTimeline::clear() noexcept {
  buckets_.clear();
  origin_ = 0.0;
  width_ = 1.0;
  count_ = 0;
  horizon_ = 0.0;
  lowest_ = 0.0;
}

void CalendarTimeline::insert_run(double ns, double ne) {
  double s = ns;
  while (true) {
    std::size_t b = bucket_of(s);
    double hi = origin_ + width_ * static_cast<double>(b + 1);
    // Starting within kTimeEps of the right boundary would create a
    // degenerate-width piece; let the piece "underhang" the next bucket
    // instead (scans start one bucket early precisely for this).
    if (hi - s <= kTimeEps && b + 1 < buckets_.size()) {
      ++b;
      hi += width_;
    }
    // A tail within kTimeEps past the boundary stays in this bucket as a
    // harmless overhang rather than a degenerate continuation piece.
    const bool last = ne <= hi + kTimeEps || b + 1 == buckets_.size();
    const double e = last ? ne : hi;
    std::vector<Interval>& bucket = buckets_[b];
    const auto pos = std::upper_bound(
        bucket.begin(), bucket.end(), s,
        [](double t, const Interval& seg) { return t < seg.start; });
    if (pos != bucket.begin() && (pos - 1)->end >= s - kTimeEps) {
      // Exactly-touching predecessor (the snapped back-to-back append
      // path): extend in place, no shift, no new segment.
      (pos - 1)->end = e;
    } else {
      const auto shifted = static_cast<std::size_t>(bucket.end() - pos);
      stats_.shifted_segments += shifted;
      prof::bump(prof::Counter::kCalendarShifts, shifted);
      bucket.insert(pos, Interval{s, e});
      ++count_;
    }
    if (last) break;
    s = e;
  }
  horizon_ = std::max(horizon_, ne);
  lowest_ = std::min(lowest_, ns);
}

void CalendarTimeline::rebuild(double lo, double hi) {
  ++stats_.rebuilds;
  prof::bump(prof::Counter::kCalendarRebuilds);
  // Re-merge the clipped pieces into whole runs; exact-touch merging
  // reproduces the genuine run endpoints (distinct runs are always
  // separated by more than kTimeEps, see reserve()).
  std::vector<Interval> runs = busy_intervals();
  stats_.shifted_segments += count_;
  prof::bump(prof::Counter::kCalendarShifts, count_);
  if (!runs.empty()) {
    lo = std::min(lo, runs.front().start);
    hi = std::max(hi, runs.back().end);
  }
  double span = hi - lo;
  if (!(span > 0.0)) span = 1.0;
  // Target ~0.5 runs per bucket with 50% headroom above the current
  // horizon so steady appends do not immediately re-trigger a rebuild.
  const std::size_t nb =
      std::max(kInitialBuckets, 2 * std::max<std::size_t>(runs.size(), 1));
  width_ = std::max(span * 1.5 / static_cast<double>(nb), kMinWidth);
  origin_ = lo;
  const double need = span * 1.5 / width_;
  buckets_.assign(static_cast<std::size_t>(need) + 2,
                  std::vector<Interval>{});
  count_ = 0;
  for (const Interval& run : runs) insert_run(run.start, run.end);
}

void CalendarTimeline::reserve(double start, double end) {
  OP_REQUIRE(end >= start - kTimeEps, "interval end before start");
  const Interval iv{start, end};
  if (iv.degenerate()) return;
  if (buckets_.empty()) {
    origin_ = start;
    width_ = std::max(end - start, kMinWidth);
    buckets_.assign(kInitialBuckets, std::vector<Interval>{});
    lowest_ = start;
  }
  if (start < origin_) {
    rebuild(start, std::max(horizon_, end));
  }
  if (end > top()) {
    const double need = (end - origin_) / width_;
    const auto needed = static_cast<std::size_t>(need) + 2;
    // Growing by appending empty buckets is O(1) amortized, but a
    // timeline whose width was calibrated for a much smaller span would
    // accumulate arbitrarily many empty buckets; rescale instead once
    // the array gets far sparser than the segment count justifies.
    if (needed > std::max<std::size_t>(1024, 16 * (count_ + 1))) {
      rebuild(std::min(lowest_, start), end);
    } else {
      buckets_.resize(needed);
    }
  }
  // One pass over the buckets the slot (plus tolerance) touches:
  // conflict-check against every stored piece and find the neighboring
  // run endpoints within kTimeEps for the reference-equivalent
  // touching-neighbor merge.
  double prev_end = -kInf;
  double next_start = kInf;
  const std::size_t b1 = bucket_of(end + kTimeEps);
  for (std::size_t b = bucket_of(start - kTimeEps);
       b <= b1 && next_start == kInf; ++b) {
    for (const Interval& seg : buckets_[b]) {
      if (seg.end <= start + kTimeEps) {
        prev_end = seg.end;  // scan order keeps ends non-decreasing
        continue;
      }
      if (seg.start >= end - kTimeEps) {
        next_start = seg.start;
        break;
      }
      OP_ASSERT(!overlaps(seg, iv),
                "reservation [" << start << "," << end << ") overlaps ["
                                << seg.start << "," << seg.end << ")");
    }
  }
  // Snap to neighbors within tolerance: sub-eps gaps fill exactly like
  // the reference's merge, and a tolerated sub-eps overlap trims to the
  // uncovered remainder.  Distinct runs therefore always stay more than
  // kTimeEps apart, which busy_intervals() and rebuild() rely on.
  double ns = start;
  double ne = end;
  if (prev_end >= start - kTimeEps) ns = prev_end;
  if (next_start <= end + kTimeEps) ne = next_start;
  ++stats_.inserts;
  if (ne > ns) insert_run(ns, ne);
  // Density trigger: too many segments per bucket degrades the in-bucket
  // shifts; rebuild with a bucket count matched to the run count.
  if (count_ > 8 * buckets_.size()) {
    rebuild(lowest_, std::max(horizon_, top()));
  }
}

double CalendarTimeline::next_fit(double ready, double duration) const {
  OP_REQUIRE(duration >= 0.0, "duration must be non-negative");
  if (duration <= kTimeEps) return ready;
  // O(1) fast path shared with the other implementations: at or beyond
  // the horizon (within tolerance) the slot starts at `ready`.
  if (count_ == 0 || ready >= horizon_ - kTimeEps) return ready;
  double candidate = ready;
  // Start one bucket early to catch eps-underhang pieces; pieces in even
  // earlier buckets end at most kTimeEps past their bucket and can never
  // block a candidate at or beyond this bucket's start.
  for (std::size_t b = bucket_of(candidate - kTimeEps); b < buckets_.size();
       ++b) {
    for (const Interval& seg : buckets_[b]) {
      if (seg.end <= candidate + kTimeEps) continue;
      if (candidate + duration <= seg.start + kTimeEps) return candidate;
      candidate = seg.end;
    }
  }
  return candidate;
}

bool CalendarTimeline::is_free(double start, double end) const {
  const Interval iv{start, end};
  if (iv.degenerate() || count_ == 0) return true;
  const std::size_t b1 = bucket_of(end + kTimeEps);
  for (std::size_t b = bucket_of(start - kTimeEps); b <= b1; ++b) {
    for (const Interval& seg : buckets_[b]) {
      if (seg.end <= start + kTimeEps) continue;
      if (seg.start >= end - kTimeEps) return true;
      if (overlaps(seg, iv)) return false;
    }
  }
  return true;
}

double CalendarTimeline::busy_time() const noexcept {
  // Sum whole runs, not pieces: the run endpoints equal the reference's
  // merged-interval endpoints, so the totals match bit for bit.
  double total = 0.0;
  double run_start = 0.0;
  double run_end = -kInf;
  for (const std::vector<Interval>& bucket : buckets_) {
    for (const Interval& seg : bucket) {
      if (seg.start <= run_end + kTimeEps) {
        run_end = std::max(run_end, seg.end);
      } else {
        if (run_end > -kInf) total += run_end - run_start;
        run_start = seg.start;
        run_end = seg.end;
      }
    }
  }
  if (run_end > -kInf) total += run_end - run_start;
  return total;
}

std::vector<Interval> CalendarTimeline::busy_intervals() const {
  std::vector<Interval> busy;
  busy.reserve(count_);
  for (const std::vector<Interval>& bucket : buckets_) {
    for (const Interval& seg : bucket) {
      if (!busy.empty() && seg.start <= busy.back().end + kTimeEps) {
        busy.back().end = std::max(busy.back().end, seg.end);
      } else {
        busy.push_back(seg);
      }
    }
  }
  return busy;
}

}  // namespace oneport
