// ASAP replay: an independent, event-driven re-execution of a schedule's
// *decisions* (allocation + per-resource orderings) that recomputes all
// start times as early as the model allows.
//
// Replay serves two purposes:
//   * verification -- a valid schedule replayed under the same model must
//     not get *worse*: replayed makespan <= original makespan (property
//     used heavily in tests);
//   * analysis -- replaying a schedule produced for the macro-dataflow
//     model under the one-port rules quantifies how optimistic the
//     unlimited-port assumption is (experiment E11).
//
// The decisions extracted from the input schedule are: task -> processor,
// the order of tasks on each processor (by start time), the order of
// messages on each send port and each receive port (by start time).
// Everything else (all dates) is recomputed by longest-path over the event
// graph induced by those orders.
#pragma once

#include <cstdint>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport {

enum class CommModel {
  kMacroDataflow,  ///< unlimited ports, contention-free network (§2.1)
  kOnePort,        ///< one send + one receive port per processor (§2.3)
};

/// Recomputes all dates of `schedule` as-soon-as-possible under `model`,
/// keeping its allocation and resource orders.  When replaying under
/// kOnePort a schedule that never considered ports (e.g. one produced by a
/// macro-dataflow heuristic), the original message orders are kept and the
/// messages are serialized on the ports in that order.
///
/// Throws std::invalid_argument if the extracted orders are cyclic (which
/// cannot happen for schedules that validate).
[[nodiscard]] Schedule asap_replay(const Schedule& schedule,
                                   const TaskGraph& graph,
                                   const Platform& platform, CommModel model);

/// Robustness probe: re-executes the schedule's decisions with every task
/// duration scaled by an independent uniform factor in
/// [1 - noise, 1 + noise] (message durations are left exact -- link
/// bandwidth is usually far more stable than host load).  Deterministic
/// in `seed`.  The result is what the static schedule would actually cost
/// at run time under that amount of execution-time uncertainty; it does
/// NOT re-decide anything.  Note the perturbed schedule has task
/// durations that no longer equal w*t, so it is *not* expected to pass
/// the validators -- compare makespans instead.
[[nodiscard]] Schedule perturbed_replay(const Schedule& schedule,
                                        const TaskGraph& graph,
                                        const Platform& platform,
                                        CommModel model, double noise,
                                        std::uint64_t seed);

}  // namespace oneport
