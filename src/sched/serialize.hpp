// Plain-text persistence for task graphs and schedules, so experiments
// can be stored, diffed, and fed to external tooling.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//
//   taskgraph v1
//   task <id> <weight> [name]        # ids must be dense, in order
//   edge <src> <dst> <data>
//
//   schedule v1
//   task <id> <proc> <start> <finish>
//   comm <src> <dst> <from> <to> <start> <finish>
//
// Doubles are printed with max_digits10, so a write/read round trip is
// bit-exact.
#pragma once

#include <iosfwd>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace oneport {

void write_task_graph(std::ostream& os, const TaskGraph& graph);

/// Parses a graph written by write_task_graph; throws
/// std::invalid_argument on malformed input.  The returned graph is
/// finalized.
[[nodiscard]] TaskGraph read_task_graph(std::istream& is);

void write_schedule(std::ostream& os, const Schedule& schedule);

/// Parses a schedule written by write_schedule; throws
/// std::invalid_argument on malformed input.
[[nodiscard]] Schedule read_schedule(std::istream& is);

}  // namespace oneport
