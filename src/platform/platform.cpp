#include "platform/platform.hpp"

#include <cmath>

#include "util/error.hpp"

namespace oneport {

namespace {

Matrix<double> uniform_link_matrix(std::size_t p, double value) {
  Matrix<double> link(p, p, value);
  for (std::size_t i = 0; i < p; ++i) link(i, i) = 0.0;
  return link;
}

}  // namespace

Platform::Platform(std::vector<double> cycle_times, Matrix<double> link)
    : cycle_times_(std::move(cycle_times)), link_(std::move(link)) {
  const std::size_t p = cycle_times_.size();
  OP_REQUIRE(p > 0, "platform needs at least one processor");
  for (std::size_t i = 0; i < p; ++i) {
    OP_REQUIRE(cycle_times_[i] > 0.0, "cycle time of P" << i
                                                        << " must be > 0");
  }
  OP_REQUIRE(link_.rows() == p && link_.cols() == p,
             "link matrix must be " << p << "x" << p);
  for (std::size_t q = 0; q < p; ++q) {
    OP_REQUIRE(link_(q, q) == 0.0, "link diagonal must be zero");
    for (std::size_t r = 0; r < p; ++r) {
      OP_REQUIRE(link_(q, r) >= 0.0, "link entries must be non-negative");
    }
  }
}

Platform::Platform(std::vector<double> cycle_times, double uniform_link)
    : Platform(
          [&cycle_times] { return cycle_times; }(),
          uniform_link_matrix(cycle_times.size(), uniform_link)) {
  OP_REQUIRE(uniform_link >= 0.0, "uniform link must be non-negative");
}

ProcId Platform::fastest_processor() const {
  ProcId best = 0;
  for (ProcId p = 1; p < num_processors(); ++p) {
    if (cycle_times_[static_cast<std::size_t>(p)] <
        cycle_times_[static_cast<std::size_t>(best)]) {
      best = p;
    }
  }
  return best;
}

double Platform::aggregate_speed() const {
  double s = 0.0;
  for (const double t : cycle_times_) s += 1.0 / t;
  return s;
}

double Platform::harmonic_mean_cycle_time() const {
  return static_cast<double>(num_processors()) / aggregate_speed();
}

double Platform::harmonic_mean_link() const {
  const int p = num_processors();
  if (p < 2) return 0.0;
  double inv_sum = 0.0;
  std::size_t count = 0;
  for (ProcId q = 0; q < p; ++q) {
    for (ProcId r = 0; r < p; ++r) {
      if (q == r) continue;
      const double l = link(q, r);
      // A zero-cost link would make the harmonic mean collapse to zero;
      // treat it as "free" and skip it, mirroring the diagonal.  Absent
      // links (+infinity, see platform/routing.hpp) are skipped too.
      if (l > 0.0 && std::isfinite(l)) {
        inv_sum += 1.0 / l;
        ++count;
      }
    }
  }
  if (count == 0 || inv_sum == 0.0) return 0.0;
  return static_cast<double>(count) / inv_sum;
}

Platform make_homogeneous_platform(int p, double link, double cycle_time) {
  OP_REQUIRE(p > 0, "need at least one processor");
  return {std::vector<double>(static_cast<std::size_t>(p), cycle_time), link};
}

Platform make_paper_platform() {
  std::vector<double> t;
  t.insert(t.end(), 5, 6.0);
  t.insert(t.end(), 3, 10.0);
  t.insert(t.end(), 2, 15.0);
  return {std::move(t), 1.0};
}

}  // namespace oneport
