// Static load-balancing across different-speed processors (§4.1-4.2).
//
// Given processors of cycle-times t_1..t_p, a perfectly divisible workload
// W is balanced when processor i receives the fraction
//     c_i = (1/t_i) / sum_j (1/t_j)
// so that every processor finishes at W / sum_j(1/t_j).
//
// Tasks being indivisible, fractional shares must be rounded; the paper's
// "Optimal distribution" algorithm (§4.2, from Boudet-Rastello-Robert)
// starts from floors and greedily hands each leftover task to the
// processor whose finish time after the extra task is smallest.  The
// result minimizes max_i t_i * n_i over all integer distributions summing
// to n (for equal-size tasks).
#pragma once

#include <cstdint>
#include <vector>

#include "platform/platform.hpp"

namespace oneport {

/// Ideal fractional shares c_i (sum to 1).
[[nodiscard]] std::vector<double> balanced_fractions(const Platform& platform);

/// The paper's optimal integer distribution of `n` equal-size tasks.
/// Returns per-processor task counts summing to n; minimizes the parallel
/// finish time max_i t_i * count_i.
[[nodiscard]] std::vector<int> optimal_distribution(const Platform& platform,
                                                    int n);

/// Parallel finish time of a distribution: max_i t_i * count_i.
[[nodiscard]] double distribution_makespan(const Platform& platform,
                                           const std::vector<int>& counts);

/// Smallest chunk size that admits a *perfect* balance (every processor
/// busy for exactly the same time):
///     M = lcm(t_1..t_p) * sum_i 1/t_i.
/// Only defined for platforms whose cycle times are (near-)integers; throws
/// std::invalid_argument otherwise.  For the paper's platform this is
/// B = 38 (5 procs x 5 tasks + 3 x 3 + 2 x 2, all busy 30 time units).
[[nodiscard]] std::int64_t perfect_balance_chunk(const Platform& platform);

/// Upper bound on the achievable speedup over the fastest processor,
/// ignoring communications and dependences (the paper's 7.6 for its
/// platform): (min_i t_i) * sum_j 1/t_j.
[[nodiscard]] double speedup_upper_bound(const Platform& platform);

}  // namespace oneport
