// Static load-balancing across different-speed processors (§4.1-4.2).
//
// Given processors of cycle-times t_1..t_p, a perfectly divisible workload
// W is balanced when processor i receives the fraction
//     c_i = (1/t_i) / sum_j (1/t_j)
// so that every processor finishes at W / sum_j(1/t_j).
//
// Tasks being indivisible, fractional shares must be rounded; the paper's
// "Optimal distribution" algorithm (§4.2, from Boudet-Rastello-Robert)
// starts from floors and greedily hands each leftover task to the
// processor whose finish time after the extra task is smallest.  The
// result minimizes max_i t_i * n_i over all integer distributions summing
// to n (for equal-size tasks).
//
// For *running* workloads the same ideal doubles as a quality metric:
// fractional_load_imbalance measures how far a concrete per-processor load
// vector sits above the balanced finish time, and rebalance_assignment
// greedily moves work off the most-skewed processor until the skew stops
// shrinking.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/platform.hpp"

namespace oneport {

/// Ideal fractional shares c_i (sum to 1).
[[nodiscard]] std::vector<double> balanced_fractions(const Platform& platform);

/// The paper's optimal integer distribution of `n` equal-size tasks.
/// Returns per-processor task counts summing to n; minimizes the parallel
/// finish time max_i t_i * count_i.  Throws std::invalid_argument when
/// n < 1 or the platform is degenerate (no processors, non-positive cycle
/// times -- unreachable through Platform's own invariants, but guarded so
/// the algorithm never divides by garbage).
[[nodiscard]] std::vector<int> optimal_distribution(const Platform& platform,
                                                    int n);

/// Parallel finish time of a distribution: max_i t_i * count_i.  Throws
/// std::invalid_argument on arity mismatch, negative counts, or a
/// degenerate platform.
[[nodiscard]] double distribution_makespan(const Platform& platform,
                                           const std::vector<int>& counts);

/// Smallest chunk size that admits a *perfect* balance (every processor
/// busy for exactly the same time):
///     M = lcm(t_1..t_p) * sum_i 1/t_i.
/// Only defined for platforms whose cycle times are (near-)integers; throws
/// std::invalid_argument otherwise.  The accumulation runs in 128-bit
/// integers over exact rationals; if the LCM or the chunk exceeds the
/// representable range (coprime-ish cycle-time sets blow the LCM up
/// multiplicatively), throws std::overflow_error instead of wrapping.
/// For the paper's platform this is B = 38 (5 procs x 5 tasks + 3 x 3 +
/// 2 x 2, all busy 30 time units).
[[nodiscard]] std::int64_t perfect_balance_chunk(const Platform& platform);

/// Upper bound on the achievable speedup over the fastest processor,
/// ignoring communications and dependences (the paper's 7.6 for its
/// platform): (min_i t_i) * sum_j 1/t_j.
[[nodiscard]] double speedup_upper_bound(const Platform& platform);

/// Fractional load imbalance of a per-processor load vector (work units):
///     phi = max_i(load_i * t_i) / (sum_i load_i / aggregate_speed) - 1,
/// the relative excess of the worst finish time over the perfectly
/// balanced finish time of the same total work (the `balanced_fractions`
/// ideal).  phi = 0 means every processor finishes exactly at the ideal;
/// phi = 1 means the slowest-finishing processor takes twice the ideal.
/// A zero total load is perfectly balanced by convention (returns 0).
/// Throws std::invalid_argument on arity mismatch or negative loads.
[[nodiscard]] double fractional_load_imbalance(const Platform& platform,
                                              const std::vector<double>& loads);

/// Outcome of one rebalance_assignment run.
struct RebalanceStats {
  int moves = 0;               ///< accepted item moves
  double imbalance_before = 0; ///< fractional_load_imbalance at entry
  double imbalance_after = 0;  ///< fractional_load_imbalance at exit
};

/// Iterative skew-reduction rebalancer over an item -> processor
/// assignment (weights[i] is item i's work).  Each round finds the
/// processor with the worst finish time load * t and tries to move one of
/// its items to another processor; the move that lowers the global worst
/// finish time the most is applied (ties: smaller item id, then smaller
/// target processor).  When several processors tie at the peak so no
/// single move can lower it, a move that steps the donor off the peak
/// while keeping the taker strictly below it is accepted instead -- it
/// shrinks the set of peak processors, so iteration keeps making
/// progress and still terminates.  Rounds repeat until no move improves,
/// so fractional_load_imbalance never increases and strictly decreases
/// whenever the peak drops.  Mutates `assignment` in place and reports
/// the moves and before/after imbalance.
/// Throws std::invalid_argument on arity mismatch, negative weights, or
/// out-of-range processor ids.
RebalanceStats rebalance_assignment(const Platform& platform,
                                    const std::vector<double>& weights,
                                    std::vector<ProcId>& assignment,
                                    int max_moves = 1 << 20);

}  // namespace oneport
