#include "platform/load_balance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace oneport {

std::vector<double> balanced_fractions(const Platform& platform) {
  const double speed = platform.aggregate_speed();
  std::vector<double> c(static_cast<std::size_t>(platform.num_processors()));
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    c[static_cast<std::size_t>(p)] = (1.0 / platform.cycle_time(p)) / speed;
  }
  return c;
}

std::vector<int> optimal_distribution(const Platform& platform, int n) {
  OP_REQUIRE(n >= 0, "task count must be non-negative");
  const int p = platform.num_processors();
  const std::vector<double> frac = balanced_fractions(platform);
  std::vector<int> counts(static_cast<std::size_t>(p), 0);

  // Step 1 of the paper's algorithm: floors of the ideal shares.
  int assigned = 0;
  for (int i = 0; i < p; ++i) {
    counts[static_cast<std::size_t>(i)] = static_cast<int>(
        std::floor(frac[static_cast<std::size_t>(i)] * n));
    assigned += counts[static_cast<std::size_t>(i)];
  }
  OP_ASSERT(assigned <= n, "floor shares exceed n");

  // Step 2: hand out the remaining tasks one by one to the processor that
  // finishes earliest after taking one more task (ties -> smaller index).
  for (; assigned < n; ++assigned) {
    int best = 0;
    double best_time = platform.cycle_time(0) * (counts[0] + 1);
    for (int i = 1; i < p; ++i) {
      const double time =
          platform.cycle_time(i) * (counts[static_cast<std::size_t>(i)] + 1);
      if (time < best_time) {
        best = i;
        best_time = time;
      }
    }
    ++counts[static_cast<std::size_t>(best)];
  }
  return counts;
}

double distribution_makespan(const Platform& platform,
                             const std::vector<int>& counts) {
  OP_REQUIRE(counts.size() ==
                 static_cast<std::size_t>(platform.num_processors()),
             "counts arity mismatch");
  double makespan = 0.0;
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    makespan = std::max(makespan, platform.cycle_time(p) *
                                      counts[static_cast<std::size_t>(p)]);
  }
  return makespan;
}

namespace {

std::int64_t to_integer_cycle_time(double t) {
  const double rounded = std::round(t);
  OP_REQUIRE(std::abs(t - rounded) < 1e-9 && rounded >= 1.0,
             "perfect_balance_chunk requires integer cycle times, got " << t);
  return static_cast<std::int64_t>(rounded);
}

}  // namespace

std::int64_t perfect_balance_chunk(const Platform& platform) {
  std::int64_t l = 1;
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    l = std::lcm(l, to_integer_cycle_time(platform.cycle_time(p)));
  }
  std::int64_t chunk = 0;
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    chunk += l / to_integer_cycle_time(platform.cycle_time(p));
  }
  return chunk;
}

double speedup_upper_bound(const Platform& platform) {
  return platform.cycle_time(platform.fastest_processor()) *
         platform.aggregate_speed();
}

}  // namespace oneport
