#include "platform/load_balance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace oneport {
namespace {

/// Minimum finish-time improvement for a rebalance move to count: keeps
/// the greedy loop from ping-ponging on floating-point noise.
constexpr double kSkewEps = 1e-9;

/// Shared degenerate-platform guard: Platform's own constructor enforces
/// these, but the balance algorithms divide by cycle times and index by
/// processor count, so they re-check rather than trust the caller with a
/// possibly moved-from or future relaxed Platform.
void require_usable_platform(const Platform& platform) {
  OP_REQUIRE(platform.num_processors() > 0,
             "load balancing needs at least one processor");
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    OP_REQUIRE(platform.cycle_time(p) > 0.0,
               "load balancing needs positive cycle times, processor "
                   << p << " has " << platform.cycle_time(p));
  }
}

}  // namespace

std::vector<double> balanced_fractions(const Platform& platform) {
  require_usable_platform(platform);
  const double speed = platform.aggregate_speed();
  std::vector<double> c(static_cast<std::size_t>(platform.num_processors()));
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    c[static_cast<std::size_t>(p)] = (1.0 / platform.cycle_time(p)) / speed;
  }
  return c;
}

std::vector<int> optimal_distribution(const Platform& platform, int n) {
  OP_REQUIRE(n >= 1, "task count must be positive, got " << n);
  require_usable_platform(platform);
  const int p = platform.num_processors();
  const std::vector<double> frac = balanced_fractions(platform);
  std::vector<int> counts(static_cast<std::size_t>(p), 0);

  // Step 1 of the paper's algorithm: floors of the ideal shares.
  int assigned = 0;
  for (int i = 0; i < p; ++i) {
    counts[static_cast<std::size_t>(i)] = static_cast<int>(
        std::floor(frac[static_cast<std::size_t>(i)] * n));
    assigned += counts[static_cast<std::size_t>(i)];
  }
  OP_ASSERT(assigned <= n, "floor shares exceed n");

  // Step 2: hand out the remaining tasks one by one to the processor that
  // finishes earliest after taking one more task (ties -> smaller index).
  for (; assigned < n; ++assigned) {
    int best = 0;
    double best_time = platform.cycle_time(0) * (counts[0] + 1);
    for (int i = 1; i < p; ++i) {
      const double time =
          platform.cycle_time(i) * (counts[static_cast<std::size_t>(i)] + 1);
      if (time < best_time) {
        best = i;
        best_time = time;
      }
    }
    ++counts[static_cast<std::size_t>(best)];
  }
  return counts;
}

double distribution_makespan(const Platform& platform,
                             const std::vector<int>& counts) {
  require_usable_platform(platform);
  OP_REQUIRE(counts.size() ==
                 static_cast<std::size_t>(platform.num_processors()),
             "counts arity mismatch: " << counts.size() << " counts for "
                                       << platform.num_processors()
                                       << " processors");
  double makespan = 0.0;
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    const int c = counts[static_cast<std::size_t>(p)];
    OP_REQUIRE(c >= 0, "negative task count " << c << " for processor " << p);
    makespan = std::max(makespan, platform.cycle_time(p) * c);
  }
  return makespan;
}

namespace {

std::int64_t to_integer_cycle_time(double t) {
  const double rounded = std::round(t);
  OP_REQUIRE(std::abs(t - rounded) < 1e-9 && rounded >= 1.0,
             "perfect_balance_chunk requires integer cycle times, got " << t);
  return static_cast<std::int64_t>(rounded);
}

// 128-bit helpers for the exact-rational chunk computation.  GCC/Clang
// guarantee unsigned __int128 on the targets this repo builds for; the
// overflow checks below make the arithmetic *checked*, not just wider.
__extension__ using u128 = unsigned __int128;

u128 gcd_u128(u128 a, u128 b) {
  while (b != 0) {
    const u128 r = a % b;
    a = b;
    b = r;
  }
  return a;
}

/// a * b, throwing std::overflow_error when the product leaves 128 bits.
u128 checked_mul_u128(u128 a, u128 b) {
  if (a == 0 || b == 0) return 0;
  const u128 product = a * b;
  if (product / a != b) {
    throw std::overflow_error(
        "perfect_balance_chunk: cycle-time LCM exceeds 128-bit range");
  }
  return product;
}

}  // namespace

std::int64_t perfect_balance_chunk(const Platform& platform) {
  require_usable_platform(platform);
  // lcm over the integer cycle times, carried in checked 128-bit
  // arithmetic: coprime-ish sets grow the LCM multiplicatively, and the
  // old int64 std::lcm loop wrapped silently long before the *chunk*
  // (which divides the LCM back down) stopped being representable.
  u128 l = 1;
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    const u128 t =
        static_cast<u128>(to_integer_cycle_time(platform.cycle_time(p)));
    l = checked_mul_u128(l / gcd_u128(l, t), t);
  }
  // chunk = sum_i l / t_i, each term exact by construction of l.
  u128 chunk = 0;
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    const u128 t =
        static_cast<u128>(to_integer_cycle_time(platform.cycle_time(p)));
    const u128 term = l / t;
    const u128 next = chunk + term;
    if (next < chunk) {
      throw std::overflow_error(
          "perfect_balance_chunk: chunk sum exceeds 128-bit range");
    }
    chunk = next;
  }
  if (chunk > static_cast<u128>(std::numeric_limits<std::int64_t>::max())) {
    throw std::overflow_error(
        "perfect_balance_chunk: chunk does not fit in int64 for this "
        "cycle-time set");
  }
  return static_cast<std::int64_t>(chunk);
}

double speedup_upper_bound(const Platform& platform) {
  return platform.cycle_time(platform.fastest_processor()) *
         platform.aggregate_speed();
}

double fractional_load_imbalance(const Platform& platform,
                                 const std::vector<double>& loads) {
  require_usable_platform(platform);
  OP_REQUIRE(loads.size() ==
                 static_cast<std::size_t>(platform.num_processors()),
             "loads arity mismatch: " << loads.size() << " loads for "
                                      << platform.num_processors()
                                      << " processors");
  double total = 0.0;
  double worst = 0.0;
  for (ProcId p = 0; p < platform.num_processors(); ++p) {
    const double load = loads[static_cast<std::size_t>(p)];
    OP_REQUIRE(load >= 0.0,
               "negative load " << load << " for processor " << p);
    total += load;
    worst = std::max(worst, load * platform.cycle_time(p));
  }
  if (total <= 0.0) return 0.0;
  const double ideal = total / platform.aggregate_speed();
  return worst / ideal - 1.0;
}

RebalanceStats rebalance_assignment(const Platform& platform,
                                    const std::vector<double>& weights,
                                    std::vector<ProcId>& assignment,
                                    int max_moves) {
  require_usable_platform(platform);
  OP_REQUIRE(weights.size() == assignment.size(),
             "weights/assignment arity mismatch: " << weights.size() << " vs "
                                                   << assignment.size());
  const int p = platform.num_processors();
  std::vector<double> loads(static_cast<std::size_t>(p), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    OP_REQUIRE(weights[i] >= 0.0,
               "negative weight " << weights[i] << " for item " << i);
    OP_REQUIRE(assignment[i] >= 0 && assignment[i] < p,
               "item " << i << " assigned to invalid processor "
                       << assignment[i]);
    loads[static_cast<std::size_t>(assignment[i])] += weights[i];
  }

  RebalanceStats stats;
  stats.imbalance_before = fractional_load_imbalance(platform, loads);

  const auto finish = [&](ProcId q) {
    return loads[static_cast<std::size_t>(q)] * platform.cycle_time(q);
  };
  // nfos-style loop: keep pulling work off the worst-finishing processor
  // while some single-item move strictly lowers the global worst finish.
  while (stats.moves < max_moves) {
    ProcId worst_proc = 0;
    for (ProcId q = 1; q < p; ++q) {
      if (finish(q) > finish(worst_proc)) worst_proc = q;
    }
    const double current_peak = finish(worst_proc);

    // Finish times of everyone *except* the donor bound the post-move
    // peak from below; precompute the max once per round.
    double others_peak = 0.0;
    for (ProcId q = 0; q < p; ++q) {
      if (q != worst_proc) others_peak = std::max(others_peak, finish(q));
    }

    std::size_t best_item = weights.size();
    ProcId best_target = -1;
    double best_peak = current_peak;
    // Secondary criterion: the worse of the two touched finish times.
    // When several processors tie at the peak, no single move can lower
    // the *global* peak, but a move whose donor and taker both land
    // strictly below it shrinks the set of peak processors -- the sorted
    // finish vector decreases lexicographically, so the loop still
    // terminates and later rounds drain the remaining peak processors.
    double best_local = current_peak;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (assignment[i] != worst_proc || weights[i] <= 0.0) continue;
      const double donor_after =
          (loads[static_cast<std::size_t>(worst_proc)] - weights[i]) *
          platform.cycle_time(worst_proc);
      for (ProcId q = 0; q < p; ++q) {
        if (q == worst_proc) continue;
        const double taker_after =
            (loads[static_cast<std::size_t>(q)] + weights[i]) *
            platform.cycle_time(q);
        // others_peak includes the taker's *old* finish, but taker_after
        // dominates it (the taker only grew), so this max is exactly the
        // post-move peak without a per-candidate rescan.
        const double peak =
            std::max({donor_after, taker_after, others_peak});
        const double local = std::max(donor_after, taker_after);
        if (peak < best_peak - kSkewEps ||
            (peak < best_peak + kSkewEps && local < best_local - kSkewEps)) {
          best_peak = peak;
          best_local = local;
          best_item = i;
          best_target = q;
        }
      }
    }
    if (best_item == weights.size()) break;  // skew stopped shrinking
    loads[static_cast<std::size_t>(worst_proc)] -= weights[best_item];
    loads[static_cast<std::size_t>(best_target)] += weights[best_item];
    assignment[best_item] = best_target;
    ++stats.moves;
  }

  stats.imbalance_after = fractional_load_imbalance(platform, loads);
  return stats;
}

}  // namespace oneport
