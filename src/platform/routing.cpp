#include "platform/routing.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace oneport {

RoutingTable RoutingTable::shortest_paths(const Platform& platform) {
  const int p = platform.num_processors();
  const auto n = static_cast<std::size_t>(p);
  Matrix<double> dist(n, n, kNoLink);
  Matrix<int> next(n, n, -1);
  Matrix<int> hops(n, n, 0);
  for (int q = 0; q < p; ++q) {
    dist(static_cast<std::size_t>(q), static_cast<std::size_t>(q)) = 0.0;
    next(static_cast<std::size_t>(q), static_cast<std::size_t>(q)) = q;
    for (int r = 0; r < p; ++r) {
      if (q == r) continue;
      const double l = platform.link(q, r);
      if (std::isfinite(l)) {
        dist(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = l;
        next(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = r;
        hops(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = 1;
      }
    }
  }
  // Floyd-Warshall with exact cost comparisons.  An epsilon-strict test
  // here would silently keep a stale route when a genuinely shorter one
  // is within the tolerance, making route choice depend on accumulation
  // order.  Equal-cost routes are broken explicitly and deterministically:
  // fewer hops first (store-and-forward latency grows with the hop
  // count), then the smallest next hop.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == k || !std::isfinite(dist(i, k))) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || j == k || !std::isfinite(dist(k, j))) continue;
        const double via = dist(i, k) + dist(k, j);
        const int via_hops = hops(i, k) + hops(k, j);
        const bool improves =
            via < dist(i, j) ||
            (via == dist(i, j) &&
             (via_hops < hops(i, j) ||
              (via_hops == hops(i, j) && next(i, k) < next(i, j))));
        if (improves) {
          dist(i, j) = via;
          hops(i, j) = via_hops;
          next(i, j) = next(i, k);
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      OP_REQUIRE(std::isfinite(dist(i, j)),
                 "network is disconnected: no route P" << i << " -> P" << j);
    }
  }
  return RoutingTable(p, std::move(dist), std::move(next));
}

RoutingTable RoutingTable::from_tables(int p, Matrix<double> dist,
                                       Matrix<int> next) {
  const auto n = static_cast<std::size_t>(p);
  OP_REQUIRE(p > 0, "need at least one processor");
  OP_REQUIRE(dist.rows() == n && dist.cols() == n && next.rows() == n &&
                 next.cols() == n,
             "table shape does not match the processor count");
  return RoutingTable(p, std::move(dist), std::move(next));
}

std::vector<ProcId> RoutingTable::path(ProcId from, ProcId to) const {
  std::vector<ProcId> out;
  path_into(from, to, out);
  return out;
}

void RoutingTable::path_into(ProcId from, ProcId to,
                             std::vector<ProcId>& out) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  out.clear();
  out.push_back(from);
  ProcId cur = from;
  while (cur != to) {
    // A loop-free path visits each processor at most once, so a valid
    // route has at most p_ entries; checked *before* pushing so a cyclic
    // table can never emit more than p_ hops.
    OP_ASSERT(out.size() < static_cast<std::size_t>(p_),
              "routing loop detected");
    cur = next_(static_cast<std::size_t>(cur), static_cast<std::size_t>(to));
    OP_ASSERT(cur >= 0, "routing table has a hole");
    out.push_back(cur);
  }
}

bool RoutingTable::direct(ProcId from, ProcId to) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  if (from == to) return true;
  return next_(static_cast<std::size_t>(from), static_cast<std::size_t>(to)) ==
         to;
}

double RoutingTable::distance(ProcId from, ProcId to) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  return dist_(static_cast<std::size_t>(from), static_cast<std::size_t>(to));
}

RoutedPlatform make_ring_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a ring needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    m(i, (i + 1) % n) = link;
    m((i + 1) % n, i) = link;
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_star_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a star needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    if (i != 0) {
      m(0, i) = link;
      m(i, 0) = link;
    }
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_line_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a line needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    if (i + 1 < n) {
      m(i, i + 1) = link;
      m(i + 1, i) = link;
    }
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_random_connected_platform(std::vector<double> cycle_times,
                                              double edge_probability,
                                              std::uint64_t seed,
                                              double link_lo, double link_hi) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a random network needs at least two processors");
  OP_REQUIRE(edge_probability >= 0.0 && edge_probability <= 1.0,
             "edge probability must be in [0, 1]");
  OP_REQUIRE(link_lo > 0.0 && link_hi >= link_lo && std::isfinite(link_hi),
             "link cost range must be positive and finite");
  SplitMix64 rng(seed * 0x2545F4914F6CDD1DULL + 0x9E3779B97F4A7C15ULL);
  const auto draw = [&] {
    return link_lo == link_hi ? link_lo : rng.uniform(link_lo, link_hi);
  };
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 0.0;
  // Random spanning tree first (connectivity), extra edges second.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = rng.below(i);
    const double cost = draw();
    m(i, parent) = cost;
    m(parent, i) = cost;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Always consume one draw per pair so the topology of edge (i, j)
      // does not shift every later cost when the spanning tree changes.
      const double toss = rng.uniform01();
      if (std::isfinite(m(i, j)) || toss >= edge_probability) continue;
      const double cost = draw();
      m(i, j) = cost;
      m(j, i) = cost;
    }
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_topology_platform(const std::string& topology,
                                      std::vector<double> cycle_times,
                                      double link, std::uint64_t seed) {
  if (topology == "ring") return make_ring_platform(std::move(cycle_times), link);
  if (topology == "star") return make_star_platform(std::move(cycle_times), link);
  if (topology == "line") return make_line_platform(std::move(cycle_times), link);
  if (topology == "random") {
    return make_random_connected_platform(std::move(cycle_times),
                                          /*edge_probability=*/0.35, seed,
                                          0.5 * link, 1.5 * link);
  }
  OP_REQUIRE(false, "unknown topology '"
                        << topology
                        << "'; known: ring, star, line, random");
  // Unreachable; OP_REQUIRE above always throws.
  return make_ring_platform(std::move(cycle_times), link);
}

}  // namespace oneport
