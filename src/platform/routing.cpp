#include "platform/routing.hpp"

#include <cmath>

#include "util/error.hpp"

namespace oneport {

RoutingTable RoutingTable::shortest_paths(const Platform& platform) {
  const int p = platform.num_processors();
  const auto n = static_cast<std::size_t>(p);
  Matrix<double> dist(n, n, kNoLink);
  Matrix<int> next(n, n, -1);
  for (int q = 0; q < p; ++q) {
    dist(static_cast<std::size_t>(q), static_cast<std::size_t>(q)) = 0.0;
    next(static_cast<std::size_t>(q), static_cast<std::size_t>(q)) = q;
    for (int r = 0; r < p; ++r) {
      if (q == r) continue;
      const double l = platform.link(q, r);
      if (std::isfinite(l)) {
        dist(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = l;
        next(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = r;
      }
    }
  }
  // Floyd-Warshall; strict improvement keeps the smallest-intermediate
  // route on ties, which makes path() deterministic.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(dist(i, k))) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double via = dist(i, k) + dist(k, j);
        if (via < dist(i, j) - 1e-12) {
          dist(i, j) = via;
          next(i, j) = next(i, k);
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      OP_REQUIRE(std::isfinite(dist(i, j)),
                 "network is disconnected: no route P" << i << " -> P" << j);
    }
  }
  return RoutingTable(p, std::move(dist), std::move(next));
}

std::vector<ProcId> RoutingTable::path(ProcId from, ProcId to) const {
  std::vector<ProcId> out;
  path_into(from, to, out);
  return out;
}

void RoutingTable::path_into(ProcId from, ProcId to,
                             std::vector<ProcId>& out) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  out.clear();
  out.push_back(from);
  ProcId cur = from;
  while (cur != to) {
    cur = next_(static_cast<std::size_t>(cur), static_cast<std::size_t>(to));
    OP_ASSERT(cur >= 0, "routing table has a hole");
    OP_ASSERT(out.size() <= static_cast<std::size_t>(p_),
              "routing loop detected");
    out.push_back(cur);
  }
}

bool RoutingTable::direct(ProcId from, ProcId to) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  if (from == to) return true;
  return next_(static_cast<std::size_t>(from), static_cast<std::size_t>(to)) ==
         to;
}

double RoutingTable::distance(ProcId from, ProcId to) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  return dist_(static_cast<std::size_t>(from), static_cast<std::size_t>(to));
}

RoutedPlatform make_ring_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a ring needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    m(i, (i + 1) % n) = link;
    m((i + 1) % n, i) = link;
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_star_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a star needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    if (i != 0) {
      m(0, i) = link;
      m(i, 0) = link;
    }
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

}  // namespace oneport
