#include "platform/routing.hpp"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace oneport {

namespace linkcost {

namespace {

/// One SplitMix64 draw keyed by (seed, canonical endpoint pair): every
/// link gets its own independent stream position, so costs are a pure
/// function of the endpoints regardless of link enumeration order.
double edge_uniform01(std::uint64_t seed, ProcId u, ProcId v) {
  const auto a = static_cast<std::uint64_t>(u < v ? u : v);
  const auto b = static_cast<std::uint64_t>(u < v ? v : u);
  SplitMix64 rng(seed * 0x9E3779B97F4A7C15ULL + a * 0xBF58476D1CE4E5B9ULL +
                 b * 0x94D049BB133111EBULL + 0x2545F4914F6CDD1DULL);
  return rng.uniform01();
}

}  // namespace

LinkCostFn jitter(double amplitude, std::uint64_t seed) {
  OP_REQUIRE(amplitude > 0.0 && amplitude < 1.0,
             "jitter amplitude must be in (0, 1), got " << amplitude);
  return [amplitude, seed](ProcId u, ProcId v, int /*dim*/, double base) {
    return base * (1.0 - amplitude +
                   2.0 * amplitude * edge_uniform01(seed, u, v));
  };
}

LinkCostFn hotspot(double probability, double factor, std::uint64_t seed) {
  OP_REQUIRE(probability > 0.0 && probability <= 1.0,
             "hotspot probability must be in (0, 1], got " << probability);
  OP_REQUIRE(factor > 0.0 && std::isfinite(factor),
             "hotspot factor must be positive and finite");
  // Salted so a link's hotspot toss is independent of its jitter draw
  // when both suffixes share the topology seed.
  const std::uint64_t salted = seed ^ 0xD1B54A32D192ED03ULL;
  return [probability, factor, salted](ProcId u, ProcId v, int /*dim*/,
                                       double base) {
    return edge_uniform01(salted, u, v) < probability ? base * factor : base;
  };
}

LinkCostFn anisotropy(double factor) {
  OP_REQUIRE(factor > 0.0 && std::isfinite(factor),
             "anisotropy factor must be positive and finite");
  return [factor](ProcId /*u*/, ProcId /*v*/, int dim, double base) {
    return dim == 1 ? base * factor : base;
  };
}

LinkCostFn compose(std::vector<LinkCostFn> fns) {
  return [fns = std::move(fns)](ProcId u, ProcId v, int dim, double base) {
    for (const LinkCostFn& fn : fns) base = fn(u, v, dim, base);
    return base;
  };
}

}  // namespace linkcost

const char* routing_policy_name(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kDimensionOrdered:
      return "xy";
    case RoutingPolicy::kAlternating:
      return "alt";
    case RoutingPolicy::kUpDown:
      return "updown";
    case RoutingPolicy::kWeightedShortest:
      return "swp";
  }
  return "?";
}

RoutingTable RoutingTable::shortest_paths(const Platform& platform) {
  const int p = platform.num_processors();
  const auto n = static_cast<std::size_t>(p);
  Matrix<double> dist(n, n, kNoLink);
  Matrix<int> next(n, n, -1);
  Matrix<int> hops(n, n, 0);
  for (int q = 0; q < p; ++q) {
    dist(static_cast<std::size_t>(q), static_cast<std::size_t>(q)) = 0.0;
    next(static_cast<std::size_t>(q), static_cast<std::size_t>(q)) = q;
    for (int r = 0; r < p; ++r) {
      if (q == r) continue;
      const double l = platform.link(q, r);
      if (std::isfinite(l)) {
        dist(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = l;
        next(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = r;
        hops(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) = 1;
      }
    }
  }
  // Floyd-Warshall with exact cost comparisons.  An epsilon-strict test
  // here would silently keep a stale route when a genuinely shorter one
  // is within the tolerance, making route choice depend on accumulation
  // order.  Equal-cost routes are broken explicitly and deterministically:
  // fewer hops first (store-and-forward latency grows with the hop
  // count), then the smallest next hop.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == k || !std::isfinite(dist(i, k))) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || j == k || !std::isfinite(dist(k, j))) continue;
        const double via = dist(i, k) + dist(k, j);
        const int via_hops = hops(i, k) + hops(k, j);
        const bool improves =
            via < dist(i, j) ||
            (via == dist(i, j) &&
             (via_hops < hops(i, j) ||
              (via_hops == hops(i, j) && next(i, k) < next(i, j))));
        if (improves) {
          dist(i, j) = via;
          hops(i, j) = via_hops;
          next(i, j) = next(i, k);
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      OP_REQUIRE(std::isfinite(dist(i, j)),
                 "network is disconnected: no route P" << i << " -> P" << j);
    }
  }
  return RoutingTable(p, std::move(dist), std::move(next));
}

RoutingTable RoutingTable::from_tables(int p, Matrix<double> dist,
                                       Matrix<int> next) {
  const auto n = static_cast<std::size_t>(p);
  OP_REQUIRE(p > 0, "need at least one processor");
  OP_REQUIRE(dist.rows() == n && dist.cols() == n && next.rows() == n &&
                 next.cols() == n,
             "table shape does not match the processor count");
  return RoutingTable(p, std::move(dist), std::move(next));
}

std::vector<ProcId> RoutingTable::path(ProcId from, ProcId to) const {
  std::vector<ProcId> out;
  path_into(from, to, out);
  return out;
}

void RoutingTable::path_into(ProcId from, ProcId to,
                             std::vector<ProcId>& out) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  out.clear();
  out.push_back(from);
  ProcId cur = from;
  while (cur != to) {
    // A loop-free path visits each processor at most once, so a valid
    // route has at most p_ entries; checked *before* pushing so a cyclic
    // table can never emit more than p_ hops.
    OP_ASSERT(out.size() < static_cast<std::size_t>(p_),
              "routing loop detected");
    cur = next_(static_cast<std::size_t>(cur), static_cast<std::size_t>(to));
    OP_ASSERT(cur >= 0, "routing table has a hole");
    out.push_back(cur);
  }
}

bool RoutingTable::direct(ProcId from, ProcId to) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  if (from == to) return true;
  return next_(static_cast<std::size_t>(from), static_cast<std::size_t>(to)) ==
         to;
}

double RoutingTable::distance(ProcId from, ProcId to) const {
  OP_REQUIRE(from >= 0 && from < p_ && to >= 0 && to < p_,
             "processor out of range");
  return dist_(static_cast<std::size_t>(from), static_cast<std::size_t>(to));
}

RoutedPlatform make_ring_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a ring needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    m(i, (i + 1) % n) = link;
    m((i + 1) % n, i) = link;
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_star_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a star needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    if (i != 0) {
      m(0, i) = link;
      m(i, 0) = link;
    }
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_line_platform(std::vector<double> cycle_times,
                                  double link) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a line needs at least two processors");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 0.0;
    if (i + 1 < n) {
      m(i, i + 1) = link;
      m(i + 1, i) = link;
    }
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_random_connected_platform(std::vector<double> cycle_times,
                                              double edge_probability,
                                              std::uint64_t seed,
                                              double link_lo, double link_hi) {
  const auto n = cycle_times.size();
  OP_REQUIRE(n >= 2, "a random network needs at least two processors");
  OP_REQUIRE(edge_probability >= 0.0 && edge_probability <= 1.0,
             "edge probability must be in [0, 1]");
  OP_REQUIRE(link_lo > 0.0 && link_hi >= link_lo && std::isfinite(link_hi),
             "link cost range must be positive and finite");
  SplitMix64 rng(seed * 0x2545F4914F6CDD1DULL + 0x9E3779B97F4A7C15ULL);
  const auto draw = [&] {
    return link_lo == link_hi ? link_lo : rng.uniform(link_lo, link_hi);
  };
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 0.0;
  // Random spanning tree first (connectivity), extra edges second.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = rng.below(i);
    const double cost = draw();
    m(i, parent) = cost;
    m(parent, i) = cost;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Always consume one draw per pair so the topology of edge (i, j)
      // does not shift every later cost when the spanning tree changes.
      const double toss = rng.uniform01();
      if (std::isfinite(m(i, j)) || toss >= edge_probability) continue;
      const double cost = draw();
      m(i, j) = cost;
      m(j, i) = cost;
    }
  }
  Platform platform(std::move(cycle_times), std::move(m));
  RoutingTable routing = RoutingTable::shortest_paths(platform);
  return {std::move(platform), std::move(routing)};
}

namespace {

/// Node-count ceiling for the parameterized structured topologies.  The
/// link/next/dist tables are all p x p, so the footprint grows with the
/// SQUARE of the node count: 2048 nodes ~ 80 MB of tables, which is the
/// most a sweep axis can reasonably want; "mesh9999x9999" must fail
/// fast with this error instead of dying in a ~2 TB allocation.
constexpr long long kMaxTopologyNodes = 2048;

/// Per-item distance for every pair obtained by *walking* the next-hop
/// table over the platform's direct links.  Computing dist from the hop
/// chain (rather than independently) keeps the table self-consistent by
/// construction for any routing policy, so the hop-by-hop invariant
/// checkers and the distance-based finish lower bound agree exactly.
Matrix<double> dist_from_next(const Platform& platform,
                              const Matrix<int>& next) {
  const int p = platform.num_processors();
  const auto n = static_cast<std::size_t>(p);
  Matrix<double> dist(n, n, 0.0);
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      double cost = 0.0;
      int cur = i;
      int hops = 0;
      while (cur != j) {
        OP_ASSERT(++hops < p, "routing loop while building distances");
        const int nxt =
            next(static_cast<std::size_t>(cur), static_cast<std::size_t>(j));
        OP_ASSERT(nxt >= 0 && nxt < p, "next-hop table has a hole");
        const double hop = platform.link(cur, nxt);
        OP_ASSERT(std::isfinite(hop), "routed hop crosses a missing link");
        cost += hop;
        cur = nxt;
      }
      dist(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = cost;
    }
  }
  return dist;
}

struct TopologyDims {
  int a = 0;
  int b = 0;
};

bool parse_positive_int(const std::string& text, int& out) {
  if (text.empty() || text.size() > 7) return false;
  int value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + (ch - '0');
  }
  if (value < 1) return false;
  out = value;
  return true;
}

/// Parses "<prefix><A>x<B>" (e.g. "mesh3x3").  Returns false when `name`
/// does not start with `prefix`; throws on a malformed suffix so a typo
/// like "mesh3" reports the expected pattern instead of "unknown".
bool parse_dims(const std::string& name, const std::string& prefix,
                TopologyDims& out) {
  if (!name.starts_with(prefix)) return false;
  const std::string rest = name.substr(prefix.size());
  const std::size_t x = rest.find('x');
  const bool ok = x != std::string::npos &&
                  parse_positive_int(rest.substr(0, x), out.a) &&
                  parse_positive_int(rest.substr(x + 1), out.b);
  OP_REQUIRE(ok, "malformed dimensions in topology '"
                     << name << "'; expected " << prefix
                     << "<A>x<B> with positive integers");
  return true;
}

/// (arity^(levels+1) - 1) / (arity - 1), guarded against runaway sizes.
long long fat_tree_node_count(int levels, int arity) {
  long long total = 0;
  long long width = 1;
  for (int k = 0; k <= levels; ++k) {
    total += width;
    OP_REQUIRE(total <= kMaxTopologyNodes,
               "fat tree exceeds " << kMaxTopologyNodes << " nodes");
    width *= arity;
  }
  return total;
}

/// The structured names fix the processor count; the caller's cycle
/// times are recycled cyclically to that length.
std::vector<double> recycle_cycles(const std::vector<double>& cycle,
                                   std::size_t n) {
  OP_REQUIRE(!cycle.empty(), "need at least one cycle time");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = cycle[i % cycle.size()];
  return out;
}

/// Parsed form of a topology name with its ':' suffixes; the single
/// source of truth shared by make_topology_platform and
/// validate_topology_name, so the cheap up-front gate and the builder
/// can never disagree on a verdict.
struct TopologySpec {
  enum class Kind { kRing, kStar, kLine, kRandom, kMesh, kTorus, kFatTree };
  Kind kind = Kind::kRing;
  TopologyDims dims;     ///< rows x cols / levels x arity (structured only)
  double jitter = 0.0;   ///< :het<A> amplitude (0 = uniform)
  double hot = 0.0;      ///< :hot<P> probability (0 = no hotspots)
  double aniso = 1.0;    ///< :aniso<F> column-link factor (1 = isotropic)
  /// ':aniso1' is legal and equals the sentinel, so presence needs its
  /// own flag for the duplicate-suffix check.
  bool has_aniso = false;
  bool has_policy = false;
  RoutingPolicy policy = RoutingPolicy::kDimensionOrdered;

  [[nodiscard]] bool structured() const {
    return kind == Kind::kMesh || kind == Kind::kTorus ||
           kind == Kind::kFatTree;
  }
  [[nodiscard]] bool mesh_like() const {
    return kind == Kind::kMesh || kind == Kind::kTorus;
  }
};

/// Strictly parses a positive finite double covering the whole string
/// ("0.5", "2", "1e-1"); rejects empty/trailing garbage/inf/nan.
bool parse_positive_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!(value > 0.0) || !std::isfinite(value)) return false;
  out = value;
  return true;
}

TopologySpec parse_topology_spec(const std::string& topology) {
  // Split "<base>[:<suffix>]..." -- the base names the shape, the
  // suffixes add link heterogeneity and a routing policy.
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = topology.find(':', start);
    tokens.push_back(topology.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  const std::string& base = tokens.front();

  TopologySpec spec;
  if (base == "ring") {
    spec.kind = TopologySpec::Kind::kRing;
  } else if (base == "star") {
    spec.kind = TopologySpec::Kind::kStar;
  } else if (base == "line") {
    spec.kind = TopologySpec::Kind::kLine;
  } else if (base == "random") {
    spec.kind = TopologySpec::Kind::kRandom;
  } else if (parse_dims(base, "mesh", spec.dims)) {
    spec.kind = TopologySpec::Kind::kMesh;
  } else if (parse_dims(base, "torus", spec.dims)) {
    spec.kind = TopologySpec::Kind::kTorus;
  } else if (parse_dims(base, "fattree", spec.dims)) {
    spec.kind = TopologySpec::Kind::kFatTree;
  } else {
    OP_REQUIRE(false, "unknown topology '" << topology
                                           << "'; known: "
                                           << known_topology_names());
  }

  // Shape sanity (the cap must run before any node-count-sized
  // allocation, so it lives here rather than in the builders alone).
  if (spec.mesh_like()) {
    const long long nodes = static_cast<long long>(spec.dims.a) * spec.dims.b;
    OP_REQUIRE(nodes >= 2, "'" << base << "' needs at least two processors");
    OP_REQUIRE(nodes <= kMaxTopologyNodes,
               "'" << base << "' exceeds " << kMaxTopologyNodes << " nodes");
  } else if (spec.kind == TopologySpec::Kind::kFatTree) {
    OP_REQUIRE(spec.dims.b >= 2,
               "'" << base << "' needs an arity of at least 2");
    fat_tree_node_count(spec.dims.a, spec.dims.b);  // throws over the cap
  }

  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    OP_REQUIRE(spec.structured(),
               "topology '" << base << "' does not take ':' suffixes; "
                            << "heterogeneity/policy axes need a "
                               "mesh/torus/fattree name");
    OP_REQUIRE(!tok.empty(), "empty suffix in topology '" << topology << "'");
    if (tok == "xy" || tok == "alt" || tok == "updown" || tok == "swp") {
      OP_REQUIRE(!spec.has_policy, "duplicate routing policy suffix ':"
                                       << tok << "' in '" << topology << "'");
      spec.has_policy = true;
      if (tok == "xy") {
        spec.policy = RoutingPolicy::kDimensionOrdered;
      } else if (tok == "alt") {
        spec.policy = RoutingPolicy::kAlternating;
      } else if (tok == "updown") {
        spec.policy = RoutingPolicy::kUpDown;
      } else {
        spec.policy = RoutingPolicy::kWeightedShortest;
      }
      const bool compatible =
          spec.policy == RoutingPolicy::kWeightedShortest ||
          (spec.policy == RoutingPolicy::kUpDown
               ? spec.kind == TopologySpec::Kind::kFatTree
               : spec.mesh_like());
      OP_REQUIRE(compatible, "policy ':" << tok << "' does not apply to '"
                                         << base
                                         << "' (xy/alt need a mesh/torus, "
                                            "updown a fattree)");
    } else if (tok.starts_with("het")) {
      OP_REQUIRE(spec.jitter == 0.0, "duplicate ':het' suffix in '"
                                         << topology << "'");
      double a = 0.0;
      OP_REQUIRE(parse_positive_double(tok.substr(3), a) && a < 1.0,
                 "malformed suffix ':" << tok << "' in '" << topology
                                       << "'; expected :het<A> with A in "
                                          "(0, 1)");
      spec.jitter = a;
    } else if (tok.starts_with("hot")) {
      OP_REQUIRE(spec.hot == 0.0, "duplicate ':hot' suffix in '" << topology
                                                                 << "'");
      double p = 0.0;
      OP_REQUIRE(parse_positive_double(tok.substr(3), p) && p <= 1.0,
                 "malformed suffix ':" << tok << "' in '" << topology
                                       << "'; expected :hot<P> with P in "
                                          "(0, 1]");
      spec.hot = p;
    } else if (tok.starts_with("aniso")) {
      OP_REQUIRE(spec.mesh_like(),
                 "':aniso' needs the two dimensions of a mesh/torus, not '"
                     << base << "'");
      OP_REQUIRE(!spec.has_aniso, "duplicate ':aniso' suffix in '"
                                      << topology << "'");
      spec.has_aniso = true;
      double f = 0.0;
      OP_REQUIRE(parse_positive_double(tok.substr(5), f),
                 "malformed suffix ':" << tok << "' in '" << topology
                                       << "'; expected :aniso<F> with "
                                          "F > 0");
      spec.aniso = f;
    } else {
      OP_REQUIRE(false, "unknown suffix ':"
                            << tok << "' in topology '" << topology
                            << "'; suffixes: het<A>, hot<P>, aniso<F>, and "
                               "a policy xy|alt|swp|updown");
    }
  }
  return spec;
}

/// Final per-item cost of the physical link (u, v): the generator (when
/// set) transforms the builder's base cost; the result must stay a valid
/// link cost whatever the generator did.
double link_cost(const LinkCostFn& cost, ProcId u, ProcId v, int dim,
                 double base) {
  if (!cost) return base;
  const double c = cost(u < v ? u : v, u < v ? v : u, dim, base);
  OP_REQUIRE(c > 0.0 && std::isfinite(c),
             "link cost generator returned " << c << " for link P" << u
                                             << " <-> P" << v
                                             << "; costs must be positive "
                                                "and finite");
  return c;
}

}  // namespace

RoutedPlatform make_mesh2d_platform(std::vector<double> cycle_times, int rows,
                                    int cols, bool wrap, double link,
                                    const LinkCostFn& cost,
                                    RoutingPolicy policy) {
  OP_REQUIRE(rows >= 1 && cols >= 1, "mesh dimensions must be positive");
  const long long nodes = static_cast<long long>(rows) * cols;
  OP_REQUIRE(nodes >= 2, "a mesh needs at least two processors");
  OP_REQUIRE(nodes <= kMaxTopologyNodes,
             "mesh exceeds " << kMaxTopologyNodes << " nodes");
  OP_REQUIRE(cycle_times.size() == static_cast<std::size_t>(nodes),
             "cycle_times size must equal rows * cols");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  OP_REQUIRE(policy != RoutingPolicy::kUpDown,
             "up-down routing needs a tree; meshes take xy, alt, or swp");
  const auto n = static_cast<std::size_t>(nodes);
  const auto id = [cols](int r, int c) { return r * cols + c; };
  const auto at = [](int v) { return static_cast<std::size_t>(v); };

  // Row (dimension-0) and column (dimension-1) links, each priced
  // through the generator so heterogeneous meshes stay a pure function
  // of the endpoints.
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 0.0;
  const auto connect = [&](int u, int v, int dim) {
    const double c = link_cost(cost, u, v, dim, link);
    m(at(u), at(v)) = c;
    m(at(v), at(u)) = c;
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) connect(id(r, c), id(r, c + 1), 0);
      if (r + 1 < rows) connect(id(r, c), id(r + 1, c), 1);
    }
    // Wrap-around links only make a dimension of size >= 3 rounder; for
    // size 2 the wrap edge is the direct edge that already exists.
    if (wrap && cols >= 3) connect(id(r, cols - 1), id(r, 0), 0);
  }
  if (wrap && rows >= 3) {
    for (int c = 0; c < cols; ++c) connect(id(rows - 1, c), id(0, c), 1);
  }

  Platform platform(std::move(cycle_times), std::move(m));
  if (policy == RoutingPolicy::kWeightedShortest) {
    // Cost-aware: Floyd-Warshall over the actual (possibly heterogeneous)
    // link costs, deterministic ties as documented on shortest_paths.
    RoutingTable routing = RoutingTable::shortest_paths(platform);
    return {std::move(platform), std::move(routing)};
  }

  // Structural policies.  kDimensionOrdered corrects the column first,
  // then the row; kAlternating spreads load by letting each forwarding
  // node pick its own dimension order by id parity (even = column
  // first, odd = row first) -- every hop still shortens the remaining
  // Manhattan/ring distance by one, so routes stay loop-free and
  // hop-minimal whatever mix of parities a path crosses.  On a torus
  // each dimension takes the shorter way around; exact antipodes tie
  // toward the increasing index, so routes are a pure function of the
  // coordinates.
  const auto step = [wrap](int from, int to, int size) {
    if (!wrap) return from + (to > from ? 1 : -1);
    const int fwd = ((to - from) % size + size) % size;
    const int back = size - fwd;
    return fwd <= back ? (from + 1) % size : (from + size - 1) % size;
  };
  Matrix<int> next(n, n, -1);
  for (int r1 = 0; r1 < rows; ++r1) {
    for (int c1 = 0; c1 < cols; ++c1) {
      for (int r2 = 0; r2 < rows; ++r2) {
        for (int c2 = 0; c2 < cols; ++c2) {
          const int u = id(r1, c1);
          const int v = id(r2, c2);
          const bool column_first =
              policy == RoutingPolicy::kDimensionOrdered || u % 2 == 0;
          int hop = u;
          if (c1 != c2 && (column_first || r1 == r2)) {
            hop = id(r1, step(c1, c2, cols));
          } else if (r1 != r2) {
            hop = id(step(r1, r2, rows), c1);
          }
          next(at(u), at(v)) = hop;
        }
      }
    }
  }

  Matrix<double> dist = dist_from_next(platform, next);
  RoutingTable routing = RoutingTable::from_tables(
      static_cast<int>(nodes), std::move(dist), std::move(next));
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_fat_tree_platform(std::vector<double> cycle_times,
                                      int levels, int arity, double taper,
                                      double link, const LinkCostFn& cost,
                                      RoutingPolicy policy) {
  OP_REQUIRE(levels >= 1, "a fat tree needs at least one level below root");
  OP_REQUIRE(arity >= 2, "fat-tree arity must be at least 2");
  OP_REQUIRE(taper > 0.0 && std::isfinite(taper),
             "taper must be positive and finite");
  OP_REQUIRE(link > 0.0 && std::isfinite(link), "link cost must be finite");
  OP_REQUIRE(policy == RoutingPolicy::kUpDown ||
                 policy == RoutingPolicy::kWeightedShortest,
             "fat trees route up-down or swp; xy/alt need a mesh");
  const int p = static_cast<int>(fat_tree_node_count(levels, arity));
  OP_REQUIRE(cycle_times.size() == static_cast<std::size_t>(p),
             "cycle_times size must equal the fat-tree node count "
             "(arity^(levels+1) - 1) / (arity - 1) = "
                 << p);
  const auto n = static_cast<std::size_t>(p);

  // Breadth-first ids: level k occupies [offset[k], offset[k+1]).
  std::vector<int> depth(n, 0);
  std::vector<int> parent(n, -1);
  {
    int offset = 0;
    int width = 1;
    for (int k = 0; k <= levels; ++k) {
      for (int i = 0; i < width; ++i) {
        const int node = offset + i;
        depth[static_cast<std::size_t>(node)] = k;
        if (k > 0) {
          parent[static_cast<std::size_t>(node)] =
              offset - (width / arity) + i / arity;
        }
      }
      offset += width;
      width *= arity;
    }
  }

  // Links taper toward the root: the edge above a depth-d node costs
  // link / taper^(levels - d), so leaf links cost `link` and every level
  // up is `taper` times fatter.  The generator (when set) transforms the
  // tapered base cost per edge; tree edges are all dimension 0.
  Matrix<double> m(n, n, kNoLink);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 0.0;
  for (int node = 1; node < p; ++node) {
    const double base =
        link / std::pow(taper, levels - depth[static_cast<std::size_t>(node)]);
    const auto u = static_cast<std::size_t>(node);
    const auto v = static_cast<std::size_t>(parent[u]);
    const double c = link_cost(cost, node, parent[u], /*dim=*/0, base);
    m(u, v) = c;
    m(v, u) = c;
  }

  if (policy == RoutingPolicy::kWeightedShortest) {
    // A tree has a unique simple path per pair, so swp picks the same
    // hop sequences as up-down -- but through the cost-aware
    // Floyd-Warshall, exercising the other table-construction path.
    Platform platform(std::move(cycle_times), std::move(m));
    RoutingTable routing = RoutingTable::shortest_paths(platform);
    return {std::move(platform), std::move(routing)};
  }

  // Up-down routing: climb to the lowest common ancestor, then descend
  // -- the unique tree path.
  const auto ancestor_at = [&](int v, int d) {
    while (depth[static_cast<std::size_t>(v)] > d) {
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  Matrix<int> next(n, n, -1);
  for (int u = 0; u < p; ++u) {
    for (int v = 0; v < p; ++v) {
      const int du = depth[static_cast<std::size_t>(u)];
      int hop;
      if (u == v) {
        hop = u;
      } else if (depth[static_cast<std::size_t>(v)] > du &&
                 ancestor_at(v, du) == u) {
        hop = ancestor_at(v, du + 1);  // v lives under u: step down
      } else {
        hop = parent[static_cast<std::size_t>(u)];  // step up toward the LCA
      }
      next(static_cast<std::size_t>(u), static_cast<std::size_t>(v)) = hop;
    }
  }

  Platform platform(std::move(cycle_times), std::move(m));
  Matrix<double> dist = dist_from_next(platform, next);
  RoutingTable routing =
      RoutingTable::from_tables(p, std::move(dist), std::move(next));
  return {std::move(platform), std::move(routing)};
}

RoutedPlatform make_topology_platform(const std::string& topology,
                                      std::vector<double> cycle_times,
                                      double link, std::uint64_t seed) {
  // parse_topology_spec validates everything -- base, dimensions, node
  // cap (which must run before any node-count-sized allocation), and the
  // suffix grammar -- so this function only dispatches.
  const TopologySpec spec = parse_topology_spec(topology);
  switch (spec.kind) {
    case TopologySpec::Kind::kRing:
      return make_ring_platform(std::move(cycle_times), link);
    case TopologySpec::Kind::kStar:
      return make_star_platform(std::move(cycle_times), link);
    case TopologySpec::Kind::kLine:
      return make_line_platform(std::move(cycle_times), link);
    case TopologySpec::Kind::kRandom:
      return make_random_connected_platform(std::move(cycle_times),
                                            /*edge_probability=*/0.35, seed,
                                            0.5 * link, 1.5 * link);
    default:
      break;
  }

  // The ':het'/':hot' draws hash the topology seed per edge, so the seed
  // axis distinguishes heterogeneous instances of the same shape (and
  // participates in the shared_topology_platform cache key).
  std::vector<LinkCostFn> fns;
  if (spec.jitter > 0.0) fns.push_back(linkcost::jitter(spec.jitter, seed));
  if (spec.hot > 0.0) {
    fns.push_back(linkcost::hotspot(spec.hot, /*factor=*/8.0, seed));
  }
  if (spec.aniso != 1.0) fns.push_back(linkcost::anisotropy(spec.aniso));
  const LinkCostFn cost = fns.empty()    ? LinkCostFn{}
                          : fns.size() == 1 ? fns.front()
                                            : linkcost::compose(std::move(fns));

  if (spec.mesh_like()) {
    const auto nodes =
        static_cast<std::size_t>(spec.dims.a) *
        static_cast<std::size_t>(spec.dims.b);
    const bool wrap = spec.kind == TopologySpec::Kind::kTorus;
    const RoutingPolicy policy =
        spec.has_policy ? spec.policy : RoutingPolicy::kDimensionOrdered;
    return make_mesh2d_platform(recycle_cycles(cycle_times, nodes),
                                spec.dims.a, spec.dims.b, wrap, link, cost,
                                policy);
  }
  const auto nodes =
      static_cast<std::size_t>(fat_tree_node_count(spec.dims.a, spec.dims.b));
  const RoutingPolicy policy =
      spec.has_policy ? spec.policy : RoutingPolicy::kUpDown;
  return make_fat_tree_platform(recycle_cycles(cycle_times, nodes),
                                spec.dims.a, spec.dims.b, /*taper=*/2.0, link,
                                cost, policy);
}

const std::string& known_topology_names() {
  static const std::string names =
      "ring, star, line, random, mesh<R>x<C>, torus<R>x<C>, "
      "fattree<L>x<A>; structured names take ':' suffixes -- "
      ":het<A> (link jitter, 0<A<1), :hot<P> (hotspot links, 0<P<=1), "
      ":aniso<F> (column-link factor, mesh/torus), and a routing policy "
      ":xy|:alt (mesh/torus), :updown (fattree), :swp (cost-aware, any) "
      "-- e.g. mesh4x4:het0.5:swp";
  return names;
}

void validate_topology_name(const std::string& topology) {
  // Same parser as make_topology_platform, so the cheap gate and the
  // builder agree verdict for verdict; nothing is allocated or built.
  (void)parse_topology_spec(topology);
}

}  // namespace oneport
