// Static routing over sparse interconnects -- the extension sketched in
// §4.3: "if there is no direct link from P2 to P1, we redo the previous
// step for all intermediate messages between adjacent processors".
//
// A sparse network is a Platform whose link matrix contains
// +infinity for absent links.  A RoutingTable is computed once
// (Floyd-Warshall over the per-item link costs, ties toward the
// lexicographically smallest next hop) and handed to the schedulers;
// messages between non-adjacent processors become store-and-forward
// chains of per-hop messages, each occupying the hop sender's send port
// and the hop receiver's receive port under the one-port rules.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace oneport {

/// Marker for "no direct link" in a Platform's link matrix.
inline constexpr double kNoLink = std::numeric_limits<double>::infinity();

// ------------------------------------------------ per-link cost generators

/// Deterministic per-link cost generator for the structured topology
/// builders.  Called exactly once per undirected physical link with the
/// canonical endpoint pair (u < v), the link's dimension tag (0 = row/X
/// links and fat-tree edges, 1 = column/Y links) and the base cost the
/// uniform builder would have used (which already encodes the fat-tree
/// taper); returns the final per-item cost, which must be positive and
/// finite.  Costs are a pure function of (u, v), never of construction
/// order, so heterogeneous networks reproduce bit-identically.
using LinkCostFn =
    std::function<double(ProcId u, ProcId v, int dim, double base)>;

/// Named seeded generators behind the ':het' / ':hot' / ':aniso' topology
/// name suffixes (see make_topology_platform).  All of them hash the
/// canonical (u, v) pair with the seed, so two links never share a draw
/// and the result is independent of link enumeration order.
namespace linkcost {

/// base * U[1 - amplitude, 1 + amplitude); requires amplitude in (0, 1)
/// so costs stay positive.  The ':het<A>' suffix.
[[nodiscard]] LinkCostFn jitter(double amplitude, std::uint64_t seed);

/// Each link independently becomes a hotspot with `probability`, costing
/// base * factor; requires probability in (0, 1] and factor > 0.  The
/// ':hot<P>' suffix (factor 8).
[[nodiscard]] LinkCostFn hotspot(double probability, double factor,
                                 std::uint64_t seed);

/// Dimension-1 (column/Y) links cost base * factor, dimension-0 links
/// are untouched; requires factor > 0 and finite.  The ':aniso<F>'
/// suffix (mesh/torus only -- fat-tree edges are all dimension 0).
[[nodiscard]] LinkCostFn anisotropy(double factor);

/// Applies `fns` left to right, each transforming the previous cost, so
/// e.g. jitter-then-hotspot composes multiplicatively.
[[nodiscard]] LinkCostFn compose(std::vector<LinkCostFn> fns);

}  // namespace linkcost

// ----------------------------------------------------- routing policies

/// How a structured topology turns its link matrix into a next-hop
/// table.  The structural defaults (XY, up-down) ignore link costs; the
/// cost-aware and load-spreading alternatives exercise
/// RoutingTable::from_tables with genuinely different tables on the same
/// physical network.  Selected through the ':xy'/':alt'/':updown'/':swp'
/// topology name suffixes.
enum class RoutingPolicy {
  /// Dimension-ordered XY (mesh/torus default): correct the column
  /// first, then the row; each torus dimension takes the shorter way
  /// around, antipode ties toward the increasing index.
  kDimensionOrdered,
  /// Deterministic load-spreading variant of XY (O1-turn style): each
  /// node forwards column-first when its id is even and row-first when
  /// odd, so traffic spreads over both dimension orders while every hop
  /// still shortens the Manhattan/ring distance (loop-free, minimal).
  kAlternating,
  /// Up-down through the lowest common ancestor (fat-tree default) --
  /// the unique tree path.
  kUpDown,
  /// Cost-aware shortest weighted path: Floyd-Warshall over the actual
  /// (possibly heterogeneous) link costs via RoutingTable::shortest_paths,
  /// with its exact-compare fewer-hops/smallest-next-hop tie-break.  On a
  /// heterogeneous mesh this deviates from XY whenever a detour is
  /// cheaper than the dimension-ordered walk.
  kWeightedShortest,
};

/// Stable lower-case name ("xy", "alt", "updown", "swp") for diagnostics
/// and the topology-name grammar.
[[nodiscard]] const char* routing_policy_name(RoutingPolicy policy);

class RoutingTable {
 public:
  /// All-pairs shortest paths over the finite entries of
  /// `platform.link()`.  Throws std::invalid_argument if some processor
  /// pair is unreachable.
  ///
  /// Comparisons are exact; equal-cost routes are broken deterministically
  /// by (fewer hops, then smallest next hop), so the chosen paths do not
  /// depend on floating-point accumulation order.
  static RoutingTable shortest_paths(const Platform& platform);

  /// Unchecked construction from precomputed tables -- for externally
  /// supplied routing policies and for tests that need to exercise the
  /// defensive checks.  `dist(i,j)` is the per-item cost and `next(i,j)`
  /// the first hop from i toward j (with next(i,i) == i).  Nothing is
  /// validated here; path_into() throws on holes and routing loops.
  static RoutingTable from_tables(int p, Matrix<double> dist,
                                  Matrix<int> next);

  /// Full processor path from `from` to `to`, both endpoints included
  /// (so path(q, q) == {q} and adjacent pairs give {q, r}).
  [[nodiscard]] std::vector<ProcId> path(ProcId from, ProcId to) const;

  /// Allocation-free variant for hot loops: clears `out` and appends the
  /// path, recycling the vector's capacity across calls.
  void path_into(ProcId from, ProcId to, std::vector<ProcId>& out) const;

  /// True when the direct link is the routed path (single hop).
  [[nodiscard]] bool direct(ProcId from, ProcId to) const;

  /// End-to-end per-data-item cost along the routed path (the sum of hop
  /// link costs; a lower bound on the actual transfer latency since hops
  /// are store-and-forward).
  [[nodiscard]] double distance(ProcId from, ProcId to) const;

  [[nodiscard]] int num_processors() const noexcept { return p_; }

  /// The full p x p per-item distance table, for hot loops that validate
  /// processor ids once and then read rows unchecked via Matrix::data().
  [[nodiscard]] const Matrix<double>& distances() const noexcept {
    return dist_;
  }

 private:
  RoutingTable(int p, Matrix<double> dist, Matrix<int> next)
      : p_(p), dist_(std::move(dist)), next_(std::move(next)) {}

  int p_ = 0;
  Matrix<double> dist_;  // shortest per-item cost
  Matrix<int> next_;     // next hop on the shortest path
};

/// A sparse platform plus its routing table, built together.
struct RoutedPlatform {
  Platform platform;
  RoutingTable routing;
};

/// Ring of `p` processors: processor i links to (i±1) mod p at cost
/// `link`; everything else is routed.
[[nodiscard]] RoutedPlatform make_ring_platform(std::vector<double> cycle_times,
                                                double link = 1.0);

/// Star: processor 0 is the hub; spokes only connect through it.
[[nodiscard]] RoutedPlatform make_star_platform(std::vector<double> cycle_times,
                                                double link = 1.0);

/// Line (path graph): processor i links only to i-1 and i+1 -- the
/// sparsest connected topology; the 2-processor case is the degenerate
/// "one cable" network.
[[nodiscard]] RoutedPlatform make_line_platform(std::vector<double> cycle_times,
                                                double link = 1.0);

/// Random connected network: a random spanning tree (so every pair is
/// reachable) plus each remaining undirected edge independently with
/// probability `edge_probability`; symmetric link costs are drawn
/// uniformly from [link_lo, link_hi).  Deterministic in `seed`.
[[nodiscard]] RoutedPlatform make_random_connected_platform(
    std::vector<double> cycle_times, double edge_probability,
    std::uint64_t seed, double link_lo = 1.0, double link_hi = 1.0);

/// 2D mesh of rows x cols processors (row-major ids: (r, c) is
/// r*cols + c), every grid neighbour linked at cost `link`; `wrap` adds
/// the wrap-around links in each dimension of size >= 3, turning the
/// mesh into a torus.  `cost` (empty = uniform) rewrites every physical
/// link's per-item cost -- row links are dimension 0, column links
/// dimension 1 -- and `policy` picks the next-hop construction
/// (kDimensionOrdered, kAlternating, or kWeightedShortest; kUpDown is
/// rejected).  The structural policies express the table through
/// RoutingTable::from_tables with distances derived by walking the hop
/// chain over the actual link costs, so the hop-by-hop invariant
/// checkers apply to every policy unchanged.  Requires
/// cycle_times.size() == rows * cols.
[[nodiscard]] RoutedPlatform make_mesh2d_platform(
    std::vector<double> cycle_times, int rows, int cols, bool wrap,
    double link = 1.0, const LinkCostFn& cost = {},
    RoutingPolicy policy = RoutingPolicy::kDimensionOrdered);

/// Complete fat tree of `levels` levels below the root with fan-out
/// `arity`: node 0 is the root, level k holds arity^k nodes in
/// breadth-first id order, and every node links only to its parent.
/// Links taper toward the root: an edge at depth d (child side) costs
/// link / taper^(levels - d), so leaf links cost `link` and each level
/// up is `taper` times fatter (taper = 1 gives a plain tree).  `cost`
/// (empty = uniform) rewrites each tree edge's tapered cost (all edges
/// are dimension 0); `policy` is kUpDown -- up to the lowest common
/// ancestor, then down, the unique tree path -- or kWeightedShortest
/// (identical hop sequences on a tree, but the table comes from the
/// cost-aware Floyd-Warshall instead of the structural construction).
/// Requires cycle_times.size() == (arity^(levels+1) - 1) / (arity - 1).
[[nodiscard]] RoutedPlatform make_fat_tree_platform(
    std::vector<double> cycle_times, int levels, int arity,
    double taper = 2.0, double link = 1.0, const LinkCostFn& cost = {},
    RoutingPolicy policy = RoutingPolicy::kUpDown);

/// Name-based factory for sweep axes: "ring", "star", "line", "random"
/// (spanning tree + 35% extra edges, costs in [0.5, 1.5)*link, seeded
/// by `seed`), plus the parameterized structured networks
/// "mesh<R>x<C>", "torus<R>x<C>" (e.g. "mesh3x3", "torus2x5") and
/// "fattree<L>x<A>" (<L> levels, fan-out <A>, taper 2).  Structured
/// names fix the processor count (R*C or the full tree); `cycle_times`
/// is recycled cyclically to that length, so any base platform's speeds
/// map onto any network shape.  Fully-connected sweeps should bypass
/// routing instead of asking for a "full" topology here.
///
/// Structured names additionally take ':'-separated suffixes making link
/// heterogeneity and routing policy sweep axes (e.g. "mesh4x4:het0.5:swp"):
///   :het<A>    seeded multiplicative jitter, cost *= U[1-A, 1+A), 0<A<1
///   :hot<P>    seeded hotspot links: probability P in (0, 1], cost *= 8
///   :aniso<F>  column links cost F x row links (mesh/torus only), F > 0
///   :xy | :alt | :swp | :updown   routing policy (RoutingPolicy above);
///              :xy/:alt are mesh/torus-only, :updown fat-tree-only,
///              :swp anywhere structured
/// At most one policy and one suffix of each cost kind; the seeded
/// suffixes draw from `seed`, which therefore distinguishes two
/// heterogeneous instances of the same shape.  Unstructured names
/// (ring/star/line/random) reject suffixes.
[[nodiscard]] RoutedPlatform make_topology_platform(
    const std::string& topology, std::vector<double> cycle_times,
    double link = 1.0, std::uint64_t seed = 1);

/// Comma-separated human-readable registry of the topology names
/// make_topology_platform accepts (patterns shown as "mesh<R>x<C>"),
/// including the ':het'/':hot'/':aniso'/policy suffix grammar.
[[nodiscard]] const std::string& known_topology_names();

/// Validates `topology` against the registry without building anything:
/// throws std::invalid_argument listing known_topology_names() for
/// unknown names, and a specific message for malformed dimensions
/// (e.g. "mesh3" or "fattree0x2") or suffixes (unknown tokens, values
/// out of range, a policy the shape does not support, duplicates).
/// Lets CLI drivers reject a typo up front instead of deep inside a
/// sweep; verdicts match make_topology_platform exactly because both
/// run the same parser.
void validate_topology_name(const std::string& topology);

}  // namespace oneport
