// Target computing resources: heterogeneous processors + link matrix (§2.1).
//
// Each processor P_i has a cycle-time t_i (inverse relative speed): running
// task v on P_i takes w(v) * t_i time units.  The link matrix gives the
// per-data-item transfer time between processor pairs; its diagonal is zero
// (co-located tasks communicate through memory at no cost).
//
// The Platform itself is model-agnostic: the *macro-dataflow* and
// *one-port* rules differ only in how schedulers and validators account for
// port contention, not in the static resource description.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace oneport {

using ProcId = int;

class Platform {
 public:
  /// Fully-connected platform: `cycle_times[i]` is t_i, `link(q,r)` the
  /// per-item transfer time.  Requires a square link matrix with zero
  /// diagonal and non-negative entries, and positive cycle times.
  Platform(std::vector<double> cycle_times, Matrix<double> link);

  /// Convenience: homogeneous link value for all distinct pairs.
  Platform(std::vector<double> cycle_times, double uniform_link);

  [[nodiscard]] int num_processors() const noexcept {
    return static_cast<int>(cycle_times_.size());
  }
  // cycle_time/link are defined inline: the EFT engine queries them per
  // (task, processor, edge) evaluation, millions of times per schedule.
  [[nodiscard]] double cycle_time(ProcId p) const {
    OP_REQUIRE(p >= 0 && p < num_processors(), "processor id out of range");
    return cycle_times_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const std::vector<double>& cycle_times() const noexcept {
    return cycle_times_;
  }
  [[nodiscard]] double link(ProcId from, ProcId to) const {
    OP_REQUIRE(from >= 0 && from < num_processors(), "`from` out of range");
    OP_REQUIRE(to >= 0 && to < num_processors(), "`to` out of range");
    return link_(static_cast<std::size_t>(from),
                 static_cast<std::size_t>(to));
  }
  /// The full p x p link matrix, for hot loops that validate processor
  /// ids once and then read rows unchecked via Matrix::data().
  [[nodiscard]] const Matrix<double>& link_matrix() const noexcept {
    return link_;
  }

  /// Execution time of a task of weight w on processor p.
  [[nodiscard]] double exec_time(double weight, ProcId p) const {
    return weight * cycle_time(p);
  }
  /// Transfer time of `data` items from `from` to `to` (0 if same proc).
  [[nodiscard]] double comm_time(double data, ProcId from, ProcId to) const {
    return data * link(from, to);
  }

  /// Index of (one of) the fastest processors (smallest cycle time,
  /// smallest index on ties).
  [[nodiscard]] ProcId fastest_processor() const;

  /// Harmonic mean of cycle times, H(t) = p / sum(1/t_i) -- the averaged
  /// per-unit-weight execution time used for bottom levels (§4.1).
  [[nodiscard]] double harmonic_mean_cycle_time() const;

  /// Harmonic mean of the off-diagonal link entries -- the averaged
  /// per-data-item communication time used for bottom levels (§4.1).
  /// Returns 0 for single-processor platforms.
  [[nodiscard]] double harmonic_mean_link() const;

  /// sum(1/t_i): the aggregate speed of the platform; a total weight W of
  /// perfectly divisible work completes in W / aggregate_speed().
  [[nodiscard]] double aggregate_speed() const;

 private:
  std::vector<double> cycle_times_;
  Matrix<double> link_;
};

/// `p` identical processors with unit cycle time and uniform link cost.
[[nodiscard]] Platform make_homogeneous_platform(int p, double link = 1.0,
                                                 double cycle_time = 1.0);

/// The experimental platform of §5.2: five processors with cycle-time 6,
/// three with 10, two with 15; homogeneous links of cost 1.
[[nodiscard]] Platform make_paper_platform();

}  // namespace oneport
