#include "testbeds/testbeds.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace oneport::testbeds {

namespace {

/// "svc3"/"svc3_be1"-style names; += avoids a GCC 12 -Wrestrict false
/// positive on `const char* + std::string&&`.
std::string svc_name(int s) {
  std::string out("svc");
  out += std::to_string(s);
  return out;
}

/// Bounded Pareto draw: heavy-tailed service time with alpha = 1.3,
/// minimum 0.5, capped at 50x the minimum so one straggler skews but
/// never degenerates the instance.
double service_time(SplitMix64& rng) {
  constexpr double kAlpha = 1.3;
  constexpr double kMin = 0.5;
  constexpr double kCap = 50.0 * kMin;
  const double u = rng.uniform(1e-6, 1.0);
  const double w = kMin / std::pow(u, 1.0 / kAlpha);
  return w < kCap ? w : kCap;
}

}  // namespace

TaskGraph make_microsvc(int n, double comm_ratio) {
  OP_REQUIRE(n >= 1, "MICROSVC needs at least one first-tier service");
  OP_REQUIRE(comm_ratio >= 0.0, "comm ratio must be non-negative");
  TaskGraph g;
  SplitMix64 rng{0x6d737663u ^ (static_cast<std::uint64_t>(n) << 16)};

  // The root request: light parse/route work, then wide fanout.
  const TaskId root = g.add_task(0.5, "request");
  const TaskId aggregate = g.add_task(1.0, "aggregate");
  for (int s = 0; s < n; ++s) {
    const TaskId svc = g.add_task(service_time(rng), svc_name(s));
    g.add_edge(root, svc, comm_ratio * g.weight(root));
    // 0..3 second-tier backends (DB/cache/downstream calls); a service
    // with none replies directly.
    const std::uint64_t backends = rng.below(4);
    if (backends == 0) {
      g.add_edge(svc, aggregate, comm_ratio * g.weight(svc));
      continue;
    }
    for (std::uint64_t d = 0; d < backends; ++d) {
      std::string backend_name = svc_name(s);
      backend_name += "_be";
      backend_name += std::to_string(d);
      const TaskId backend =
          g.add_task(service_time(rng), std::move(backend_name));
      g.add_edge(svc, backend, comm_ratio * g.weight(svc));
      g.add_edge(backend, aggregate, comm_ratio * g.weight(backend));
    }
  }

  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
