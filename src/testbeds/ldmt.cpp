// LDMt decomposition task graph: two coupled triangular wavefront meshes,
// one for the L sweep and one for the M^t sweep.  Each mesh follows the
// LU skeleton (column chain + diagonal propagation); the sweeps exchange
// the freshly computed diagonal entries, coupling the two meshes along
// the diagonal.  Work grows with the step: level-k tasks weigh k.
//
// Same reconstruction rationale as LU (see lu.cpp): the paper's miniature
// is not legible, and only bounded out-degrees are consistent with the
// reported one-port speedups (Figure 10 reaches 4.9).
#include "testbeds/testbeds.hpp"

#include "util/error.hpp"

namespace oneport::testbeds {

TaskGraph make_ldmt(int n, double comm_ratio) {
  OP_REQUIRE(n >= 2, "LDMt needs n >= 2");
  OP_REQUIRE(comm_ratio >= 0.0, "comm ratio must be non-negative");
  TaskGraph g;
  // Two meshes: L(k,j) and M(k,j) for 1 <= k < j <= n, level by level.
  std::vector<TaskId> first_l(static_cast<std::size_t>(n), 0);
  std::vector<TaskId> first_m(static_cast<std::size_t>(n), 0);
  for (int k = 1; k < n; ++k) {
    const double w = static_cast<double>(k);
    first_l[static_cast<std::size_t>(k)] = static_cast<TaskId>(g.num_tasks());
    for (int j = k + 1; j <= n; ++j) g.add_task(w);
    first_m[static_cast<std::size_t>(k)] = static_cast<TaskId>(g.num_tasks());
    for (int j = k + 1; j <= n; ++j) g.add_task(w);
  }
  auto l_id = [&first_l](int k, int j) {
    return first_l[static_cast<std::size_t>(k)] +
           static_cast<TaskId>(j - k - 1);
  };
  auto m_id = [&first_m](int k, int j) {
    return first_m[static_cast<std::size_t>(k)] +
           static_cast<TaskId>(j - k - 1);
  };
  for (int k = 1; k + 1 < n; ++k) {
    const double data = comm_ratio * static_cast<double>(k);
    for (int j = k + 1; j <= n; ++j) {
      if (j >= k + 2) {
        g.add_edge(l_id(k, j), l_id(k + 1, j), data);
        g.add_edge(m_id(k, j), m_id(k + 1, j), data);
      }
      if (j + 1 <= n) {
        g.add_edge(l_id(k, j), l_id(k + 1, j + 1), data);
        g.add_edge(m_id(k, j), m_id(k + 1, j + 1), data);
      }
    }
    // Diagonal coupling: each sweep's freshly finished diagonal task
    // releases the other sweep's next diagonal task.
    g.add_edge(l_id(k, k + 1), m_id(k + 1, k + 2), data);
    g.add_edge(m_id(k, k + 1), l_id(k + 1, k + 2), data);
  }
  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
