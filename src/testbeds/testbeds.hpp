// The six classical task-graph kernels of the paper's evaluation (§5.1),
// plus a plain fork graph (§3) and a random layered DAG for property
// testing.
//
// Common conventions (§5.2):
//   * LAPLACE, STENCIL and FORK-JOIN use unit task weights; the linear-
//     algebra kernels (LU, DOOLITTLE, LDMt) have level-dependent weights
//     (LU: level k weighs n-k; DOOLITTLE/LDMt: level k weighs k).
//   * every edge u->v carries data(u,v) = comm_ratio * w(u) ("we always
//     communicate the data that has just been updated"); the paper's
//     experiments use comm_ratio = 10.
//
// The paper's miniature drawings (Figures 5-6) are not legible from the
// text dump; the dependence shapes below follow the classical literature
// the paper cites (Cosnard-Marrakchi-Robert-Trystram for the linear-
// algebra graphs) and are documented per generator.  See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"

namespace oneport::testbeds {

/// Communication-to-computation ratio used throughout the paper's
/// experiments ("c" in §5.2).
inline constexpr double kPaperCommRatio = 10.0;

/// FORK-JOIN(n): fork -> n children -> join, n+2 unit-weight tasks.
/// Sequential time (n+2)*w*t; the paper derives the speedup cap
/// w*t/c + 1 for this kernel.
[[nodiscard]] TaskGraph make_fork_join(int n,
                                       double comm_ratio = kPaperCommRatio);

/// Plain fork graph (§3): parent weight `parent_weight`, one child per
/// entry of `child_weights`; data(parent, child_i) = child_data[i].
/// Used by the NP-completeness machinery, where data volumes are *not*
/// tied to task weights.
[[nodiscard]] TaskGraph make_fork(double parent_weight,
                                  const std::vector<double>& child_weights,
                                  const std::vector<double>& child_data);

/// LU(n): tasks T(k,j), 1 <= k < j <= n; T(k,j) -> T(k+1,j) (column update
/// chain) and T(k,k+1) -> T(k+1,j) (pivot column broadcast); weight of
/// level k is n-k.  n(n-1)/2 tasks.
[[nodiscard]] TaskGraph make_lu(int n, double comm_ratio = kPaperCommRatio);

/// DOOLITTLE(n): same dependence skeleton as LU but the weight of level k
/// is k -- Doolittle's row-oriented reduction computes growing dot
/// products as the factorization proceeds.
[[nodiscard]] TaskGraph make_doolittle(int n,
                                       double comm_ratio = kPaperCommRatio);

/// LDMt(n): per level k a diagonal task G(k) plus L(k,j) and M(k,j) tasks
/// per column j > k (the L and M^t sweeps); all level-k tasks weigh k.
/// G(k) -> {L,M}(k,j); {L,M}(k,k+1) -> G(k+1); {L,M}(k,j) -> {L,M}(k+1,j).
[[nodiscard]] TaskGraph make_ldmt(int n, double comm_ratio = kPaperCommRatio);

/// LAPLACE(n): n x n diamond (wavefront) DAG, (i,j) -> (i+1,j) and
/// (i,j) -> (i,j+1); unit weights.  Every node lies on a critical path.
[[nodiscard]] TaskGraph make_laplace(int n,
                                     double comm_ratio = kPaperCommRatio);

/// STENCIL(n): n rows x n columns; task (i,j) depends on (i-1, j-1),
/// (i-1, j) and (i-1, j+1) (clamped at the borders); unit weights.
[[nodiscard]] TaskGraph make_stencil(int n,
                                     double comm_ratio = kPaperCommRatio);

/// MLTRAIN(n): data-parallel training step, n layers x kMltrainReplicas
/// model replicas.  Per replica r: a forward chain f(r,1) -> ... ->
/// f(r,n), a backward chain b(r,n) -> ... -> b(r,1) fed by f(r,n), plus
/// activation edges f(r,l) -> b(r,l).  Per layer l an allreduce-style
/// gradient exchange: every b(r,l) fans into g(l), which fans back out
/// to the per-replica weight updates u(r,l).  Backward layers weigh
/// twice their forward counterpart and middle layers are heaviest
/// (attention-block shape); allreduce/update tasks are light but move
/// the full gradient, so their edges dominate communication.
/// 13n tasks for the default 4 replicas; deterministic in n.
inline constexpr int kMltrainReplicas = 4;
[[nodiscard]] TaskGraph make_mltrain(int n,
                                     double comm_ratio = kPaperCommRatio);

/// MICROSVC(n): microservice request fanout -- a root request task, n
/// first-tier services, each fanning out to 0..3 second-tier backends
/// (depth <= 3 counting the root), every leaf joining into one
/// aggregator.  Service times are heavy-tailed (bounded Pareto,
/// alpha = 1.3, capped at 50x the minimum) so a few stragglers dominate
/// the critical path, unlike the unit-weight paper kernels.
/// Deterministic in n.
[[nodiscard]] TaskGraph make_microsvc(int n,
                                      double comm_ratio = kPaperCommRatio);

/// Random layered DAG for property tests: `layers` layers of up to
/// `max_width` tasks; each non-entry task draws 1..max_in_degree parents
/// from the previous `back_reach` layers; weights in [w_lo, w_hi), edge
/// data = comm_ratio * w(source).  Deterministic in `seed`.
struct RandomDagOptions {
  int layers = 8;
  int max_width = 6;
  int max_in_degree = 3;
  int back_reach = 2;
  double w_lo = 0.5;
  double w_hi = 4.0;
  double comm_ratio = 2.0;
  std::uint64_t seed = 42;
};
[[nodiscard]] TaskGraph make_random_layered(const RandomDagOptions& options);

}  // namespace oneport::testbeds
