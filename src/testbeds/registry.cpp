#include "testbeds/registry.hpp"

#include <stdexcept>
#include <utility>

#include "graph/dot_import.hpp"
#include "testbeds/testbeds.hpp"

namespace oneport::testbeds {

std::vector<TestbedEntry> paper_testbeds() {
  return {
      {"LU", [](int n, double c) { return make_lu(n, c); }, 4},
      {"LAPLACE", [](int n, double c) { return make_laplace(n, c); }, 38},
      {"STENCIL", [](int n, double c) { return make_stencil(n, c); }, 38},
      {"FORK-JOIN", [](int n, double c) { return make_fork_join(n, c); }, 38},
      {"DOOLITTLE", [](int n, double c) { return make_doolittle(n, c); }, 20},
      {"LDMt", [](int n, double c) { return make_ldmt(n, c); }, 20},
  };
}

std::vector<TestbedEntry> generated_testbeds() {
  return {
      {"MLTRAIN", [](int n, double c) { return make_mltrain(n, c); }, 38},
      {"MICROSVC", [](int n, double c) { return make_microsvc(n, c); }, 38},
  };
}

std::vector<TestbedEntry> all_testbeds() {
  auto entries = paper_testbeds();
  for (auto& entry : generated_testbeds()) entries.push_back(std::move(entry));
  return entries;
}

TestbedEntry find_testbed(const std::string& name) {
  if (name.rfind("trace:", 0) == 0) {
    const std::string path = name.substr(6);
    if (path.empty()) {
      throw std::invalid_argument(
          "trace testbed needs a path: trace:<file.dot|file.json>");
    }
    // (n, c) are meaningless for a fixed trace; the graph is whatever
    // the file says.  Import errors propagate when the sweep builds the
    // graph, carrying the path and the typed reason.
    return {name,
            [path](int /*n*/, double /*c*/) {
              return load_task_graph(path).graph;
            },
            38};
  }
  std::string known;
  for (auto& entry : all_testbeds()) {
    if (entry.name == name) return std::move(entry);
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown testbed '" + name + "'; known: " +
                              known + ", trace:<path>");
}

}  // namespace oneport::testbeds
