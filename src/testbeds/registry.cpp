#include "testbeds/registry.hpp"

#include <stdexcept>

#include "testbeds/testbeds.hpp"

namespace oneport::testbeds {

std::vector<TestbedEntry> paper_testbeds() {
  return {
      {"LU", [](int n, double c) { return make_lu(n, c); }, 4},
      {"LAPLACE", [](int n, double c) { return make_laplace(n, c); }, 38},
      {"STENCIL", [](int n, double c) { return make_stencil(n, c); }, 38},
      {"FORK-JOIN", [](int n, double c) { return make_fork_join(n, c); }, 38},
      {"DOOLITTLE", [](int n, double c) { return make_doolittle(n, c); }, 20},
      {"LDMt", [](int n, double c) { return make_ldmt(n, c); }, 20},
  };
}

TestbedEntry find_testbed(const std::string& name) {
  std::string known;
  for (auto& entry : paper_testbeds()) {
    if (entry.name == name) return std::move(entry);
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown testbed '" + name +
                              "'; known: " + known);
}

}  // namespace oneport::testbeds
