#include "testbeds/testbeds.hpp"

#include "util/error.hpp"

namespace oneport::testbeds {

TaskGraph make_fork_join(int n, double comm_ratio) {
  OP_REQUIRE(n >= 1, "FORK-JOIN needs at least one middle task");
  OP_REQUIRE(comm_ratio >= 0.0, "comm ratio must be non-negative");
  TaskGraph g;
  const TaskId fork = g.add_task(1.0, "fork");
  std::vector<TaskId> middle;
  middle.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) middle.push_back(g.add_task(1.0));
  const TaskId join = g.add_task(1.0, "join");
  for (const TaskId v : middle) {
    g.add_edge(fork, v, comm_ratio * g.weight(fork));
    g.add_edge(v, join, comm_ratio * g.weight(v));
  }
  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
