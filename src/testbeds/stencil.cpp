// STENCIL: n rows of n columns; task (i,j) reads its three lower
// neighbors (i-1, j-1), (i-1, j), (i-1, j+1), clamped at the borders.
// Unit weights.  Row i can only start when row i-1 is complete in its
// neighborhood, so large instances force all processors onto every row
// and the serialized one-port communications become the bottleneck -- the
// paper's explanation for the decreasing speedup of this kernel.
#include "testbeds/testbeds.hpp"

#include "util/error.hpp"

namespace oneport::testbeds {

TaskGraph make_stencil(int n, double comm_ratio) {
  OP_REQUIRE(n >= 1, "STENCIL needs n >= 1");
  OP_REQUIRE(comm_ratio >= 0.0, "comm ratio must be non-negative");
  TaskGraph g;
  auto id = [n](int i, int j) {
    return static_cast<TaskId>(i * n + j);
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) g.add_task(1.0);
  }
  for (int i = 1; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int dj = -1; dj <= 1; ++dj) {
        const int pj = j + dj;
        if (pj < 0 || pj >= n) continue;
        g.add_edge(id(i - 1, pj), id(i, j), comm_ratio);
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
