#include "testbeds/testbeds.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace oneport::testbeds {

TaskGraph make_fork(double parent_weight,
                    const std::vector<double>& child_weights,
                    const std::vector<double>& child_data) {
  OP_REQUIRE(child_weights.size() == child_data.size(),
             "child weight/data arity mismatch");
  OP_REQUIRE(!child_weights.empty(), "fork needs at least one child");
  TaskGraph g;
  const TaskId parent = g.add_task(parent_weight, "v0");
  for (std::size_t i = 0; i < child_weights.size(); ++i) {
    const TaskId child = g.add_task(child_weights[i], indexed_name("v", i + 1));
    g.add_edge(parent, child, child_data[i]);
  }
  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
