#include "testbeds/testbeds.hpp"

#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace oneport::testbeds {

namespace {

/// "f0_3"-style task names; built with += to sidestep a GCC 12
/// -Wrestrict false positive on `const char* + std::string&&`.
std::string rl_name(const char* prefix, int r, int l) {
  std::string out(prefix);
  out += std::to_string(r);
  out += '_';
  out += std::to_string(l);
  return out;
}

/// Forward-pass weight profile: layers near the middle of the stack are
/// the heaviest (the attention/MLP blocks), the embedding and head
/// layers the lightest.  Peaks at 3.0, floors at 1.0.
double forward_weight(int layer, int layers) {
  const double x = (layers <= 1)
                       ? 0.5
                       : static_cast<double>(layer) /
                             static_cast<double>(layers - 1);
  return 1.0 + 8.0 * x * (1.0 - x);  // parabola: 1.0 at ends, 3.0 mid
}

}  // namespace

TaskGraph make_mltrain(int n, double comm_ratio) {
  OP_REQUIRE(n >= 1, "MLTRAIN needs at least one layer");
  OP_REQUIRE(comm_ratio >= 0.0, "comm ratio must be non-negative");
  const int replicas = kMltrainReplicas;
  TaskGraph g;
  // Small deterministic jitter so replicas are not perfectly symmetric
  // (stragglers exist in real data-parallel steps); seeded by n only so
  // MLTRAIN(n) is one fixed graph, not a family.
  SplitMix64 rng{0x6d6c7472u ^ (static_cast<std::uint64_t>(n) << 16)};

  std::vector<std::vector<TaskId>> fwd(
      static_cast<std::size_t>(replicas));
  std::vector<std::vector<TaskId>> bwd(
      static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    auto& f = fwd[static_cast<std::size_t>(r)];
    auto& b = bwd[static_cast<std::size_t>(r)];
    f.reserve(static_cast<std::size_t>(n));
    b.reserve(static_cast<std::size_t>(n));
    for (int l = 0; l < n; ++l) {
      const double jitter = rng.uniform(0.9, 1.1);
      const double w = forward_weight(l, n) * jitter;
      f.push_back(g.add_task(w, rl_name("f", r, l)));
      // Backward costs about twice forward (grad wrt inputs + weights).
      b.push_back(g.add_task(2.0 * w, rl_name("b", r, l)));
    }
  }

  for (int r = 0; r < replicas; ++r) {
    const auto& f = fwd[static_cast<std::size_t>(r)];
    const auto& b = bwd[static_cast<std::size_t>(r)];
    for (int l = 0; l + 1 < n; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      // Forward chain passes activations up; backward chain passes
      // gradients down.
      g.add_edge(f[lu], f[lu + 1], comm_ratio * g.weight(f[lu]));
      g.add_edge(b[lu + 1], b[lu], comm_ratio * g.weight(b[lu + 1]));
    }
    const auto top = static_cast<std::size_t>(n - 1);
    // Loss gradient kicks off the backward pass...
    g.add_edge(f[top], b[top], comm_ratio * g.weight(f[top]));
    // ...and every layer's saved activations feed its backward step.
    for (int l = 0; l + 1 < n; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      g.add_edge(f[lu], b[lu], comm_ratio * g.weight(f[lu]));
    }
  }

  // Per-layer gradient allreduce: cheap compute, full-gradient traffic
  // in and out (the edges, not the task, are the cost).
  for (int l = 0; l < n; ++l) {
    const auto lu = static_cast<std::size_t>(l);
    const double grad_volume = comm_ratio * forward_weight(l, n);
    std::string reduce_name("g");
    reduce_name += std::to_string(l);
    const TaskId reduce = g.add_task(0.5, std::move(reduce_name));
    for (int r = 0; r < replicas; ++r) {
      g.add_edge(bwd[static_cast<std::size_t>(r)][lu], reduce, grad_volume);
    }
    for (int r = 0; r < replicas; ++r) {
      const TaskId update = g.add_task(0.25, rl_name("u", r, l));
      g.add_edge(reduce, update, grad_volume);
    }
  }

  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
