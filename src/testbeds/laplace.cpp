// LAPLACE: the n x n diamond (wavefront) DAG of a Laplace equation solver
// sweep.  Task (i,j) -> (i+1,j) and (i,j) -> (i,j+1); unit weights.  All
// complete paths have the same length, so every node lies on a critical
// path -- which is exactly the paper's remark about this kernel.
#include "testbeds/testbeds.hpp"

#include "util/error.hpp"

namespace oneport::testbeds {

TaskGraph make_laplace(int n, double comm_ratio) {
  OP_REQUIRE(n >= 1, "LAPLACE needs n >= 1");
  OP_REQUIRE(comm_ratio >= 0.0, "comm ratio must be non-negative");
  TaskGraph g;
  auto id = [n](int i, int j) {
    return static_cast<TaskId>(i * n + j);
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) g.add_task(1.0);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i + 1 < n) g.add_edge(id(i, j), id(i + 1, j), comm_ratio);
      if (j + 1 < n) g.add_edge(id(i, j), id(i, j + 1), comm_ratio);
    }
  }
  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
