// Name-based testbed registry for examples and benchmark harnesses.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace oneport::testbeds {

struct TestbedEntry {
  std::string name;  ///< "LU", "LAPLACE", "STENCIL", "FORK-JOIN",
                     ///< "DOOLITTLE", "LDMt"
  /// Generator: problem size n, communication-to-computation ratio c.
  std::function<TaskGraph(int n, double c)> make;
  /// The chunk size B the paper found best for this kernel (§5.3).
  int paper_best_b;
};

/// The paper's six kernels, in the order of §5.1.
[[nodiscard]] std::vector<TestbedEntry> paper_testbeds();

/// Lookup by name (case-sensitive); throws std::invalid_argument listing
/// the known names when absent.
[[nodiscard]] TestbedEntry find_testbed(const std::string& name);

}  // namespace oneport::testbeds
