// Name-based testbed registry for examples and benchmark harnesses.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace oneport::testbeds {

struct TestbedEntry {
  std::string name;  ///< "LU", "LAPLACE", "STENCIL", "FORK-JOIN",
                     ///< "DOOLITTLE", "LDMt"
  /// Generator: problem size n, communication-to-computation ratio c.
  std::function<TaskGraph(int n, double c)> make;
  /// The chunk size B the paper found best for this kernel (§5.3).
  int paper_best_b;
};

/// The paper's six kernels, in the order of §5.1.
[[nodiscard]] std::vector<TestbedEntry> paper_testbeds();

/// The non-paper workload families: "MLTRAIN" (data-parallel training
/// step) and "MICROSVC" (microservice request fanout).  Same entry shape
/// as the paper kernels, so sweeps pick them up unchanged;
/// paper_best_b is the ILHA default (38) since the paper never measured
/// these shapes.
[[nodiscard]] std::vector<TestbedEntry> generated_testbeds();

/// paper_testbeds() followed by generated_testbeds().
[[nodiscard]] std::vector<TestbedEntry> all_testbeds();

/// Lookup by name (case-sensitive); throws std::invalid_argument listing
/// the known names when absent.  Names of the form "trace:<path>" yield
/// an entry whose generator imports the DOT/JSON DAG at <path> via
/// graph/dot_import, ignoring the (n, c) arguments -- a trace is one
/// fixed graph, not a scalable family.  An unreadable or malformed
/// trace surfaces as ImportError when the generator runs, not at lookup.
[[nodiscard]] TestbedEntry find_testbed(const std::string& name);

}  // namespace oneport::testbeds
