// LU decomposition task graph: the classical triangular wavefront mesh.
// Task T(k,j) (1 <= k < j <= n) updates column j at elimination step k;
// it feeds the next step of the same column, T(k+1,j), and its right
// neighbour at the next step, T(k+1,j+1), through which the pivot
// information propagates.  The work shrinks as elimination proceeds:
// level-k tasks weigh n-k.
//
// Reconstruction note (DESIGN.md §2): the fine-grain Gaussian-elimination
// DAG broadcasts the pivot column (out-degree ~n).  Under the one-port
// model a per-edge broadcast serializes the sender's port and caps the
// speedup below 2 regardless of the scheduler -- far from the paper's
// Figure 8 (speedups 3.8-5.4).  The paper's miniature drawing is not
// legible from the text dump, but only a bounded-degree triangular mesh
// (the standard picture for "the LU task graph" in scheduling testbeds)
// is consistent with the reported numbers, so that is what we build.
#include "testbeds/testbeds.hpp"

#include "util/error.hpp"

namespace oneport::testbeds {

namespace {

/// Shared triangular skeleton of LU and DOOLITTLE: only the level->weight
/// mapping differs.  Edges: T(k,j) -> T(k+1,j) (column chain, j >= k+2)
/// and T(k,j) -> T(k+1,j+1) (diagonal propagation, j+1 <= n).
template <typename LevelWeight>
TaskGraph make_triangular(int n, double comm_ratio, LevelWeight weight_of) {
  OP_REQUIRE(n >= 2, "triangular kernels need n >= 2");
  OP_REQUIRE(comm_ratio >= 0.0, "comm ratio must be non-negative");
  TaskGraph g;
  // id(k, j) for 1 <= k < j <= n, laid out level by level.
  std::vector<TaskId> first_of_level(static_cast<std::size_t>(n), 0);
  for (int k = 1; k < n; ++k) {
    first_of_level[static_cast<std::size_t>(k)] =
        static_cast<TaskId>(g.num_tasks());
    for (int j = k + 1; j <= n; ++j) {
      g.add_task(weight_of(k));
    }
  }
  auto id = [&first_of_level](int k, int j) {
    return first_of_level[static_cast<std::size_t>(k)] +
           static_cast<TaskId>(j - k - 1);
  };
  for (int k = 1; k + 1 < n; ++k) {
    const double data = comm_ratio * weight_of(k);
    for (int j = k + 1; j <= n; ++j) {
      if (j >= k + 2) g.add_edge(id(k, j), id(k + 1, j), data);
      if (j + 1 <= n) g.add_edge(id(k, j), id(k + 1, j + 1), data);
    }
  }
  g.finalize();
  return g;
}

}  // namespace

TaskGraph make_lu(int n, double comm_ratio) {
  return make_triangular(n, comm_ratio,
                         [n](int k) { return static_cast<double>(n - k); });
}

TaskGraph make_doolittle(int n, double comm_ratio) {
  return make_triangular(n, comm_ratio,
                         [](int k) { return static_cast<double>(k); });
}

}  // namespace oneport::testbeds
