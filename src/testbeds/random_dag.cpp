#include "testbeds/testbeds.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace oneport::testbeds {

TaskGraph make_random_layered(const RandomDagOptions& options) {
  OP_REQUIRE(options.layers >= 1, "need at least one layer");
  OP_REQUIRE(options.max_width >= 1, "need at least one task per layer");
  OP_REQUIRE(options.max_in_degree >= 1, "need max_in_degree >= 1");
  OP_REQUIRE(options.back_reach >= 1, "need back_reach >= 1");
  OP_REQUIRE(options.w_lo > 0.0 && options.w_hi >= options.w_lo,
             "invalid weight range");
  SplitMix64 rng(options.seed);
  TaskGraph g;
  std::vector<std::vector<TaskId>> layers;
  for (int l = 0; l < options.layers; ++l) {
    const int width =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                options.max_width)));
    std::vector<TaskId> layer;
    layer.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      layer.push_back(g.add_task(rng.uniform(options.w_lo, options.w_hi)));
    }
    if (l > 0) {
      // Candidate parents: the previous `back_reach` layers.
      std::vector<TaskId> candidates;
      const int first = std::max(0, l - options.back_reach);
      for (int b = first; b < l; ++b) {
        candidates.insert(candidates.end(), layers[static_cast<std::size_t>(b)]
                                                .begin(),
                          layers[static_cast<std::size_t>(b)].end());
      }
      for (const TaskId v : layer) {
        const int degree =
            1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                    options.max_in_degree)));
        for (int d = 0; d < degree; ++d) {
          const TaskId parent = candidates[static_cast<std::size_t>(
              rng.below(candidates.size()))];
          if (!g.has_edge(parent, v)) {
            g.add_edge(parent, v, options.comm_ratio * g.weight(parent));
          }
        }
      }
    }
    layers.push_back(std::move(layer));
  }
  g.finalize();
  return g;
}

}  // namespace oneport::testbeds
