#include "analysis/experiment.hpp"

#include <ostream>

#include "analysis/metrics.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "util/error.hpp"

namespace oneport::analysis {

std::vector<FigureRow> run_figure(const FigureConfig& config,
                                  const Platform& platform) {
  const testbeds::TestbedEntry testbed = testbeds::find_testbed(config.testbed);
  std::vector<FigureRow> rows;
  rows.reserve(config.sizes.size());
  for (const int n : config.sizes) {
    const TaskGraph graph = testbed.make(n, config.comm_ratio);

    const Schedule heft_sched =
        heft(graph, platform, {.model = EftEngine::Model::kOnePort});
    const Schedule ilha_sched =
        ilha(graph, platform, {.model = EftEngine::Model::kOnePort,
                               .chunk_size = config.chunk_size});
    if (config.validate) {
      const ValidationResult vh = validate_one_port(heft_sched, graph,
                                                    platform);
      ensure(vh.ok(), "HEFT schedule invalid for " + config.testbed + "(" +
                          std::to_string(n) + "): " + vh.message());
      const ValidationResult vi = validate_one_port(ilha_sched, graph,
                                                    platform);
      ensure(vi.ok(), "ILHA schedule invalid for " + config.testbed + "(" +
                          std::to_string(n) + "): " + vi.message());
    }

    FigureRow row;
    row.size = n;
    row.heft_makespan = heft_sched.makespan();
    row.ilha_makespan = ilha_sched.makespan();
    row.heft_speedup = speedup(graph, platform, heft_sched);
    row.ilha_speedup = speedup(graph, platform, ilha_sched);
    row.heft_comms = heft_sched.num_comms();
    row.ilha_comms = ilha_sched.num_comms();
    rows.push_back(row);
  }
  return rows;
}

csv::Table figure_table(const std::vector<FigureRow>& rows) {
  csv::Table table({"n", "heft_ratio", "ilha_ratio", "ilha_gain_pct",
                    "heft_makespan", "ilha_makespan", "heft_msgs",
                    "ilha_msgs"});
  for (const FigureRow& r : rows) {
    const double gain =
        r.heft_speedup > 0.0
            ? (r.ilha_speedup / r.heft_speedup - 1.0) * 100.0
            : 0.0;
    table.add_row({std::to_string(r.size), csv::format_number(r.heft_speedup),
                   csv::format_number(r.ilha_speedup),
                   csv::format_number(gain, 1),
                   csv::format_number(r.heft_makespan, 0),
                   csv::format_number(r.ilha_makespan, 0),
                   std::to_string(r.heft_comms),
                   std::to_string(r.ilha_comms)});
  }
  return table;
}

void print_figure(std::ostream& os, const std::string& title,
                  const FigureConfig& config, const Platform& platform) {
  os << title << "\n";
  os << "testbed=" << config.testbed << " c=" << config.comm_ratio
     << " B=" << config.chunk_size << " p=" << platform.num_processors()
     << "\n";
  figure_table(run_figure(config, platform)).write_pretty(os);
  os.flush();
}

}  // namespace oneport::analysis
