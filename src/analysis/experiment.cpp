#include "analysis/experiment.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <utility>

#include "analysis/metrics.hpp"
#include "analysis/topology_cache.hpp"
#include "core/heft.hpp"
#include "core/ilha.hpp"
#include "core/registry.hpp"
#include "dynamic/events.hpp"
#include "dynamic/reschedule.hpp"
#include "exact/branch_bound.hpp"
#include "platform/routing.hpp"
#include "sched/validate.hpp"
#include "testbeds/registry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace oneport::analysis {

namespace {

/// Registry convention shared with the property sweep: "*-oneport"
/// entries are scheduled (and must be validated) under the one-port
/// rules, everything else under macro-dataflow.
bool is_one_port(const std::string& scheduler_name) {
  return scheduler_name.find("oneport") != std::string::npos;
}

unsigned resolve_workers(int workers) {
  return workers <= 0 ? ThreadPool::default_workers()
                      : static_cast<unsigned>(workers);
}

}  // namespace

std::vector<FigureRow> run_figure(const FigureConfig& config,
                                  const Platform& platform) {
  const testbeds::TestbedEntry testbed = testbeds::find_testbed(config.testbed);
  std::vector<FigureRow> rows(config.sizes.size());
  ThreadPool pool(resolve_workers(config.workers));
  // Every size is an independent pure computation writing its own row, so
  // the output is in sweep order and identical for any worker count.
  pool.parallel_for(config.sizes.size(), [&](std::size_t i) {
    const int n = config.sizes[i];
    const TaskGraph graph = testbed.make(n, config.comm_ratio);

    const Schedule heft_sched =
        heft(graph, platform, {.model = EftEngine::Model::kOnePort});
    const Schedule ilha_sched =
        ilha(graph, platform, {.model = EftEngine::Model::kOnePort,
                               .chunk_size = config.chunk_size});
    if (config.validate) {
      const ValidationResult vh = validate_one_port(heft_sched, graph,
                                                    platform);
      ensure(vh.ok(), "HEFT schedule invalid for " + config.testbed + "(" +
                          std::to_string(n) + "): " + vh.message());
      const ValidationResult vi = validate_one_port(ilha_sched, graph,
                                                    platform);
      ensure(vi.ok(), "ILHA schedule invalid for " + config.testbed + "(" +
                          std::to_string(n) + "): " + vi.message());
    }

    FigureRow row;
    row.size = n;
    row.heft_makespan = heft_sched.makespan();
    row.ilha_makespan = ilha_sched.makespan();
    row.heft_speedup = speedup(graph, platform, heft_sched);
    row.ilha_speedup = speedup(graph, platform, ilha_sched);
    row.heft_comms = heft_sched.num_comms();
    row.ilha_comms = ilha_sched.num_comms();
    rows[i] = row;
  });
  return rows;
}

csv::Table figure_table(const std::vector<FigureRow>& rows) {
  csv::Table table({"n", "heft_ratio", "ilha_ratio", "ilha_gain_pct",
                    "heft_makespan", "ilha_makespan", "heft_msgs",
                    "ilha_msgs"});
  for (const FigureRow& r : rows) {
    const double gain =
        r.heft_speedup > 0.0
            ? (r.ilha_speedup / r.heft_speedup - 1.0) * 100.0
            : 0.0;
    table.add_row({std::to_string(r.size), csv::format_number(r.heft_speedup),
                   csv::format_number(r.ilha_speedup),
                   csv::format_number(gain, 1),
                   csv::format_number(r.heft_makespan, 0),
                   csv::format_number(r.ilha_makespan, 0),
                   std::to_string(r.heft_comms),
                   std::to_string(r.ilha_comms)});
  }
  return table;
}

void print_figure(std::ostream& os, const std::string& title,
                  const FigureConfig& config, const Platform& platform) {
  os << title << "\n";
  os << "testbed=" << config.testbed << " c=" << config.comm_ratio
     << " B=" << config.chunk_size << " p=" << platform.num_processors()
     << "\n";
  figure_table(run_figure(config, platform)).write_pretty(os);
  os.flush();
}

// ------------------------------------------------- general grid sweeps

std::vector<SweepPoint> make_sweep_grid(
    const std::vector<std::string>& testbed_names,
    const std::vector<int>& sizes,
    const std::vector<std::string>& scheduler_names, double comm_ratio,
    int chunk_size, const std::vector<std::string>& topologies,
    const std::vector<std::string>& events,
    const std::vector<bool>& rebalance) {
  std::vector<SweepPoint> grid;
  grid.reserve(topologies.size() * testbed_names.size() * sizes.size() *
               scheduler_names.size() * events.size() * rebalance.size());
  for (const std::string& topology : topologies) {
    for (const std::string& testbed : testbed_names) {
      for (const int n : sizes) {
        for (const std::string& scheduler : scheduler_names) {
          for (const std::string& trace : events) {
            for (const bool reb : rebalance) {
              SweepPoint point{testbed, n, scheduler, comm_ratio, chunk_size};
              point.topology = topology;
              point.events = trace;
              point.rebalance = reb;
              grid.push_back(std::move(point));
            }
          }
        }
      }
    }
  }
  return grid;
}

SweepResult run_sweep_point(const SweepPoint& point, const Platform& platform,
                            const SweepOptions& options,
                            TopologyCacheShard* cache) {
  const testbeds::TestbedEntry testbed = testbeds::find_testbed(point.testbed);
  const TaskGraph graph = testbed.make(point.size, point.comm_ratio);

  // Routed points share one immutable platform + RoutingTable per
  // (topology, seed) through a cache: each cell stays a pure function of
  // its inputs, but the Floyd-Warshall / structured-route construction
  // runs once per network, not once per point.  A caller-owned shard
  // (the scheduler service) is consulted directly; everyone else routes
  // by key hash through the process-wide sharded cache.
  const bool routed = point.topology != "full";
  std::shared_ptr<const RoutedPlatform> sparse;
  if (routed) {
    sparse = cache != nullptr
                 ? cache->get(point.topology, platform.cycle_times(),
                              /*link=*/1.0, point.topology_seed)
                 : shared_topology_platform(point.topology,
                                            platform.cycle_times(),
                                            /*link=*/1.0, point.topology_seed);
  }
  const Platform& target = routed ? sparse->platform : platform;
  const SchedulerConfig config{
      .ilha_chunk_size = point.chunk_size,
      .routing = routed ? &sparse->routing : nullptr};
  const SchedulerEntry scheduler = find_scheduler(point.scheduler, config);
  Schedule schedule = scheduler.run(graph, target);

  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  if (point.events != "none") {
    // Dynamic point: derive the named fault trace from the static
    // schedule's makespan and replay the run through the online
    // rescheduler.  The static validators cannot judge the composite
    // (durations follow epoch-dependent cycle times, superseded
    // messages hold ports without delivering), so correctness rests on
    // run_dynamic's internal invariants -- the timelines themselves
    // reject any conflicting reservation.
    const dyn::EventTrace trace = dyn::make_named_trace(
        point.events, graph, target, schedule, point.topology_seed);
    dyn::DynamicOptions dyn_options;
    dyn_options.model = is_one_port(point.scheduler)
                            ? CommModel::kOnePort
                            : CommModel::kMacroDataflow;
    dyn_options.rebalance = point.rebalance;
    const dyn::DynamicResult dynamic = dyn::run_dynamic(
        graph, target, point.scheduler, config, trace, dyn_options);
    schedule = dynamic.schedule;
    // Report the worst epoch skew: per epoch the rebalancing pass never
    // increases the imbalance, so max(after) <= max(before) and the
    // before/after pair shows directly how much the pass bought.
    for (const dyn::EpochSnapshot& epoch : dynamic.epochs) {
      imbalance_before = std::max(imbalance_before, epoch.imbalance_before);
      imbalance_after = std::max(imbalance_after, epoch.imbalance_after);
    }
  } else if (options.validate) {
    const ValidationResult result =
        is_one_port(point.scheduler)
            ? validate_one_port(schedule, graph, target)
            : validate_macro_dataflow(schedule, graph, target);
    ensure(result.ok(), point.scheduler + " schedule invalid for " +
                            point.topology + "/" + point.testbed + "(" +
                            std::to_string(point.size) +
                            "): " + result.message());
  }

  SweepResult out;
  out.point = point;
  out.num_tasks = graph.num_tasks();
  out.makespan = schedule.makespan();
  out.speedup = speedup(graph, target, schedule);
  out.num_comms = schedule.num_comms();
  out.imbalance_before = imbalance_before;
  out.imbalance_after = imbalance_after;

  // Optimality audit: a sound MD lower bound turns the makespan into a
  // calibrated "at most X% above optimal" claim.  Static points only --
  // a dynamic composite ran on a platform the bound never saw.
  if (options.audit_gap && point.events == "none" &&
      graph.num_tasks() <= static_cast<std::size_t>(options.audit_max_tasks)) {
    exact::BranchBoundOptions bb;
    bb.node_budget = options.audit_node_budget;
    bb.max_search_tasks = options.audit_max_tasks;
    bb.routing = routed ? &sparse->routing : nullptr;
    const exact::BranchBoundResult lb =
        exact::branch_bound_lower_bound(graph, target, bb);
    out.audited = true;
    out.lower_bound = lb.lower_bound;
    out.lb_proven = lb.proven_optimal;
    out.optimality_gap = optimality_gap(out.makespan, lb.lower_bound);
  }
  return out;
}

std::vector<SweepResult> run_sweep(const std::vector<SweepPoint>& grid,
                                   const Platform& platform,
                                   const SweepOptions& options) {
  std::vector<SweepResult> results(grid.size());
  ThreadPool pool(resolve_workers(options.workers));
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    results[i] = run_sweep_point(grid[i], platform, options);
  });
  return results;
}

std::shared_ptr<const RoutedPlatform> shared_topology_platform(
    const std::string& topology, const std::vector<double>& cycle_times,
    double link, std::uint64_t seed) {
  return process_topology_cache().get(topology, cycle_times, link, seed);
}

csv::Table sweep_table(const std::vector<SweepResult>& rows) {
  csv::Table table({"topology", "testbed", "n", "scheduler", "events",
                    "rebalance", "tasks", "ratio", "makespan", "msgs",
                    "imb_before", "imb_after", "lb", "optimality_gap",
                    "lb_proven"});
  for (const SweepResult& r : rows) {
    table.add_row({r.point.topology, r.point.testbed,
                   std::to_string(r.point.size), r.point.scheduler,
                   r.point.events, r.point.rebalance ? "on" : "off",
                   std::to_string(r.num_tasks),
                   csv::format_number(r.speedup),
                   csv::format_number(r.makespan, 0),
                   std::to_string(r.num_comms),
                   csv::format_number(r.imbalance_before, 3),
                   csv::format_number(r.imbalance_after, 3),
                   r.audited ? csv::format_number(r.lower_bound) : "",
                   r.audited ? csv::format_number(r.optimality_gap, 4) : "",
                   r.audited ? (r.lb_proven ? "proven" : "anytime") : ""});
  }
  return table;
}

}  // namespace oneport::analysis
