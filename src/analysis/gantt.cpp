#include "analysis/gantt.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace oneport::analysis {

namespace {

/// Paints [start, end) into a character row scaled to `width` columns over
/// [0, horizon).
void paint(std::string& row, double start, double end, double horizon,
           char mark) {
  if (horizon <= 0.0) return;
  const int width = static_cast<int>(row.size());
  int lo = static_cast<int>(start / horizon * width);
  int hi = static_cast<int>(end / horizon * width);
  lo = std::clamp(lo, 0, width - 1);
  hi = std::clamp(hi, lo, width - 1);
  // Degenerate slots still get one visible cell.
  for (int i = lo; i <= hi; ++i) {
    if (end > start || row[static_cast<std::size_t>(i)] == ' ') {
      row[static_cast<std::size_t>(i)] = mark;
    }
  }
}

}  // namespace

void write_gantt_ascii(std::ostream& os, const Schedule& schedule,
                       const Platform& platform, const GanttOptions& options) {
  OP_REQUIRE(options.width >= 10, "gantt width too small");
  const double horizon = schedule.makespan();
  const auto p = static_cast<std::size_t>(platform.num_processors());
  const auto w = static_cast<std::size_t>(options.width);

  std::vector<std::string> compute(p, std::string(w, ' '));
  std::vector<std::string> send(p, std::string(w, ' '));
  std::vector<std::string> recv(p, std::string(w, ' '));

  for (TaskId v = 0; v < schedule.num_tasks(); ++v) {
    const TaskPlacement& t = schedule.task(v);
    if (!t.placed()) continue;
    paint(compute[static_cast<std::size_t>(t.proc)], t.start, t.finish,
          horizon, '#');
  }
  for (const CommPlacement& c : schedule.comms()) {
    paint(send[static_cast<std::size_t>(c.from)], c.start, c.finish, horizon,
          's');
    paint(recv[static_cast<std::size_t>(c.to)], c.start, c.finish, horizon,
          'r');
  }

  os << "makespan = " << csv::format_number(horizon) << ", "
     << schedule.num_comms() << " messages\n";
  for (std::size_t q = 0; q < p; ++q) {
    os << "P" << q << " cpu  |" << compute[q] << "|\n";
    if (options.show_ports) {
      os << "P" << q << " send |" << send[q] << "|\n";
      os << "P" << q << " recv |" << recv[q] << "|\n";
    }
  }
}

void write_gantt_svg(std::ostream& os, const Schedule& schedule,
                     const Platform& platform, const SvgOptions& options) {
  const double horizon = std::max(schedule.makespan(), 1e-9);
  const int rows_per_proc = options.show_ports ? 3 : 1;
  const int p = platform.num_processors();
  const int label_px = 70;
  const int chart_px = options.width_px - label_px;
  const int height = options.row_height_px * rows_per_proc * p + 30;

  auto x_of = [&](double t) {
    return label_px + t / horizon * static_cast<double>(chart_px);
  };
  auto y_of = [&](int proc, int lane) {
    return 10 + (proc * rows_per_proc + lane) * options.row_height_px;
  };

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << options.width_px << "\" height=\"" << height << "\">\n";
  os << "<style>text{font:10px monospace;}</style>\n";
  for (int q = 0; q < p; ++q) {
    os << "<text x=\"2\" y=\"" << y_of(q, 0) + 14 << "\">P" << q
       << " cpu</text>\n";
    if (options.show_ports) {
      os << "<text x=\"2\" y=\"" << y_of(q, 1) + 14 << "\">P" << q
         << " snd</text>\n";
      os << "<text x=\"2\" y=\"" << y_of(q, 2) + 14 << "\">P" << q
         << " rcv</text>\n";
    }
  }
  for (TaskId v = 0; v < schedule.num_tasks(); ++v) {
    const TaskPlacement& t = schedule.task(v);
    if (!t.placed()) continue;
    const double x = x_of(t.start);
    const double wpx = std::max(x_of(t.finish) - x, 1.0);
    os << "<rect x=\"" << x << "\" y=\"" << y_of(t.proc, 0) << "\" width=\""
       << wpx << "\" height=\"" << options.row_height_px - 4
       << "\" fill=\"#4e79a7\" stroke=\"#333\"/>\n";
    if (options.label_tasks && wpx > 18.0) {
      os << "<text x=\"" << x + 2 << "\" y=\"" << y_of(t.proc, 0) + 13
         << "\" fill=\"#fff\">" << v << "</text>\n";
    }
  }
  if (options.show_ports) {
    for (const CommPlacement& c : schedule.comms()) {
      const double x = x_of(c.start);
      const double wpx = std::max(x_of(c.finish) - x, 1.0);
      os << "<rect x=\"" << x << "\" y=\"" << y_of(c.from, 1) << "\" width=\""
         << wpx << "\" height=\"" << options.row_height_px - 4
         << "\" fill=\"#f28e2b\" stroke=\"#333\"/>\n";
      os << "<rect x=\"" << x << "\" y=\"" << y_of(c.to, 2) << "\" width=\""
         << wpx << "\" height=\"" << options.row_height_px - 4
         << "\" fill=\"#76b7b2\" stroke=\"#333\"/>\n";
    }
  }
  os << "</svg>\n";
}

}  // namespace oneport::analysis
