// The experiment harness behind Figures 7-12: for one testbed, sweep the
// problem size, run HEFT and ILHA under the one-port model, validate both
// schedules, and report the paper's ratio (sequential time / makespan).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "util/csv.hpp"

namespace oneport::analysis {

struct FigureConfig {
  std::string testbed;                          ///< registry name
  std::vector<int> sizes = {100, 200, 300, 400, 500};
  double comm_ratio = 10.0;                     ///< the paper's c
  int chunk_size = 38;                          ///< ILHA's B
  bool validate = true;  ///< run the one-port validator on every schedule
};

struct FigureRow {
  int size = 0;
  double heft_speedup = 0.0;
  double ilha_speedup = 0.0;
  double heft_makespan = 0.0;
  double ilha_makespan = 0.0;
  std::size_t heft_comms = 0;
  std::size_t ilha_comms = 0;
};

/// Runs the sweep on `platform` (the paper uses make_paper_platform()).
/// Throws std::logic_error when a produced schedule fails validation.
[[nodiscard]] std::vector<FigureRow> run_figure(const FigureConfig& config,
                                                const Platform& platform);

/// Formats rows like the paper's plots: one line per size with both
/// ratios, message counts and the ILHA/HEFT gain.
[[nodiscard]] csv::Table figure_table(const std::vector<FigureRow>& rows);

/// Convenience: run + pretty-print with a title.
void print_figure(std::ostream& os, const std::string& title,
                  const FigureConfig& config, const Platform& platform);

}  // namespace oneport::analysis
