// The experiment harness behind Figures 7-12: for one testbed, sweep the
// problem size, run HEFT and ILHA under the one-port model, validate both
// schedules, and report the paper's ratio (sequential time / makespan).
//
// Two drivers exist:
//   * run_figure: the paper's fixed HEFT+ILHA column pair over one
//     testbed's size sweep;
//   * run_sweep: the general (testbed, n, heuristic) grid, each point an
//     independent scheduler run.
// Both farm their points over a util/thread_pool.hpp worker pool
// (`workers` knob; 1 = serial, 0 = hardware concurrency) and always
// return rows in grid order -- every point is a pure function of its
// inputs, so the results are identical whatever the worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "analysis/topology_cache.hpp"
#include "platform/platform.hpp"
#include "platform/routing.hpp"
#include "util/csv.hpp"

namespace oneport::analysis {

struct FigureConfig {
  std::string testbed;                          ///< registry name
  std::vector<int> sizes = {100, 200, 300, 400, 500};
  double comm_ratio = 10.0;                     ///< the paper's c
  int chunk_size = 38;                          ///< ILHA's B
  bool validate = true;  ///< run the one-port validator on every schedule
  int workers = 0;  ///< experiment parallelism; 0 = hardware concurrency
};

struct FigureRow {
  int size = 0;
  double heft_speedup = 0.0;
  double ilha_speedup = 0.0;
  double heft_makespan = 0.0;
  double ilha_makespan = 0.0;
  std::size_t heft_comms = 0;
  std::size_t ilha_comms = 0;
};

/// Runs the sweep on `platform` (the paper uses make_paper_platform()).
/// Throws std::logic_error when a produced schedule fails validation.
[[nodiscard]] std::vector<FigureRow> run_figure(const FigureConfig& config,
                                                const Platform& platform);

/// Formats rows like the paper's plots: one line per size with both
/// ratios, message counts and the ILHA/HEFT gain.
[[nodiscard]] csv::Table figure_table(const std::vector<FigureRow>& rows);

/// Convenience: run + pretty-print with a title.
void print_figure(std::ostream& os, const std::string& title,
                  const FigureConfig& config, const Platform& platform);

// ------------------------------------------------- general grid sweeps

/// One (topology, testbed, n, scheduler) cell of a sweep grid.
struct SweepPoint {
  std::string testbed;    ///< testbeds registry name, e.g. "LU"
  int size = 100;         ///< problem size n
  std::string scheduler;  ///< scheduler registry name, e.g. "heft-oneport"
  double comm_ratio = 10.0;
  int chunk_size = 38;  ///< ILHA's B (ignored by other schedulers)
  /// Network shape: "full" schedules on the platform passed to run_sweep
  /// (no routing); any make_topology_platform name -- "ring", "star",
  /// "line", "random", "mesh<R>x<C>", "torus<R>x<C>", "fattree<L>x<A>",
  /// including the ':het'/':hot'/':aniso'/policy suffixes that make link
  /// heterogeneity and routing policy grid axes (e.g.
  /// "mesh4x4:het0.5:swp") -- rebuilds a sparse platform from that
  /// platform's cycle times (unit base link cost) and schedules
  /// store-and-forward chains along its routed paths.  Routed platforms
  /// come from the process-wide shared_topology_platform cache, so a
  /// grid sweep builds each (topology, seed) network once instead of
  /// once per point.
  std::string topology = "full";
  /// Seed for the "random" topology and the seeded ':het'/':hot' link
  /// cost generators.
  std::uint64_t topology_seed = 1;
  /// Platform-event trace preset (src/dynamic/events.hpp names: "none",
  /// "slowdown", "dropout", "mixed", "arrival").  "none" runs the static
  /// scheduler; any other name derives a fault trace from the static
  /// schedule's makespan and replays the point through dyn::run_dynamic,
  /// reporting the dynamic composite's metrics.
  std::string events = "none";
  /// Run the load_balance skew-reduction pass (DynamicOptions::rebalance)
  /// on every epoch's suffix allocation.  Only meaningful for dynamic
  /// points (events != "none"); static points ignore it.
  bool rebalance = false;
};

struct SweepResult {
  SweepPoint point;
  std::size_t num_tasks = 0;
  double makespan = 0.0;
  double speedup = 0.0;  ///< sequential time / makespan (the paper's ratio)
  std::size_t num_comms = 0;
  /// Worst per-epoch suffix load skew (fractional_load_imbalance) seen
  /// before and after the rebalancing pass.  The pass never increases an
  /// epoch's skew, so imbalance_after <= imbalance_before always; the two
  /// are equal when rebalancing is off or made no move, and both are 0
  /// for static points (no epochs).
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  /// Optimality audit (SweepOptions::audit_gap).  `audited` is true when
  /// the branch-and-bound lower bound ran for this point -- only static
  /// points (events == "none") within the audit's task cap are audited;
  /// for everything else the three fields below stay at their zero
  /// defaults and the CSV/JSON report them as absent.
  bool audited = false;
  /// Sound lower bound on the point's optimal makespan (the MD optimum
  /// of exact/branch_bound, computed with the point's routed distances
  /// when the topology is sparse).
  double lower_bound = 0.0;
  /// makespan / lower_bound - 1 (analysis::optimality_gap); >= 0, and 0
  /// exactly when the heuristic attained the bound.
  double optimality_gap = 0.0;
  /// True when the bound is *proven* to be the MD optimum, i.e. the
  /// search closed within its budget; a gap of 0 with lb_proven means
  /// the heuristic is provably optimal for this point.
  bool lb_proven = false;
};

struct SweepOptions {
  int workers = 0;  ///< 0 = hardware concurrency, 1 = serial
  /// Validate every schedule under the model implied by the scheduler
  /// name (one-port for "*-oneport" entries, macro-dataflow otherwise);
  /// throws std::logic_error on the first violation.
  bool validate = true;
  /// Run the exact/branch_bound optimality audit on every static point
  /// with at most `audit_max_tasks` tasks (the sweep_cli --audit=gap
  /// axis).  Dynamic points are never audited: the bound models a fixed
  /// platform, not one mutating under a fault trace.
  bool audit_gap = false;
  /// Node budget handed to BranchBoundOptions (deterministic cutoff).
  std::uint64_t audit_node_budget = 200'000;
  /// Points with more tasks than this report no bound at all rather
  /// than a trivially-loose root bound.
  int audit_max_tasks = 64;
};

/// Builds the full cross product topologies x testbeds x sizes x
/// schedulers x event traces x rebalance modes (topology outermost,
/// rebalance innermost; defaults to fully connected, static-only, no
/// rebalancing).
[[nodiscard]] std::vector<SweepPoint> make_sweep_grid(
    const std::vector<std::string>& testbed_names,
    const std::vector<int>& sizes,
    const std::vector<std::string>& scheduler_names,
    double comm_ratio = 10.0, int chunk_size = 38,
    const std::vector<std::string>& topologies = {"full"},
    const std::vector<std::string>& events = {"none"},
    const std::vector<bool>& rebalance = {false});

/// Runs every grid point (in parallel per SweepOptions::workers) and
/// returns results in grid order.  Static points are validated per
/// SweepOptions::validate; dynamic points (events != "none") are checked
/// by the rescheduler's own internal invariants instead -- the static
/// validators cannot judge a composite whose durations follow
/// epoch-dependent cycle times (the D1-D5 battery in tests/support
/// covers those properties).
[[nodiscard]] std::vector<SweepResult> run_sweep(
    const std::vector<SweepPoint>& grid, const Platform& platform,
    const SweepOptions& options = {});

/// Runs ONE grid point -- the exact code path run_sweep farms across the
/// thread pool, exposed so other executors (the scheduler service in
/// src/service/) produce bit-identical results by construction.  Routed
/// points resolve their network through `cache` when given (a
/// scheduler-service worker passes the shard it owns, making routed
/// lookups contention-free) and through the process-wide sharded cache
/// otherwise.
[[nodiscard]] SweepResult run_sweep_point(const SweepPoint& point,
                                          const Platform& platform,
                                          const SweepOptions& options = {},
                                          TopologyCacheShard* cache = nullptr);

/// Formats sweep results as one row per grid point.
[[nodiscard]] csv::Table sweep_table(const std::vector<SweepResult>& rows);

/// Process-wide routed-platform cache for grid sweeps (ROADMAP item):
/// keyed by (topology name, seed, link, cycle times), the first call per
/// key builds the platform and its RoutingTable (Floyd-Warshall for the
/// unstructured names and the ':swp' policy, XY/alternating/up-down
/// construction for mesh/torus/fattree); every later call -- from any
/// worker thread -- returns the same immutable instance.  A topology x
/// testbed x size x scheduler grid therefore builds each network once
/// instead of once per grid point.  The full suffixed name is the key's
/// first component and the seed its second, so "mesh3x3",
/// "mesh3x3:swp", and "mesh3x3:het0.5" (or the same ':het' shape under
/// two seeds) can never alias; cycle times participate too, so two
/// sweeps over different base platforms stay distinct.
///
/// Since the scheduler-service PR this is a compatibility shim over the
/// sharded cache (analysis/topology_cache.hpp): calls route by key hash
/// through `process_topology_cache()`, so distinct networks build under
/// distinct locks.  The old single-mutex global path is gone; the
/// one-instance-per-key contract is unchanged and still pinned by
/// tests/concurrency_stress_test.cpp.
[[nodiscard]] std::shared_ptr<const RoutedPlatform> shared_topology_platform(
    const std::string& topology, const std::vector<double>& cycle_times,
    double link = 1.0, std::uint64_t seed = 1);

}  // namespace oneport::analysis
