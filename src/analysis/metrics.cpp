#include "analysis/metrics.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace oneport::analysis {

double sequential_time(const TaskGraph& graph, const Platform& platform) {
  return graph.total_weight() *
         platform.cycle_time(platform.fastest_processor());
}

double speedup(const TaskGraph& graph, const Platform& platform,
               const Schedule& schedule) {
  const double makespan = schedule.makespan();
  OP_REQUIRE(makespan > 0.0, "speedup undefined for empty schedules");
  return sequential_time(graph, platform) / makespan;
}

ScheduleStats compute_stats(const TaskGraph& graph, const Platform& platform,
                            const Schedule& schedule) {
  ScheduleStats stats;
  stats.makespan = schedule.makespan();
  stats.speedup = stats.makespan > 0.0
                      ? sequential_time(graph, platform) / stats.makespan
                      : 0.0;
  stats.num_comms = schedule.num_comms();
  for (const CommPlacement& c : schedule.comms()) {
    stats.total_comm_time += c.finish - c.start;
  }
  stats.busy.assign(static_cast<std::size_t>(platform.num_processors()), 0.0);
  for (TaskId v = 0; v < schedule.num_tasks(); ++v) {
    const TaskPlacement& t = schedule.task(v);
    if (t.placed()) {
      stats.busy[static_cast<std::size_t>(t.proc)] += t.finish - t.start;
    }
  }
  double total_busy = 0.0;
  double max_busy = 0.0;
  for (const double b : stats.busy) {
    total_busy += b;
    max_busy = std::max(max_busy, b);
  }
  const double mean_busy =
      stats.busy.empty() ? 0.0
                         : total_busy / static_cast<double>(stats.busy.size());
  stats.mean_utilization =
      stats.makespan > 0.0 ? mean_busy / stats.makespan : 0.0;
  stats.load_imbalance = mean_busy > 0.0 ? max_busy / mean_busy : 0.0;
  return stats;
}

double optimality_gap(double makespan, double lower_bound) {
  OP_REQUIRE(makespan >= 0.0, "negative makespan");
  if (lower_bound <= 0.0) {
    return makespan == 0.0 ? 0.0
                           : std::numeric_limits<double>::infinity();
  }
  const double gap = makespan / lower_bound - 1.0;
  if (gap < 0.0) {
    // A makespan below a *sound* lower bound can only be rounding noise
    // from a heuristic that attained the bound exactly.  A real excess
    // means the bound is broken -- surface it, don't clamp it away.
    OP_ASSERT(gap >= -1e-9, "makespan " << makespan
                                        << " undercuts the lower bound "
                                        << lower_bound
                                        << ": the bound is unsound");
    return 0.0;
  }
  return gap;
}

}  // namespace oneport::analysis
