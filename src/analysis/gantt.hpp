// Gantt-chart rendering of schedules: ASCII for terminals, SVG for docs.
//
// Rendering is deliberately lossy for large schedules (time is binned to
// the output width); it exists to *see* port contention and load balance,
// not to measure them -- use metrics.hpp for numbers.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport::analysis {

struct GanttOptions {
  int width = 96;          ///< characters (ASCII) of the time axis
  bool show_ports = true;  ///< add send/receive-port rows per processor
};

/// Writes an ASCII Gantt chart: per processor a compute row ('#' busy) and
/// optionally a send row ('s') and a receive row ('r').
void write_gantt_ascii(std::ostream& os, const Schedule& schedule,
                       const Platform& platform,
                       const GanttOptions& options = {});

struct SvgOptions {
  int width_px = 1000;
  int row_height_px = 22;
  bool show_ports = true;
  /// Label task rectangles with task ids when they are wide enough.
  bool label_tasks = true;
};

/// Writes an SVG Gantt chart (one band per processor: compute + ports).
void write_gantt_svg(std::ostream& os, const Schedule& schedule,
                     const Platform& platform, const SvgOptions& options = {});

}  // namespace oneport::analysis
