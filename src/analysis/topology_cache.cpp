#include "analysis/topology_cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

namespace oneport::analysis {

std::shared_ptr<const RoutedPlatform> TopologyCacheShard::get(
    const std::string& topology, const std::vector<double>& cycle_times,
    double link, std::uint64_t seed) {
  Key key{topology, seed, link, cycle_times};
  {
    util::MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) return it->second;
  }
  // Build outside the lock: a first-use race may construct the same
  // platform twice, but emplace keeps the first insert and hands the
  // winner to every caller (losers included), so per key there is one
  // canonical immutable instance.
  auto built = std::make_shared<const RoutedPlatform>(
      make_topology_platform(topology, cycle_times, link, seed));
  util::MutexLock lock(mutex_);
  return entries_.emplace(std::move(key), std::move(built)).first->second;
}

std::size_t TopologyCacheShard::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

ShardedTopologyCache::ShardedTopologyCache(std::size_t shards)
    : shards_(std::max<std::size_t>(1, shards)) {}

std::size_t ShardedTopologyCache::shard_for(
    const std::string& topology, std::uint64_t seed) const noexcept {
  // Name + seed decide the shard; link and cycle times almost never vary
  // for one name within a process, and a collision only costs sharing a
  // lock, never a wrong value.  SplitMix64-style finalizer over the
  // string hash keeps low bits well mixed for the modulo.
  std::uint64_t h = std::hash<std::string>{}(topology) + 0x9e3779b97f4a7c15ULL * (seed + 1);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return static_cast<std::size_t>(h % shards_.size());
}

std::shared_ptr<const RoutedPlatform> ShardedTopologyCache::get(
    const std::string& topology, const std::vector<double>& cycle_times,
    double link, std::uint64_t seed) {
  return shards_[shard_for(topology, seed)].get(topology, cycle_times, link,
                                                seed);
}

std::size_t ShardedTopologyCache::total_entries() const {
  std::size_t total = 0;
  for (const TopologyCacheShard& s : shards_) total += s.size();
  return total;
}

ShardedTopologyCache& process_topology_cache() noexcept {
  // 8 shards comfortably covers the distinct-network parallelism of a
  // grid sweep without bloating idle processes; scheduler-service
  // workers never route through here (each owns a shard of its own
  // service-local cache sized by ONEPORT_SERVICE_SHARDS).
  static auto* cache = new ShardedTopologyCache(8);
  return *cache;
}

}  // namespace oneport::analysis
