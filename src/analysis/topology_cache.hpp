// Sharded routed-platform cache (the service tentpole's contention fix).
//
// PR 3 introduced a process-wide cache behind a single mutex
// (`shared_topology_platform`); profiling the scheduler service showed
// every worker serializing on that one lock even on pure cache *hits*.
// This header splits the cache into independently locked shards:
//
//   * `TopologyCacheShard` is the unit of ownership -- one mutex, one
//     map, and the documented first-insert-wins contract: values are
//     built OUTSIDE the lock (construction is exactly the expensive part
//     being cached); a first-use race may build a platform twice, but
//     `map::emplace` keeps the first insert and every caller -- the
//     losing builder included -- receives that winning pointer, so per
//     key there is always one canonical immutable instance.
//   * `ShardedTopologyCache` owns a fixed array of shards.  Callers with
//     an *owned* shard (each scheduler-service worker) go straight to
//     `shard(i)` and never contend with another worker at all; callers
//     without one (the batch sweep path) route by key hash through
//     `get`, which spreads distinct topologies across shards so two
//     workers building different networks no longer serialize.
//
// The legacy entry point `analysis::shared_topology_platform`
// (experiment.hpp) is now a thin shim over the process-wide instance
// returned by `process_topology_cache()`; the old single-global
// single-mutex path is gone.  The one-instance-per-key contract is
// pinned by tests/concurrency_stress_test.cpp (via the shim) and
// tests/service_test.cpp (per shard, under concurrent lookups).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "platform/routing.hpp"
#include "util/annotations.hpp"

namespace oneport::analysis {

/// One independently locked cache shard: (topology name, seed, link,
/// cycle times) -> immutable RoutedPlatform.  Thread-safe; see the
/// first-insert-wins contract in the header comment.
class TopologyCacheShard {
 public:
  TopologyCacheShard() = default;
  TopologyCacheShard(const TopologyCacheShard&) = delete;
  TopologyCacheShard& operator=(const TopologyCacheShard&) = delete;

  /// Returns the canonical platform for the key, building it (outside
  /// the shard lock) on first use.
  [[nodiscard]] std::shared_ptr<const RoutedPlatform> get(
      const std::string& topology, const std::vector<double>& cycle_times,
      double link = 1.0, std::uint64_t seed = 1);

  /// Number of cached networks in this shard (tests/diagnostics).
  [[nodiscard]] std::size_t size() const;

 private:
  using Key =
      std::tuple<std::string, std::uint64_t, double, std::vector<double>>;

  mutable util::Mutex mutex_;
  std::map<Key, std::shared_ptr<const RoutedPlatform>> entries_
      OP_GUARDED_BY(mutex_);
};

/// A fixed set of `TopologyCacheShard`s.  Two access patterns:
///   * `shard(i)` -- callers that own a shard (scheduler-service
///     workers) get zero cross-caller lock contention;
///   * `get(...)` -- shardless callers (the batch sweep path) route by
///     key hash, so distinct networks build under distinct locks.
class ShardedTopologyCache {
 public:
  /// `shards` is clamped to at least 1.
  explicit ShardedTopologyCache(std::size_t shards);
  ShardedTopologyCache(const ShardedTopologyCache&) = delete;
  ShardedTopologyCache& operator=(const ShardedTopologyCache&) = delete;

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] TopologyCacheShard& shard(std::size_t i) noexcept {
    return shards_[i % shards_.size()];
  }

  /// Deterministic shard index for a key (exposed so tests can assert
  /// the routing is stable).
  [[nodiscard]] std::size_t shard_for(const std::string& topology,
                                      std::uint64_t seed) const noexcept;

  /// Hash-routed lookup for callers without an owned shard.
  [[nodiscard]] std::shared_ptr<const RoutedPlatform> get(
      const std::string& topology, const std::vector<double>& cycle_times,
      double link = 1.0, std::uint64_t seed = 1);

  /// Total cached networks across shards (tests/diagnostics).
  [[nodiscard]] std::size_t total_entries() const;

 private:
  std::vector<TopologyCacheShard> shards_;
};

/// The process-wide sharded instance behind the
/// `shared_topology_platform` shim.  Leaked intentionally (like the
/// timeline/graph default slots): cached routing tables must outlive
/// every schedule still pointing into them at static-destruction time.
[[nodiscard]] ShardedTopologyCache& process_topology_cache() noexcept;

}  // namespace oneport::analysis
