// Schedule quality metrics and the paper's reporting conventions.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport::analysis {

/// Time to run the whole application on the fastest processor with no
/// communications: sum(w) * min_i t_i.  This is the numerator of the
/// ratio the paper plots in Figures 7-12.
[[nodiscard]] double sequential_time(const TaskGraph& graph,
                                     const Platform& platform);

/// sequential_time / makespan -- the paper's "ratio (execution time)/
/// (sequential time)" axis (values > 1 mean the parallel schedule wins).
[[nodiscard]] double speedup(const TaskGraph& graph, const Platform& platform,
                             const Schedule& schedule);

struct ScheduleStats {
  double makespan = 0.0;
  double speedup = 0.0;
  std::size_t num_comms = 0;
  double total_comm_time = 0.0;      ///< sum of message durations
  std::vector<double> busy;          ///< per-processor compute time
  double mean_utilization = 0.0;     ///< mean busy / makespan
  double load_imbalance = 0.0;       ///< max busy / mean busy (1 = perfect)
};

[[nodiscard]] ScheduleStats compute_stats(const TaskGraph& graph,
                                          const Platform& platform,
                                          const Schedule& schedule);

/// Relative optimality gap makespan / lower_bound - 1: 0 means the
/// schedule provably matches the bound, 0.25 means at most 25% above
/// optimal.  Tiny negative ratios (|r| <= 1e-9, floating-point noise
/// when a heuristic exactly attains the bound) clamp to 0; anything
/// more negative means the "lower bound" wasn't one and throws
/// std::logic_error rather than silently reporting nonsense.  A
/// non-positive lower bound on a positive makespan yields an infinite
/// gap (the bound carries no information).
[[nodiscard]] double optimality_gap(double makespan, double lower_bound);

}  // namespace oneport::analysis
