// Online rescheduling: an event loop over a running schedule.
//
// run_dynamic() plays an EventTrace against an initially static schedule
// produced by a registry heuristic.  At each event time T:
//
//   * the *committed prefix* is frozen -- every task that started before
//     T keeps its placement and runs to completion (drain semantics:
//     a dropped processor finishes what it started and keeps relaying
//     store-and-forward traffic; it just accepts no new task at or after
//     T), and every message that started before T completes;
//   * the platform mutates (cycle-time scaling, availability);
//   * the *suffix* -- known, not-yet-started tasks plus any tasks that
//     just arrived -- is rescheduled: the registry heuristic runs on the
//     residual induced subgraph against the mutated platform (dropped
//     processors are penalized with a prohibitive cycle time) to pick an
//     allocation and an order, an optional load-rebalancing pass
//     (platform/load_balance.hpp) then shifts work off skewed
//     processors, and the chosen suffix is rebuilt hop by hop on
//     timelines pre-seeded with every frozen reservation, so the suffix
//     respects the ports and compute slots the prefix still occupies.
//
// Superseded messages that already ran (hops of a chain whose
// destination task moved) are retired to a `stale` side list: they no
// longer deliver anything, but they did occupy their ports, so the
// one-port exclusivity checks in the test battery run over live and
// stale messages together while the per-edge routing conformance checks
// see only the live chains.
//
// Everything is deterministic: same (graph, platform, heuristic, trace)
// yields bit-identical results, independent of the ONEPORT_TIMELINE
// implementation (pinned by the differential sweep).
#pragma once

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "dynamic/events.hpp"
#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/replay.hpp"
#include "sched/schedule.hpp"

namespace oneport::dyn {

struct DynamicOptions {
  /// Communication rules for the rebuilt suffix (and the initial run).
  CommModel model = CommModel::kOnePort;
  /// Run the load_balance skew-reduction pass on each epoch's suffix
  /// allocation before rebuilding it.
  bool rebalance = false;
  /// Cycle time presented to the heuristic for dropped processors: large
  /// enough that no work lands there, finite so the heuristic's
  /// arithmetic stays well-defined.
  double drop_penalty = 1e9;
};

/// State after one epoch of the event loop.  epochs[0] is the initial
/// static schedule (time 0, no event applied); epochs[k >= 1] is the
/// state right after rescheduling for trace[k-1].
struct EpochSnapshot {
  PlatformEvent event;  ///< meaningful for epochs[k >= 1] only
  double time = 0.0;    ///< freeze instant (0 for the initial epoch)
  std::vector<double> cycle_times;  ///< effective per-proc cycle times
  std::vector<char> available;      ///< 0 after a dropout
  std::vector<char> known;          ///< per-task visibility
  Schedule schedule;                ///< composite as of this epoch
  std::vector<CommPlacement> stale_comms;  ///< retired so far
  /// Suffix load skew (fractional_load_imbalance over the residual
  /// work) before and after the rebalancing pass; equal when the pass is
  /// disabled or made no move.
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  int rebalance_moves = 0;
  int suffix_tasks = 0;  ///< tasks rescheduled in this epoch
};

struct DynamicResult {
  Schedule schedule;  ///< final composite (== epochs.back().schedule)
  std::vector<CommPlacement> stale_comms;  ///< all retired messages
  std::vector<EpochSnapshot> epochs;
  std::vector<double> release;  ///< per-task arrival time (0 = initial)

  [[nodiscard]] double makespan() const { return schedule.makespan(); }
};

/// Plays `trace` against the schedule the named heuristic produces.
/// `config.routing`, when set, routes every (re)scheduled chain and must
/// outlive the call.  The trace is validated first; see events.hpp for
/// the rules.  Throws std::invalid_argument on malformed input and
/// std::logic_error if the rebuild ever produces conflicting
/// reservations (a library bug, caught by the timelines themselves).
[[nodiscard]] DynamicResult run_dynamic(const TaskGraph& graph,
                                        const Platform& platform,
                                        const std::string& scheduler,
                                        const SchedulerConfig& config,
                                        const EventTrace& trace,
                                        const DynamicOptions& options = {});

}  // namespace oneport::dyn
