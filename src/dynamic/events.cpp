#include "dynamic/events.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace oneport::dyn {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSlowdown: return "slowdown";
    case EventKind::kDropout: return "dropout";
    case EventKind::kArrival: return "arrival";
  }
  return "?";
}

void validate_trace(const EventTrace& trace, const TaskGraph& graph,
                    const Platform& platform) {
  const int p = platform.num_processors();
  double previous = 0.0;
  std::vector<char> dropped(static_cast<std::size_t>(p), 0);
  std::vector<char> arrived(graph.num_tasks(), 0);
  int drops = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const PlatformEvent& e = trace[i];
    OP_REQUIRE(std::isfinite(e.time) && e.time > 0.0,
               "event " << i << " time " << e.time
                        << " must be finite and positive");
    OP_REQUIRE(e.time >= previous,
               "event " << i << " time " << e.time
                        << " breaks the non-decreasing order (previous "
                        << previous << ")");
    previous = e.time;
    switch (e.kind) {
      case EventKind::kSlowdown:
      case EventKind::kDropout: {
        OP_REQUIRE(e.proc >= 0 && e.proc < p,
                   "event " << i << " targets invalid processor " << e.proc);
        OP_REQUIRE(!dropped[static_cast<std::size_t>(e.proc)],
                   "event " << i << " targets processor " << e.proc
                            << " after it dropped out");
        if (e.kind == EventKind::kSlowdown) {
          OP_REQUIRE(std::isfinite(e.factor) && e.factor > 0.0,
                     "event " << i << " slowdown factor " << e.factor
                              << " must be finite and positive");
        } else {
          dropped[static_cast<std::size_t>(e.proc)] = 1;
          ++drops;
        }
        break;
      }
      case EventKind::kArrival: {
        OP_REQUIRE(!e.tasks.empty(),
                   "event " << i << " arrival with no tasks");
        for (const TaskId v : e.tasks) {
          OP_REQUIRE(v < graph.num_tasks(),
                     "event " << i << " arrival of unknown task " << v);
          OP_REQUIRE(!arrived[v], "task " << v << " arrives twice");
          arrived[v] = 1;
        }
        break;
      }
    }
  }
  OP_REQUIRE(drops < p, "trace drops every processor");
  // Successor closure: a task must not become known before a predecessor
  // (equivalently release(u) <= release(v) for every edge u->v).  Build
  // release times inline rather than calling release_times() so the error
  // points at the offending edge.
  std::vector<double> release(graph.num_tasks(), 0.0);
  for (const PlatformEvent& e : trace) {
    if (e.kind != EventKind::kArrival) continue;
    for (const TaskId v : e.tasks) release[v] = e.time;
  }
  for (TaskId u = 0; u < graph.num_tasks(); ++u) {
    for (const EdgeRef& out : graph.successors(u)) {
      OP_REQUIRE(release[u] <= release[out.task],
                 "task " << out.task << " (release " << release[out.task]
                         << ") becomes known before its predecessor " << u
                         << " (release " << release[u] << ")");
    }
  }
}

std::vector<double> release_times(const EventTrace& trace,
                                  const TaskGraph& graph) {
  std::vector<double> release(graph.num_tasks(), 0.0);
  for (const PlatformEvent& e : trace) {
    if (e.kind != EventKind::kArrival) continue;
    for (const TaskId v : e.tasks) {
      OP_REQUIRE(v < graph.num_tasks(), "arrival of unknown task " << v);
      release[v] = e.time;
    }
  }
  return release;
}

namespace {

/// Processors ranked by busy time (desc); ties broken by (id + seed) % p
/// so different seeds pick different victims among equals.
std::vector<ProcId> by_load(const Platform& platform,
                            const Schedule& initial, std::uint64_t seed) {
  const int p = platform.num_processors();
  std::vector<double> busy(static_cast<std::size_t>(p), 0.0);
  for (const TaskPlacement& t : initial.tasks()) {
    if (t.placed()) {
      busy[static_cast<std::size_t>(t.proc)] += t.finish - t.start;
    }
  }
  std::vector<ProcId> order(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) order[static_cast<std::size_t>(q)] = q;
  std::sort(order.begin(), order.end(), [&](ProcId a, ProcId b) {
    const double ba = busy[static_cast<std::size_t>(a)];
    const double bb = busy[static_cast<std::size_t>(b)];
    if (ba != bb) return ba > bb;
    const auto pa = (static_cast<std::uint64_t>(a) + seed) %
                    static_cast<std::uint64_t>(p);
    const auto pb = (static_cast<std::uint64_t>(b) + seed) %
                    static_cast<std::uint64_t>(p);
    if (pa != pb) return pa < pb;
    return a < b;
  });
  return order;
}

/// Explicit builder so aggregate pushes stay -Wmissing-field-initializers
/// clean.
PlatformEvent proc_event(EventKind kind, double time, ProcId proc,
                         double factor = 1.0) {
  PlatformEvent e;
  e.kind = kind;
  e.time = time;
  e.proc = proc;
  e.factor = factor;
  return e;
}

}  // namespace

EventTrace make_named_trace(const std::string& name, const TaskGraph& graph,
                            const Platform& platform,
                            const Schedule& initial, std::uint64_t seed) {
  const std::vector<std::string>& names = known_event_trace_names();
  OP_REQUIRE(std::find(names.begin(), names.end(), name) != names.end(),
             "unknown event trace '"
                 << name << "' (try none, slowdown, dropout, mixed, "
                 << "arrival)");
  EventTrace trace;
  const double makespan = initial.makespan();
  // A zero-length schedule has no "mid-run" to interrupt; every preset
  // degenerates to the empty trace.
  if (name == "none" || makespan <= 0.0) return trace;
  const std::vector<ProcId> ranked = by_load(platform, initial, seed);
  const bool single = platform.num_processors() == 1;

  if (name == "slowdown") {
    trace.push_back(
        proc_event(EventKind::kSlowdown, 0.25 * makespan, ranked[0], 4.0));
    if (!single) {
      trace.push_back(
        proc_event(EventKind::kSlowdown, 0.60 * makespan, ranked[1], 2.0));
    }
  } else if (name == "dropout") {
    // Never drop the last processor.
    if (single) return trace;
    trace.push_back(proc_event(EventKind::kDropout, 0.30 * makespan, ranked[0]));
  } else if (name == "mixed") {
    trace.push_back(
        proc_event(EventKind::kSlowdown, 0.20 * makespan, ranked[0], 3.0));
    if (!single) {
      trace.push_back(proc_event(EventKind::kDropout, 0.55 * makespan, ranked[1]));
    }
  } else {  // "arrival"
    const std::size_t n = graph.num_tasks();
    // A suffix of the topological order is successor-closed by
    // construction; keep at least one initially-known task.
    const std::size_t late = std::min(std::max<std::size_t>(n / 4, 1), n - 1);
    if (late > 0 && n > 1) {
      PlatformEvent e;
      e.kind = EventKind::kArrival;
      e.time = 0.40 * makespan;
      const std::span<const TaskId> topo = graph.topological_order();
      e.tasks.assign(topo.end() - static_cast<std::ptrdiff_t>(late),
                     topo.end());
      trace.push_back(std::move(e));
    }
    trace.push_back(
        proc_event(EventKind::kSlowdown, 0.70 * makespan, ranked[0], 2.0));
  }
  validate_trace(trace, graph, platform);
  return trace;
}

const std::vector<std::string>& known_event_trace_names() {
  static const std::vector<std::string> names = {
      "none", "slowdown", "dropout", "mixed", "arrival"};
  return names;
}

}  // namespace oneport::dyn
