// Platform-level events for online rescheduling: the inputs of the
// src/dynamic subsystem.
//
// A running schedule is interrupted by a time-ordered trace of events --
// a processor slowing down by a factor, a processor dropping out of the
// compute pool, or tasks arriving late (becoming known only mid-run).
// At each event time the committed prefix of the schedule is frozen and
// the suffix is rescheduled against the mutated platform (see
// dynamic/reschedule.hpp for the exact semantics).
//
// Traces are plain data validated up front, so a malformed scenario
// fails loudly at submission instead of corrupting an event loop
// mid-flight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace oneport::dyn {

enum class EventKind {
  kSlowdown,  ///< processor `proc` multiplies its cycle time by `factor`
  kDropout,   ///< processor `proc` stops accepting new tasks (drain:
              ///< running tasks finish, in-flight messages complete, and
              ///< the network keeps relaying through it)
  kArrival,   ///< `tasks` become known and schedulable at `time`
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct PlatformEvent {
  EventKind kind = EventKind::kSlowdown;
  double time = 0.0;
  ProcId proc = -1;           ///< slowdown / dropout target
  double factor = 1.0;        ///< slowdown multiplier (> 1 slows down)
  std::vector<TaskId> tasks;  ///< arrival payload

  friend bool operator==(const PlatformEvent&,
                         const PlatformEvent&) = default;
};

using EventTrace = std::vector<PlatformEvent>;

/// Validates `trace` against a graph and platform; throws
/// std::invalid_argument on the first problem.  Rules:
///   * event times are finite, positive and non-decreasing;
///   * slowdown/dropout name a valid processor, slowdown factors are
///     finite and positive (> 1 slows down, < 1 models recovery), a
///     processor drops out at most once, events never target an
///     already-dropped processor, and at least one processor survives
///     the whole trace;
///   * arrival events list valid, distinct task ids, no task arrives
///     twice, and the late set is successor-closed: a task may not
///     become known before one of its predecessors (the rescheduler
///     could otherwise owe work to a task it has never seen).
void validate_trace(const EventTrace& trace, const TaskGraph& graph,
                    const Platform& platform);

/// Per-task release times implied by `trace`: 0 for initially-known
/// tasks, the arrival event time otherwise.  Requires a validated trace.
[[nodiscard]] std::vector<double> release_times(const EventTrace& trace,
                                                const TaskGraph& graph);

/// Named deterministic trace presets for sweeps and benchmarks.  Event
/// times are placed at fixed fractions of `initial`'s makespan and
/// targets are chosen from the schedule itself (e.g. the most-loaded
/// processor), so one preset name yields a comparable scenario across
/// every (graph, platform, heuristic) grid cell:
///   * "none"     -- empty trace (pure static scheduling);
///   * "slowdown" -- the most-loaded processor slows down x4 at 25% of
///                   the makespan, the second-most-loaded x2 at 60%;
///   * "dropout"  -- the most-loaded processor drops out at 30%;
///   * "mixed"    -- a x3 slowdown at 20%, then a dropout of the
///                   next-most-loaded processor at 55%;
///   * "arrival"  -- a successor-closed ~25% suffix of the topological
///                   order arrives at 40% (plus a x2 slowdown at 70%).
/// `seed` perturbs tie-breaks deterministically.  Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] EventTrace make_named_trace(const std::string& name,
                                          const TaskGraph& graph,
                                          const Platform& platform,
                                          const Schedule& initial,
                                          std::uint64_t seed = 0);

/// The preset names accepted by make_named_trace.
[[nodiscard]] const std::vector<std::string>& known_event_trace_names();

}  // namespace oneport::dyn
